#include "src/core/decision_tree.h"

#include <algorithm>
#include <string>

#include "src/util/checked_math.h"
#include "src/util/logging.h"

namespace espresso {

namespace {

Op CommOp(CommPhase phase, Routine routine, double domain, double payload, bool compressed) {
  Op op;
  op.task = ActionTask::kComm;
  op.phase = phase;
  op.routine = routine;
  op.domain_fraction = domain;
  op.payload_fraction = payload;
  op.compressed = compressed;
  return op;
}

Op CompOp(CommPhase phase, double domain) {
  Op op;
  op.task = ActionTask::kCompress;
  op.phase = phase;
  op.domain_fraction = domain;
  op.payload_fraction = domain;
  return op;
}

Op DecompOp(CommPhase phase, double domain, size_t fan_in, double payload) {
  Op op;
  op.task = ActionTask::kDecompress;
  op.phase = phase;
  op.domain_fraction = domain;
  op.fan_in = fan_in;
  op.payload_fraction = payload;
  return op;
}

// A partially built path plus the payload state it leaves behind.
struct Path {
  std::vector<Op> ops;
  bool compressed = false;  // payload currently compressed
  std::string label;

  Path Extend(std::vector<Op> more, bool compressed_after, const std::string& tag) const {
    Path next = *this;
    for (auto& op : more) {
      next.ops.push_back(op);
    }
    next.compressed = compressed_after;
    if (!tag.empty()) {
      next.label += next.label.empty() ? tag : "|" + tag;
    }
    return next;
  }
};

CompressionOption Finish(const Path& path, bool flat) {
  CompressionOption option;
  option.ops = path.ops;
  option.flat = flat;
  option.label = (flat ? "flat[" : "hier[") + path.label + "]";
  return option;
}

// ---------------------------------------------------------------------------
// Flat communication: a single phase over all machines*gpus ranks.
// ---------------------------------------------------------------------------
void EnumerateFlat(const TreeConfig& config, std::vector<CompressionOption>* out) {
  const auto p = static_cast<double>(config.machines * config.gpus_per_machine);
  const CommPhase ph = CommPhase::kFlat;
  const size_t fan = config.machines * config.gpus_per_machine;

  // Uncompressed.
  out->push_back(Finish(Path{}.Extend({CommOp(ph, Routine::kAllreduce, 1.0, 1.0, false)},
                                      false, "ar"),
                        true));
  out->push_back(Finish(Path{}.Extend({CommOp(ph, Routine::kReduceScatter, 1.0, 1.0, false),
                                       CommOp(ph, Routine::kAllgather, 1.0, 1.0 / p, false)},
                                      false, "rs+ag"),
                        true));
  out->push_back(Finish(Path{}.Extend({CommOp(ph, Routine::kReduce, 1.0, 1.0, false),
                                       CommOp(ph, Routine::kBroadcast, 1.0, 1.0, false)},
                                      false, "red+bc"),
                        true));

  // Compressed, indivisible: comp -> allgather_c -> decompress(all payloads).
  out->push_back(Finish(
      Path{}.Extend({CompOp(ph, 1.0), CommOp(ph, Routine::kAllgather, 1.0, 1.0, true),
                     DecompOp(ph, 1.0, fan, 1.0)},
                    false, "comp+agc+dec"),
      true));
  if (config.supports_compressed_aggregation) {
    // Compressed-domain aggregation after the allgather: one decompression.
    out->push_back(Finish(
        Path{}.Extend({CompOp(ph, 1.0), CommOp(ph, Routine::kAllgather, 1.0, 1.0, true),
                       DecompOp(ph, 1.0, 1, 1.0)},
                      false, "comp+agc+aggc"),
        true));
  }

  // Compressed, divisible (alltoall | allgather): comp -> alltoall_c ->
  // [decomp+agg+comp | skip] -> allgather_c -> decomp.
  {
    Path head = Path{}.Extend({CompOp(ph, 1.0),
                               CommOp(ph, Routine::kAlltoall, 1.0, 1.0 / p, true)},
                              true, "comp+a2ac");
    out->push_back(Finish(
        head.Extend({DecompOp(ph, 1.0 / p, fan, 1.0 / p), CompOp(ph, 1.0 / p),
                     CommOp(ph, Routine::kAllgather, 1.0, 1.0 / p, true),
                     DecompOp(ph, 1.0, fan, 1.0 / p)},
                    false, "dec+comp+agc+dec"),
        true));
    // Decompress at the middle stage and finish with an uncompressed allgather.
    out->push_back(Finish(head.Extend({DecompOp(ph, 1.0 / p, fan, 1.0 / p),
                                       CommOp(ph, Routine::kAllgather, 1.0, 1.0 / p, false)},
                                      false, "dec+ag"),
                          true));
    if (config.supports_compressed_aggregation) {
      out->push_back(Finish(head.Extend({CommOp(ph, Routine::kAllgather, 1.0, 1.0 / p, true),
                                         DecompOp(ph, 1.0, fan, 1.0 / p)},
                                        false, "skip+agc+dec"),
                            true));
    }
  }

  // Compressed, divisible (gather | broadcast).
  {
    Path head = Path{}.Extend({CompOp(ph, 1.0), CommOp(ph, Routine::kGather, 1.0, 1.0, true)},
                              true, "comp+gc");
    out->push_back(Finish(head.Extend({DecompOp(ph, 1.0, fan, 1.0), CompOp(ph, 1.0),
                                       CommOp(ph, Routine::kBroadcast, 1.0, 1.0, true),
                                       DecompOp(ph, 1.0, 1, 1.0)},
                                      false, "dec+comp+bcc+dec"),
                          true));
    out->push_back(Finish(head.Extend({DecompOp(ph, 1.0, fan, 1.0),
                                       CommOp(ph, Routine::kBroadcast, 1.0, 1.0, false)},
                                      false, "dec+bc"),
                          true));
    if (config.supports_compressed_aggregation) {
      out->push_back(Finish(head.Extend({CommOp(ph, Routine::kBroadcast, 1.0, 1.0, true),
                                         DecompOp(ph, 1.0, 1, 1.0)},
                                        false, "skip+bcc+dec"),
                            true));
    }
  }
}

// ---------------------------------------------------------------------------
// Hierarchical communication: intra-first / inter / intra-second (Figure 1).
// ---------------------------------------------------------------------------

// Intra-1 outcome: topology of the data after the first intra step.
enum class Topology { kSharded, kRooted };

struct Intra1Variant {
  Path path;
  Topology topology;
  double inter_domain;  // tensor fraction each inter participant handles
};

std::vector<Intra1Variant> EnumerateIntra1(const TreeConfig& config) {
  const auto g = static_cast<double>(config.gpus_per_machine);
  const size_t gi = config.gpus_per_machine;
  const CommPhase ph = CommPhase::kIntraFirst;
  std::vector<Intra1Variant> variants;

  // Uncompressed divisible first steps.
  variants.push_back({Path{}.Extend({CommOp(ph, Routine::kReduceScatter, 1.0, 1.0, false)},
                                    false, "rs"),
                      Topology::kSharded, 1.0 / g});
  variants.push_back({Path{}.Extend({CommOp(ph, Routine::kReduce, 1.0, 1.0, false)}, false,
                                    "red"),
                      Topology::kRooted, 1.0});

  // Compressed first steps: compress the full tensor, shuffle compressed parts.
  {
    Path head = Path{}.Extend({CompOp(ph, 1.0),
                               CommOp(ph, Routine::kAlltoall, 1.0, 1.0 / g, true)},
                              true, "comp+a2ac");
    variants.push_back({head.Extend({DecompOp(ph, 1.0 / g, gi, 1.0 / g)}, false, "dec"),
                        Topology::kSharded, 1.0 / g});
    if (config.supports_compressed_aggregation) {
      variants.push_back({head.Extend({}, true, "skip"), Topology::kSharded, 1.0 / g});
    }
  }
  {
    Path head = Path{}.Extend({CompOp(ph, 1.0), CommOp(ph, Routine::kGather, 1.0, 1.0, true)},
                              true, "comp+gc");
    variants.push_back({head.Extend({DecompOp(ph, 1.0, gi, 1.0)}, false, "dec"),
                        Topology::kRooted, 1.0});
    if (config.supports_compressed_aggregation) {
      variants.push_back({head.Extend({}, true, "skip"), Topology::kRooted, 1.0});
    }
  }
  return variants;
}

// Inter-phase continuations from a given entry state over domain d.
struct InterVariant {
  Path path;       // ops appended after the entry path
  bool compressed; // exit payload state (single payload if compressed)
};

std::vector<InterVariant> EnumerateInter(const TreeConfig& config, bool entry_compressed,
                                         double d) {
  const auto m = static_cast<double>(config.machines);
  const size_t mi = config.machines;
  const CommPhase ph = CommPhase::kInter;
  std::vector<InterVariant> variants;

  if (!entry_compressed) {
    // Indivisible uncompressed: allreduce.
    variants.push_back({Path{}.Extend({CommOp(ph, Routine::kAllreduce, d, d, false)}, false,
                                      "ar"),
                        false});
    // Divisible uncompressed, optionally compressing between the two steps (T5).
    {
      Path head = Path{}.Extend({CommOp(ph, Routine::kReduceScatter, d, d, false)}, false,
                                "rs");
      variants.push_back({head.Extend({CommOp(ph, Routine::kAllgather, d, d / m, false)},
                                      false, "ag"),
                          false});
      variants.push_back({head.Extend({CompOp(ph, d / m),
                                       CommOp(ph, Routine::kAllgather, d, d / m, true)},
                                      true, "comp+agc"),
                          true});
    }
    {
      Path head = Path{}.Extend({CommOp(ph, Routine::kReduce, d, d, false)}, false, "red");
      variants.push_back({head.Extend({CommOp(ph, Routine::kBroadcast, d, d, false)}, false,
                                      "bc"),
                          false});
      variants.push_back({head.Extend({CompOp(ph, d),
                                       CommOp(ph, Routine::kBroadcast, d, d, true)},
                                      true, "comp+bcc"),
                          true});
    }
    return variants;
  }

  // Entry compressed. Indivisible: allgather of payloads, then decompress-aggregate (or
  // compressed-domain aggregation when supported).
  {
    Path head = Path{}.Extend({CommOp(ph, Routine::kAllgather, d, d, true)}, true, "agc");
    variants.push_back({head.Extend({DecompOp(ph, d, mi, d)}, false, "dec"), false});
    if (config.supports_compressed_aggregation) {
      variants.push_back({head.Extend({}, true, "aggc"), true});
    }
  }
  // Divisible alltoall | allgather.
  {
    Path head = Path{}.Extend({CommOp(ph, Routine::kAlltoall, d, d / m, true)}, true, "a2ac");
    variants.push_back({head.Extend({DecompOp(ph, d / m, mi, d / m), CompOp(ph, d / m),
                                     CommOp(ph, Routine::kAllgather, d, d / m, true)},
                                    true, "dec+comp+agc"),
                        true});
    variants.push_back({head.Extend({DecompOp(ph, d / m, mi, d / m),
                                     CommOp(ph, Routine::kAllgather, d, d / m, false)},
                                    false, "dec+ag"),
                        false});
    if (config.supports_compressed_aggregation) {
      variants.push_back({head.Extend({CommOp(ph, Routine::kAllgather, d, d / m, true)}, true,
                                      "skip+agc"),
                          true});
    }
  }
  // Divisible gather | broadcast.
  {
    Path head = Path{}.Extend({CommOp(ph, Routine::kGather, d, d, true)}, true, "gc");
    variants.push_back({head.Extend({DecompOp(ph, d, mi, d), CompOp(ph, d),
                                     CommOp(ph, Routine::kBroadcast, d, d, true)},
                                    true, "dec+comp+bcc"),
                        true});
    variants.push_back({head.Extend({DecompOp(ph, d, mi, d),
                                     CommOp(ph, Routine::kBroadcast, d, d, false)},
                                    false, "dec+bc"),
                        false});
    if (config.supports_compressed_aggregation) {
      variants.push_back({head.Extend({CommOp(ph, Routine::kBroadcast, d, d, true)}, true,
                                      "skip+bcc"),
                          true});
    }
  }
  return variants;
}

void EnumerateHierarchical(const TreeConfig& config, std::vector<CompressionOption>* out) {
  const auto g = static_cast<double>(config.gpus_per_machine);
  const size_t gi = config.gpus_per_machine;
  const CommPhase ph2 = CommPhase::kIntraSecond;

  for (const Intra1Variant& intra1 : EnumerateIntra1(config)) {
    // Boundary A: optionally compress an uncompressed payload for the inter phase.
    std::vector<Path> entries;
    if (intra1.path.compressed) {
      entries.push_back(intra1.path);
    } else {
      entries.push_back(intra1.path);
      entries.push_back(intra1.path.Extend({CompOp(CommPhase::kInter, intra1.inter_domain)},
                                           true, "comp"));
    }
    for (const Path& entry : entries) {
      for (const InterVariant& inter :
           EnumerateInter(config, entry.compressed, intra1.inter_domain)) {
        Path after_inter = entry;
        for (const Op& op : inter.path.ops) {
          after_inter.ops.push_back(op);
        }
        after_inter.compressed = inter.compressed;
        after_inter.label += "|" + inter.path.label;

        // Boundary B: a compressed payload may be decompressed now or carried into the
        // second intra step (sub-trees T1/T2).
        std::vector<Path> exits;
        if (after_inter.compressed) {
          exits.push_back(after_inter.Extend(
              {DecompOp(CommPhase::kIntraSecond, intra1.inter_domain, 1, intra1.inter_domain)},
              false, "dec"));
          exits.push_back(after_inter);  // keep compressed
        } else {
          exits.push_back(after_inter);
          // Compress just for the second intra step ("intra2-only" compression).
          exits.push_back(after_inter.Extend(
              {CompOp(CommPhase::kIntraSecond, intra1.inter_domain)}, true, "comp"));
        }
        for (const Path& exit : exits) {
          Path full = exit;
          if (intra1.topology == Topology::kSharded) {
            // Second intra step: allgather of per-GPU shards.
            if (full.compressed) {
              full = full.Extend({CommOp(ph2, Routine::kAllgather, 1.0, 1.0 / g, true),
                                  DecompOp(ph2, 1.0, gi, 1.0 / g)},
                                 false, "agc+dec");
            } else {
              full = full.Extend({CommOp(ph2, Routine::kAllgather, 1.0, 1.0 / g, false)},
                                 false, "ag");
            }
          } else {
            // Rooted: broadcast the full tensor from the root GPU.
            if (full.compressed) {
              full = full.Extend({CommOp(ph2, Routine::kBroadcast, 1.0, 1.0, true),
                                  DecompOp(ph2, 1.0, 1, 1.0)},
                                 false, "bcc+dec");
            } else {
              full = full.Extend({CommOp(ph2, Routine::kBroadcast, 1.0, 1.0, false)}, false,
                                 "bc");
            }
          }
          out->push_back(Finish(full, false));
        }
      }
    }
  }
}

}  // namespace

size_t OptionSpace::TotalWithDeviceChoices() const {
  // Saturating: 2^slots wraps to 0 once slots reaches the word size, and the sum can
  // wrap even when each term fits; SIZE_MAX is the honest "too many to enumerate".
  size_t total = 0;
  for (const auto& option : options) {
    total = SaturatingAdd(total, SaturatingPow2(option.DeviceSlots()));
  }
  return total;
}

std::vector<CompressionOption> OptionSpace::CompressedOnly() const {
  std::vector<CompressionOption> compressed;
  for (const auto& option : options) {
    if (option.Compressed()) {
      compressed.push_back(option);
    }
  }
  return compressed;
}

OptionSpace EnumerateOptions(const TreeConfig& config) {
  OptionSpace space;
  EnumerateFlat(config, &space.options);
  if (config.Hierarchical()) {
    EnumerateHierarchical(config, &space.options);
  }
  // Deduplicate structurally identical paths (different branch orders can coincide).
  std::vector<CompressionOption> unique;
  for (auto& option : space.options) {
    const bool seen = std::any_of(unique.begin(), unique.end(),
                                  [&](const CompressionOption& u) { return u == option; });
    if (!seen) {
      unique.push_back(std::move(option));
    }
  }
  if (config.max_compress_ops > 0) {
    std::erase_if(unique, [&](const CompressionOption& option) {
      return option.CompressOpCount() > config.max_compress_ops;
    });
  }
  space.options = std::move(unique);
  for (const auto& option : space.options) {
    ESP_CHECK(ValidateOption(config, option)) << option.Describe();
  }
  return space;
}

CompressionOption DefaultUncompressedOption(const TreeConfig& config) {
  if (!config.Hierarchical()) {
    CompressionOption option;
    option.flat = true;
    option.label = "flat[ar]";
    option.ops = {CommOp(CommPhase::kFlat, Routine::kAllreduce, 1.0, 1.0, false)};
    return option;
  }
  const auto g = static_cast<double>(config.gpus_per_machine);
  CompressionOption option;
  option.flat = false;
  option.label = "hier[rs|ar|ag]";
  option.ops = {CommOp(CommPhase::kIntraFirst, Routine::kReduceScatter, 1.0, 1.0, false),
                CommOp(CommPhase::kInter, Routine::kAllreduce, 1.0 / g, 1.0 / g, false),
                CommOp(CommPhase::kIntraSecond, Routine::kAllgather, 1.0, 1.0 / g, false)};
  return option;
}

std::vector<CompressionOption> CandidateOptions(const TreeConfig& config) {
  const auto g = static_cast<double>(config.gpus_per_machine);
  const size_t gi = config.gpus_per_machine;
  const size_t mi = config.machines;
  const auto m = static_cast<double>(mi);
  std::vector<CompressionOption> candidates;

  if (!config.Hierarchical()) {
    // Single-level cluster: the flat options are the whole story; keep the compressed
    // ones plus the uncompressed scheme change.
    OptionSpace space = EnumerateOptions(config);
    for (auto& option : space.options) {
      candidates.push_back(std::move(option));
    }
    return candidates;
  }

  auto push = [&](std::vector<Op> ops, bool flat, const std::string& label) {
    CompressionOption option;
    option.ops = std::move(ops);
    option.flat = flat;
    option.label = label;
    candidates.push_back(std::move(option));
  };

  // Uncompressed scheme variants (Dimension 3 without Dimension 1).
  candidates.push_back(DefaultUncompressedOption(config));
  push({CommOp(CommPhase::kFlat, Routine::kAllreduce, 1.0, 1.0, false)}, true, "flat[ar]");

  // Inter-only compression, indivisible (HiPress/BytePS-Compress territory).
  push({CommOp(CommPhase::kIntraFirst, Routine::kReduceScatter, 1.0, 1.0, false),
        CompOp(CommPhase::kInter, 1.0 / g),
        CommOp(CommPhase::kInter, Routine::kAllgather, 1.0 / g, 1.0 / g, true),
        DecompOp(CommPhase::kInter, 1.0 / g, mi, 1.0 / g),
        CommOp(CommPhase::kIntraSecond, Routine::kAllgather, 1.0, 1.0 / g, false)},
       false, "hier[rs|comp+agc+dec|ag]");

  // Inter-only compression, divisible.
  push({CommOp(CommPhase::kIntraFirst, Routine::kReduceScatter, 1.0, 1.0, false),
        CompOp(CommPhase::kInter, 1.0 / g),
        CommOp(CommPhase::kInter, Routine::kAlltoall, 1.0 / g, 1.0 / (g * m), true),
        DecompOp(CommPhase::kInter, 1.0 / (g * m), mi, 1.0 / (g * m)),
        CompOp(CommPhase::kInter, 1.0 / (g * m)),
        CommOp(CommPhase::kInter, Routine::kAllgather, 1.0 / g, 1.0 / (g * m), true),
        // Boundary-B convention (EnumerateHierarchical): the inter allgather coalesced
        // the shard into one merged payload, so the exit decompress fans in 1 payload
        // of the whole inter-domain fraction.
        DecompOp(CommPhase::kIntraSecond, 1.0 / g, 1, 1.0 / g),
        CommOp(CommPhase::kIntraSecond, Routine::kAllgather, 1.0, 1.0 / g, false)},
       false, "hier[rs|comp+a2ac+dec+comp+agc+dec|ag]");
  if (config.supports_compressed_aggregation) {
    push({CommOp(CommPhase::kIntraFirst, Routine::kReduceScatter, 1.0, 1.0, false),
          CompOp(CommPhase::kInter, 1.0 / g),
          CommOp(CommPhase::kInter, Routine::kAlltoall, 1.0 / g, 1.0 / (g * m), true),
          CommOp(CommPhase::kInter, Routine::kAllgather, 1.0 / g, 1.0 / (g * m), true),
          // Boundary-B convention (EnumerateHierarchical): the inter allgather
          // coalesced the shard into one merged payload, so the exit decompress fans
          // in 1 payload of the whole inter-domain fraction.
          DecompOp(CommPhase::kIntraSecond, 1.0 / g, 1, 1.0 / g),
          CommOp(CommPhase::kIntraSecond, Routine::kAllgather, 1.0, 1.0 / g, false)},
         false, "hier[rs|comp+a2ac+skip+agc+dec|ag]");
  }

  // Intra+inter compression: compress once, shuffle compressed parts locally, aggregate,
  // re-compress for the inter phase, and keep the result compressed through the second
  // intra step (the "both communications" choice of Dimension 4).
  push({CompOp(CommPhase::kIntraFirst, 1.0),
        CommOp(CommPhase::kIntraFirst, Routine::kAlltoall, 1.0, 1.0 / g, true),
        DecompOp(CommPhase::kIntraFirst, 1.0 / g, gi, 1.0 / g),
        CompOp(CommPhase::kInter, 1.0 / g),
        CommOp(CommPhase::kInter, Routine::kAllgather, 1.0 / g, 1.0 / g, true),
        DecompOp(CommPhase::kInter, 1.0 / g, mi, 1.0 / g),
        CompOp(CommPhase::kIntraSecond, 1.0 / g),
        CommOp(CommPhase::kIntraSecond, Routine::kAllgather, 1.0, 1.0 / g, true),
        DecompOp(CommPhase::kIntraSecond, 1.0, gi, 1.0 / g)},
       false, "hier[comp+a2ac+dec|comp+agc+dec|comp+agc+dec]");
  if (config.supports_compressed_aggregation) {
    // With compressed-domain aggregation the tensor stays compressed end-to-end.
    push({CompOp(CommPhase::kIntraFirst, 1.0),
          CommOp(CommPhase::kIntraFirst, Routine::kAlltoall, 1.0, 1.0 / g, true),
          CommOp(CommPhase::kInter, Routine::kAllgather, 1.0 / g, 1.0 / g, true),
          CommOp(CommPhase::kIntraSecond, Routine::kAllgather, 1.0, 1.0 / g, true),
          // The intra-2 allgather coalesces each peer's merged holding into one bundle,
          // so the closing decompress fans in gi bundles of 1/g each (the inter-phase
          // overlap was already aggregated in the compressed domain).
          DecompOp(CommPhase::kIntraSecond, 1.0, gi, 1.0 / g)},
         false, "hier[comp+a2ac|agc|agc+dec]");
  }

  // Intra+inter with divisible inter scheme and uncompressed second intra step (the
  // "Alltoall+Alltoall" pipeline of §5.3's Dimension-4 study).
  push({CompOp(CommPhase::kIntraFirst, 1.0),
        CommOp(CommPhase::kIntraFirst, Routine::kAlltoall, 1.0, 1.0 / g, true),
        DecompOp(CommPhase::kIntraFirst, 1.0 / g, gi, 1.0 / g),
        CompOp(CommPhase::kInter, 1.0 / g),
        CommOp(CommPhase::kInter, Routine::kAlltoall, 1.0 / g, 1.0 / (g * m), true),
        DecompOp(CommPhase::kInter, 1.0 / (g * m), mi, 1.0 / (g * m)),
        CompOp(CommPhase::kInter, 1.0 / (g * m)),
        CommOp(CommPhase::kInter, Routine::kAllgather, 1.0 / g, 1.0 / (g * m), true),
        // Same boundary-B convention as above: one merged payload out of the inter step.
        DecompOp(CommPhase::kIntraSecond, 1.0 / g, 1, 1.0 / g),
        CommOp(CommPhase::kIntraSecond, Routine::kAllgather, 1.0, 1.0 / g, false)},
       false, "hier[comp+a2ac+dec|comp+a2ac+dec+comp+agc+dec|ag]");

  // Flat compressed options (Dimension 3's flat-vs-hierarchical choice).
  const auto p = static_cast<double>(mi * gi);
  push({CompOp(CommPhase::kFlat, 1.0),
        CommOp(CommPhase::kFlat, Routine::kAllgather, 1.0, 1.0, true),
        DecompOp(CommPhase::kFlat, 1.0, mi * gi, 1.0)},
       true, "flat[comp+agc+dec]");
  push({CompOp(CommPhase::kFlat, 1.0),
        CommOp(CommPhase::kFlat, Routine::kAlltoall, 1.0, 1.0 / p, true),
        DecompOp(CommPhase::kFlat, 1.0 / p, mi * gi, 1.0 / p), CompOp(CommPhase::kFlat, 1.0 / p),
        CommOp(CommPhase::kFlat, Routine::kAllgather, 1.0, 1.0 / p, true),
        DecompOp(CommPhase::kFlat, 1.0, mi * gi, 1.0 / p)},
       true, "flat[comp+a2ac+dec+comp+agc+dec]");

  if (config.max_compress_ops > 0) {
    std::erase_if(candidates, [&](const CompressionOption& option) {
      return option.CompressOpCount() > config.max_compress_ops;
    });
  }
  for (const auto& option : candidates) {
    ESP_CHECK(ValidateOption(config, option)) << option.Describe();
  }
  return candidates;
}

bool ValidateOption(const TreeConfig& config, const CompressionOption& option) {
  if (option.ops.empty()) {
    return false;
  }
  // Rule 1: valid connections — payload state must alternate correctly.
  bool compressed = false;
  bool has_comm = false;
  for (const Op& op : option.ops) {
    switch (op.task) {
      case ActionTask::kCompress:
        if (compressed) {
          return false;  // double compression
        }
        compressed = true;
        break;
      case ActionTask::kDecompress:
        if (!compressed) {
          return false;  // decompressing an uncompressed payload
        }
        compressed = false;
        break;
      case ActionTask::kComm:
        has_comm = true;
        // A compressed payload may not ride an uncompressed-only routine.
        if (op.compressed &&
            (op.routine == Routine::kAllreduce || op.routine == Routine::kReduceScatter ||
             op.routine == Routine::kReduce)) {
          return false;
        }
        // Compressed tensors cannot use Allreduce/Reduce-scatter/Reduce (their
        // aggregation is not associative, §4.2.1); conversely a comm op marked
        // compressed requires the payload to be compressed.
        if (op.compressed != compressed) {
          return false;
        }
        break;
    }
  }
  if (!has_comm || compressed) {
    return false;  // must end decompressed and must communicate
  }
  // Rule 2 + 3: phases must be ordered flat-only or intra1 -> inter -> intra2, and
  // flat options may not use hierarchical phases.
  int max_phase = -1;
  for (const Op& op : option.ops) {
    if (option.flat) {
      if (op.phase != CommPhase::kFlat) {
        return false;
      }
      continue;
    }
    if (op.phase == CommPhase::kFlat) {
      return false;
    }
    const int phase_rank = op.phase == CommPhase::kIntraFirst ? 0
                           : op.phase == CommPhase::kInter    ? 1
                                                              : 2;
    if (phase_rank < max_phase) {
      return false;
    }
    max_phase = std::max(max_phase, phase_rank);
  }
  if (!option.flat && !config.Hierarchical()) {
    return false;
  }
  return true;
}

}  // namespace espresso

// Memoized evaluation support for the decision algorithm (§4.4): 64-bit strategy
// fingerprints and a thread-safe LRU cache mapping fingerprint -> F(S).
//
// F(S) is a pure function of the per-tensor option contents (the ops, not the labels)
// for a fixed evaluator configuration (model, cluster, compressor, resource scales), so
// one cache is valid for exactly one TimelineEvaluator configuration. EspressoSelector
// owns a cache per selection and shares it with the nested forced-compression
// trajectory, whose evaluator is configured identically.
//
// The fingerprint is additive: the strategy key is the wrapping sum of per-index mixed
// option hashes, finalized with an avalanche step at lookup time. Addition makes
// single-option substitutions O(1) (subtract the old mixed hash, add the new one),
// which is what StrategyHasher exploits on the hot path — no rehash of the other n-1
// tensors per candidate score, and no strategy copy at all.
#ifndef SRC_CORE_EVAL_CACHE_H_
#define SRC_CORE_EVAL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/core/strategy.h"
#include "src/util/lru_cache.h"

namespace espresso {

// Content hash of one option: every op field that influences the simulated timeline.
// Labels are deliberately excluded — CompressionOption::operator== compares ops only,
// and two options with equal ops produce equal timelines.
uint64_t OptionFingerprint(const CompressionOption& option);

// Position-mixed option hash. Mixing the tensor index in keeps the strategy key
// order-sensitive even though the per-index hashes are combined by addition.
uint64_t MixIndexedOption(size_t index, const CompressionOption& option);

// Avalanche finalizer applied to the additive total before it is used as a cache key.
uint64_t FinalizeStrategyKey(uint64_t total);

// Full-strategy fingerprint: FinalizeStrategyKey(sum of MixIndexedOption over tensors).
uint64_t StrategyFingerprint(const Strategy& strategy);

// Incremental fingerprint tracker for a strategy being mutated one option at a time.
class StrategyHasher {
 public:
  StrategyHasher() = default;

  void Reset(const Strategy& strategy);

  // Key of the tracked strategy.
  uint64_t Key() const { return FinalizeStrategyKey(total_); }
  // Key of the tracked strategy with options[index] replaced by `option` (not applied).
  uint64_t KeyWith(size_t index, const CompressionOption& option) const;
  // Applies a substitution so subsequent keys reflect it.
  void Set(size_t index, const CompressionOption& option);

  // Raw additive total (pre-finalization), for callers composing their own deltas
  // (e.g. the offload odometer's per-group prefix sums).
  uint64_t Total() const { return total_; }

 private:
  std::vector<uint64_t> mixed_;  // MixIndexedOption(i, options[i])
  uint64_t total_ = 0;           // wrapping sum of mixed_
};

struct EvalCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// Thread-safe fingerprint -> F(S) LRU. Parallel scoring workers hit this concurrently;
// a single mutex suffices because a lookup is ~two orders of magnitude cheaper than the
// timeline simulation it saves.
class EvaluationCache {
 public:
  explicit EvaluationCache(size_t capacity) : lru_(capacity) {}

  EvaluationCache(const EvaluationCache&) = delete;
  EvaluationCache& operator=(const EvaluationCache&) = delete;

  // On a hit stores F(S) in *value and returns true. Counts hit/miss either way.
  bool Lookup(uint64_t key, double* value);

  void Insert(uint64_t key, double value);

  EvalCacheStats stats() const;
  size_t size() const;
  size_t capacity() const;

 private:
  mutable std::mutex mu_;
  LruCache<uint64_t, double> lru_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace espresso

#endif  // SRC_CORE_EVAL_CACHE_H_

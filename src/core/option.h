// Compression options: paths through the decision-tree abstraction (§4.2).
//
// An option is the ordered list of action tasks (Table 3) that synchronizes one tensor:
// compression/decompression operations (each with a device choice, Dimension 2) and
// communication operations (each with a collective routine and a phase — flat, or the
// intra-first / inter / intra-second phases of hierarchical communication; Dimensions 3
// and 4). The timeline engine prices each op from the op's domain scope and the cost
// models; the decision-tree generator (src/core/decision_tree.h) enumerates every valid
// option.
#ifndef SRC_CORE_OPTION_H_
#define SRC_CORE_OPTION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/costmodel/compression_cost.h"

namespace espresso {

enum class ActionTask {
  kCompress,
  kDecompress,
  kComm,
};

enum class Routine {
  kNone,
  kAllreduce,
  kReduceScatter,
  kAllgather,
  kReduce,
  kBroadcast,
  kAlltoall,
  kGather,
};

const char* RoutineName(Routine routine);

// Which stage of the synchronization pipeline an op belongs to. Flat communication has
// a single phase; hierarchical communication has three (Figure 1).
enum class CommPhase {
  kFlat,
  kIntraFirst,
  kInter,
  kIntraSecond,
};

const char* CommPhaseName(CommPhase phase);

struct Op {
  ActionTask task = ActionTask::kComm;
  CommPhase phase = CommPhase::kFlat;
  Routine routine = Routine::kNone;   // comm ops only
  Device device = Device::kGpu;       // compress/decompress ops only
  // Fraction of the tensor's elements forming this op's domain (1 for full-tensor ops,
  // 1/g for a machine shard, 1/(g*M) for an inter-divisible sub-shard, ...).
  double domain_fraction = 1.0;
  // Decompress ops: number of payloads aggregated in this invocation (e.g. M after an
  // inter-machine allgather of compressed tensors).
  size_t fan_in = 1;
  // Tensor-relative fraction covered by one payload unit: for comm ops the per-rank
  // contribution (allgather/alltoall/gather sizing); for decompress ops the coverage of
  // each of the fan_in payloads.
  double payload_fraction = 1.0;
  // Comm ops: whether the payload on the wire is compressed.
  bool compressed = false;
  // Compress/decompress ops in rooted (parameter-server style) pipelines process the
  // machine's full tensor once and may recruit the whole host CPU rather than one
  // GPU's share; the evaluator scales CPU throughput up (with partial efficiency) for
  // such ops.
  bool machine_level = false;

  bool operator==(const Op&) const = default;
};

struct CompressionOption {
  std::vector<Op> ops;
  bool flat = false;     // uses flat (single-phase) communication
  std::string label;     // short human-readable id, e.g. "hier[rs|comp+ag_c+dec|ag]"

  // Dimension 1: does this option compress at all?
  bool Compressed() const;
  size_t CompressOpCount() const;
  size_t DecompressOpCount() const;
  // Device-choice slots (each compress/decompress op picks GPU or CPU independently).
  size_t DeviceSlots() const { return CompressOpCount() + DecompressOpCount(); }

  // Returns a copy with every compress/decompress op assigned to `device`
  // (Algorithm 2 offloads a tensor's compression work to the CPU as a unit).
  CompressionOption WithDevice(Device device) const;

  // True if any compress/decompress op runs on `device`.
  bool UsesDevice(Device device) const;

  std::string Describe() const;

  bool operator==(const CompressionOption& other) const { return ops == other.ops; }
};

}  // namespace espresso

#endif  // SRC_CORE_OPTION_H_

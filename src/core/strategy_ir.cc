#include "src/core/strategy_ir.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <sstream>

#include "src/core/eval_cache.h"
#include "src/core/strategy_io.h"
#include "src/util/atomic_file.h"
#include "src/util/hash.h"
#include "src/util/json_reader.h"
#include "src/util/json_writer.h"

namespace espresso {

// Digests travel as fixed-width lowercase hex strings, not JSON numbers: a double
// cannot represent every uint64_t, and a digest that loses bits cannot verify.
std::string DigestHex(uint64_t value) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = "0123456789abcdef"[value & 0xF];
    value >>= 4;
  }
  return out;
}

namespace {

// Hostile-input guards, mirroring src/core/strategy_io.cc: a tampered header must
// produce a diagnostic, not a multi-gigabyte resize.
constexpr size_t kMaxIrTensors = 1'000'000;
constexpr size_t kMaxIrOpsPerTensor = 1'000;
constexpr uint64_t kMaxIrFanIn = 1'000'000;

bool ValidIrFraction(double f) { return std::isfinite(f) && f > 0.0 && f <= 1.0; }

bool ParseDigestHex(std::string_view text, uint64_t* out) {
  if (text.size() != 16) {
    return false;
  }
  uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

uint64_t HashLink(uint64_t h, const LinkSpec& link) {
  h = HashString(h, link.name);
  h = HashDouble(h, link.latency_s);
  return HashDouble(h, link.bytes_per_second);
}

uint64_t HashDeviceCost(uint64_t h, const DeviceCostSpec& spec) {
  h = HashDouble(h, spec.launch_overhead_s);
  h = HashDouble(h, spec.compress_bytes_per_s);
  return HashDouble(h, spec.decompress_bytes_per_s);
}

// --- canonical writer -----------------------------------------------------------

void AppendEscaped(std::string& out, std::string_view s) {
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
}

std::string Quoted(std::string_view s) {
  std::string out = "\"";
  AppendEscaped(out, s);
  out += '"';
  return out;
}

void WriteOpJson(std::ostream& os, const Op& op) {
  os << "{\"task\": " << Quoted(ActionTaskToken(op.task));
  if (op.task == ActionTask::kComm) {
    os << ", \"routine\": " << Quoted(RoutineName(op.routine));
  } else {
    os << ", \"device\": " << Quoted(DeviceToken(op.device));
  }
  os << ", \"phase\": " << Quoted(CommPhaseName(op.phase))
     << ", \"domain\": " << FormatDouble(op.domain_fraction)
     << ", \"payload\": " << FormatDouble(op.payload_fraction)
     << ", \"fan_in\": " << op.fan_in
     << ", \"compressed\": " << (op.compressed ? "true" : "false")
     << ", \"machine_level\": " << (op.machine_level ? "true" : "false") << "}";
}

// --- strict parser --------------------------------------------------------------

std::string LinePrefix(int line) { return "line " + std::to_string(line) + ": "; }

// Every helper fills *error with a "line N: ..." diagnostic on failure.
const JsonValue* ExpectMember(const JsonValue& obj, std::string_view key,
                              std::string* error) {
  const JsonValue* value = obj.Find(key);
  if (value == nullptr) {
    *error = LinePrefix(obj.line) + "missing required field '" + std::string(key) + "'";
  }
  return value;
}

// Rejects both unknown and duplicated keys (the JSON layer keeps duplicates).
bool CheckKeys(const JsonValue& obj, std::initializer_list<std::string_view> allowed,
               std::string* error) {
  for (size_t i = 0; i < obj.members.size(); ++i) {
    const auto& [key, value] = obj.members[i];
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      *error = LinePrefix(value.line) + "unknown field '" + key + "'";
      return false;
    }
    for (size_t j = 0; j < i; ++j) {
      if (obj.members[j].first == key) {
        *error = LinePrefix(value.line) + "duplicated field '" + key + "'";
        return false;
      }
    }
  }
  return true;
}

bool ExpectString(const JsonValue& obj, std::string_view key, std::string* out,
                  std::string* error) {
  const JsonValue* value = ExpectMember(obj, key, error);
  if (value == nullptr) {
    return false;
  }
  if (!value->IsString()) {
    *error = LinePrefix(value->line) + "'" + std::string(key) + "' must be a string";
    return false;
  }
  *out = value->text;
  return true;
}

bool ExpectBool(const JsonValue& obj, std::string_view key, bool* out,
                std::string* error) {
  const JsonValue* value = ExpectMember(obj, key, error);
  if (value == nullptr) {
    return false;
  }
  if (!value->IsBool()) {
    *error = LinePrefix(value->line) + "'" + std::string(key) + "' must be true or false";
    return false;
  }
  *out = value->bool_value;
  return true;
}

bool ExpectUint(const JsonValue& obj, std::string_view key, uint64_t min, uint64_t max,
                uint64_t* out, std::string* error) {
  const JsonValue* value = ExpectMember(obj, key, error);
  if (value == nullptr) {
    return false;
  }
  uint64_t parsed = 0;
  if (!value->AsUint64(&parsed) || parsed < min || parsed > max) {
    *error = LinePrefix(value->line) + "'" + std::string(key) +
             "' must be an integer in [" + std::to_string(min) + ", " +
             std::to_string(max) + "]";
    return false;
  }
  *out = parsed;
  return true;
}

bool ExpectFraction(const JsonValue& obj, std::string_view key, double* out,
                    std::string* error) {
  const JsonValue* value = ExpectMember(obj, key, error);
  if (value == nullptr) {
    return false;
  }
  if (!value->IsNumber() || !ValidIrFraction(value->number)) {
    *error = LinePrefix(value->line) + "'" + std::string(key) +
             "' must be a number in (0, 1]";
    return false;
  }
  *out = value->number;
  return true;
}

bool ExpectDigest(const JsonValue& obj, std::string_view key, uint64_t* out,
                  std::string* error) {
  const JsonValue* value = ExpectMember(obj, key, error);
  if (value == nullptr) {
    return false;
  }
  if (!value->IsString() || !ParseDigestHex(value->text, out)) {
    *error = LinePrefix(value->line) + "'" + std::string(key) +
             "' must be a 16-digit lowercase hex digest";
    return false;
  }
  return true;
}

bool ParseOpJson(const JsonValue& node, Op* op, std::string* error) {
  if (!node.IsObject()) {
    *error = LinePrefix(node.line) + "op must be an object";
    return false;
  }
  std::string task_token;
  if (!ExpectString(node, "task", &task_token, error)) {
    return false;
  }
  const auto task = ParseActionTaskToken(task_token);
  if (!task) {
    *error = LinePrefix(node.line) + "unknown op task '" + task_token + "'";
    return false;
  }
  op->task = *task;
  if (op->task == ActionTask::kComm) {
    if (!CheckKeys(node,
                   {"task", "routine", "phase", "domain", "payload", "fan_in",
                    "compressed", "machine_level"},
                   error)) {
      return false;
    }
    std::string routine_token;
    if (!ExpectString(node, "routine", &routine_token, error)) {
      return false;
    }
    const auto routine = ParseRoutineToken(routine_token);
    if (!routine) {
      *error = LinePrefix(node.line) + "unknown routine '" + routine_token + "'";
      return false;
    }
    op->routine = *routine;
  } else {
    if (!CheckKeys(node,
                   {"task", "device", "phase", "domain", "payload", "fan_in",
                    "compressed", "machine_level"},
                   error)) {
      return false;
    }
    std::string device_token;
    if (!ExpectString(node, "device", &device_token, error)) {
      return false;
    }
    const auto device = ParseDeviceToken(device_token);
    if (!device) {
      *error = LinePrefix(node.line) + "unknown device '" + device_token + "'";
      return false;
    }
    op->device = *device;
  }
  std::string phase_token;
  if (!ExpectString(node, "phase", &phase_token, error)) {
    return false;
  }
  const auto phase = ParseCommPhaseToken(phase_token);
  if (!phase) {
    *error = LinePrefix(node.line) + "unknown phase '" + phase_token + "'";
    return false;
  }
  op->phase = *phase;
  uint64_t fan_in = 0;
  if (!ExpectFraction(node, "domain", &op->domain_fraction, error) ||
      !ExpectFraction(node, "payload", &op->payload_fraction, error) ||
      !ExpectUint(node, "fan_in", 1, kMaxIrFanIn, &fan_in, error) ||
      !ExpectBool(node, "compressed", &op->compressed, error) ||
      !ExpectBool(node, "machine_level", &op->machine_level, error)) {
    return false;
  }
  op->fan_in = static_cast<size_t>(fan_in);
  return true;
}

bool ParseTensorJson(const JsonValue& node, size_t expected_index,
                     CompressionOption* option, std::string* error) {
  if (!node.IsObject()) {
    *error = LinePrefix(node.line) + "tensor record must be an object";
    return false;
  }
  if (!CheckKeys(node, {"index", "label", "flat", "ops"}, error)) {
    return false;
  }
  uint64_t index = 0;
  if (!ExpectUint(node, "index", 0, kMaxIrTensors - 1, &index, error)) {
    return false;
  }
  if (index != expected_index) {
    *error = LinePrefix(node.line) + "tensor record " + std::to_string(expected_index) +
             " has index " + std::to_string(index) + " (records must be dense and ordered)";
    return false;
  }
  if (!ExpectString(node, "label", &option->label, error) ||
      !ExpectBool(node, "flat", &option->flat, error)) {
    return false;
  }
  const JsonValue* ops = ExpectMember(node, "ops", error);
  if (ops == nullptr) {
    return false;
  }
  if (!ops->IsArray() || ops->items.empty()) {
    *error = LinePrefix(ops->line) + "'ops' must be a non-empty array";
    return false;
  }
  if (ops->items.size() > kMaxIrOpsPerTensor) {
    *error = LinePrefix(ops->line) + "'ops' has more than " +
             std::to_string(kMaxIrOpsPerTensor) + " entries";
    return false;
  }
  option->ops.reserve(ops->items.size());
  for (const JsonValue& op_node : ops->items) {
    Op op;
    if (!ParseOpJson(op_node, &op, error)) {
      return false;
    }
    option->ops.push_back(op);
  }
  return true;
}

}  // namespace

uint64_t ModelDigest(const ModelProfile& model) {
  uint64_t h = HashString(0, "espresso.model");
  h = HashString(h, model.name);
  h = HashDouble(h, model.forward_time_s);
  h = HashDouble(h, model.optimizer_time_s);
  h = HashCombine(h, model.batch_size);
  h = HashString(h, model.throughput_unit);
  h = HashCombine(h, model.tensors.size());
  for (const TensorSpec& tensor : model.tensors) {
    h = HashString(h, tensor.name);
    h = HashCombine(h, tensor.elements);
    h = HashDouble(h, tensor.backward_time_s);
  }
  return h;
}

uint64_t ClusterDigest(const ClusterSpec& cluster) {
  uint64_t h = HashString(0, "espresso.cluster");
  h = HashCombine(h, cluster.machines);
  h = HashCombine(h, cluster.gpus_per_machine);
  h = HashLink(h, cluster.intra);
  h = HashLink(h, cluster.inter);
  h = HashDeviceCost(h, cluster.gpu_compression);
  h = HashDeviceCost(h, cluster.cpu_compression);
  h = HashCombine(h, cluster.cpu_workers_per_gpu);
  return HashCombine(h, cluster.host_copy_contends_intra ? 1 : 0);
}

uint64_t CompressionDigest(const CompressorConfig& config) {
  uint64_t h = HashString(0, "espresso.compression");
  h = HashString(h, config.algorithm);
  h = HashDouble(h, config.ratio);
  h = HashCombine(h, static_cast<uint64_t>(config.bits));
  return HashDouble(h, config.threshold);
}

uint64_t StrategyIR::ContentDigest() const {
  uint64_t h = HashString(0, "espresso.strategy-ir");
  h = HashCombine(h, static_cast<uint64_t>(schema_version));
  h = HashCombine(h, model_digest);
  h = HashCombine(h, cluster_digest);
  h = HashCombine(h, compression_digest);
  h = HashDouble(h, fs_score);
  h = HashString(h, provenance.origin);
  h = HashString(h, provenance.selector);
  h = HashCombine(h, provenance.iteration);
  h = HashDouble(h, provenance.drift);
  h = HashCombine(h, strategy.options.size());
  for (size_t t = 0; t < strategy.options.size(); ++t) {
    const CompressionOption& option = strategy.options[t];
    h = HashCombine(h, t);
    h = HashCombine(h, option.flat ? 1 : 0);
    h = HashString(h, option.label);
    h = HashCombine(h, option.ops.size());
    for (const Op& op : option.ops) {
      h = HashCombine(h, static_cast<uint64_t>(op.task));
      h = HashCombine(h, static_cast<uint64_t>(op.phase));
      // Only the field the op's task gives meaning to is hashed (and serialized):
      // comm ops carry a routine, compute ops carry a device. Hashing the inactive
      // field would make the digest depend on bits the writer never emits, so a
      // freshly compiled IR could fail its own round-trip.
      if (op.task == ActionTask::kComm) {
        h = HashCombine(h, static_cast<uint64_t>(op.routine));
      } else {
        h = HashCombine(h, static_cast<uint64_t>(op.device));
      }
      h = HashDouble(h, op.domain_fraction);
      h = HashDouble(h, op.payload_fraction);
      h = HashCombine(h, op.fan_in);
      h = HashCombine(h, op.compressed ? 1 : 0);
      h = HashCombine(h, op.machine_level ? 1 : 0);
    }
  }
  return h;
}

StrategyIR CompileStrategyIR(const Strategy& strategy, double fs_score,
                             const ModelProfile& model, const ClusterSpec& cluster,
                             const CompressorConfig& compressor,
                             StrategyProvenance provenance) {
  StrategyIR ir;
  ir.schema_version = kStrategyIrSchemaVersion;
  ir.model_digest = ModelDigest(model);
  ir.cluster_digest = ClusterDigest(cluster);
  ir.compression_digest = CompressionDigest(compressor);
  ir.fs_score = fs_score;
  ir.provenance = std::move(provenance);
  ir.strategy = strategy;
  return ir;
}

void WriteStrategyIR(std::ostream& os, const StrategyIR& ir) {
  os << "{\n";
  os << "  \"espresso_strategy_ir\": " << ir.schema_version << ",\n";
  os << "  \"payload_digest\": " << Quoted(DigestHex(ir.ContentDigest())) << ",\n";
  os << "  \"digests\": {\n";
  os << "    \"model\": " << Quoted(DigestHex(ir.model_digest)) << ",\n";
  os << "    \"cluster\": " << Quoted(DigestHex(ir.cluster_digest)) << ",\n";
  os << "    \"compression\": " << Quoted(DigestHex(ir.compression_digest)) << "\n";
  os << "  },\n";
  os << "  \"provenance\": {\n";
  os << "    \"origin\": " << Quoted(ir.provenance.origin) << ",\n";
  os << "    \"selector\": " << Quoted(ir.provenance.selector) << ",\n";
  os << "    \"iteration\": " << ir.provenance.iteration << ",\n";
  os << "    \"drift\": " << FormatDouble(ir.provenance.drift) << "\n";
  os << "  },\n";
  os << "  \"fs_score\": " << FormatDouble(ir.fs_score) << ",\n";
  os << "  \"strategy_fingerprint\": " << Quoted(DigestHex(StrategyFingerprint(ir.strategy)))
     << ",\n";
  os << "  \"tensors\": [";
  for (size_t t = 0; t < ir.strategy.options.size(); ++t) {
    const CompressionOption& option = ir.strategy.options[t];
    os << (t == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"index\": " << t << ",\n";
    os << "      \"label\": " << Quoted(option.label) << ",\n";
    os << "      \"flat\": " << (option.flat ? "true" : "false") << ",\n";
    os << "      \"ops\": [";
    for (size_t i = 0; i < option.ops.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n") << "        ";
      WriteOpJson(os, option.ops[i]);
    }
    os << "\n      ]\n";
    os << "    }";
  }
  os << (ir.strategy.options.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
}

std::string StrategyIRToString(const StrategyIR& ir) {
  std::ostringstream os;
  WriteStrategyIR(os, ir);
  return os.str();
}

StrategyIRParseResult ParseStrategyIR(std::string_view text,
                                      const StrategyIRParseOptions& options) {
  StrategyIRParseResult result;
  JsonParseResult parsed = ParseJson(text);
  if (!parsed.ok) {
    result.error = parsed.error;
    return result;
  }
  const JsonValue& root = parsed.value;
  std::string* error = &result.error;
  if (!root.IsObject()) {
    *error = LinePrefix(root.line) + "strategy IR must be a JSON object";
    return result;
  }
  // Schema version gates everything else: a future version may rename fields, so the
  // unknown-key check only applies once the version is known to be ours.
  const JsonValue* version = root.Find("espresso_strategy_ir");
  if (version == nullptr) {
    *error = LinePrefix(root.line) +
             "not a strategy IR document (missing 'espresso_strategy_ir')";
    return result;
  }
  int64_t schema_version = 0;
  if (!version->AsInt64(&schema_version)) {
    *error = LinePrefix(version->line) + "'espresso_strategy_ir' must be an integer";
    return result;
  }
  if (schema_version != kStrategyIrSchemaVersion) {
    *error = LinePrefix(version->line) + "unsupported schema version " +
             std::to_string(schema_version) + " (this build reads version " +
             std::to_string(kStrategyIrSchemaVersion) + ")";
    return result;
  }
  result.ir.schema_version = schema_version;
  if (!CheckKeys(root,
                 {"espresso_strategy_ir", "payload_digest", "digests", "provenance",
                  "fs_score", "strategy_fingerprint", "tensors"},
                 error)) {
    return result;
  }

  uint64_t payload_digest = 0;
  const JsonValue* payload_node = root.Find("payload_digest");
  if (!ExpectDigest(root, "payload_digest", &payload_digest, error)) {
    return result;
  }

  const JsonValue* digests = ExpectMember(root, "digests", error);
  if (digests == nullptr) {
    return result;
  }
  if (!digests->IsObject()) {
    *error = LinePrefix(digests->line) + "'digests' must be an object";
    return result;
  }
  if (!CheckKeys(*digests, {"model", "cluster", "compression"}, error) ||
      !ExpectDigest(*digests, "model", &result.ir.model_digest, error) ||
      !ExpectDigest(*digests, "cluster", &result.ir.cluster_digest, error) ||
      !ExpectDigest(*digests, "compression", &result.ir.compression_digest, error)) {
    return result;
  }

  const JsonValue* provenance = ExpectMember(root, "provenance", error);
  if (provenance == nullptr) {
    return result;
  }
  if (!provenance->IsObject()) {
    *error = LinePrefix(provenance->line) + "'provenance' must be an object";
    return result;
  }
  if (!CheckKeys(*provenance, {"origin", "selector", "iteration", "drift"}, error) ||
      !ExpectString(*provenance, "origin", &result.ir.provenance.origin, error) ||
      !ExpectString(*provenance, "selector", &result.ir.provenance.selector, error) ||
      !ExpectUint(*provenance, "iteration", 0, UINT64_MAX, &result.ir.provenance.iteration,
                  error)) {
    return result;
  }
  const JsonValue* drift = ExpectMember(*provenance, "drift", error);
  if (drift == nullptr) {
    return result;
  }
  if (!drift->IsNumber() || !std::isfinite(drift->number) || drift->number < 0.0) {
    *error = LinePrefix(drift->line) + "'drift' must be a finite number >= 0";
    return result;
  }
  result.ir.provenance.drift = drift->number;

  const JsonValue* fs_score = ExpectMember(root, "fs_score", error);
  if (fs_score == nullptr) {
    return result;
  }
  if (!fs_score->IsNumber() || !std::isfinite(fs_score->number) ||
      fs_score->number < 0.0) {
    *error = LinePrefix(fs_score->line) + "'fs_score' must be a finite number >= 0";
    return result;
  }
  result.ir.fs_score = fs_score->number;

  uint64_t fingerprint = 0;
  const JsonValue* fingerprint_node = root.Find("strategy_fingerprint");
  if (!ExpectDigest(root, "strategy_fingerprint", &fingerprint, error)) {
    return result;
  }

  const JsonValue* tensors = ExpectMember(root, "tensors", error);
  if (tensors == nullptr) {
    return result;
  }
  if (!tensors->IsArray()) {
    *error = LinePrefix(tensors->line) + "'tensors' must be an array";
    return result;
  }
  if (tensors->items.size() > kMaxIrTensors) {
    *error = LinePrefix(tensors->line) + "implausible tensor count " +
             std::to_string(tensors->items.size()) + " (limit " +
             std::to_string(kMaxIrTensors) + ")";
    return result;
  }
  result.ir.strategy.options.reserve(tensors->items.size());
  for (size_t t = 0; t < tensors->items.size(); ++t) {
    CompressionOption option;
    if (!ParseTensorJson(tensors->items[t], t, &option, error)) {
      return result;
    }
    result.ir.strategy.options.push_back(std::move(option));
  }

  // Derived-field verification: both values are recomputed from the parsed content,
  // so any in-flight corruption the structural checks missed is caught here.
  // The --force-digest path (verify_payload_digest == false) skips both checks: a
  // hand-edited IR invalidates the fingerprint and the payload digest together, and
  // the caller explicitly accepted that risk. Structural strictness was not relaxed.
  if (options.verify_payload_digest) {
    const uint64_t actual_fingerprint = StrategyFingerprint(result.ir.strategy);
    if (fingerprint != actual_fingerprint) {
      *error = LinePrefix(fingerprint_node->line) +
               "strategy fingerprint mismatch: file says " + DigestHex(fingerprint) +
               ", strategy hashes to " + DigestHex(actual_fingerprint);
      return result;
    }
    const uint64_t actual_digest = result.ir.ContentDigest();
    if (payload_digest != actual_digest) {
      *error = LinePrefix(payload_node->line) + "payload digest mismatch: file says " +
               DigestHex(payload_digest) + ", content hashes to " +
               DigestHex(actual_digest) + " (file corrupted or tampered)";
      return result;
    }
  }
  result.ok = true;
  return result;
}

bool WriteStrategyIRFile(const std::string& path, const StrategyIR& ir,
                         std::string* error) {
  return WriteFileAtomic(path, StrategyIRToString(ir), error);
}

StrategyIRParseResult ReadStrategyIRFile(const std::string& path,
                                         const StrategyIRParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    StrategyIRParseResult result;
    result.error = "cannot open " + path;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  StrategyIRParseResult result = ParseStrategyIR(buffer.str(), options);
  if (!result.ok) {
    result.error = path + ": " + result.error;
  }
  return result;
}

}  // namespace espresso

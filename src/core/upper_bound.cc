#include "src/core/upper_bound.h"

#include "src/core/decision_tree.h"
#include "src/core/timeline.h"

namespace espresso {

UpperBoundResult ComputeUpperBound(const ModelProfile& model, const ClusterSpec& cluster,
                                   const Compressor& compressor) {
  const TreeConfig config{cluster.machines, cluster.gpus_per_machine,
                          compressor.SupportsCompressedAggregation()};
  TimelineEvaluator evaluator(model, cluster, compressor, /*zero_compression_cost=*/true);
  const std::vector<CompressionOption> candidates = CandidateOptions(config);

  // With compression free, each tensor's best option can be chosen greedily against the
  // evolving strategy; repeated sweeps to a fixpoint remove the order dependence of a
  // single pass (early choices can look different once later tensors compress too).
  Strategy strategy =
      UniformStrategy(model.tensors.size(), DefaultUncompressedOption(config));
  double current = evaluator.IterationTime(strategy);
  for (int pass = 0; pass < 4; ++pass) {
    bool improved = false;
    for (size_t i = 0; i < model.tensors.size(); ++i) {
      double best = current;
      CompressionOption best_option = strategy.options[i];
      const CompressionOption saved = strategy.options[i];
      for (const auto& candidate : candidates) {
        strategy.options[i] = candidate;
        const double t = evaluator.IterationTime(strategy);
        if (t < best) {
          best = t;
          best_option = candidate;
        }
      }
      strategy.options[i] = best_option;
      if (best < current) {
        current = best;
        if (!(best_option == saved)) {
          improved = true;
        }
      }
    }
    if (!improved) {
      break;
    }
  }
  UpperBoundResult result;
  result.iteration_time = current;
  result.strategy = std::move(strategy);
  return result;
}

}  // namespace espresso

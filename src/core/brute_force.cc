#include "src/core/brute_force.h"

#include <cmath>

#include "src/util/logging.h"

namespace espresso {

std::optional<BruteForceResult> BruteForceStrategy(
    const TimelineEvaluator& evaluator, const std::vector<CompressionOption>& candidates,
    size_t max_evaluations) {
  const size_t n = evaluator.model().tensors.size();
  const size_t c = candidates.size();
  ESP_CHECK_GT(c, 0u);
  double space = std::pow(static_cast<double>(c), static_cast<double>(n));
  if (space > static_cast<double>(max_evaluations)) {
    return std::nullopt;
  }

  BruteForceResult result;
  std::vector<size_t> choice(n, 0);
  Strategy strategy = UniformStrategy(n, candidates[0]);
  result.iteration_time = evaluator.IterationTime(strategy);
  result.strategy = strategy;
  result.evaluations = 1;
  for (;;) {
    // Advance the odometer.
    size_t i = 0;
    while (i < n) {
      if (++choice[i] < c) {
        strategy.options[i] = candidates[choice[i]];
        break;
      }
      choice[i] = 0;
      strategy.options[i] = candidates[0];
      ++i;
    }
    if (i == n) {
      break;
    }
    const double t = evaluator.IterationTime(strategy);
    ++result.evaluations;
    if (t < result.iteration_time) {
      result.iteration_time = t;
      result.strategy = strategy;
    }
  }
  return result;
}

std::optional<BruteForceResult> BruteForceOffload(const TimelineEvaluator& evaluator,
                                                  const Strategy& gpu_strategy,
                                                  size_t max_evaluations) {
  std::vector<size_t> compressed;
  for (size_t i = 0; i < gpu_strategy.options.size(); ++i) {
    if (gpu_strategy.options[i].Compressed() &&
        gpu_strategy.options[i].UsesDevice(Device::kGpu)) {
      compressed.push_back(i);
    }
  }
  const size_t k = compressed.size();
  if (k >= 8 * sizeof(size_t) - 1 ||
      (size_t{1} << k) > max_evaluations) {
    return std::nullopt;
  }

  BruteForceResult result;
  result.strategy = gpu_strategy;
  result.iteration_time = evaluator.IterationTime(gpu_strategy);
  result.evaluations = 1;
  for (size_t mask = 1; mask < (size_t{1} << k); ++mask) {
    Strategy s = gpu_strategy;
    for (size_t b = 0; b < k; ++b) {
      if (mask & (size_t{1} << b)) {
        s.options[compressed[b]] = s.options[compressed[b]].WithDevice(Device::kCpu);
      }
    }
    const double t = evaluator.IterationTime(s);
    ++result.evaluations;
    if (t < result.iteration_time) {
      result.iteration_time = t;
      result.strategy = std::move(s);
    }
  }
  return result;
}

double EstimateBruteForceSeconds(double seconds_per_evaluation, size_t candidate_count,
                                 size_t tensor_count, double cap_seconds) {
  const double log_space =
      static_cast<double>(tensor_count) * std::log10(static_cast<double>(candidate_count));
  if (log_space > 15.0) {  // 10^15 evaluations: beyond any cap worth computing
    return cap_seconds;
  }
  const double space = std::pow(10.0, log_space);
  return std::min(cap_seconds, seconds_per_evaluation * space);
}

}  // namespace espresso

#include "src/core/option_mutations.h"

#include <sstream>

namespace espresso {

namespace {

constexpr CommPhase kAllPhases[] = {CommPhase::kFlat, CommPhase::kIntraFirst,
                                    CommPhase::kInter, CommPhase::kIntraSecond};
constexpr Routine kAllRoutines[] = {Routine::kNone,      Routine::kAllreduce,
                                    Routine::kReduceScatter, Routine::kAllgather,
                                    Routine::kReduce,    Routine::kBroadcast,
                                    Routine::kAlltoall,  Routine::kGather};

const char* TaskName(ActionTask task) {
  switch (task) {
    case ActionTask::kCompress:
      return "compress";
    case ActionTask::kDecompress:
      return "decompress";
    case ActionTask::kComm:
      return "comm";
  }
  return "?";
}

std::string EditLabel(size_t k, const std::string& what) {
  std::ostringstream os;
  os << "op " << k << ": " << what;
  return os.str();
}

void Push(std::vector<OptionMutation>* out, const CompressionOption& base,
          CompressionOption mutant, std::string edit) {
  mutant.label = base.label + "+mut:" + edit;
  out->push_back({std::move(mutant), std::move(edit)});
}

}  // namespace

std::vector<OptionMutation> OneEditMutations(const CompressionOption& option) {
  std::vector<OptionMutation> mutants;
  for (size_t k = 0; k < option.ops.size(); ++k) {
    const Op& op = option.ops[k];

    // Phase flips.
    for (CommPhase phase : kAllPhases) {
      if (phase == op.phase) {
        continue;
      }
      CompressionOption mutant = option;
      mutant.ops[k].phase = phase;
      Push(&mutants, option,
           std::move(mutant),
           EditLabel(k, std::string("phase ") + CommPhaseName(op.phase) + "->" +
                            CommPhaseName(phase)));
    }

    if (op.task == ActionTask::kComm) {
      // Routine flips (topology/scheme dimension).
      for (Routine routine : kAllRoutines) {
        if (routine == op.routine) {
          continue;
        }
        CompressionOption mutant = option;
        mutant.ops[k].routine = routine;
        Push(&mutants, option, std::move(mutant),
             EditLabel(k, std::string("routine ") + RoutineName(op.routine) + "->" +
                              RoutineName(routine)));
      }
      // Wire-compression flag flip.
      {
        CompressionOption mutant = option;
        mutant.ops[k].compressed = !op.compressed;
        Push(&mutants, option, std::move(mutant),
             EditLabel(k, op.compressed ? "wire flag compressed->raw"
                                        : "wire flag raw->compressed"));
      }
    } else {
      // Device flip (Dimension 2); legal by construction, so the completeness pass
      // must find the mutant inside the space modulo the device projection.
      {
        CompressionOption mutant = option;
        mutant.ops[k].device = op.device == Device::kGpu ? Device::kCpu : Device::kGpu;
        Push(&mutants, option, std::move(mutant),
             EditLabel(k, op.device == Device::kGpu ? "device gpu->cpu" : "device cpu->gpu"));
      }
      // Duplicating a compression op breaks the Rule-1 state machine.
      {
        CompressionOption mutant = option;
        mutant.ops.insert(mutant.ops.begin() + static_cast<std::ptrdiff_t>(k) + 1,
                          option.ops[k]);
        Push(&mutants, option, std::move(mutant),
             EditLabel(k, std::string("duplicate ") + TaskName(op.task)));
      }
    }

    // Task flips, keeping every other field: a comm op that loses its routine, a
    // compute op that gains one, and compress<->decompress confusions.
    for (ActionTask task : {ActionTask::kCompress, ActionTask::kDecompress,
                            ActionTask::kComm}) {
      if (task == op.task) {
        continue;
      }
      CompressionOption mutant = option;
      mutant.ops[k].task = task;
      Push(&mutants, option, std::move(mutant),
           EditLabel(k, std::string("task ") + TaskName(op.task) + "->" + TaskName(task)));
    }

    // Definitively-illegal numeric zeroings (the fan_in=0 class of the pruning tests).
    {
      CompressionOption mutant = option;
      mutant.ops[k].fan_in = 0;
      Push(&mutants, option, std::move(mutant), EditLabel(k, "fan_in -> 0"));
    }
    {
      CompressionOption mutant = option;
      mutant.ops[k].domain_fraction = 0.0;
      Push(&mutants, option, std::move(mutant), EditLabel(k, "domain_fraction -> 0"));
    }
    {
      CompressionOption mutant = option;
      mutant.ops[k].payload_fraction = 0.0;
      Push(&mutants, option, std::move(mutant), EditLabel(k, "payload_fraction -> 0"));
    }

    // Deletion (dropped compress/decompress/comm stage).
    {
      CompressionOption mutant = option;
      mutant.ops.erase(mutant.ops.begin() + static_cast<std::ptrdiff_t>(k));
      Push(&mutants, option, std::move(mutant),
           EditLabel(k, std::string("delete ") + TaskName(op.task)));
    }
  }

  // Option-level flat flag flip.
  {
    CompressionOption mutant = option;
    mutant.flat = !option.flat;
    Push(&mutants, option, std::move(mutant),
         option.flat ? "flat flag -> hierarchical" : "flat flag -> flat");
  }
  return mutants;
}

CompressionOption CanonicalOption(const CompressionOption& option) {
  CompressionOption canonical = option;
  for (size_t k = 0; k < canonical.ops.size(); ++k) {
    Op& op = canonical.ops[k];
    if (op.task == ActionTask::kComm) {
      continue;
    }
    op.device = Device::kGpu;
    // Relabel with the nearest following comm op's phase; a trailing compute op takes
    // the nearest preceding comm op's phase. Options with no comm op keep their labels
    // (they are illegal anyway — strategy.no-comm).
    bool relabeled = false;
    for (size_t j = k + 1; j < canonical.ops.size(); ++j) {
      if (canonical.ops[j].task == ActionTask::kComm) {
        op.phase = canonical.ops[j].phase;
        relabeled = true;
        break;
      }
    }
    if (!relabeled) {
      for (size_t j = k; j-- > 0;) {
        if (canonical.ops[j].task == ActionTask::kComm) {
          op.phase = canonical.ops[j].phase;
          break;
        }
      }
    }
  }
  return canonical;
}

}  // namespace espresso

// A compression strategy S = {c_j}: one compression option per tensor of a model
// (§4.2.2). The timeline engine evaluates F(S); the decision algorithm searches over S.
#ifndef SRC_CORE_STRATEGY_H_
#define SRC_CORE_STRATEGY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/core/option.h"

namespace espresso {

struct Strategy {
  std::vector<CompressionOption> options;  // index-aligned with ModelProfile::tensors

  size_t size() const { return options.size(); }
  size_t CompressedTensorCount() const;
  size_t TensorsOnDevice(Device device) const;  // tensors with any op on `device`
  std::string Summary() const;
};

// Every tensor uses the same option.
Strategy UniformStrategy(size_t tensor_count, const CompressionOption& option);

}  // namespace espresso

#endif  // SRC_CORE_STRATEGY_H_

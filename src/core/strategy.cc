#include "src/core/strategy.h"

#include <sstream>

namespace espresso {

size_t Strategy::CompressedTensorCount() const {
  size_t count = 0;
  for (const auto& option : options) {
    if (option.Compressed()) {
      ++count;
    }
  }
  return count;
}

size_t Strategy::TensorsOnDevice(Device device) const {
  size_t count = 0;
  for (const auto& option : options) {
    if (option.UsesDevice(device)) {
      ++count;
    }
  }
  return count;
}

std::string Strategy::Summary() const {
  std::ostringstream os;
  os << CompressedTensorCount() << "/" << options.size() << " tensors compressed ("
     << TensorsOnDevice(Device::kGpu) << " using GPU, " << TensorsOnDevice(Device::kCpu)
     << " using CPU ops)";
  return os.str();
}

Strategy UniformStrategy(size_t tensor_count, const CompressionOption& option) {
  Strategy strategy;
  strategy.options.assign(tensor_count, option);
  return strategy;
}

}  // namespace espresso

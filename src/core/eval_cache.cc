#include "src/core/eval_cache.h"

#include "src/util/hash.h"
#include "src/util/logging.h"

namespace espresso {

uint64_t OptionFingerprint(const CompressionOption& option) {
  uint64_t h = Mix64(option.ops.size());
  for (const Op& op : option.ops) {
    uint64_t fields = static_cast<uint64_t>(op.task);
    fields = fields * 8 + static_cast<uint64_t>(op.phase);
    fields = fields * 16 + static_cast<uint64_t>(op.routine);
    fields = fields * 4 + static_cast<uint64_t>(op.device);
    fields = fields * 2 + static_cast<uint64_t>(op.compressed);
    fields = fields * 2 + static_cast<uint64_t>(op.machine_level);
    h = HashCombine(h, fields);
    h = HashCombine(h, DoubleBits(op.domain_fraction));
    h = HashCombine(h, DoubleBits(op.payload_fraction));
    h = HashCombine(h, static_cast<uint64_t>(op.fan_in));
  }
  return h;
}

uint64_t MixIndexedOption(size_t index, const CompressionOption& option) {
  return Mix64(OptionFingerprint(option) + Mix64(static_cast<uint64_t>(index) + 1));
}

uint64_t FinalizeStrategyKey(uint64_t total) { return Mix64(total); }

uint64_t StrategyFingerprint(const Strategy& strategy) {
  uint64_t total = 0;
  for (size_t i = 0; i < strategy.options.size(); ++i) {
    total += MixIndexedOption(i, strategy.options[i]);
  }
  return FinalizeStrategyKey(total);
}

void StrategyHasher::Reset(const Strategy& strategy) {
  mixed_.resize(strategy.options.size());
  total_ = 0;
  for (size_t i = 0; i < strategy.options.size(); ++i) {
    mixed_[i] = MixIndexedOption(i, strategy.options[i]);
    total_ += mixed_[i];
  }
}

uint64_t StrategyHasher::KeyWith(size_t index, const CompressionOption& option) const {
  ESP_CHECK_LT(index, mixed_.size());
  return FinalizeStrategyKey(total_ - mixed_[index] + MixIndexedOption(index, option));
}

void StrategyHasher::Set(size_t index, const CompressionOption& option) {
  ESP_CHECK_LT(index, mixed_.size());
  const uint64_t mixed = MixIndexedOption(index, option);
  total_ += mixed - mixed_[index];
  mixed_[index] = mixed;
}

bool EvaluationCache::Lookup(uint64_t key, double* value) {
  ESP_CHECK(value != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  if (const double* found = lru_.Get(key)) {
    *value = *found;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void EvaluationCache::Insert(uint64_t key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lru_.Put(key, value)) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

EvalCacheStats EvaluationCache::stats() const {
  EvalCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

size_t EvaluationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t EvaluationCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.capacity();
}

}  // namespace espresso

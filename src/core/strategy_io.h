// Strategy serialization: the hand-off between offline selection and the training
// runtime (Figure 6 — Espresso "selects a near-optimal compression strategy offline ...
// After that, it applies the compression strategy to the DDL framework"). The format is
// a line-oriented text file, one op per line, diffable and stable across versions:
//
//   # espresso strategy v1
//   tensors = 3
//   [tensor 0]
//   label = hier[rs|comp+agc+dec|ag]
//   flat = false
//   op = comm reduce-scatter intra1 domain=1 payload=1 fan=1 raw
//   op = compress gpu inter domain=0.125 payload=0.125
//   ...
#ifndef SRC_CORE_STRATEGY_IO_H_
#define SRC_CORE_STRATEGY_IO_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "src/core/strategy.h"

namespace espresso {

// Token vocabulary shared by the v1 text format and the JSON strategy IR
// (src/core/strategy_ir.h). Emission uses RoutineName/CommPhaseName from option.h.
const char* ActionTaskToken(ActionTask task);
const char* DeviceToken(Device device);
std::optional<ActionTask> ParseActionTaskToken(std::string_view token);
std::optional<Routine> ParseRoutineToken(std::string_view token);
std::optional<CommPhase> ParseCommPhaseToken(std::string_view token);
std::optional<Device> ParseDeviceToken(std::string_view token);

void WriteStrategy(std::ostream& os, const Strategy& strategy);
std::string StrategyToString(const Strategy& strategy);

struct StrategyParseResult {
  bool ok = false;
  std::string error;
  Strategy strategy;
};

StrategyParseResult ReadStrategy(std::istream& in);
StrategyParseResult StrategyFromString(const std::string& text);

// File helpers; the result's `error` names the path on failure.
bool WriteStrategyFile(const std::string& path, const Strategy& strategy);
StrategyParseResult ReadStrategyFile(const std::string& path);

}  // namespace espresso

#endif  // SRC_CORE_STRATEGY_IO_H_

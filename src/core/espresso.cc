#include "src/core/espresso.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <chrono>
#include <map>

#include "src/models/model_stats.h"
#include "src/util/logging.h"

namespace espresso {

namespace {

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

EspressoSelector::EspressoSelector(const ModelProfile& model, const ClusterSpec& cluster,
                                   const Compressor& compressor, SelectorOptions options)
    : model_(model),
      tree_config_{cluster.machines, cluster.gpus_per_machine,
                   compressor.SupportsCompressedAggregation()},
      options_(std::move(options)),
      evaluator_(model, cluster, compressor),
      default_option_(DefaultUncompressedOption(tree_config_)) {
  // §4.3: the selector's cost models need a deterministic compression ratio; reject
  // content-dependent algorithms (they remain usable on the execution path).
  ESP_CHECK(compressor.HasDeterministicSize())
      << compressor.name() << " has a content-dependent compressed size and cannot "
      << "drive strategy selection (see §4.3's applicability requirement)";
  candidates_ =
      options_.candidates.empty() ? CandidateOptions(tree_config_) : options_.candidates;
  if (options_.force_compress_all) {
    std::erase_if(candidates_, [](const CompressionOption& c) { return !c.Compressed(); });
    ESP_CHECK(!candidates_.empty()) << "force_compress_all with no compressed candidates";
  }
  if (options_.force_cpu) {
    for (auto& candidate : candidates_) {
      candidate = candidate.WithDevice(Device::kCpu);
    }
  }
}

double EspressoSelector::Score(Strategy& strategy, size_t index,
                               const CompressionOption& candidate) const {
  if (options_.myopic) {
    // Wall-clock scoring: the sum of the candidate's own op durations, ignoring all
    // interactions among tensors (§3.1: "Only considering tau_comm and tau_comp ...
    // can harm the performance"). Kept as the crippled Dimension-1 mechanism.
    double total = 0.0;
    for (const Op& op : candidate.ops) {
      total += evaluator_.OpDuration(op, model_.tensors[index].elements);
    }
    return total;
  }
  CompressionOption saved = strategy.options[index];
  strategy.options[index] = candidate;
  const double time = evaluator_.IterationTime(strategy);
  strategy.options[index] = std::move(saved);
  return time;
}

Strategy EspressoSelector::SelectGpuCompression(size_t* evaluations) const {
  const size_t n = model_.tensors.size();
  Strategy strategy = UniformStrategy(n, options_.force_cpu
                                             ? default_option_.WithDevice(Device::kCpu)
                                             : default_option_);
  size_t evals = 0;

  // Lines 2-3: sort descending by size, tie-break by proximity to the output layer.
  const std::vector<std::vector<size_t>> groups = GroupBySizeDescending(model_);

  // Property 1: rule out uncompressed tensors communicated before bubbles.
  std::vector<bool> removed(n, false);
  auto remove_before_bubbles = [&] {
    if (options_.force_compress_all || options_.disable_bubble_elimination) {
      return;  // every tensor stays in play
    }
    const std::vector<bool> before = evaluator_.BeforeBubble(strategy);
    ++evals;
    for (size_t i = 0; i < n; ++i) {
      if (before[i] && !strategy.options[i].Compressed()) {
        removed[i] = true;
      }
    }
  };
  remove_before_bubbles();

  for (const auto& group : groups) {
    for (size_t index : group) {
      if (removed[index]) {
        continue;
      }
      // GetBestOption: the current assignment plus every candidate, scored on the
      // full-strategy timeline. Under force_compress_all the uncompressed current
      // assignment is not a legal outcome, so candidates compete from scratch.
      double best_time = options_.force_compress_all &&
                                 !strategy.options[index].Compressed()
                             ? std::numeric_limits<double>::infinity()
                             : Score(strategy, index, strategy.options[index]);
      ++evals;
      const CompressionOption* best = nullptr;
      for (const auto& candidate : candidates_) {
        const double t = Score(strategy, index, candidate);
        ++evals;
        if (t < best_time) {
          best_time = t;
          best = &candidate;
        }
      }
      if (best != nullptr) {
        strategy.options[index] = *best;
        // Line 8: new bubbles can appear after each assignment; nothing moved if the
        // option is unchanged, so re-derive only on a change.
        remove_before_bubbles();
      }
    }
  }
  if (evaluations != nullptr) {
    *evaluations += evals;
  }
  return strategy;
}

Strategy EspressoSelector::OffloadToCpu(const Strategy& gpu_strategy, size_t* combinations,
                                        bool* exact, size_t* evaluations) const {
  const size_t n = gpu_strategy.options.size();
  // T_gpu: tensors whose option compresses (on GPUs). Group by (size, option identity);
  // groups keep backward order, i.e. members are already sorted by descending distance
  // to the output layer (Lemma 1's offload order is a prefix).
  std::map<std::pair<size_t, std::string>, std::vector<size_t>> grouped;
  for (size_t i = 0; i < n; ++i) {
    if (gpu_strategy.options[i].Compressed() &&
        gpu_strategy.options[i].UsesDevice(Device::kGpu)) {
      grouped[{model_.tensors[i].elements, gpu_strategy.options[i].label}].push_back(i);
    }
  }
  std::vector<std::vector<size_t>> groups;
  groups.reserve(grouped.size());
  for (auto& [key, members] : grouped) {
    groups.push_back(std::move(members));
  }
  if (groups.empty()) {
    if (combinations != nullptr) {
      *combinations = 0;
    }
    return gpu_strategy;
  }

  // Search-space size: prod(|G_i| + 1) (Theorem 1).
  size_t product = 1;
  bool overflow = false;
  for (const auto& g : groups) {
    if (product > options_.offload_search_budget) {
      overflow = true;
      break;
    }
    product *= g.size() + 1;
  }
  overflow = overflow || product > options_.offload_search_budget;
  if (exact != nullptr) {
    *exact = !overflow;
  }

  Strategy best = gpu_strategy;
  double best_time = evaluator_.IterationTime(best);
  size_t evals = 1;
  size_t visited = 0;

  auto apply = [&](const std::vector<size_t>& counts) {
    Strategy s = gpu_strategy;
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      for (size_t k = 0; k < counts[gi]; ++k) {
        const size_t index = groups[gi][k];
        s.options[index] = s.options[index].WithDevice(Device::kCpu);
      }
    }
    return s;
  };

  if (!overflow) {
    // Exhaustive traversal of U (odometer over per-group counts).
    std::vector<size_t> counts(groups.size(), 0);
    for (;;) {
      ++visited;
      Strategy s = apply(counts);
      const double t = evaluator_.IterationTime(s);
      ++evals;
      if (t < best_time) {
        best_time = t;
        best = std::move(s);
      }
      size_t gi = 0;
      while (gi < groups.size()) {
        if (++counts[gi] <= groups[gi].size()) {
          break;
        }
        counts[gi] = 0;
        ++gi;
      }
      if (gi == groups.size()) {
        break;
      }
    }
  } else {
    // Coordinate descent over group counts until a fixpoint.
    std::vector<size_t> counts(groups.size(), 0);
    bool improved = true;
    while (improved) {
      improved = false;
      for (size_t gi = 0; gi < groups.size(); ++gi) {
        size_t best_count = counts[gi];
        for (size_t c = 0; c <= groups[gi].size(); ++c) {
          if (c == best_count) {
            continue;
          }
          counts[gi] = c;
          ++visited;
          Strategy s = apply(counts);
          const double t = evaluator_.IterationTime(s);
          ++evals;
          if (t < best_time) {
            best_time = t;
            best = std::move(s);
            best_count = c;
            improved = true;
          }
        }
        counts[gi] = best_count;
      }
    }
  }

  if (combinations != nullptr) {
    *combinations = visited;
  }
  if (evaluations != nullptr) {
    *evaluations += evals;
  }
  return best;
}

bool EspressoSelector::RefineSweep(Strategy* strategy, size_t* evaluations) const {
  ESP_CHECK(strategy != nullptr);
  size_t evals = 0;
  bool improved = false;
  for (size_t index = 0; index < strategy->options.size(); ++index) {
    double best_time = Score(*strategy, index, strategy->options[index]);
    ++evals;
    const CompressionOption* best = nullptr;
    for (const auto& candidate : candidates_) {
      if (candidate == strategy->options[index]) {
        continue;
      }
      const double t = Score(*strategy, index, candidate);
      ++evals;
      if (t < best_time) {
        best_time = t;
        best = &candidate;
      }
    }
    if (best != nullptr) {
      strategy->options[index] = *best;
      improved = true;
    }
  }
  if (evaluations != nullptr) {
    *evaluations += evals;
  }
  return improved;
}

SelectionResult EspressoSelector::Select() const {
  SelectionResult result;
  const auto t0 = std::chrono::steady_clock::now();
  std::optional<Strategy> forced_trajectory;
  Strategy gpu = SelectGpuCompression(&result.timeline_evaluations);
  // Greedy refinement to a fixpoint: the first pass's assignments were made against a
  // partially-uncompressed strategy; re-visiting each tensor against the final mix
  // removes that order dependence (and keeps Espresso ahead of every restricted
  // mechanism in §5.3's study). Skipped in myopic mode, whose scoring is context-free.
  if (!options_.myopic) {
    for (int pass = 0; pass < 2; ++pass) {
      if (!RefineSweep(&gpu, &result.timeline_evaluations)) {
        break;
      }
    }
    // Multi-start escape hatch: greedy trajectories from a mixed strategy can miss
    // optima where most tensors share one option (e.g. a uniformly-divisible pipeline).
    // Seed a second trajectory from the best uniform assignment — when it is remotely
    // competitive — and keep the winner.
    const size_t n = model_.tensors.size();
    const double gpu_time = evaluator_.IterationTime(gpu);
    double best_uniform_time = std::numeric_limits<double>::infinity();
    const CompressionOption* best_uniform = nullptr;
    for (const auto& candidate : candidates_) {
      const Strategy uniform = UniformStrategy(n, candidate);
      const double t = evaluator_.IterationTime(uniform);
      ++result.timeline_evaluations;
      if (t < best_uniform_time) {
        best_uniform_time = t;
        best_uniform = &candidate;
      }
    }
    if (best_uniform != nullptr && best_uniform_time < 1.3 * gpu_time) {
      Strategy alternative = UniformStrategy(n, *best_uniform);
      for (int pass = 0; pass < 2; ++pass) {
        if (!RefineSweep(&alternative, &result.timeline_evaluations)) {
          break;
        }
      }
      if (evaluator_.IterationTime(alternative) < evaluator_.IterationTime(gpu)) {
        gpu = std::move(alternative);
      }
      result.timeline_evaluations += 2;
    }
    // Third trajectory: greedy with compression forced everywhere. Joint optima where
    // *every* tensor compresses are separated from the FP32-seeded trajectory by
    // multi-tensor moves a per-tensor sweep cannot make. The trajectories are compared
    // after CPU offloading (below), since offloading interacts with the mix.
    if (!options_.force_compress_all && !options_.force_cpu) {
      SelectorOptions forced = options_;
      forced.force_compress_all = true;
      forced.candidates = candidates_;
      EspressoSelector all_compressed(model_, evaluator_.cluster(), evaluator_.compressor(),
                                      std::move(forced));
      forced_trajectory =
          all_compressed.SelectGpuCompression(&result.timeline_evaluations);
      // Refine within the forced (compressed-only) space: refining against the full
      // candidate set would greedily decompress tensors and collapse back into the
      // first trajectory's basin before offloading can pay for the compression.
      if (all_compressed.RefineSweep(&*forced_trajectory, &result.timeline_evaluations)) {
        all_compressed.RefineSweep(&*forced_trajectory, &result.timeline_evaluations);
      }
      // Keep even much-worse pre-offload trajectories alive: CPU offloading is what
      // rescues an everything-compressed strategy from its GPU contention.
      if (evaluator_.IterationTime(*forced_trajectory) >
          2.0 * evaluator_.IterationTime(gpu)) {
        forced_trajectory.reset();
      }
      result.timeline_evaluations += 2;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.gpu_stage_seconds = Seconds(t0, t1);

  result.offload_tensor_count = 0;
  for (const auto& option : gpu.options) {
    if (option.Compressed() && option.UsesDevice(Device::kGpu)) {
      ++result.offload_tensor_count;
    }
  }

  if (options_.enable_cpu_offload && !options_.force_cpu) {
    result.strategy = OffloadToCpu(gpu, &result.offload_combinations, &result.offload_exact,
                                   &result.timeline_evaluations);
    if (forced_trajectory.has_value()) {
      const Strategy alternative =
          OffloadToCpu(*forced_trajectory, nullptr, nullptr, &result.timeline_evaluations);
      if (evaluator_.IterationTime(alternative) <
          evaluator_.IterationTime(result.strategy)) {
        result.strategy = alternative;
      }
      result.timeline_evaluations += 2;
    }
    result.offload_stage_seconds = Seconds(t1, std::chrono::steady_clock::now());
  } else {
    result.strategy = std::move(gpu);
  }
  result.iteration_time = evaluator_.IterationTime(result.strategy);
  return result;
}

}  // namespace espresso

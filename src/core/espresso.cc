#include "src/core/espresso.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <optional>
#include <utility>

#include "src/models/model_stats.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/logging.h"

namespace espresso {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// Process-wide selector metrics; SelectorTelemetry stays the per-call view while the
// registry accumulates across selections (see SelectorTelemetry::FromMetricsSnapshot).
struct SelectorMetrics {
  obs::Counter selections;
  obs::Counter evaluations;
  obs::Counter simulations;
  obs::Counter cache_hits;
  obs::Counter cache_misses;
  obs::Counter cache_evictions;
  obs::Histogram select_seconds;
  obs::Histogram algorithm1_seconds;
  obs::Histogram refine_seconds;
  obs::Histogram trajectory_seconds;
  obs::Histogram offload_seconds;
};

const SelectorMetrics& Metrics() {
  static const SelectorMetrics metrics = [] {
    obs::MetricsRegistry& r = obs::GlobalMetrics();
    SelectorMetrics m;
    m.selections = r.RegisterCounter("espresso_selector_selections_total",
                                     "Completed EspressoSelector::Select calls");
    m.evaluations = r.RegisterCounter("espresso_selector_evaluations_total",
                                      "Logical F(S) queries (cache hits included)");
    m.simulations = r.RegisterCounter("espresso_selector_simulations_total",
                                      "Timelines actually simulated by the selector");
    m.cache_hits = r.RegisterCounter("espresso_selector_cache_hits_total",
                                     "F(S) memoization cache hits");
    m.cache_misses = r.RegisterCounter("espresso_selector_cache_misses_total",
                                       "F(S) memoization cache misses");
    m.cache_evictions = r.RegisterCounter("espresso_selector_cache_evictions_total",
                                          "F(S) memoization cache evictions");
    m.select_seconds = r.RegisterHistogram("espresso_selector_select_seconds",
                                           "End-to-end Select() wall time",
                                           obs::DefaultTimeBuckets());
    m.algorithm1_seconds = r.RegisterHistogram(
        "espresso_selector_stage_algorithm1_seconds",
        "Algorithm 1 (GPU compression) stage wall time", obs::DefaultTimeBuckets());
    m.refine_seconds = r.RegisterHistogram("espresso_selector_stage_refine_seconds",
                                           "Fixpoint refinement stage wall time",
                                           obs::DefaultTimeBuckets());
    m.trajectory_seconds = r.RegisterHistogram(
        "espresso_selector_stage_trajectory_seconds",
        "Multi-start trajectory stage wall time", obs::DefaultTimeBuckets());
    m.offload_seconds = r.RegisterHistogram(
        "espresso_selector_stage_offload_seconds",
        "Algorithm 2 (CPU offload) stage wall time", obs::DefaultTimeBuckets());
    return m;
  }();
  return metrics;
}

}  // namespace

SelectorTelemetry SelectorTelemetry::FromMetricsSnapshot(
    const obs::MetricsSnapshot& snapshot) {
  SelectorTelemetry t;
  const auto counter = [&snapshot](const char* name) -> uint64_t {
    const obs::MetricValue* m = snapshot.Find(name);
    return m == nullptr ? 0 : m->count;
  };
  const auto histogram_sum = [&snapshot](const char* name) -> double {
    const obs::MetricValue* m = snapshot.Find(name);
    return m == nullptr ? 0.0 : m->value;
  };
  t.evaluations = counter("espresso_selector_evaluations_total");
  t.simulations = counter("espresso_selector_simulations_total");
  t.cache_hits = counter("espresso_selector_cache_hits_total");
  t.cache_misses = counter("espresso_selector_cache_misses_total");
  t.cache_evictions = counter("espresso_selector_cache_evictions_total");
  t.algorithm1_seconds = histogram_sum("espresso_selector_stage_algorithm1_seconds");
  t.refine_seconds = histogram_sum("espresso_selector_stage_refine_seconds");
  t.trajectory_seconds = histogram_sum("espresso_selector_stage_trajectory_seconds");
  t.offload_seconds = histogram_sum("espresso_selector_stage_offload_seconds");
  t.total_seconds = histogram_sum("espresso_selector_select_seconds");
  return t;
}

EspressoSelector::EspressoSelector(const ModelProfile& model, const ClusterSpec& cluster,
                                   const Compressor& compressor, SelectorOptions options)
    : model_(model),
      tree_config_{cluster.machines, cluster.gpus_per_machine,
                   compressor.SupportsCompressedAggregation()},
      options_(std::move(options)),
      evaluator_(model, cluster, compressor),
      default_option_(DefaultUncompressedOption(tree_config_)) {
  Init();
}

EspressoSelector::EspressoSelector(const ModelProfile& model, const ClusterSpec& cluster,
                                   const Compressor& compressor, SelectorOptions options,
                                   std::shared_ptr<EvaluationCache> shared_cache)
    : model_(model),
      tree_config_{cluster.machines, cluster.gpus_per_machine,
                   compressor.SupportsCompressedAggregation()},
      options_(std::move(options)),
      evaluator_(model, cluster, compressor),
      default_option_(DefaultUncompressedOption(tree_config_)),
      cache_(std::move(shared_cache)) {
  Init();
}

void EspressoSelector::Init() {
  // §4.3: the selector's cost models need a deterministic compression ratio; reject
  // content-dependent algorithms (they remain usable on the execution path).
  ESP_CHECK(evaluator_.compressor().HasDeterministicSize())
      << evaluator_.compressor().name()
      << " has a content-dependent compressed size and cannot "
      << "drive strategy selection (see §4.3's applicability requirement)";
  candidates_ =
      options_.candidates.empty() ? CandidateOptions(tree_config_) : options_.candidates;
  if (options_.force_compress_all) {
    std::erase_if(candidates_, [](const CompressionOption& c) { return !c.Compressed(); });
    ESP_CHECK(!candidates_.empty()) << "force_compress_all with no compressed candidates";
  }
  if (options_.force_cpu) {
    for (auto& candidate : candidates_) {
      candidate = candidate.WithDevice(Device::kCpu);
    }
  }
  if (options_.cache_capacity > 0 && cache_ == nullptr) {
    cache_ = std::make_shared<EvaluationCache>(options_.cache_capacity);
  }
  pool_ = std::make_unique<ThreadPool>(options_.threads);
  const size_t chunk_count = std::max<size_t>(1, options_.threads);
  for (size_t i = 0; i < chunk_count; ++i) {
    contexts_.emplace_back();
  }
}

template <typename Fn>
void EspressoSelector::ParallelFor(size_t count, const Fn& fn) const {
  if (count == 0) {
    return;
  }
  const size_t chunks = std::min(contexts_.size(), count);
  if (chunks <= 1) {
    for (size_t i = 0; i < count; ++i) {
      fn(i, size_t{0}, &contexts_[0]);
    }
    return;
  }
  for (size_t c = 0; c < chunks; ++c) {
    pool_->Submit([this, &fn, c, chunks, count] {
      const size_t begin = c * count / chunks;
      const size_t end = (c + 1) * count / chunks;
      for (size_t i = begin; i < end; ++i) {
        fn(i, c, &contexts_[c]);
      }
    });
  }
  pool_->Wait();
}

double EspressoSelector::CachedScore(const Strategy& base, const StrategyHasher& hasher,
                                     size_t index, const CompressionOption& candidate,
                                     TimelineEvaluator::EvalContext* ctx) const {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (options_.myopic) {
    // Wall-clock scoring: the sum of the candidate's own op durations, ignoring all
    // interactions among tensors (§3.1: "Only considering tau_comm and tau_comp ...
    // can harm the performance"). Kept as the crippled Dimension-1 mechanism. Not
    // memoized: the values are not F(S) and the sum is cheaper than a cache probe.
    double total = 0.0;
    for (const Op& op : candidate.ops) {
      total += evaluator_.OpDuration(op, model_.tensors[index].elements);
    }
    return total;
  }
  if (cache_ == nullptr) {
    return evaluator_.ScoreWithOption(base, index, candidate, ctx);
  }
  const uint64_t key = hasher.KeyWith(index, candidate);
  double value = 0.0;
  if (cache_->Lookup(key, &value)) {
    return value;
  }
  value = evaluator_.ScoreWithOption(base, index, candidate, ctx);
  cache_->Insert(key, value);
  return value;
}

double EspressoSelector::CachedIterationTime(const Strategy& strategy,
                                             TimelineEvaluator::EvalContext* ctx) const {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (cache_ == nullptr) {
    return evaluator_.IterationTime(strategy, ctx);
  }
  const uint64_t key = StrategyFingerprint(strategy);
  double value = 0.0;
  if (cache_->Lookup(key, &value)) {
    return value;
  }
  value = evaluator_.IterationTime(strategy, ctx);
  cache_->Insert(key, value);
  return value;
}

void EspressoSelector::ScoreCandidates(const Strategy& base, const StrategyHasher& hasher,
                                       size_t index, std::vector<double>* times,
                                       const CompressionOption* skip) const {
  const size_t m = candidates_.size();
  times->assign(m, kInf);
  ParallelFor(m, [&](size_t j, size_t, TimelineEvaluator::EvalContext* ctx) {
    if (skip != nullptr && candidates_[j] == *skip) {
      return;  // the caller already scored the current assignment
    }
    (*times)[j] = CachedScore(base, hasher, index, candidates_[j], ctx);
  });
}

Strategy EspressoSelector::SelectGpuCompression(size_t* evaluations) const {
  const uint64_t evals_before = evaluations_.load(std::memory_order_relaxed);
  const size_t n = model_.tensors.size();
  Strategy strategy = UniformStrategy(n, options_.force_cpu
                                             ? default_option_.WithDevice(Device::kCpu)
                                             : default_option_);
  StrategyHasher hasher;
  hasher.Reset(strategy);
  TimelineEvaluator::EvalContext* ctx0 = &contexts_[0];

  // Lines 2-3: sort descending by size, tie-break by proximity to the output layer.
  const std::vector<std::vector<size_t>> groups = GroupBySizeDescending(model_);

  // Property 1: rule out uncompressed tensors communicated before bubbles.
  std::vector<bool> removed(n, false);
  auto remove_before_bubbles = [&] {
    if (options_.force_compress_all || options_.disable_bubble_elimination) {
      return;  // every tensor stays in play
    }
    const std::vector<bool> before = evaluator_.BeforeBubble(strategy, ctx0);
    evaluations_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      if (before[i] && !strategy.options[i].Compressed()) {
        removed[i] = true;
      }
    }
  };
  remove_before_bubbles();

  std::vector<double> times;
  for (const auto& group : groups) {
    for (size_t index : group) {
      if (removed[index]) {
        continue;
      }
      // GetBestOption: the current assignment plus every candidate, scored on the
      // full-strategy timeline. Under force_compress_all the uncompressed current
      // assignment is not a legal outcome, so candidates compete from scratch.
      double best_time = options_.force_compress_all &&
                                 !strategy.options[index].Compressed()
                             ? kInf
                             : CachedScore(strategy, hasher, index,
                                           strategy.options[index], ctx0);
      ScoreCandidates(strategy, hasher, index, &times, nullptr);
      // Deterministic reduction: strict improvement only, so ties keep the earlier
      // (lower-index) candidate — byte-identical to the serial scan.
      const CompressionOption* best = nullptr;
      for (size_t j = 0; j < candidates_.size(); ++j) {
        if (times[j] < best_time) {
          best_time = times[j];
          best = &candidates_[j];
        }
      }
      if (best != nullptr) {
        strategy.options[index] = *best;
        hasher.Set(index, *best);
        // Line 8: new bubbles can appear after each assignment; nothing moved if the
        // option is unchanged, so re-derive only on a change.
        remove_before_bubbles();
      }
    }
  }
  if (evaluations != nullptr) {
    *evaluations += evaluations_.load(std::memory_order_relaxed) - evals_before;
  }
  return strategy;
}

Strategy EspressoSelector::OffloadToCpu(const Strategy& gpu_strategy, size_t* combinations,
                                        bool* exact, size_t* evaluations) const {
  const uint64_t evals_before = evaluations_.load(std::memory_order_relaxed);
  const size_t n = gpu_strategy.options.size();

  // T_gpu: tensors whose option compresses (on GPUs). Group by (size, option
  // identity); groups keep backward order, i.e. members are already sorted by
  // descending distance to the output layer (Lemma 1's offload order is a prefix).
  // Option identity is interned into small integers so the grouping key is a pure
  // integer pair — no per-tensor string copies on this path.
  struct OffloadGroup {
    std::vector<size_t> members;
  };
  std::vector<const CompressionOption*> distinct;
  auto intern = [&](const CompressionOption& option) -> size_t {
    for (size_t d = 0; d < distinct.size(); ++d) {
      if (*distinct[d] == option) {
        return d;
      }
    }
    distinct.push_back(&option);
    return distinct.size() - 1;
  };
  std::map<std::pair<size_t, size_t>, size_t> group_index;  // (elements, option id)
  std::vector<OffloadGroup> unordered_groups;
  for (size_t i = 0; i < n; ++i) {
    if (gpu_strategy.options[i].Compressed() &&
        gpu_strategy.options[i].UsesDevice(Device::kGpu)) {
      const std::pair<size_t, size_t> key{model_.tensors[i].elements,
                                          intern(gpu_strategy.options[i])};
      const auto [it, inserted] = group_index.try_emplace(key, unordered_groups.size());
      if (inserted) {
        unordered_groups.emplace_back();
      }
      unordered_groups[it->second].members.push_back(i);
    }
  }
  std::vector<OffloadGroup> groups;
  groups.reserve(unordered_groups.size());
  for (const auto& [key, gi] : group_index) {
    groups.push_back(std::move(unordered_groups[gi]));
  }
  if (groups.empty()) {
    if (combinations != nullptr) {
      *combinations = 0;
    }
    return gpu_strategy;
  }
  const size_t num_groups = groups.size();

  // Search-space size: prod(|G_i| + 1) (Theorem 1).
  size_t product = 1;
  bool overflow = false;
  for (const auto& g : groups) {
    if (product > options_.offload_search_budget) {
      overflow = true;
      break;
    }
    product *= g.members.size() + 1;
  }
  overflow = overflow || product > options_.offload_search_budget;
  if (exact != nullptr) {
    *exact = !overflow;
  }

  // Per-group CPU variant (identical content across a group's members) and the
  // wrapping fingerprint deltas of offloading the first c members, so a combo's cache
  // key is O(groups) to derive from the base strategy's additive total.
  std::vector<CompressionOption> cpu_variants;
  cpu_variants.reserve(num_groups);
  std::vector<std::vector<uint64_t>> delta_prefix(num_groups);
  StrategyHasher base_hasher;
  base_hasher.Reset(gpu_strategy);
  const uint64_t base_total = base_hasher.Total();
  for (size_t gi = 0; gi < num_groups; ++gi) {
    const auto& members = groups[gi].members;
    cpu_variants.push_back(gpu_strategy.options[members[0]].WithDevice(Device::kCpu));
    delta_prefix[gi].resize(members.size() + 1);
    delta_prefix[gi][0] = 0;
    for (size_t k = 0; k < members.size(); ++k) {
      const uint64_t delta =
          MixIndexedOption(members[k], cpu_variants[gi]) -
          MixIndexedOption(members[k], gpu_strategy.options[members[k]]);
      delta_prefix[gi][k + 1] = delta_prefix[gi][k] + delta;
    }
  }

  // Scores a batch of odometer states (flattened per-group counts). Each chunk worker
  // keeps one override table and applies/undoes the per-combo deltas on it — the full
  // strategy is never copied per visit.
  std::vector<std::vector<const CompressionOption*>> tables(contexts_.size());
  auto score_combos = [&](const std::vector<size_t>& flat, size_t count,
                          std::vector<double>* times) {
    times->resize(count);
    ParallelFor(count, [&](size_t b, size_t chunk, TimelineEvaluator::EvalContext* ctx) {
      const size_t* counts = flat.data() + b * num_groups;
      evaluations_.fetch_add(1, std::memory_order_relaxed);
      uint64_t key = 0;
      if (cache_ != nullptr) {
        uint64_t total = base_total;
        for (size_t gi = 0; gi < num_groups; ++gi) {
          total += delta_prefix[gi][counts[gi]];
        }
        key = FinalizeStrategyKey(total);
        double value = 0.0;
        if (cache_->Lookup(key, &value)) {
          (*times)[b] = value;
          return;
        }
      }
      std::vector<const CompressionOption*>& table = tables[chunk];
      if (table.size() != n) {
        table.assign(n, nullptr);
      }
      for (size_t gi = 0; gi < num_groups; ++gi) {
        for (size_t k = 0; k < counts[gi]; ++k) {
          table[groups[gi].members[k]] = &cpu_variants[gi];
        }
      }
      const double t = evaluator_.ScoreWithOverrides(gpu_strategy, table.data(), ctx);
      for (size_t gi = 0; gi < num_groups; ++gi) {
        for (size_t k = 0; k < counts[gi]; ++k) {
          table[groups[gi].members[k]] = nullptr;
        }
      }
      if (cache_ != nullptr) {
        cache_->Insert(key, t);
      }
      (*times)[b] = t;
    });
  };

  // Materializes the winning odometer state — the only place a strategy is copied.
  auto materialize = [&](const size_t* counts) {
    Strategy s = gpu_strategy;
    for (size_t gi = 0; gi < num_groups; ++gi) {
      for (size_t k = 0; k < counts[gi]; ++k) {
        s.options[groups[gi].members[k]] = cpu_variants[gi];
      }
    }
    return s;
  };

  size_t visited = 0;
  std::vector<size_t> best_counts(num_groups, 0);
  double best_time = kInf;
  std::vector<size_t> flat;
  std::vector<double> times;

  if (!overflow) {
    // Exhaustive traversal of U (odometer over per-group counts), scored as one batch.
    // The reduction keeps the earliest odometer state on ties, matching the serial
    // visit order exactly.
    flat.reserve(product * num_groups);
    std::vector<size_t> counts(num_groups, 0);
    for (;;) {
      flat.insert(flat.end(), counts.begin(), counts.end());
      size_t gi = 0;
      while (gi < num_groups) {
        if (++counts[gi] <= groups[gi].members.size()) {
          break;
        }
        counts[gi] = 0;
        ++gi;
      }
      if (gi == num_groups) {
        break;
      }
    }
    const size_t combo_count = flat.size() / num_groups;
    score_combos(flat, combo_count, &times);
    visited = combo_count;
    size_t best_index = 0;
    best_time = times[0];  // state 0 is the all-GPU input strategy
    for (size_t b = 1; b < combo_count; ++b) {
      if (times[b] < best_time) {
        best_time = times[b];
        best_index = b;
      }
    }
    std::copy_n(flat.data() + best_index * num_groups, num_groups, best_counts.begin());
  } else {
    // Coordinate descent over group counts until a fixpoint. Each group sweep scores
    // every count in one batch; the reduction scans counts in ascending order with
    // strict improvement, reproducing the serial sweep's tie-breaking.
    std::vector<size_t> counts(num_groups, 0);
    flat.assign(counts.begin(), counts.end());
    score_combos(flat, 1, &times);
    best_time = times[0];
    ++visited;
    std::vector<size_t> swept;
    bool improved = true;
    while (improved) {
      improved = false;
      for (size_t gi = 0; gi < num_groups; ++gi) {
        flat.clear();
        swept.clear();
        for (size_t c = 0; c <= groups[gi].members.size(); ++c) {
          if (c == counts[gi]) {
            continue;  // the incumbent count's time is already <= best_time
          }
          for (size_t gj = 0; gj < num_groups; ++gj) {
            flat.push_back(gj == gi ? c : counts[gj]);
          }
          swept.push_back(c);
        }
        score_combos(flat, swept.size(), &times);
        visited += swept.size();
        size_t best_count = counts[gi];
        for (size_t j = 0; j < swept.size(); ++j) {
          if (times[j] < best_time) {
            best_time = times[j];
            best_count = swept[j];
            improved = true;
          }
        }
        counts[gi] = best_count;
      }
    }
    best_counts = counts;
  }

  if (combinations != nullptr) {
    *combinations = visited;
  }
  if (evaluations != nullptr) {
    *evaluations += evaluations_.load(std::memory_order_relaxed) - evals_before;
  }
  return materialize(best_counts.data());
}

bool EspressoSelector::RefineSweep(Strategy* strategy, size_t* evaluations) const {
  ESP_CHECK(strategy != nullptr);
  const uint64_t evals_before = evaluations_.load(std::memory_order_relaxed);
  StrategyHasher hasher;
  hasher.Reset(*strategy);
  TimelineEvaluator::EvalContext* ctx0 = &contexts_[0];
  bool improved = false;
  std::vector<double> times;
  for (size_t index = 0; index < strategy->options.size(); ++index) {
    double best_time =
        CachedScore(*strategy, hasher, index, strategy->options[index], ctx0);
    ScoreCandidates(*strategy, hasher, index, &times, &strategy->options[index]);
    const CompressionOption* best = nullptr;
    for (size_t j = 0; j < candidates_.size(); ++j) {
      if (times[j] < best_time) {
        best_time = times[j];
        best = &candidates_[j];
      }
    }
    if (best != nullptr) {
      strategy->options[index] = *best;
      hasher.Set(index, *best);
      improved = true;
    }
  }
  if (evaluations != nullptr) {
    *evaluations += evaluations_.load(std::memory_order_relaxed) - evals_before;
  }
  return improved;
}

SelectionResult EspressoSelector::Select() const {
  obs::ScopedSpan span("selector.select", "selector", Metrics().select_seconds);
  SelectionResult result;
  const uint64_t evals_start = evaluations_.load(std::memory_order_relaxed);
  const uint64_t sims_start = evaluator_.simulations();
  const EvalCacheStats cache_start = cache_ != nullptr ? cache_->stats() : EvalCacheStats{};
  uint64_t nested_evals = 0;
  uint64_t nested_sims = 0;
  TimelineEvaluator::EvalContext* ctx0 = &contexts_[0];

  const auto t0 = std::chrono::steady_clock::now();
  std::optional<Strategy> forced_trajectory;
  Strategy gpu;
  {
    obs::ScopedSpan stage("selector.algorithm1", "selector");
    gpu = SelectGpuCompression(nullptr);
  }
  const auto t_alg1 = std::chrono::steady_clock::now();
  result.telemetry.algorithm1_seconds = Seconds(t0, t_alg1);

  // Greedy refinement to a fixpoint: the first pass's assignments were made against a
  // partially-uncompressed strategy; re-visiting each tensor against the final mix
  // removes that order dependence (and keeps Espresso ahead of every restricted
  // mechanism in §5.3's study). Skipped in myopic mode, whose scoring is context-free.
  if (!options_.myopic) {
    {
      obs::ScopedSpan stage("selector.refine", "selector");
      for (int pass = 0; pass < 2; ++pass) {
        if (!RefineSweep(&gpu, nullptr)) {
          break;
        }
      }
    }
    const auto t_refine = std::chrono::steady_clock::now();
    result.telemetry.refine_seconds = Seconds(t_alg1, t_refine);
    obs::ScopedSpan trajectory_stage("selector.trajectory", "selector");

    // Multi-start escape hatch: greedy trajectories from a mixed strategy can miss
    // optima where most tensors share one option (e.g. a uniformly-divisible pipeline).
    // Seed a second trajectory from the best uniform assignment — when it is remotely
    // competitive — and keep the winner.
    const size_t n = model_.tensors.size();
    const double gpu_time = CachedIterationTime(gpu, ctx0);
    std::vector<double> uniform_times(candidates_.size(), kInf);
    ParallelFor(candidates_.size(),
                [&](size_t j, size_t, TimelineEvaluator::EvalContext* ctx) {
                  uniform_times[j] =
                      CachedIterationTime(UniformStrategy(n, candidates_[j]), ctx);
                });
    double best_uniform_time = kInf;
    const CompressionOption* best_uniform = nullptr;
    for (size_t j = 0; j < candidates_.size(); ++j) {
      if (uniform_times[j] < best_uniform_time) {
        best_uniform_time = uniform_times[j];
        best_uniform = &candidates_[j];
      }
    }
    if (best_uniform != nullptr && best_uniform_time < 1.3 * gpu_time) {
      Strategy alternative = UniformStrategy(n, *best_uniform);
      for (int pass = 0; pass < 2; ++pass) {
        if (!RefineSweep(&alternative, nullptr)) {
          break;
        }
      }
      if (CachedIterationTime(alternative, ctx0) < CachedIterationTime(gpu, ctx0)) {
        gpu = std::move(alternative);
      }
    }
    // Third trajectory: greedy with compression forced everywhere. Joint optima where
    // *every* tensor compresses are separated from the FP32-seeded trajectory by
    // multi-tensor moves a per-tensor sweep cannot make. The trajectories are compared
    // after CPU offloading (below), since offloading interacts with the mix.
    if (!options_.force_compress_all && !options_.force_cpu) {
      SelectorOptions forced = options_;
      forced.force_compress_all = true;
      forced.candidates = candidates_;
      // The nested selector shares this selector's evaluation cache: its evaluator is
      // configured identically, so fingerprints and F(S) values agree.
      EspressoSelector all_compressed(model_, evaluator_.cluster(),
                                      evaluator_.compressor(), std::move(forced), cache_);
      forced_trajectory = all_compressed.SelectGpuCompression(nullptr);
      // Refine within the forced (compressed-only) space: refining against the full
      // candidate set would greedily decompress tensors and collapse back into the
      // first trajectory's basin before offloading can pay for the compression.
      if (all_compressed.RefineSweep(&*forced_trajectory, nullptr)) {
        all_compressed.RefineSweep(&*forced_trajectory, nullptr);
      }
      // Keep even much-worse pre-offload trajectories alive: CPU offloading is what
      // rescues an everything-compressed strategy from its GPU contention.
      if (CachedIterationTime(*forced_trajectory, ctx0) >
          2.0 * CachedIterationTime(gpu, ctx0)) {
        forced_trajectory.reset();
      }
      nested_evals = all_compressed.evaluations_.load(std::memory_order_relaxed);
      nested_sims = all_compressed.evaluator_.simulations();
    }
    result.telemetry.trajectory_seconds =
        Seconds(t_refine, std::chrono::steady_clock::now());
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.gpu_stage_seconds = Seconds(t0, t1);

  result.offload_tensor_count = 0;
  for (const auto& option : gpu.options) {
    if (option.Compressed() && option.UsesDevice(Device::kGpu)) {
      ++result.offload_tensor_count;
    }
  }

  if (options_.enable_cpu_offload && !options_.force_cpu) {
    obs::ScopedSpan stage("selector.offload", "selector");
    result.strategy =
        OffloadToCpu(gpu, &result.offload_combinations, &result.offload_exact, nullptr);
    if (forced_trajectory.has_value()) {
      const Strategy alternative = OffloadToCpu(*forced_trajectory, nullptr, nullptr,
                                                nullptr);
      if (CachedIterationTime(alternative, ctx0) <
          CachedIterationTime(result.strategy, ctx0)) {
        result.strategy = alternative;
      }
    }
    result.offload_stage_seconds = Seconds(t1, std::chrono::steady_clock::now());
    result.telemetry.offload_seconds = result.offload_stage_seconds;
  } else {
    result.strategy = std::move(gpu);
  }
  result.iteration_time = CachedIterationTime(result.strategy, ctx0);

  result.timeline_evaluations =
      (evaluations_.load(std::memory_order_relaxed) - evals_start) + nested_evals;
  result.telemetry.evaluations = result.timeline_evaluations;
  result.telemetry.simulations = (evaluator_.simulations() - sims_start) + nested_sims;
  if (cache_ != nullptr) {
    const EvalCacheStats stats = cache_->stats();
    result.telemetry.cache_hits = stats.hits - cache_start.hits;
    result.telemetry.cache_misses = stats.misses - cache_start.misses;
    result.telemetry.cache_evictions = stats.evictions - cache_start.evictions;
  }
  result.telemetry.threads = options_.threads;
  result.telemetry.total_seconds = Seconds(t0, std::chrono::steady_clock::now());

  // Publish this selection's deltas so the global registry aggregates across
  // selections; the stage histograms record the same walls the telemetry carries.
  obs::MetricsRegistry& registry = obs::GlobalMetrics();
  const SelectorMetrics& metrics = Metrics();
  registry.Add(metrics.selections);
  registry.Add(metrics.evaluations, result.telemetry.evaluations);
  registry.Add(metrics.simulations, result.telemetry.simulations);
  registry.Add(metrics.cache_hits, result.telemetry.cache_hits);
  registry.Add(metrics.cache_misses, result.telemetry.cache_misses);
  registry.Add(metrics.cache_evictions, result.telemetry.cache_evictions);
  registry.Observe(metrics.algorithm1_seconds, result.telemetry.algorithm1_seconds);
  registry.Observe(metrics.refine_seconds, result.telemetry.refine_seconds);
  registry.Observe(metrics.trajectory_seconds, result.telemetry.trajectory_seconds);
  registry.Observe(metrics.offload_seconds, result.telemetry.offload_seconds);
  return result;
}

}  // namespace espresso

#include "src/core/option.h"

#include <sstream>

namespace espresso {

const char* RoutineName(Routine routine) {
  switch (routine) {
    case Routine::kNone:
      return "none";
    case Routine::kAllreduce:
      return "allreduce";
    case Routine::kReduceScatter:
      return "reduce-scatter";
    case Routine::kAllgather:
      return "allgather";
    case Routine::kReduce:
      return "reduce";
    case Routine::kBroadcast:
      return "broadcast";
    case Routine::kAlltoall:
      return "alltoall";
    case Routine::kGather:
      return "gather";
  }
  return "?";
}

const char* CommPhaseName(CommPhase phase) {
  switch (phase) {
    case CommPhase::kFlat:
      return "flat";
    case CommPhase::kIntraFirst:
      return "intra1";
    case CommPhase::kInter:
      return "inter";
    case CommPhase::kIntraSecond:
      return "intra2";
  }
  return "?";
}

bool CompressionOption::Compressed() const { return CompressOpCount() > 0; }

size_t CompressionOption::CompressOpCount() const {
  size_t count = 0;
  for (const Op& op : ops) {
    if (op.task == ActionTask::kCompress) {
      ++count;
    }
  }
  return count;
}

size_t CompressionOption::DecompressOpCount() const {
  size_t count = 0;
  for (const Op& op : ops) {
    if (op.task == ActionTask::kDecompress) {
      ++count;
    }
  }
  return count;
}

CompressionOption CompressionOption::WithDevice(Device device) const {
  CompressionOption copy = *this;
  for (Op& op : copy.ops) {
    if (op.task != ActionTask::kComm) {
      op.device = device;
    }
  }
  return copy;
}

bool CompressionOption::UsesDevice(Device device) const {
  for (const Op& op : ops) {
    if (op.task != ActionTask::kComm && op.device == device) {
      return true;
    }
  }
  return false;
}

std::string CompressionOption::Describe() const {
  std::ostringstream os;
  os << (label.empty() ? "option" : label) << ": ";
  bool first = true;
  for (const Op& op : ops) {
    if (!first) {
      os << " -> ";
    }
    first = false;
    switch (op.task) {
      case ActionTask::kCompress:
        os << "comp(" << DeviceName(op.device) << ")";
        break;
      case ActionTask::kDecompress:
        os << "decomp(" << DeviceName(op.device) << ",x" << op.fan_in << ")";
        break;
      case ActionTask::kComm:
        os << RoutineName(op.routine) << "@" << CommPhaseName(op.phase)
           << (op.compressed ? "[c]" : "");
        break;
    }
  }
  return os.str();
}

}  // namespace espresso

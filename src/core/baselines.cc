#include "src/core/baselines.h"

#include "src/core/decision_tree.h"
#include "src/core/espresso.h"
#include "src/core/timeline.h"
#include "src/util/logging.h"

namespace espresso {

namespace {

TreeConfig MakeTreeConfig(const ClusterSpec& cluster, const Compressor& compressor) {
  return TreeConfig{cluster.machines, cluster.gpus_per_machine,
                    compressor.SupportsCompressedAggregation()};
}

Op CommOp(CommPhase phase, Routine routine, double domain, double payload, bool compressed) {
  Op op;
  op.task = ActionTask::kComm;
  op.phase = phase;
  op.routine = routine;
  op.domain_fraction = domain;
  op.payload_fraction = payload;
  op.compressed = compressed;
  return op;
}

Op CompOp(CommPhase phase, double domain, Device device) {
  Op op;
  op.task = ActionTask::kCompress;
  op.phase = phase;
  op.device = device;
  op.domain_fraction = domain;
  op.payload_fraction = domain;
  return op;
}

Op DecompOp(CommPhase phase, double domain, size_t fan_in, double payload, Device device) {
  Op op;
  op.task = ActionTask::kDecompress;
  op.phase = phase;
  op.device = device;
  op.domain_fraction = domain;
  op.fan_in = fan_in;
  op.payload_fraction = payload;
  return op;
}

}  // namespace

CompressionOption InterOnlyIndivisibleOption(const ClusterSpec& cluster, Device device) {
  const auto g = static_cast<double>(cluster.gpus_per_machine);
  CompressionOption option;
  option.flat = !(cluster.machines > 1 && cluster.gpus_per_machine > 1);
  if (option.flat) {
    option.label = "flat[comp+agc+dec]";
    option.ops = {CompOp(CommPhase::kFlat, 1.0, device),
                  CommOp(CommPhase::kFlat, Routine::kAllgather, 1.0, 1.0, true),
                  DecompOp(CommPhase::kFlat, 1.0, cluster.total_gpus(), 1.0, device)};
    return option;
  }
  option.label = "hier[rs|comp+agc+dec|ag]";
  option.ops = {CommOp(CommPhase::kIntraFirst, Routine::kReduceScatter, 1.0, 1.0, false),
                CompOp(CommPhase::kInter, 1.0 / g, device),
                CommOp(CommPhase::kInter, Routine::kAllgather, 1.0 / g, 1.0 / g, true),
                DecompOp(CommPhase::kInter, 1.0 / g, cluster.machines, 1.0 / g, device),
                CommOp(CommPhase::kIntraSecond, Routine::kAllgather, 1.0, 1.0 / g, false)};
  return option;
}

CompressionOption InterOnlyDivisibleOption(const ClusterSpec& cluster, Device device) {
  const auto g = static_cast<double>(cluster.gpus_per_machine);
  const auto m = static_cast<double>(cluster.machines);
  CompressionOption option;
  option.flat = !(cluster.machines > 1 && cluster.gpus_per_machine > 1);
  if (option.flat) {
    const auto p = static_cast<double>(cluster.total_gpus());
    option.label = "flat[comp+a2ac+dec+comp+agc+dec]";
    option.ops = {CompOp(CommPhase::kFlat, 1.0, device),
                  CommOp(CommPhase::kFlat, Routine::kAlltoall, 1.0, 1.0 / p, true),
                  DecompOp(CommPhase::kFlat, 1.0 / p, cluster.total_gpus(), 1.0 / p, device),
                  CompOp(CommPhase::kFlat, 1.0 / p, device),
                  CommOp(CommPhase::kFlat, Routine::kAllgather, 1.0, 1.0 / p, true),
                  DecompOp(CommPhase::kFlat, 1.0, cluster.total_gpus(), 1.0 / p, device)};
    return option;
  }
  option.label = "hier[rs|comp+a2ac+dec+comp+agc+dec|ag]";
  option.ops = {
      CommOp(CommPhase::kIntraFirst, Routine::kReduceScatter, 1.0, 1.0, false),
      CompOp(CommPhase::kInter, 1.0 / g, device),
      CommOp(CommPhase::kInter, Routine::kAlltoall, 1.0 / g, 1.0 / (g * m), true),
      DecompOp(CommPhase::kInter, 1.0 / (g * m), cluster.machines, 1.0 / (g * m), device),
      CompOp(CommPhase::kInter, 1.0 / (g * m), device),
      CommOp(CommPhase::kInter, Routine::kAllgather, 1.0 / g, 1.0 / (g * m), true),
      DecompOp(CommPhase::kInter, 1.0 / g, cluster.machines, 1.0 / (g * m), device),
      CommOp(CommPhase::kIntraSecond, Routine::kAllgather, 1.0, 1.0 / g, false)};
  return option;
}

CompressionOption AlltoallAlltoallOption(const ClusterSpec& cluster, Device device) {
  ESP_CHECK(cluster.machines > 1 && cluster.gpus_per_machine > 1);
  const auto g = static_cast<double>(cluster.gpus_per_machine);
  const auto m = static_cast<double>(cluster.machines);
  CompressionOption option;
  option.label = "hier[comp+a2ac+dec|comp+a2ac+dec+comp+agc+dec|ag]";
  option.ops = {
      CompOp(CommPhase::kIntraFirst, 1.0, device),
      CommOp(CommPhase::kIntraFirst, Routine::kAlltoall, 1.0, 1.0 / g, true),
      DecompOp(CommPhase::kIntraFirst, 1.0 / g, cluster.gpus_per_machine, 1.0 / g, device),
      CompOp(CommPhase::kInter, 1.0 / g, device),
      CommOp(CommPhase::kInter, Routine::kAlltoall, 1.0 / g, 1.0 / (g * m), true),
      DecompOp(CommPhase::kInter, 1.0 / (g * m), cluster.machines, 1.0 / (g * m), device),
      CompOp(CommPhase::kInter, 1.0 / (g * m), device),
      CommOp(CommPhase::kInter, Routine::kAllgather, 1.0 / g, 1.0 / (g * m), true),
      DecompOp(CommPhase::kInter, 1.0 / g, cluster.machines, 1.0 / (g * m), device),
      CommOp(CommPhase::kIntraSecond, Routine::kAllgather, 1.0, 1.0 / g, false)};
  return option;
}

Strategy Fp32Strategy(const ModelProfile& model, const ClusterSpec& cluster) {
  const TreeConfig config{cluster.machines, cluster.gpus_per_machine, false};
  return UniformStrategy(model.tensors.size(), DefaultUncompressedOption(config));
}

Strategy HiPressStrategy(const ModelProfile& model, const ClusterSpec& cluster,
                         const Compressor& compressor) {
  // Selective compression by wall-clock comparison, per tensor, no interactions: compress
  // iff the saved communication time exceeds the added compression time.
  const TreeConfig config = MakeTreeConfig(cluster, compressor);
  const CompressionOption plain = DefaultUncompressedOption(config);
  const CompressionOption compressed = InterOnlyIndivisibleOption(cluster, Device::kGpu);
  // HiPress's selective rule is a size threshold derived from throughput ratios:
  // compare bandwidth terms only (zero link latency), so kernel-launch overheads — not
  // collective latency constants — decide the small-tensor cutoff.
  ClusterSpec latency_free = cluster;
  latency_free.intra.latency_s = 0.0;
  latency_free.inter.latency_s = 0.0;
  TimelineEvaluator evaluator(model, latency_free, compressor);
  Strategy strategy = UniformStrategy(model.tensors.size(), plain);
  for (size_t i = 0; i < model.tensors.size(); ++i) {
    const size_t elements = model.tensors[i].elements;
    double plain_time = 0.0;
    for (const Op& op : plain.ops) {
      plain_time += evaluator.OpDuration(op, elements);
    }
    double compressed_time = 0.0;
    for (const Op& op : compressed.ops) {
      compressed_time += evaluator.OpDuration(op, elements);
    }
    if (compressed_time < plain_time) {
      strategy.options[i] = compressed;
    }
  }
  return strategy;
}

Strategy HiTopKCommStrategy(const ModelProfile& model, const ClusterSpec& cluster,
                            const Compressor& compressor) {
  // Compresses every tensor with GPUs (prohibitive compression overhead on models with
  // many tensors, §5.2.1/§5.2.3), inter-machine only, divisible scheme.
  (void)compressor;
  return UniformStrategy(model.tensors.size(),
                         InterOnlyDivisibleOption(cluster, Device::kGpu));
}

Strategy BytePSCompressStrategy(const ModelProfile& model, const ClusterSpec& cluster,
                                const Compressor& compressor) {
  // Parameter-server style (BytePS [78]): the machine's gradient is reduced to a local
  // root, CPU-compressed as a FULL tensor, pushed to / pulled from the server tier
  // (gather + broadcast), and decompressed on CPUs — no intra-machine sharding of the
  // compression work, which is why CPU compression of huge tensors (VGG16's fc layers,
  // UGATIT's style MLPs) backfires (§5.2.1, §5.2.3).
  (void)compressor;
  const Device dev = Device::kCpu;
  CompressionOption option;
  option.flat = !(cluster.machines > 1 && cluster.gpus_per_machine > 1);
  if (option.flat) {
    option.label = "flat[comp+gc+dec+comp+bcc+dec]";
    option.ops = {CompOp(CommPhase::kFlat, 1.0, dev),
                  CommOp(CommPhase::kFlat, Routine::kGather, 1.0, 1.0, true),
                  DecompOp(CommPhase::kFlat, 1.0, cluster.total_gpus(), 1.0, dev),
                  CompOp(CommPhase::kFlat, 1.0, dev),
                  CommOp(CommPhase::kFlat, Routine::kBroadcast, 1.0, 1.0, true),
                  DecompOp(CommPhase::kFlat, 1.0, 1, 1.0, dev)};
  } else {
    option.label = "hier[red|comp+gc+dec+comp+bcc+dec|bc]";
    option.ops = {CommOp(CommPhase::kIntraFirst, Routine::kReduce, 1.0, 1.0, false),
                  CompOp(CommPhase::kInter, 1.0, dev),
                  CommOp(CommPhase::kInter, Routine::kGather, 1.0, 1.0, true),
                  DecompOp(CommPhase::kInter, 1.0, cluster.machines, 1.0, dev),
                  CompOp(CommPhase::kInter, 1.0, dev),
                  CommOp(CommPhase::kInter, Routine::kBroadcast, 1.0, 1.0, true),
                  DecompOp(CommPhase::kInter, 1.0, 1, 1.0, dev),
                  CommOp(CommPhase::kIntraSecond, Routine::kBroadcast, 1.0, 1.0, false)};
  }
  for (Op& op : option.ops) {
    if (op.task != ActionTask::kComm) {
      op.machine_level = true;
    }
  }
  return UniformStrategy(model.tensors.size(), option);
}

Strategy CrippledStrategy(const ModelProfile& model, const ClusterSpec& cluster,
                          const Compressor& compressor, CrippledDimension dimension) {
  const TreeConfig config = MakeTreeConfig(cluster, compressor);
  SelectorOptions options;
  switch (dimension) {
    case CrippledDimension::kAllCompression:
      options.force_compress_all = true;
      break;
    case CrippledDimension::kMyopicCompression:
      options.myopic = true;
      break;
    case CrippledDimension::kGpuCompression:
      options.enable_cpu_offload = false;
      break;
    case CrippledDimension::kCpuCompression:
      options.force_cpu = true;
      break;
    case CrippledDimension::kInterAllgather:
      options.candidates = {DefaultUncompressedOption(config),
                            InterOnlyIndivisibleOption(cluster, Device::kGpu)};
      break;
    case CrippledDimension::kInterAlltoall:
      options.candidates = {DefaultUncompressedOption(config),
                            InterOnlyDivisibleOption(cluster, Device::kGpu)};
      break;
    case CrippledDimension::kAlltoallAlltoall:
      options.candidates = {DefaultUncompressedOption(config),
                            AlltoallAlltoallOption(cluster, Device::kGpu)};
      break;
  }
  EspressoSelector selector(model, cluster, compressor, std::move(options));
  return selector.Select().strategy;
}

}  // namespace espresso

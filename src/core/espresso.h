// Espresso's compression decision algorithm (§4.4).
//
// Stage 1 — Algorithm 1 (GPU compression): tensors are sorted by descending size and
// grouped; within a group, tensors closer to the output layer come first (Property 2).
// Tensors communicated before bubbles are ruled out, and re-ruled out whenever a new
// assignment creates new bubbles (Property 1, Remove()). For each remaining tensor,
// GetBestOption() scores the no-change candidate plus every GPU compression candidate by
// deriving the *full strategy timeline* — overheads, not wall-clock times, drive the
// choice (Property 3).
//
// Stage 2 — Algorithm 2 (CPU offloading): compressed tensors are grouped by (size,
// option); by Lemma 1 the optimal offload within a group is a prefix of the tensors
// farthest from the output layer, so only the product space over per-group offload
// counts U = {u_1..u_d} needs searching (Theorem 1). When that product exceeds a
// budget, per-group coordinate descent is used instead (and flagged in the result).
//
// Search acceleration: candidate scoring fans out across a ThreadPool
// (SelectorOptions::threads) through TimelineEvaluator's thread-safe non-mutating
// scoring entry points, and every F(S) query is memoized in a fingerprint-keyed LRU
// (SelectorOptions::cache_capacity). Both knobs are bit-exact: the accelerated
// selector returns the same strategy as the serial, uncached one — ties always resolve
// to the lowest candidate index. See docs/PERFORMANCE.md.
#ifndef SRC_CORE_ESPRESSO_H_
#define SRC_CORE_ESPRESSO_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/core/decision_tree.h"
#include "src/core/eval_cache.h"
#include "src/core/strategy.h"
#include "src/core/timeline.h"
#include "src/util/thread_pool.h"

namespace espresso::obs {
struct MetricsSnapshot;
}  // namespace espresso::obs

namespace espresso {

struct SelectorOptions {
  // Candidate options for GetBestOption; empty = CandidateOptions(tree config).
  std::vector<CompressionOption> candidates;
  bool force_compress_all = false;  // Figure 15 "All compression": skip Remove, drop the
                                    // uncompressed candidates
  bool myopic = false;              // Figure 15 "Myopic": score candidates by the sum of
                                    // their op durations instead of the strategy timeline
  bool enable_cpu_offload = true;   // run Algorithm 2 after Algorithm 1
  bool force_cpu = false;           // Figure 15 "CPU compression": all ops on CPUs
  // Ablation switch: skip Property 1's bubble-based elimination (Remove()). Every
  // tensor is then scored, trading selection time for (rarely) a better strategy.
  bool disable_bubble_elimination = false;
  // Algorithm 2 exhaustive-search budget; beyond it coordinate descent over the group
  // counts takes over (Lemma 1 still fixes the within-group order either way).
  size_t offload_search_budget = 3000;
  // Worker threads for candidate scoring (0 = score on the caller's thread). The
  // selected strategy is identical for any thread count.
  size_t threads = 0;
  // Capacity of the memoized F(S) cache (0 disables memoization). The cache is keyed
  // by 64-bit strategy fingerprints and scoped to this selector's evaluator
  // configuration; it is shared with the nested forced-compression trajectory.
  size_t cache_capacity = 1 << 16;
};

// Per-selection performance counters. Stage walls partition total_seconds; evaluation
// counts come from a single atomic incremented at the scoring chokepoint, so they stay
// accurate under parallel scoring (no hand-maintained tallies).
struct SelectorTelemetry {
  double algorithm1_seconds = 0.0;   // Algorithm 1 greedy pass
  double refine_seconds = 0.0;       // fixpoint refinement sweeps
  double trajectory_seconds = 0.0;   // uniform-seed + forced-compression trajectories
  double offload_seconds = 0.0;      // Algorithm 2
  double total_seconds = 0.0;
  uint64_t evaluations = 0;          // logical F(S) queries (cache hits included)
  uint64_t simulations = 0;          // timelines actually simulated (cache misses)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t threads = 0;                // scoring workers used

  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }

  // The registry view: rebuilds a telemetry aggregate from scraped
  // espresso_selector_* metrics (cumulative across every selection in the
  // process, not a single Select call). Missing metrics read as zero.
  static SelectorTelemetry FromMetricsSnapshot(const obs::MetricsSnapshot& snapshot);
};

struct SelectionResult {
  Strategy strategy;
  double iteration_time = 0.0;
  double gpu_stage_seconds = 0.0;      // Table 5: Algorithm 1 wall-clock
  double offload_stage_seconds = 0.0;  // Table 6: Algorithm 2 wall-clock
  size_t timeline_evaluations = 0;
  size_t offload_combinations = 0;     // |U| actually traversed
  size_t offload_tensor_count = 0;     // |T_gpu|
  bool offload_exact = true;           // false if coordinate descent was used
  SelectorTelemetry telemetry;
};

class EspressoSelector {
 public:
  EspressoSelector(const ModelProfile& model, const ClusterSpec& cluster,
                   const Compressor& compressor, SelectorOptions options = {});

  // Shares an externally owned evaluation cache instead of creating one. The cache's
  // fingerprints are only meaningful for ONE evaluator configuration, so the caller
  // must guarantee `shared_cache` was populated against an identical (model, cluster,
  // compressor) triple — the selection service keys its cache pool by the config
  // digests to uphold this. Also used internally by the nested forced-compression
  // trajectory (same evaluator configuration by construction).
  EspressoSelector(const ModelProfile& model, const ClusterSpec& cluster,
                   const Compressor& compressor, SelectorOptions options,
                   std::shared_ptr<EvaluationCache> shared_cache);

  // Full pipeline: Algorithm 1, then (if enabled) Algorithm 2. One selection at a
  // time per selector instance (scoring scratch and counters are per-instance).
  SelectionResult Select() const;

  // Algorithm 1 only. `evaluations` (optional) accumulates timeline-eval counts.
  Strategy SelectGpuCompression(size_t* evaluations = nullptr) const;

  // Algorithm 2 only, applied to the output of Algorithm 1.
  Strategy OffloadToCpu(const Strategy& gpu_strategy, size_t* combinations = nullptr,
                        bool* exact = nullptr, size_t* evaluations = nullptr) const;

  // One greedy improvement sweep over every tensor (GetBestOption without the bubble
  // elimination). Select() runs these to a fixpoint after Algorithm 1, which removes
  // the order dependence of the single greedy pass. Returns true if anything changed.
  bool RefineSweep(Strategy* strategy, size_t* evaluations = nullptr) const;

  const TimelineEvaluator& evaluator() const { return evaluator_; }
  // Null when SelectorOptions::cache_capacity == 0.
  const EvaluationCache* cache() const { return cache_.get(); }

 private:
  void Init();

  // Memoized, non-mutating score of `candidate` at `index` within `base` (whose
  // fingerprint is tracked by `hasher`). The only place evaluations are counted.
  double CachedScore(const Strategy& base, const StrategyHasher& hasher, size_t index,
                     const CompressionOption& candidate,
                     TimelineEvaluator::EvalContext* ctx) const;

  // Memoized full-strategy F(S) (fingerprint computed from scratch).
  double CachedIterationTime(const Strategy& strategy,
                             TimelineEvaluator::EvalContext* ctx) const;

  // Runs fn(first..last-1, context) over `count` items, chunked across the pool with
  // one EvalContext per chunk. Deterministic: with threads == 0 everything runs inline
  // on the caller's thread in index order.
  template <typename Fn>
  void ParallelFor(size_t count, const Fn& fn) const;

  // Scores every candidate against `base` with options[index] substituted, into
  // `times` (resized to candidates_.size()). Parallel when threads > 0. A candidate
  // equal to `skip` (if non-null) is left at +inf — the caller already scored it.
  void ScoreCandidates(const Strategy& base, const StrategyHasher& hasher, size_t index,
                       std::vector<double>* times,
                       const CompressionOption* skip) const;

  ModelProfile model_;
  TreeConfig tree_config_;
  SelectorOptions options_;
  TimelineEvaluator evaluator_;
  std::vector<CompressionOption> candidates_;
  CompressionOption default_option_;
  std::shared_ptr<EvaluationCache> cache_;        // null = memoization disabled
  mutable std::unique_ptr<ThreadPool> pool_;      // scoring workers (inline when 0)
  mutable std::deque<TimelineEvaluator::EvalContext> contexts_;  // one per chunk
  mutable std::atomic<uint64_t> evaluations_{0};  // logical F(S) queries
};

}  // namespace espresso

#endif  // SRC_CORE_ESPRESSO_H_

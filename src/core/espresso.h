// Espresso's compression decision algorithm (§4.4).
//
// Stage 1 — Algorithm 1 (GPU compression): tensors are sorted by descending size and
// grouped; within a group, tensors closer to the output layer come first (Property 2).
// Tensors communicated before bubbles are ruled out, and re-ruled out whenever a new
// assignment creates new bubbles (Property 1, Remove()). For each remaining tensor,
// GetBestOption() scores the no-change candidate plus every GPU compression candidate by
// deriving the *full strategy timeline* — overheads, not wall-clock times, drive the
// choice (Property 3).
//
// Stage 2 — Algorithm 2 (CPU offloading): compressed tensors are grouped by (size,
// option); by Lemma 1 the optimal offload within a group is a prefix of the tensors
// farthest from the output layer, so only the product space over per-group offload
// counts U = {u_1..u_d} needs searching (Theorem 1). When that product exceeds a
// budget, per-group coordinate descent is used instead (and flagged in the result).
#ifndef SRC_CORE_ESPRESSO_H_
#define SRC_CORE_ESPRESSO_H_

#include <cstddef>
#include <vector>

#include "src/core/decision_tree.h"
#include "src/core/strategy.h"
#include "src/core/timeline.h"

namespace espresso {

struct SelectorOptions {
  // Candidate options for GetBestOption; empty = CandidateOptions(tree config).
  std::vector<CompressionOption> candidates;
  bool force_compress_all = false;  // Figure 15 "All compression": skip Remove, drop the
                                    // uncompressed candidates
  bool myopic = false;              // Figure 15 "Myopic": score candidates by the sum of
                                    // their op durations instead of the strategy timeline
  bool enable_cpu_offload = true;   // run Algorithm 2 after Algorithm 1
  bool force_cpu = false;           // Figure 15 "CPU compression": all ops on CPUs
  // Ablation switch: skip Property 1's bubble-based elimination (Remove()). Every
  // tensor is then scored, trading selection time for (rarely) a better strategy.
  bool disable_bubble_elimination = false;
  // Algorithm 2 exhaustive-search budget; beyond it coordinate descent over the group
  // counts takes over (Lemma 1 still fixes the within-group order either way).
  size_t offload_search_budget = 3000;
};

struct SelectionResult {
  Strategy strategy;
  double iteration_time = 0.0;
  double gpu_stage_seconds = 0.0;      // Table 5: Algorithm 1 wall-clock
  double offload_stage_seconds = 0.0;  // Table 6: Algorithm 2 wall-clock
  size_t timeline_evaluations = 0;
  size_t offload_combinations = 0;     // |U| actually traversed
  size_t offload_tensor_count = 0;     // |T_gpu|
  bool offload_exact = true;           // false if coordinate descent was used
};

class EspressoSelector {
 public:
  EspressoSelector(const ModelProfile& model, const ClusterSpec& cluster,
                   const Compressor& compressor, SelectorOptions options = {});

  // Full pipeline: Algorithm 1, then (if enabled) Algorithm 2.
  SelectionResult Select() const;

  // Algorithm 1 only. `evaluations` (optional) accumulates timeline-eval counts.
  Strategy SelectGpuCompression(size_t* evaluations = nullptr) const;

  // Algorithm 2 only, applied to the output of Algorithm 1.
  Strategy OffloadToCpu(const Strategy& gpu_strategy, size_t* combinations = nullptr,
                        bool* exact = nullptr, size_t* evaluations = nullptr) const;

  // One greedy improvement sweep over every tensor (GetBestOption without the bubble
  // elimination). Select() runs these to a fixpoint after Algorithm 1, which removes
  // the order dependence of the single greedy pass. Returns true if anything changed.
  bool RefineSweep(Strategy* strategy, size_t* evaluations = nullptr) const;

  const TimelineEvaluator& evaluator() const { return evaluator_; }

 private:
  // Scores `candidate_option` for tensor `index` within `strategy`.
  double Score(Strategy& strategy, size_t index, const CompressionOption& candidate) const;

  ModelProfile model_;
  TreeConfig tree_config_;
  SelectorOptions options_;
  TimelineEvaluator evaluator_;
  std::vector<CompressionOption> candidates_;
  CompressionOption default_option_;
};

}  // namespace espresso

#endif  // SRC_CORE_ESPRESSO_H_

// The timeline engine: derives the full computation/communication/compression timeline
// of one training iteration under a compression strategy, and from it the iteration
// time F(S) (§4.3 "Expressing interactions", §4.4.1).
//
// The engine exploits data-parallel symmetry (every GPU runs the same op sequence on
// equal shards) and simulates one representative GPU and machine over four contended
// resources:
//   gpu    — serial stream shared by backward-compute kernels and GPU (de)compression
//            kernels; sharing is what makes GPU compression "compete for GPU resources
//            with tensor computation" (§3.1, Figure 2(c));
//   cpu    — pool of CPU compression workers (off the GPU critical path);
//   intra  — the intra-machine fabric (NVLink or PCIe);
//   inter  — the machine's NIC.
// Tensor pipelines are chains: backward(i) -> op1 -> op2 -> ... with WFBP FIFO priority
// (tensors closer to the output layer enqueue first). Bubbles, overlaps, and the
// communication/compression *overheads* of §3 all emerge from this schedule.
#ifndef SRC_CORE_TIMELINE_H_
#define SRC_CORE_TIMELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/compress/compressor.h"
#include "src/core/strategy.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_profile.h"
#include "src/sim/engine.h"

namespace espresso {

// One scheduled interval attributed to a tensor, for traces and bubble analysis.
struct TimelineEntry {
  size_t tensor = 0;
  std::string kind;     // "compute", "compress", "decompress", or a routine name
  std::string resource; // "gpu", "cpu", "intra", "inter"
  double start = 0.0;
  double end = 0.0;
};

struct TimelineResult {
  double makespan = 0.0;        // backward start -> last synchronization completes
  double iteration_time = 0.0;  // forward + makespan + optimizer
  std::vector<TimelineEntry> entries;  // only filled when record_entries is set
};

// Per-resource execution-speed multipliers applied to the simulated iteration. Factors
// below 1 slow the resource down (a straggler GPU, a CPU-contention spike, a congested
// fabric); 1 is the profiled baseline. The fault injector produces these per iteration.
struct ResourceScales {
  double gpu = 1.0;
  double cpu = 1.0;
  double intra = 1.0;
  double inter = 1.0;

  bool Neutral() const { return gpu == 1.0 && cpu == 1.0 && intra == 1.0 && inter == 1.0; }
};

class TimelineEvaluator {
 public:
  // `compressor` supplies payload sizing (CompressedBytes); it must outlive the
  // evaluator. `zero_compression_cost` prices all (de)compression at zero — the Upper
  // Bound configuration of §5.1.
  TimelineEvaluator(const ModelProfile& model, const ClusterSpec& cluster,
                    const Compressor& compressor, bool zero_compression_cost = false);

  // Iteration time F(S). The hot path of the decision algorithm.
  double IterationTime(const Strategy& strategy) const;

  // Installs fault-injected speed multipliers applied to every subsequent simulation
  // (compute on the gpu scale as well as pipeline ops). Scales must be positive.
  void SetResourceScales(const ResourceScales& scales);
  const ResourceScales& resource_scales() const { return resource_scales_; }

  // Full evaluation with per-op entries for traces/plots.
  TimelineResult Evaluate(const Strategy& strategy, bool record_entries) const;

  // Bubble analysis for Algorithm 1's Remove(): flags tensors whose communications all
  // complete before the last bubble (idle gap) of the links they use — compressing them
  // only widens the gap (§4.4.2 Property 1, Figure 9).
  std::vector<bool> BeforeBubble(const Strategy& strategy) const;

  // Wall-clock duration of a single op on a tensor with `elements` floats. Exposed for
  // tests and for Figure 10 (benefit-ratio) style analyses.
  double OpDuration(const Op& op, size_t elements) const;

  const ModelProfile& model() const { return model_; }
  const ClusterSpec& cluster() const { return cluster_; }
  const Compressor& compressor() const { return compressor_; }

 private:
  // Allocation-light per-op record used on the decision algorithm's hot path; Evaluate
  // converts these to named TimelineEntry values on demand.
  struct RawEntry {
    size_t tensor;
    size_t op_index;  // index into the option's ops, or kComputeOp / kHostCopyOp
    ResourceId resource;
    double start;
    double end;
  };
  static constexpr size_t kComputeOp = SIZE_MAX - 1;
  static constexpr size_t kHostCopyOp = SIZE_MAX;

  // Builds and runs the schedule; fills per-op raw records when requested.
  double RunRaw(const Strategy& strategy, std::vector<RawEntry>* raw) const;

  // Converts raw records to named entries (trace/verifier representation).
  std::vector<TimelineEntry> ToEntries(const Strategy& strategy,
                                       const std::vector<RawEntry>& raw) const;

  ModelProfile model_;
  ClusterSpec cluster_;
  const Compressor& compressor_;
  CompressionCostModel cost_model_;
  bool zero_compression_cost_;
  ResourceScales resource_scales_;
  LinkSpec inter_link_;  // NIC bandwidth divided by the g flows sharing it
  LinkSpec flat_link_;
};

}  // namespace espresso

#endif  // SRC_CORE_TIMELINE_H_

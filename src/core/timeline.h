// The timeline engine: derives the full computation/communication/compression timeline
// of one training iteration under a compression strategy, and from it the iteration
// time F(S) (§4.3 "Expressing interactions", §4.4.1).
//
// The engine exploits data-parallel symmetry (every GPU runs the same op sequence on
// equal shards) and simulates one representative GPU and machine over four contended
// resources:
//   gpu    — serial stream shared by backward-compute kernels and GPU (de)compression
//            kernels; sharing is what makes GPU compression "compete for GPU resources
//            with tensor computation" (§3.1, Figure 2(c));
//   cpu    — pool of CPU compression workers (off the GPU critical path);
//   intra  — the intra-machine fabric (NVLink or PCIe);
//   inter  — the machine's NIC.
// Tensor pipelines are chains: backward(i) -> op1 -> op2 -> ... with WFBP FIFO priority
// (tensors closer to the output layer enqueue first). Bubbles, overlaps, and the
// communication/compression *overheads* of §3 all emerge from this schedule.
#ifndef SRC_CORE_TIMELINE_H_
#define SRC_CORE_TIMELINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/compress/compressor.h"
#include "src/core/strategy.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_profile.h"
#include "src/sim/engine.h"

namespace espresso {

// One scheduled interval attributed to a tensor, for traces and bubble analysis.
struct TimelineEntry {
  size_t tensor = 0;
  std::string kind;     // "compute", "compress", "decompress", or a routine name
  std::string resource; // "gpu", "cpu", "intra", "inter"
  double start = 0.0;
  double end = 0.0;
};

struct TimelineResult {
  double makespan = 0.0;        // backward start -> last synchronization completes
  double iteration_time = 0.0;  // forward + makespan + optimizer
  std::vector<TimelineEntry> entries;  // only filled when record_entries is set
};

// Per-resource execution-speed multipliers applied to the simulated iteration. Factors
// below 1 slow the resource down (a straggler GPU, a CPU-contention spike, a congested
// fabric); 1 is the profiled baseline. The fault injector produces these per iteration.
struct ResourceScales {
  double gpu = 1.0;
  double cpu = 1.0;
  double intra = 1.0;
  double inter = 1.0;

  bool Neutral() const { return gpu == 1.0 && cpu == 1.0 && intra == 1.0 && inter == 1.0; }
};

class TimelineEvaluator {
 public:
  // Reusable per-call scratch for the simulation: the engine (tasks, event heap,
  // resources) and the op-record buffers survive across evaluations, so the decision
  // algorithm's hot loop runs allocation-free after warm-up. A context belongs to one
  // caller thread at a time; parallel scoring workers each own one. Evaluation results
  // are byte-identical with and without a context.
  class EvalContext;

  // `compressor` supplies payload sizing (CompressedBytes); it must outlive the
  // evaluator. `zero_compression_cost` prices all (de)compression at zero — the Upper
  // Bound configuration of §5.1.
  TimelineEvaluator(const ModelProfile& model, const ClusterSpec& cluster,
                    const Compressor& compressor, bool zero_compression_cost = false);

  // Iteration time F(S). The hot path of the decision algorithm. Thread-safe: the
  // evaluator keeps no mutable simulation state — each call works off its own (or the
  // supplied) EvalContext.
  double IterationTime(const Strategy& strategy) const;
  double IterationTime(const Strategy& strategy, EvalContext* ctx) const;

  // F(S') where S' is `strategy` with options[index] replaced by `candidate`, WITHOUT
  // mutating (or copying) the caller's strategy. This is the selector's candidate
  // scoring entry point; it replaces the old save/mutate/evaluate/restore dance.
  double ScoreWithOption(const Strategy& strategy, size_t index,
                         const CompressionOption& candidate,
                         EvalContext* ctx = nullptr) const;

  // F(S') where S' substitutes overrides[i] (when non-null) for options[i]. Used by
  // the CPU-offload odometer to evaluate many-tensor device moves without
  // materializing a strategy per visit. `overrides` must have strategy.size() entries.
  double ScoreWithOverrides(const Strategy& strategy,
                            const CompressionOption* const* overrides,
                            EvalContext* ctx = nullptr) const;

  // Number of timeline simulations actually run (cache hits in the selector skip the
  // simulation and do not count). Accurate under parallel scoring.
  uint64_t simulations() const { return simulations_.load(std::memory_order_relaxed); }

  // Installs fault-injected speed multipliers applied to every subsequent simulation
  // (compute on the gpu scale as well as pipeline ops). Scales must be positive.
  void SetResourceScales(const ResourceScales& scales);
  const ResourceScales& resource_scales() const { return resource_scales_; }

  // Full evaluation with per-op entries for traces/plots.
  TimelineResult Evaluate(const Strategy& strategy, bool record_entries) const;

  // Bubble analysis for Algorithm 1's Remove(): flags tensors whose communications all
  // complete before the last bubble (idle gap) of the links they use — compressing them
  // only widens the gap (§4.4.2 Property 1, Figure 9).
  std::vector<bool> BeforeBubble(const Strategy& strategy,
                                 EvalContext* ctx = nullptr) const;

  // Wall-clock duration of a single op on a tensor with `elements` floats. Exposed for
  // tests and for Figure 10 (benefit-ratio) style analyses.
  double OpDuration(const Op& op, size_t elements) const;

  const ModelProfile& model() const { return model_; }
  const ClusterSpec& cluster() const { return cluster_; }
  const Compressor& compressor() const { return compressor_; }

 private:
  // Allocation-light per-op record used on the decision algorithm's hot path; Evaluate
  // converts these to named TimelineEntry values on demand.
  struct RawEntry {
    size_t tensor;
    size_t op_index;  // index into the option's ops, or kComputeOp / kHostCopyOp
    ResourceId resource;
    double start;
    double end;
  };
  static constexpr size_t kComputeOp = SIZE_MAX - 1;
  static constexpr size_t kHostCopyOp = SIZE_MAX;

  // Scheduled-op bookkeeping kept only when records are requested (or under
  // ESPRESSO_VERIFY_SCHEDULES).
  struct OpTaskRec {
    size_t tensor;
    size_t op_index;  // kHostCopyOp marks a host copy
    ResourceId resource;
    TaskId task;
  };

  // The strategy being simulated, with up to one substitution scheme applied: a single
  // (index, option) override, or a per-index override table. Lets the scoring entry
  // points evaluate modified strategies with zero copies.
  struct OptionView {
    const Strategy* strategy = nullptr;
    size_t index = SIZE_MAX;                              // single-override index
    const CompressionOption* single = nullptr;            // single-override option
    const CompressionOption* const* table = nullptr;      // per-index override table

    const CompressionOption& at(size_t i) const {
      if (table != nullptr && table[i] != nullptr) {
        return *table[i];
      }
      if (single != nullptr && i == index) {
        return *single;
      }
      return strategy->options[i];
    }
  };

  // Builds and runs the schedule; fills per-op raw records when requested. Uses the
  // context's engine and buffers (a local context when ctx is null).
  double RunRaw(const OptionView& view, std::vector<RawEntry>* raw,
                EvalContext* ctx) const;

  // Converts raw records to named entries (trace/verifier representation).
  std::vector<TimelineEntry> ToEntries(const Strategy& strategy,
                                       const std::vector<RawEntry>& raw) const;

  ModelProfile model_;
  ClusterSpec cluster_;
  const Compressor& compressor_;
  CompressionCostModel cost_model_;
  bool zero_compression_cost_;
  ResourceScales resource_scales_;
  LinkSpec inter_link_;  // NIC bandwidth divided by the g flows sharing it
  LinkSpec flat_link_;
  mutable std::atomic<uint64_t> simulations_{0};
};

class TimelineEvaluator::EvalContext {
 public:
  EvalContext() = default;
  EvalContext(const EvalContext&) = delete;
  EvalContext& operator=(const EvalContext&) = delete;

 private:
  friend class TimelineEvaluator;
  SimEngine engine;
  bool engine_ready = false;  // resources added and matching cpu_lanes
  size_t cpu_lanes = 0;
  std::vector<TaskId> compute_tasks;
  std::vector<OpTaskRec> op_tasks;
  std::vector<RawEntry> raw_scratch;  // BeforeBubble / verification records
};

}  // namespace espresso

#endif  // SRC_CORE_TIMELINE_H_

#include "src/core/strategy_io.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "src/util/atomic_file.h"
#include "src/util/config.h"
#include "src/util/logging.h"
#include "src/util/parse_number.h"

namespace espresso {

namespace {

// Hostile-input guards: a fuzzed header like "tensors = 99999999999" must produce a
// diagnostic, not a multi-gigabyte resize; the fraction/fan bounds mirror what any
// legal decision-tree option can contain.
constexpr int64_t kMaxTensors = 1'000'000;
constexpr size_t kMaxFanIn = 1'000'000;
constexpr size_t kMaxOpsPerTensor = 1'000;

bool ValidFraction(double f) { return std::isfinite(f) && f > 0.0 && f <= 1.0; }

void WriteOp(std::ostream& os, const Op& op) {
  os << "op = " << ActionTaskToken(op.task) << ' ';
  if (op.task == ActionTask::kComm) {
    os << RoutineName(op.routine);
  } else {
    os << DeviceToken(op.device);
  }
  os << ' ' << CommPhaseName(op.phase) << " domain=" << op.domain_fraction
     << " payload=" << op.payload_fraction << " fan=" << op.fan_in << ' '
     << (op.compressed ? "compressed" : "raw");
  if (op.machine_level) {
    os << " machine-level";
  }
  os << '\n';
}

std::optional<Op> ParseOp(std::string_view value, std::string* error) {
  const std::vector<std::string> fields = SplitFields(value, " ");
  if (fields.size() < 6) {
    *error = "op line needs at least 6 fields";
    return std::nullopt;
  }
  Op op;
  const auto task = ParseActionTaskToken(fields[0]);
  if (!task) {
    *error = "unknown op task '" + fields[0] + "'";
    return std::nullopt;
  }
  op.task = *task;
  if (op.task == ActionTask::kComm) {
    const auto routine = ParseRoutineToken(fields[1]);
    if (!routine) {
      *error = "unknown routine '" + fields[1] + "'";
      return std::nullopt;
    }
    op.routine = *routine;
  } else if (const auto device = ParseDeviceToken(fields[1])) {
    op.device = *device;
  } else {
    *error = "unknown device '" + fields[1] + "'";
    return std::nullopt;
  }
  const auto phase = ParseCommPhaseToken(fields[2]);
  if (!phase) {
    *error = "unknown phase '" + fields[2] + "'";
    return std::nullopt;
  }
  op.phase = *phase;
  // Locale-independent, exception-free numeric attributes: std::stod would mis-parse
  // "domain=0.25" under a comma-decimal process locale and throw on "fan=1e999".
  for (size_t i = 3; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    NumberParse status = NumberParse::kOk;
    if (f.rfind("domain=", 0) == 0) {
      status = ParseDouble(f.substr(7), &op.domain_fraction);
    } else if (f.rfind("payload=", 0) == 0) {
      status = ParseDouble(f.substr(8), &op.payload_fraction);
    } else if (f.rfind("fan=", 0) == 0) {
      uint64_t fan = 0;
      status = ParseUint64(f.substr(4), &fan);
      if (status == NumberParse::kOk) {
        op.fan_in = static_cast<size_t>(fan);
      }
    } else if (f == "compressed") {
      op.compressed = true;
    } else if (f == "raw") {
      op.compressed = false;
    } else if (f == "machine-level") {
      op.machine_level = true;
    } else {
      *error = "unknown op attribute '" + f + "'";
      return std::nullopt;
    }
    if (status != NumberParse::kOk) {
      *error = "op attribute '" + f + "' " + NumberParseMessage(status);
      return std::nullopt;
    }
  }
  if (!ValidFraction(op.domain_fraction)) {
    *error = "domain fraction out of range (0, 1]";
    return std::nullopt;
  }
  if (!ValidFraction(op.payload_fraction)) {
    *error = "payload fraction out of range (0, 1]";
    return std::nullopt;
  }
  if (op.fan_in == 0 || op.fan_in > kMaxFanIn) {
    *error = "fan-in out of range [1, " + std::to_string(kMaxFanIn) + "]";
    return std::nullopt;
  }
  return op;
}

}  // namespace

const char* ActionTaskToken(ActionTask task) {
  switch (task) {
    case ActionTask::kCompress:
      return "compress";
    case ActionTask::kDecompress:
      return "decompress";
    case ActionTask::kComm:
      return "comm";
  }
  return "?";
}

const char* DeviceToken(Device device) { return device == Device::kGpu ? "gpu" : "cpu"; }

std::optional<ActionTask> ParseActionTaskToken(std::string_view token) {
  if (token == "compress") {
    return ActionTask::kCompress;
  }
  if (token == "decompress") {
    return ActionTask::kDecompress;
  }
  if (token == "comm") {
    return ActionTask::kComm;
  }
  return std::nullopt;
}

std::optional<Routine> ParseRoutineToken(std::string_view token) {
  static const std::map<std::string_view, Routine> kRoutines = {
      {"allreduce", Routine::kAllreduce},   {"reduce-scatter", Routine::kReduceScatter},
      {"allgather", Routine::kAllgather},   {"reduce", Routine::kReduce},
      {"broadcast", Routine::kBroadcast},   {"alltoall", Routine::kAlltoall},
      {"gather", Routine::kGather},
  };
  const auto it = kRoutines.find(token);
  return it == kRoutines.end() ? std::nullopt : std::optional<Routine>(it->second);
}

std::optional<CommPhase> ParseCommPhaseToken(std::string_view token) {
  if (token == "flat") {
    return CommPhase::kFlat;
  }
  if (token == "intra1") {
    return CommPhase::kIntraFirst;
  }
  if (token == "inter") {
    return CommPhase::kInter;
  }
  if (token == "intra2") {
    return CommPhase::kIntraSecond;
  }
  return std::nullopt;
}

std::optional<Device> ParseDeviceToken(std::string_view token) {
  if (token == "gpu") {
    return Device::kGpu;
  }
  if (token == "cpu") {
    return Device::kCpu;
  }
  return std::nullopt;
}

void WriteStrategy(std::ostream& os, const Strategy& strategy) {
  os << "# espresso strategy v1\n";
  os << "tensors = " << strategy.options.size() << "\n";
  for (size_t t = 0; t < strategy.options.size(); ++t) {
    const CompressionOption& option = strategy.options[t];
    os << "[tensor " << t << "]\n";
    if (!option.label.empty()) {
      os << "label = " << option.label << "\n";
    }
    os << "flat = " << (option.flat ? "true" : "false") << "\n";
    for (const Op& op : option.ops) {
      WriteOp(os, op);
    }
  }
}

std::string StrategyToString(const Strategy& strategy) {
  std::ostringstream os;
  WriteStrategy(os, strategy);
  return os.str();
}

StrategyParseResult ReadStrategy(std::istream& in) {
  StrategyParseResult result;
  const ConfigFile file = ConfigFile::Parse(in);
  if (!file.ok()) {
    result.error = file.error();
    return result;
  }
  const auto count = file.GetInt("", "tensors");
  if (!count || *count < 0) {
    result.error = "missing 'tensors = N' header";
    return result;
  }
  if (*count > kMaxTensors) {
    result.error = "implausible tensor count " + std::to_string(*count) +
                   " (limit " + std::to_string(kMaxTensors) + ")";
    return result;
  }
  // Entries() merges duplicated sections silently, which would double a tensor's op
  // list; sections the header does not announce would be dropped silently. Both are
  // corruption, so both are rejected up front.
  {
    std::map<std::string, int> seen;
    for (const auto& [name, line] : file.SectionHeaders()) {
      const auto [it, inserted] = seen.emplace(name, line);
      if (!inserted) {
        result.error = "duplicated section [" + name + "] (lines " +
                       std::to_string(it->second) + " and " + std::to_string(line) + ")";
        return result;
      }
      if (name.rfind("tensor ", 0) == 0) {
        const std::string index_text = name.substr(7);
        int64_t index = -1;
        if (ParseInt64(index_text, &index) != NumberParse::kOk) {
          index = -1;
        }
        if (index < 0 || index >= *count ||
            index_text != std::to_string(index)) {
          result.error = "section [" + name + "] is outside 'tensors = " +
                         std::to_string(*count) + "'";
          return result;
        }
      }
    }
  }
  result.strategy.options.resize(static_cast<size_t>(*count));
  for (size_t t = 0; t < result.strategy.options.size(); ++t) {
    const std::string section = "tensor " + std::to_string(t);
    if (!file.HasSection(section)) {
      result.error = "missing section [" + section + "]";
      return result;
    }
    CompressionOption& option = result.strategy.options[t];
    option.label = file.GetOr(section, "label", "");
    option.flat = file.GetBool(section, "flat").value_or(false);
    for (const auto& [key, value] : file.Entries(section)) {
      if (key != "op") {
        continue;
      }
      std::string error;
      const auto op = ParseOp(value, &error);
      if (!op) {
        result.error = "[" + section + "]: " + error;
        return result;
      }
      option.ops.push_back(*op);
      if (option.ops.size() > kMaxOpsPerTensor) {
        result.error = "[" + section + "] has more than " +
                       std::to_string(kMaxOpsPerTensor) + " ops";
        return result;
      }
    }
    if (option.ops.empty()) {
      result.error = "[" + section + "] has no ops";
      return result;
    }
  }
  result.ok = true;
  return result;
}

StrategyParseResult StrategyFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadStrategy(in);
}

bool WriteStrategyFile(const std::string& path, const Strategy& strategy) {
  // Temp-file + rename publication: a crash mid-write can never leave a torn (or
  // truncated) strategy file where a complete one used to be.
  return WriteFileAtomic(path, StrategyToString(strategy));
}

StrategyParseResult ReadStrategyFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    StrategyParseResult result;
    result.error = "cannot open " + path;
    return result;
  }
  return ReadStrategy(in);
}

}  // namespace espresso

// Versioned, digest-stamped strategy IR — the governed hand-off between offline
// selection and the training runtime (Figure 6), and the unit of deployment for
// online re-selection (DriftMonitor -> publish IR -> executors swap atomically).
//
// Where the v1 `.esp` text format (strategy_io.h) is a bare option list, the IR is a
// self-contained JSON document that says *what may run it*:
//   * `espresso_strategy_ir` — schema version; unknown versions are refused.
//   * `digests` — splitmix64 content digests of the model profile, cluster spec, and
//     compression configuration the strategy was selected for. A loader recomputes
//     them from its own job configuration and refuses a mismatch (fail-closed): a
//     strategy selected for 8x8 NVLink must not silently run on 4x4 PCIe.
//   * `payload_digest` — self-digest over every semantic field of the document, so
//     any tampering or torn write is detected at parse time.
//   * `provenance` — who selected it (origin, selector), at which training iteration,
//     under how much drift, and the selector's F(S) score.
//   * `tensors` — per-tensor option records (the ops, fully spelled out).
//
// The writer is canonical and byte-stable: the same StrategyIR always serializes to
// the same bytes (fixed key order, shortest round-trip doubles), so digests, diffs,
// and golden files are meaningful. Publication is atomic (temp file + rename).
#ifndef SRC_CORE_STRATEGY_IR_H_
#define SRC_CORE_STRATEGY_IR_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "src/compress/compressor.h"
#include "src/costmodel/calibration.h"
#include "src/core/strategy.h"
#include "src/models/model_profile.h"

namespace espresso {

inline constexpr int64_t kStrategyIrSchemaVersion = 1;

// Fixed-width lowercase hex rendering of a digest — the form digests take inside IR
// documents, diagnostics, and audit records (JSON numbers cannot carry every uint64).
std::string DigestHex(uint64_t digest);

// Config digests: 64-bit splitmix64 content hashes over every field that changes what
// a strategy means or whether it is legal. Stable across processes and builds.
uint64_t ModelDigest(const ModelProfile& model);
uint64_t ClusterDigest(const ClusterSpec& cluster);
uint64_t CompressionDigest(const CompressorConfig& config);

struct StrategyProvenance {
  std::string origin;    // publishing component, e.g. "espresso_cli", "online-reselector"
  std::string selector;  // producing algorithm, e.g. "espresso", "manual"
  uint64_t iteration = 0;  // training iteration of publication (0 for offline selection)
  double drift = 0.0;      // observed drift at publication (0 for offline selection)

  bool operator==(const StrategyProvenance&) const = default;
};

struct StrategyIR {
  int64_t schema_version = kStrategyIrSchemaVersion;
  uint64_t model_digest = 0;
  uint64_t cluster_digest = 0;
  uint64_t compression_digest = 0;
  double fs_score = 0.0;  // selector's F(S) for this strategy (simulator seconds)
  StrategyProvenance provenance;
  Strategy strategy;

  // Digest over every semantic field above (including option labels, which the
  // fingerprint deliberately ignores). This is what `payload_digest` stamps.
  uint64_t ContentDigest() const;
};

// Builds an IR for `strategy` as selected against the given job configuration.
StrategyIR CompileStrategyIR(const Strategy& strategy, double fs_score,
                             const ModelProfile& model, const ClusterSpec& cluster,
                             const CompressorConfig& compressor,
                             StrategyProvenance provenance);

// Canonical, byte-stable serialization (always ends with a newline).
void WriteStrategyIR(std::ostream& os, const StrategyIR& ir);
std::string StrategyIRToString(const StrategyIR& ir);

struct StrategyIRParseResult {
  bool ok = false;
  std::string error;  // "line N: ..." diagnostics on failure
  StrategyIR ir;
};

struct StrategyIRParseOptions {
  // When false, a payload_digest mismatch is tolerated (the caller downgraded it to a
  // warning via --force-digest); structural strictness is never relaxed.
  bool verify_payload_digest = true;
};

// Strict parse: unknown schema versions, missing fields, unknown keys, wrong types,
// out-of-range values, and (unless disabled) payload-digest mismatches are all
// refused with line-level diagnostics. Never throws, never aborts.
StrategyIRParseResult ParseStrategyIR(std::string_view text,
                                      const StrategyIRParseOptions& options = {});

// File helpers. Writing is atomic: temp file + rename, so a crashed writer can never
// leave a torn IR on disk. The parse result's `error` names the path on failure.
bool WriteStrategyIRFile(const std::string& path, const StrategyIR& ir,
                         std::string* error = nullptr);
StrategyIRParseResult ReadStrategyIRFile(const std::string& path,
                                         const StrategyIRParseOptions& options = {});

}  // namespace espresso

#endif  // SRC_CORE_STRATEGY_IR_H_

// The decision-tree abstraction (§4.2, Figures 7-8): enumerates every valid compression
// option for a tensor under the paper's three pruning rules:
//   1. an action task may only follow one of its valid connections (compress only when
//      the payload is uncompressed, decompress only when it is compressed, ...);
//   2. communication tasks must match their step (Comm1/Comm1_c only as first steps of
//      divisible schemes, Comm2/Comm2_c only as second steps);
//   3. first/second-step routines must pair by topology: Reduce-scatter and Alltoall
//      shard the tensor, so their second step is an Allgather; Reduce and Gather root
//      it, so their second step is a Broadcast.
// Intra-machine steps use divisible schemes only (§4.2.1, Dimension 4), and the
// decompress-aggregate-recompress stage of a divisible scheme may be skipped when the
// algorithm aggregates in the compressed domain (§4.2.2 footnote; shared-seed Random-k).
//
// EnumerateOptions returns the structural tree (every path, devices fixed to GPU);
// multiplying in the independent GPU/CPU choice per compress/decompress op gives the
// full |C| that §4.4.1 counts. CandidateOptions returns the pruned per-tensor candidate
// set Algorithm 1 scores — the elimination step that makes selection take milliseconds
// rather than hours (§4.4.2).
#ifndef SRC_CORE_DECISION_TREE_H_
#define SRC_CORE_DECISION_TREE_H_

#include <cstddef>
#include <vector>

#include "src/core/option.h"

namespace espresso {

struct TreeConfig {
  size_t machines = 8;
  size_t gpus_per_machine = 8;
  // Whether the GC algorithm can aggregate payloads without decompression.
  bool supports_compressed_aggregation = false;
  // User constraint (§4.2.2 "users can manually add constraints to prune the decision
  // tree"): maximum number of compression operations per tensor, to bound the
  // accumulated compression error of re-compressing pipelines. 0 = unlimited.
  size_t max_compress_ops = 0;

  bool Hierarchical() const { return machines > 1 && gpus_per_machine > 1; }
};

struct OptionSpace {
  std::vector<CompressionOption> options;  // structural paths, devices all-GPU

  // |C|: structural paths times the 2^slots device assignments of each.
  size_t TotalWithDeviceChoices() const;
  std::vector<CompressionOption> CompressedOnly() const;
};

// Every valid path through the decision tree (deduplicated).
OptionSpace EnumerateOptions(const TreeConfig& config);

// The option an uncompressed tensor uses by default: the standard hierarchical
// reduce-scatter / allreduce / allgather pipeline (BytePS-style), or flat allreduce when
// the cluster has a single communication level.
CompressionOption DefaultUncompressedOption(const TreeConfig& config);

// The pruned candidate set used by Algorithm 1's GetBestOption: representative options
// covering all four dimensions (inter-only indivisible & divisible, intra+inter, flat,
// plus uncompressed scheme changes), devices fixed to GPU. Dominated tree paths (e.g.
// rooted intra variants, which the cost model never prefers at these fan-outs) are
// eliminated here — this is the interaction-analysis pruning of §4.4.2.
std::vector<CompressionOption> CandidateOptions(const TreeConfig& config);

// Validates an option against the pruning rules; used by property tests (every
// enumerated path must validate) and by users adding hand-built options.
bool ValidateOption(const TreeConfig& config, const CompressionOption& option);

}  // namespace espresso

#endif  // SRC_CORE_DECISION_TREE_H_

#include "src/core/timeline.h"

#include <algorithm>
#include <cmath>

#include "src/costmodel/collective_cost.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/logging.h"

#ifdef ESPRESSO_VERIFY_SCHEDULES
#include "src/analysis/schedule_verifier.h"
#endif

namespace espresso {

namespace {

// Minimum idle gap that counts as a bubble. Gaps below this are collective-latency and
// scheduling noise between back-to-back small tensors, not the compute-gated idle
// periods Figure 9 depicts.
constexpr double kBubbleEpsilon = 100e-6;

// Tolerance for "this op started exactly when its predecessor finished".
constexpr double kChainEpsilon = 1e-9;

// Resource ids are fixed by construction order in Run().
enum FixedResource : ResourceId {
  kGpuResource = 0,
  kCpuResource = 1,
  kIntraResource = 2,
  kInterResource = 3,
};

const char* FixedResourceName(ResourceId id) {
  switch (id) {
    case kGpuResource:
      return "gpu";
    case kCpuResource:
      return "cpu";
    case kIntraResource:
      return "intra";
    case kInterResource:
      return "inter";
    default:
      return "?";
  }
}

// Recorded at the simulation chokepoint, so the counter tracks RunRaw exactly —
// the same quantity TimelineEvaluator::simulations() reports per instance.
obs::Counter SimulationsCounter() {
  static const obs::Counter counter = obs::GlobalMetrics().RegisterCounter(
      "espresso_timeline_simulations_total",
      "Timeline simulations executed (every TimelineEvaluator::RunRaw call)");
  return counter;
}

obs::Histogram EvaluateSecondsHistogram() {
  static const obs::Histogram histogram = obs::GlobalMetrics().RegisterHistogram(
      "espresso_timeline_evaluate_seconds",
      "Wall time of TimelineEvaluator::Evaluate calls", obs::DefaultTimeBuckets());
  return histogram;
}

}  // namespace

TimelineEvaluator::TimelineEvaluator(const ModelProfile& model, const ClusterSpec& cluster,
                                     const Compressor& compressor, bool zero_compression_cost)
    : model_(model),
      cluster_(cluster),
      compressor_(compressor),
      cost_model_(MakeCompressionCostModel(cluster, compressor.name())),
      zero_compression_cost_(zero_compression_cost) {
  // All g GPUs of a machine share one NIC, and the simulation follows one
  // representative GPU whose inter-machine ops carry 1/g of the model: price them at
  // 1/g of the NIC bandwidth so the representative timeline reflects the machine's full
  // egress load. Flat collectives span every GPU and share the NIC the same way.
  if (cluster_.machines > 1) {
    inter_link_ = cluster_.inter;
    inter_link_.bytes_per_second /= static_cast<double>(cluster_.gpus_per_machine);
    flat_link_ = inter_link_;
    flat_link_.name = "flat";
  } else {
    inter_link_ = cluster_.inter;
    flat_link_ = cluster_.intra;
  }
}

double TimelineEvaluator::OpDuration(const Op& op, size_t elements) const {
  const double domain_elements = op.domain_fraction * static_cast<double>(elements);
  const double domain_bytes = domain_elements * sizeof(float);
  const double payload_elements = op.payload_fraction * static_cast<double>(elements);

  // Machine-level CPU ops (parameter-server pipelines) recruit the whole host CPU with
  // partial parallel efficiency instead of one GPU's worker share.
  const double machine_boost = (op.machine_level && op.device == Device::kCpu)
                                   ? static_cast<double>(cluster_.gpus_per_machine)
                                   : 1.0;

  switch (op.task) {
    case ActionTask::kCompress: {
      if (zero_compression_cost_) {
        return 0.0;
      }
      return cost_model_.CompressTime(op.device, domain_bytes) / machine_boost;
    }
    case ActionTask::kDecompress: {
      if (zero_compression_cost_) {
        return 0.0;
      }
      const double payload_bytes = static_cast<double>(
          compressor_.CompressedBytes(static_cast<size_t>(std::llround(payload_elements))));
      return cost_model_.AggregateDecompressTime(op.device, domain_bytes, payload_bytes,
                                                 op.fan_in) /
             machine_boost;
    }
    case ActionTask::kComm: {
      const LinkSpec* link = nullptr;
      size_t p = 1;
      switch (op.phase) {
        case CommPhase::kFlat:
          link = &flat_link_;
          p = cluster_.total_gpus();
          break;
        case CommPhase::kIntraFirst:
        case CommPhase::kIntraSecond:
          link = &cluster_.intra;
          p = cluster_.gpus_per_machine;
          break;
        case CommPhase::kInter:
          link = &inter_link_;
          p = cluster_.machines;
          break;
      }
      const double payload_bytes =
          op.compressed
              ? static_cast<double>(compressor_.CompressedBytes(
                    static_cast<size_t>(std::llround(payload_elements))))
              : payload_elements * sizeof(float);
      switch (op.routine) {
        case Routine::kAllreduce:
          return AllreduceTime(p, domain_bytes, *link);
        case Routine::kReduceScatter:
          return ReduceScatterTime(p, domain_bytes, *link);
        case Routine::kAllgather:
          return AllgatherTime(p, payload_bytes, *link);
        case Routine::kReduce:
          return ReduceTime(p, domain_bytes, *link);
        case Routine::kBroadcast:
          return BroadcastTime(p, payload_bytes, *link);
        case Routine::kAlltoall:
          return AlltoallTime(p, payload_bytes, *link);
        case Routine::kGather:
          return GatherTime(p, payload_bytes, *link);
        case Routine::kNone:
          break;
      }
      ESP_CHECK(false) << "comm op without routine";
      return 0.0;
    }
  }
  return 0.0;
}

void TimelineEvaluator::SetResourceScales(const ResourceScales& scales) {
  ESP_CHECK_GT(scales.gpu, 0.0);
  ESP_CHECK_GT(scales.cpu, 0.0);
  ESP_CHECK_GT(scales.intra, 0.0);
  ESP_CHECK_GT(scales.inter, 0.0);
  resource_scales_ = scales;
}

double TimelineEvaluator::RunRaw(const OptionView& view, std::vector<RawEntry>* raw,
                                 EvalContext* ctx) const {
  const Strategy& strategy = *view.strategy;
  ESP_CHECK_EQ(strategy.options.size(), model_.tensors.size());
  const size_t n = model_.tensors.size();
  simulations_.fetch_add(1, std::memory_order_relaxed);
  obs::GlobalMetrics().Add(SimulationsCounter());

  EvalContext local;
  if (ctx == nullptr) {
    ctx = &local;
  }
  SimEngine& engine = ctx->engine;
  if (ctx->engine_ready && ctx->cpu_lanes == cluster_.cpu_workers_per_gpu) {
    engine.Reset();  // keeps task storage, event heap, and resource allocations
  } else {
    engine = SimEngine();
    const ResourceId gpu_id = engine.AddSerialResource("gpu");
    const ResourceId cpu_id = engine.AddPoolResource("cpu", cluster_.cpu_workers_per_gpu);
    const ResourceId intra_id = engine.AddSerialResource("intra");
    const ResourceId inter_id = engine.AddSerialResource("inter");
    ESP_CHECK_EQ(gpu_id, kGpuResource);
    ESP_CHECK_EQ(cpu_id, kCpuResource);
    ESP_CHECK_EQ(intra_id, kIntraResource);
    ESP_CHECK_EQ(inter_id, kInterResource);
    ctx->engine_ready = true;
    ctx->cpu_lanes = cluster_.cpu_workers_per_gpu;
  }
  constexpr ResourceId gpu = kGpuResource;
  constexpr ResourceId cpu = kCpuResource;
  constexpr ResourceId intra = kIntraResource;
  constexpr ResourceId inter = kInterResource;
  if (!resource_scales_.Neutral()) {
    engine.SetResourceSpeedFactor(gpu, resource_scales_.gpu);
    engine.SetResourceSpeedFactor(cpu, resource_scales_.cpu);
    engine.SetResourceSpeedFactor(intra, resource_scales_.intra);
    engine.SetResourceSpeedFactor(inter, resource_scales_.inter);
  }

  auto resource_for = [&](const Op& op) -> ResourceId {
    if (op.task == ActionTask::kComm) {
      switch (op.phase) {
        case CommPhase::kFlat:
          return cluster_.machines == 1 ? intra : inter;
        case CommPhase::kIntraFirst:
        case CommPhase::kIntraSecond:
          return intra;
        case CommPhase::kInter:
          return inter;
      }
    }
    return op.device == Device::kGpu ? gpu : cpu;
  };

  size_t task_estimate = n;
  for (size_t i = 0; i < n; ++i) {
    task_estimate += view.at(i).ops.size() + 2;
  }
  engine.ReserveTasks(task_estimate);

  // Backward-compute chain: compute(i) depends on compute(i-1). Added first so all
  // compute tasks have ids 0..n-1; pipeline ops of tensor i carry priority i, so a
  // compression kernel of tensor i wins the GPU over compute of tensor i+1 — the
  // contention of Figure 2(c).
  std::vector<TaskId>& compute_tasks = ctx->compute_tasks;
  compute_tasks.resize(n);
  for (size_t i = 0; i < n; ++i) {
    compute_tasks[i] = engine.AddChainTask(
        gpu, model_.tensors[i].backward_time_s,
        i == 0 ? SimEngine::kNoDependency : compute_tasks[i - 1], static_cast<int>(i));
  }

#ifdef ESPRESSO_VERIFY_SCHEDULES
  const bool record_ops = true;  // the verifier audits every schedule, recorded or not
#else
  const bool record_ops = raw != nullptr;
#endif
  std::vector<OpTaskRec>& op_tasks = ctx->op_tasks;
  op_tasks.clear();
  if (record_ops) {
    op_tasks.reserve(task_estimate - n);
  }
  const bool host_copies = cluster_.host_copy_contends_intra && !zero_compression_cost_;
  for (size_t i = 0; i < n; ++i) {
    TaskId prev = compute_tasks[i];
    const auto& option = view.at(i);
    for (size_t k = 0; k < option.ops.size(); ++k) {
      const Op& op = option.ops[k];
      const double domain_bytes =
          op.domain_fraction * static_cast<double>(model_.tensors[i].elements) * sizeof(float);
      // On PCIe machines the host copy feeding a CPU compressor shares the intra fabric.
      if (host_copies && op.task == ActionTask::kCompress && op.device == Device::kCpu) {
        prev = engine.AddChainTask(intra, cluster_.intra.TransferTime(domain_bytes),
                                   prev, static_cast<int>(i));
        if (record_ops) {
          op_tasks.push_back({i, kHostCopyOp, intra, prev});
        }
      }
      const double duration = OpDuration(op, model_.tensors[i].elements);
      const ResourceId resource = resource_for(op);
      const TaskId id =
          engine.AddChainTask(resource, duration, prev, static_cast<int>(i));
      if (record_ops) {
        op_tasks.push_back({i, k, resource, id});
      }
      prev = id;
      if (host_copies && op.task == ActionTask::kDecompress && op.device == Device::kCpu) {
        prev = engine.AddChainTask(intra, cluster_.intra.TransferTime(domain_bytes),
                                   prev, static_cast<int>(i));
        if (record_ops) {
          op_tasks.push_back({i, kHostCopyOp, intra, prev});
        }
      }
    }
  }

  engine.Run();

  if (raw != nullptr) {
    raw->clear();
    raw->reserve(n + op_tasks.size());
    for (size_t i = 0; i < n; ++i) {
      raw->push_back(RawEntry{i, kComputeOp, kGpuResource,
                              engine.TaskStart(compute_tasks[i]),
                              engine.TaskEnd(compute_tasks[i])});
    }
    for (const OpTaskRec& ot : op_tasks) {
      raw->push_back(RawEntry{ot.tensor, ot.op_index, ot.resource,
                              engine.TaskStart(ot.task), engine.TaskEnd(ot.task)});
    }
  }
#ifdef ESPRESSO_VERIFY_SCHEDULES
  {
    // Verification build: every simulated timeline — the decision algorithm's hot loop
    // included, from serial and parallel scoring workers alike — must satisfy the
    // scheduling invariants. Cache hits in the selector never reach this point; they
    // return a previously verified F(S) without re-simulating (see docs/PERFORMANCE.md).
    // The ops we just scheduled are re-collected when the caller did not ask for
    // records, and any scoring overrides are materialized for the verifier's
    // strategy-conformance audits.
    std::vector<RawEntry> verify_raw;
    if (raw == nullptr) {
      verify_raw.reserve(n + op_tasks.size());
      for (size_t i = 0; i < n; ++i) {
        verify_raw.push_back(RawEntry{i, kComputeOp, kGpuResource,
                                      engine.TaskStart(compute_tasks[i]),
                                      engine.TaskEnd(compute_tasks[i])});
      }
      for (const OpTaskRec& ot : op_tasks) {
        verify_raw.push_back(RawEntry{ot.tensor, ot.op_index, ot.resource,
                                      engine.TaskStart(ot.task), engine.TaskEnd(ot.task)});
      }
    }
    Strategy verified = strategy;
    for (size_t i = 0; i < n; ++i) {
      const CompressionOption& effective = view.at(i);
      if (&effective != &strategy.options[i]) {
        verified.options[i] = effective;
      }
    }
    VerifierConfig verifier_config;
    verifier_config.cpu_workers = cluster_.cpu_workers_per_gpu;
    const DiagnosticReport report = VerifySimulatedTimeline(
        verified, ToEntries(verified, raw != nullptr ? *raw : verify_raw),
        verifier_config);
    ESP_CHECK(!report.HasErrors()) << "schedule verification failed:\n"
                                   << report.ToString();
  }
#endif
  return engine.Makespan();
}

double TimelineEvaluator::IterationTime(const Strategy& strategy) const {
  return IterationTime(strategy, nullptr);
}

double TimelineEvaluator::IterationTime(const Strategy& strategy, EvalContext* ctx) const {
  OptionView view;
  view.strategy = &strategy;
  return model_.forward_time_s + RunRaw(view, nullptr, ctx) + model_.optimizer_time_s;
}

double TimelineEvaluator::ScoreWithOption(const Strategy& strategy, size_t index,
                                          const CompressionOption& candidate,
                                          EvalContext* ctx) const {
  ESP_CHECK_LT(index, strategy.options.size());
  OptionView view;
  view.strategy = &strategy;
  view.index = index;
  view.single = &candidate;
  return model_.forward_time_s + RunRaw(view, nullptr, ctx) + model_.optimizer_time_s;
}

double TimelineEvaluator::ScoreWithOverrides(const Strategy& strategy,
                                             const CompressionOption* const* overrides,
                                             EvalContext* ctx) const {
  OptionView view;
  view.strategy = &strategy;
  view.table = overrides;
  return model_.forward_time_s + RunRaw(view, nullptr, ctx) + model_.optimizer_time_s;
}

std::vector<TimelineEntry> TimelineEvaluator::ToEntries(
    const Strategy& strategy, const std::vector<RawEntry>& raw) const {
  std::vector<TimelineEntry> entries;
  entries.reserve(raw.size());
  for (const RawEntry& e : raw) {
    TimelineEntry entry;
    entry.tensor = e.tensor;
    entry.resource = FixedResourceName(e.resource);
    entry.start = e.start;
    entry.end = e.end;
    if (e.op_index == kComputeOp) {
      entry.kind = "compute";
    } else if (e.op_index == kHostCopyOp) {
      entry.kind = "hostcopy";
    } else {
      const Op& op = strategy.options[e.tensor].ops[e.op_index];
      switch (op.task) {
        case ActionTask::kCompress:
          entry.kind = "compress";
          break;
        case ActionTask::kDecompress:
          entry.kind = "decompress";
          break;
        case ActionTask::kComm:
          entry.kind = RoutineName(op.routine);
          break;
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

TimelineResult TimelineEvaluator::Evaluate(const Strategy& strategy,
                                           bool record_entries) const {
  obs::ScopedSpan span("timeline.evaluate", "timeline", EvaluateSecondsHistogram());
  TimelineResult result;
  OptionView view;
  view.strategy = &strategy;
  if (!record_entries) {
    result.makespan = RunRaw(view, nullptr, nullptr);
  } else {
    std::vector<RawEntry> raw;
    result.makespan = RunRaw(view, &raw, nullptr);
    result.entries = ToEntries(strategy, raw);
  }
  result.iteration_time = model_.forward_time_s + result.makespan + model_.optimizer_time_s;
  return result;
}

std::vector<bool> TimelineEvaluator::BeforeBubble(const Strategy& strategy,
                                                  EvalContext* ctx) const {
  EvalContext local;
  if (ctx == nullptr) {
    ctx = &local;
  }
  std::vector<RawEntry>& raw = ctx->raw_scratch;
  OptionView view;
  view.strategy = &strategy;
  RunRaw(view, &raw, ctx);
  const size_t n = model_.tensors.size();

  // Reconstruct per-tensor pipeline times from the deterministic entry layout: the
  // first n entries are the backward-compute intervals, followed by each tensor's ops
  // in pipeline order.
  std::vector<double> compute_end(n);
  std::vector<std::vector<const RawEntry*>> pipeline(n);
  for (size_t i = 0; i < n; ++i) {
    compute_end[i] = raw[i].end;
    pipeline[i].reserve(strategy.options[i].ops.size() + 2);
  }
  for (size_t e = n; e < raw.size(); ++e) {
    pipeline[raw[e].tensor].push_back(&raw[e]);
  }

  // True if op k of tensor t started the moment its pipeline became ready, tracing the
  // start-equals-predecessor-end chain all the way back to backward compute. If the
  // chain hits an op that waited in a resource queue, the gap in front of op k is
  // link-backlog latency, not a compute-gated bubble, and compressing earlier tensors
  // WOULD move it.
  auto compute_gated = [&](size_t t, size_t k) {
    for (size_t cur = k;; --cur) {
      const double pred_end = cur == 0 ? compute_end[t] : pipeline[t][cur - 1]->end;
      if (pipeline[t][cur]->start > pred_end + kChainEpsilon) {
        return false;  // queued on its resource
      }
      if (cur == 0) {
        return true;
      }
    }
  };

  // Per link: every comm interval with its pipeline position, sorted by start.
  struct Interval {
    double start, end;
    size_t tensor;
    size_t pipeline_index;
  };
  std::vector<Interval> per_link[2];  // 0 = intra, 1 = inter
  for (size_t t = 0; t < n; ++t) {
    for (size_t k = 0; k < pipeline[t].size(); ++k) {
      const RawEntry* e = pipeline[t][k];
      if (e->resource == kIntraResource) {
        per_link[0].push_back({e->start, e->end, t, k});
      } else if (e->resource == kInterResource) {
        per_link[1].push_back({e->start, e->end, t, k});
      }
    }
  }

  // For each link, merge the schedule into busy periods (idle gaps >= kBubbleEpsilon
  // separate them) and find when the LAST genuinely compute-gated busy period starts.
  // Communications that end before that point sit ahead of the link's final bubble:
  // compressing their tensors only widens the gap, because everything in the last busy
  // period is gated by compute readiness, not by the link (§4.4.2 Property 1, Fig 9(a)).
  double last_busy_start[2] = {-1.0, -1.0};
  bool link_has_bubble[2] = {false, false};
  for (int l = 0; l < 2; ++l) {
    auto& intervals = per_link[l];
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) { return a.start < b.start; });
    double frontier = -1.0;
    double candidate_start = -1.0;
    for (const auto& iv : intervals) {
      if (frontier < 0.0) {
        candidate_start = iv.start;
      } else if (iv.start > frontier + kBubbleEpsilon) {
        // Idle gap. It is a genuine bubble only if the op after it was waiting for
        // tensor computation, not for another resource's backlog.
        if (compute_gated(iv.tensor, iv.pipeline_index)) {
          link_has_bubble[l] = true;
          last_busy_start[l] = iv.start;
        }
      }
      frontier = std::max(frontier, iv.end);
    }
    if (!link_has_bubble[l]) {
      last_busy_start[l] = candidate_start;
    }
  }

  // A tensor is "before bubbles" if every link it communicates on has at least one
  // bubble and all of its intervals there end before the last busy period begins.
  std::vector<bool> before(n, false);
  std::vector<bool> uses_link(n * 2, false);
  std::vector<bool> in_last_period(n * 2, false);
  for (int l = 0; l < 2; ++l) {
    for (const auto& iv : per_link[l]) {
      uses_link[iv.tensor * 2 + l] = true;
      if (!link_has_bubble[l] || iv.end > last_busy_start[l] - kBubbleEpsilon) {
        in_last_period[iv.tensor * 2 + l] = true;
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    bool uses_any = false;
    bool all_before = true;
    for (int l = 0; l < 2; ++l) {
      if (uses_link[i * 2 + l]) {
        uses_any = true;
        if (in_last_period[i * 2 + l]) {
          all_before = false;
        }
      }
    }
    before[i] = uses_any && all_before;
  }
  return before;
}

}  // namespace espresso

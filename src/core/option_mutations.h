// One-edit mutation engine over compression options, shared by the pruning edge-case
// tests and the whole-space model checker (src/analysis/space_checker.h).
//
// A mutation is a single structural edit of an option: flipping one discrete field
// (phase, routine, wire-compression flag, task, device, the option's flat flag),
// zeroing one numeric field (fan_in or a fraction), deleting one op, or duplicating one
// compression op. The completeness half of the space checker walks every mutant of
// every enumerated option and requires that each one either fails the StrategyLinter or
// canonicalizes back into the enumerated set — i.e. the decision tree's frontier is
// exactly the linter's legality frontier.
//
// CanonicalOption is the membership projection that makes that comparison well-defined:
// the enumerated space is structural (devices all-GPU; §4.2's 2^slots device choices
// multiply in afterwards), and the phase label of a compress/decompress op is a
// bookkeeping convention (it does not affect the simulated timeline — comm ops pick
// links by phase, compute ops do not), so membership is checked modulo device
// assignment and modulo non-comm phase labels.
#ifndef SRC_CORE_OPTION_MUTATIONS_H_
#define SRC_CORE_OPTION_MUTATIONS_H_

#include <string>
#include <vector>

#include "src/core/option.h"

namespace espresso {

struct OptionMutation {
  CompressionOption option;
  std::string edit;  // human-readable description, e.g. "op 2: routine allgather->gather"
};

// Every one-edit mutant of `option`, in a deterministic order. The identity is not
// included; neither are fraction perturbations other than the definitively-illegal
// zeroings (legality is tolerance-free only at the structural level).
std::vector<OptionMutation> OneEditMutations(const CompressionOption& option);

// Projects an option onto its structural identity: every compress/decompress op is
// assigned to the GPU and relabeled with the phase of the nearest following comm op
// (the nearest preceding one for a trailing compute op). Two options with equal
// canonical forms price identically on the timeline engine.
CompressionOption CanonicalOption(const CompressionOption& option);

}  // namespace espresso

#endif  // SRC_CORE_OPTION_MUTATIONS_H_

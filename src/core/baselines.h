// Baseline strategy generators (§5.1 Baselines and §5.3 crippled mechanisms).
//
// Each baseline explores a narrower search space than Espresso (§6):
//   * FP32 (BytePS [27])           — no compression, hierarchical RS/allreduce/AG.
//   * HiPress [9]                  — GPU compression, inter-machine only, selective
//                                    compression by *wall-clock* tau comparison (it
//                                    "ignores the interactions among tensors").
//   * HiTopKComm [60]              — compresses ALL tensors with GPUs, inter-only.
//   * BytePS-Compress [78]         — compresses ALL tensors with CPUs, inter-only.
// Crippled-dimension mechanisms for Figure 15:
//   * AllCompression / Myopic      — Dimension 1 restricted.
//   * GpuOnly / CpuOnly            — Dimension 2 restricted.
//   * InterAllgather / InterAlltoall — Dimension 3 restricted.
//   * AlltoallAlltoall             — Dimension 4 restricted.
#ifndef SRC_CORE_BASELINES_H_
#define SRC_CORE_BASELINES_H_

#include "src/compress/compressor.h"
#include "src/core/strategy.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_profile.h"

namespace espresso {

Strategy Fp32Strategy(const ModelProfile& model, const ClusterSpec& cluster);

Strategy HiPressStrategy(const ModelProfile& model, const ClusterSpec& cluster,
                         const Compressor& compressor);

Strategy HiTopKCommStrategy(const ModelProfile& model, const ClusterSpec& cluster,
                            const Compressor& compressor);

Strategy BytePSCompressStrategy(const ModelProfile& model, const ClusterSpec& cluster,
                                const Compressor& compressor);

// Crippled Espresso variants (§5.3). Each runs the full decision algorithm with one
// dimension restricted.
enum class CrippledDimension {
  kAllCompression,    // Dim 1: compress every tensor
  kMyopicCompression, // Dim 1: ignore interactions (wall-clock scoring)
  kGpuCompression,    // Dim 2: GPUs only (no CPU offloading)
  kCpuCompression,    // Dim 2: CPUs only
  kInterAllgather,    // Dim 3: inter-only + indivisible allgather
  kInterAlltoall,     // Dim 3/4: inter-only + divisible alltoall/allgather
  kAlltoallAlltoall,  // Dim 4: compress for intra-1 and again for inter
};

Strategy CrippledStrategy(const ModelProfile& model, const ClusterSpec& cluster,
                          const Compressor& compressor, CrippledDimension dimension);

// Convenience: builds the "inter-machine only" compression option used by the
// compression baselines (indivisible allgather across machines, devices = `device`).
CompressionOption InterOnlyIndivisibleOption(const ClusterSpec& cluster, Device device);

// Inter-machine only, divisible (alltoall | allgather) option.
CompressionOption InterOnlyDivisibleOption(const ClusterSpec& cluster, Device device);

// Intra-alltoall + inter-alltoall + intra-allgather (the Dimension-4 restricted path).
CompressionOption AlltoallAlltoallOption(const ClusterSpec& cluster, Device device);

}  // namespace espresso

#endif  // SRC_CORE_BASELINES_H_

// Exhaustive searches used to validate near-optimality (§5.2.4) and to populate the
// "Brute force" rows of Tables 5 and 6. Full strategy search is |C|^N (§4.4.1) and only
// feasible for toy models; EstimateBruteForceSeconds extrapolates the wall-clock for the
// real models from the measured per-evaluation cost.
#ifndef SRC_CORE_BRUTE_FORCE_H_
#define SRC_CORE_BRUTE_FORCE_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "src/core/strategy.h"
#include "src/core/timeline.h"

namespace espresso {

struct BruteForceResult {
  Strategy strategy;
  double iteration_time = 0.0;
  size_t evaluations = 0;
};

// Exact minimum of F(S) over candidates^N. Returns nullopt if the space exceeds
// `max_evaluations`.
std::optional<BruteForceResult> BruteForceStrategy(
    const TimelineEvaluator& evaluator, const std::vector<CompressionOption>& candidates,
    size_t max_evaluations);

// Exact minimum over all 2^k GPU->CPU offload assignments of the compressed tensors in
// `gpu_strategy` (ignores Lemma 1's restriction, so it can certify Lemma 1). Returns
// nullopt if 2^k exceeds `max_evaluations`.
std::optional<BruteForceResult> BruteForceOffload(const TimelineEvaluator& evaluator,
                                                  const Strategy& gpu_strategy,
                                                  size_t max_evaluations);

// Seconds a full |C|^N search would need at `seconds_per_evaluation`; saturates at
// `cap_seconds` (Tables 5-6 print ">24h" at the cap).
double EstimateBruteForceSeconds(double seconds_per_evaluation, size_t candidate_count,
                                 size_t tensor_count, double cap_seconds = 1e9);

}  // namespace espresso

#endif  // SRC_CORE_BRUTE_FORCE_H_

// Upper Bound on compression-enabled training throughput (§5.1): assumes GC has no
// compression time and no impact on tensor computation. Computed by running the greedy
// selector against a timeline whose (de)compression ops cost zero — with compression
// free, the per-tensor greedy choice has no downside and the bound is at least the
// optimal strategy's throughput.
#ifndef SRC_CORE_UPPER_BOUND_H_
#define SRC_CORE_UPPER_BOUND_H_

#include "src/compress/compressor.h"
#include "src/core/strategy.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_profile.h"

namespace espresso {

struct UpperBoundResult {
  Strategy strategy;
  double iteration_time = 0.0;
};

UpperBoundResult ComputeUpperBound(const ModelProfile& model, const ClusterSpec& cluster,
                                   const Compressor& compressor);

}  // namespace espresso

#endif  // SRC_CORE_UPPER_BOUND_H_

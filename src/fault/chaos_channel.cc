#include "src/fault/chaos_channel.h"

#include "src/fault/checksum.h"
#include "src/util/logging.h"

namespace espresso {

ChaosChannel::ChaosChannel(const FaultInjector* injector) : injector_(injector) {
  ESP_CHECK(injector != nullptr);
}

PayloadFate ChaosChannel::Transmit(size_t rank, uint64_t tensor_id,
                                   CompressedTensor* payload) {
  ++stats_.transmissions;
  ++stats_.attempts;
  const PayloadFate fate = injector_->AttemptFate(iteration_, rank, tensor_id, 1);
  switch (fate) {
    case PayloadFate::kDelivered:
      ++stats_.delivered;
      break;
    case PayloadFate::kDropped:
      ++stats_.dropped;
      break;
    case PayloadFate::kCorrupted:
      injector_->Corrupt(iteration_, rank, tensor_id, 1, payload);
      ++stats_.corrupted;
      break;
  }
  return fate;
}

ReliableChannel::ReliableChannel(const FaultInjector* injector, const RetryPolicy& policy)
    : injector_(injector), policy_(policy) {
  ESP_CHECK(injector != nullptr);
  ESP_CHECK_GE(policy.max_attempts, 1u);
}

PayloadFate ReliableChannel::Transmit(size_t rank, uint64_t tensor_id,
                                      CompressedTensor* payload) {
  ++stats_.transmissions;
  const uint32_t checksum = PayloadChecksum(*payload);
  // Backoff jitter is keyed on the transmission's coordinates, so the retry schedule
  // replays with the fault schedule.
  Rng backoff_rng(DeriveSeed(DeriveSeed(injector_->plan().spec().seed, iteration_),
                             rank * 0x51ED2701ULL + tensor_id));
  for (uint32_t attempt = 1;; ++attempt) {
    ++stats_.attempts;
    const PayloadFate fate = injector_->AttemptFate(iteration_, rank, tensor_id, attempt);
    if (fate == PayloadFate::kDelivered) {
      ++stats_.delivered;
      return PayloadFate::kDelivered;
    }
    if (fate == PayloadFate::kCorrupted) {
      // Corrupt a scratch copy: verification failure discards the mangled bytes, and
      // the retransmit below resends the sender's intact buffer. The copy is pooled —
      // its vectors are recycled across attempts and steps.
      mem::PooledTensor mangled = scratch_pool_.Acquire();
      *mangled = *payload;
      injector_->Corrupt(iteration_, rank, tensor_id, attempt, mangled.get());
      if (PayloadChecksum(*mangled) == checksum) {
        // Flip landed outside the covered fields (empty payload) — treat as delivered.
        ++stats_.delivered;
        return PayloadFate::kDelivered;
      }
      ++stats_.corrupted;
    }
    if (!policy_.ShouldRetry(attempt)) {
      ++stats_.dropped;
      return PayloadFate::kDropped;
    }
    ++stats_.retries;
    stats_.backoff_seconds += policy_.Delay(attempt, backoff_rng);
  }
}

}  // namespace espresso

// Resilient wrapper around the strategy executor: collective phases that the fault
// injector fails are retried with capped backoff, and a tensor whose retries are
// exhausted degrades gracefully to the FP32 path — an exact uncompressed aggregation
// of the ranks' raw gradients. Because the failed compressed phase never committed,
// the per-rank error-feedback residuals are untouched and the update is exact: nothing
// is silently lost, the tensor just pays full-precision bandwidth for one iteration.
#ifndef SRC_FAULT_RESILIENT_EXECUTOR_H_
#define SRC_FAULT_RESILIENT_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/strategy.h"
#include "src/ddl/strategy_executor.h"
#include "src/fault/injector.h"
#include "src/fault/retry_policy.h"

namespace espresso {

struct FaultEventRecord {
  uint64_t iteration = 0;
  size_t tensor = 0;
  std::string kind;       // "phase_retry" or "fp32_fallback"
  uint32_t attempts = 0;  // attempts made when the event fired
};

struct ResilienceReport {
  size_t tensors = 0;
  size_t clean = 0;          // executed first try
  size_t retried = 0;        // needed >= 1 retry, eventually succeeded
  size_t fallbacks = 0;      // degraded to FP32
  size_t total_retries = 0;
  double backoff_seconds = 0.0;
  std::vector<FaultEventRecord> events;
};

// Executes one tensor's option under fault injection. On phase failure, retries per
// `policy`; on exhaustion, aggregates `buffers` exactly (FP32 allreduce semantics).
// `workspace` supplies the executor's and fallback path's scratch; nullptr resolves
// to the calling thread's default workspace.
void ResilientExecuteOption(const CompressionOption& option, const ExecutorConfig& config,
                            uint64_t tensor_id, RankBuffers& buffers,
                            const FaultInjector& injector, const RetryPolicy& policy,
                            uint64_t iteration, ResilienceReport* report,
                            ExecutorWorkspace* workspace = nullptr);

// Executes a whole strategy; `gradients[t]` is tensor t's per-rank buffers. The one
// workspace is reused across all tensors.
ResilienceReport ResilientExecuteStrategy(const Strategy& strategy,
                                          const ExecutorConfig& config,
                                          std::vector<RankBuffers>& gradients,
                                          const FaultInjector& injector,
                                          const RetryPolicy& policy, uint64_t iteration,
                                          ExecutorWorkspace* workspace = nullptr);

}  // namespace espresso

#endif  // SRC_FAULT_RESILIENT_EXECUTOR_H_

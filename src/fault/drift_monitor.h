// Online strategy re-selection under cost-model drift.
//
// Espresso picks a per-tensor strategy from *profiled* costs (§4.3); at runtime the
// cluster drifts (congested NICs, contended fabrics). The DriftMonitor tracks the
// observed link parameters as an EWMA and flags when they have moved past a relative
// threshold from the profile; the OnlineReselector then re-runs the full decision
// algorithm against the drifted cost model and hot-swaps the strategy. Re-selection is
// rate-limited by a cooldown so jitter does not thrash the strategy.
#ifndef SRC_FAULT_DRIFT_MONITOR_H_
#define SRC_FAULT_DRIFT_MONITOR_H_

#include <cstdint>
#include <optional>

#include "src/core/espresso.h"
#include "src/costmodel/calibration.h"
#include "src/util/config.h"

namespace espresso {

struct DriftConfig {
  double threshold = 0.25;           // relative bandwidth drift triggering re-selection
  double smoothing = 0.5;            // EWMA weight of the newest observation, (0, 1]
  uint64_t cooldown_iterations = 5;  // min iterations between re-selections

  // Parses the [drift] section; bad knobs fall back and surface in config.warnings().
  static DriftConfig FromConfig(const ConfigFile& config);
};

class DriftMonitor {
 public:
  DriftMonitor(const DriftConfig& config, const ClusterSpec& profiled);

  // Feeds one iteration's observed cluster behaviour. Returns true when the smoothed
  // drift exceeds the threshold and the cooldown has elapsed — the caller should
  // re-select and then call AcknowledgeReselection().
  bool Observe(uint64_t iteration, const ClusterSpec& observed);

  // Max relative deviation of the smoothed link parameters (bandwidths AND
  // latencies) from the profile. A pure latency degradation — e.g. a jittery NIC
  // adding alpha without touching beta — drifts just like a bandwidth loss.
  // Latency deviation is only measured for links whose profiled latency is
  // positive (a zero-alpha profile has no relative scale).
  double drift() const;

  // The profiled cluster with its links replaced by the smoothed observations — the
  // perturbed cost model re-selection runs against.
  ClusterSpec SmoothedCluster() const;

  void AcknowledgeReselection(uint64_t iteration);

 private:
  DriftConfig config_;
  ClusterSpec profiled_;
  bool has_observation_ = false;
  double ewma_inter_bw_ = 0.0;
  double ewma_intra_bw_ = 0.0;
  double ewma_inter_latency_ = 0.0;
  double ewma_intra_latency_ = 0.0;
  bool reselected_once_ = false;
  uint64_t last_reselection_ = 0;
};

struct ReselectionEvent {
  uint64_t iteration = 0;
  double drift = 0.0;
  double stale_iteration_time = 0.0;  // F(S_old) under the drifted cost model
  double new_iteration_time = 0.0;    // F(S_new) under the drifted cost model
  size_t options_changed = 0;         // tensors whose option the swap replaced
};

// Owns the live strategy and the monitor; Step() feeds observations and hot-swaps.
class OnlineReselector {
 public:
  OnlineReselector(const ModelProfile& model, const ClusterSpec& profiled,
                   const Compressor& compressor, const SelectorOptions& selector_options,
                   const DriftConfig& drift_config);

  const Strategy& strategy() const { return current_; }
  const DriftMonitor& monitor() const { return monitor_; }

  // Feeds iteration `iteration`'s observed cluster. When drift triggers, re-runs the
  // Espresso selector on the smoothed cluster, swaps the strategy, and reports what
  // changed; returns nullopt otherwise.
  std::optional<ReselectionEvent> Step(uint64_t iteration, const ClusterSpec& observed);

 private:
  ModelProfile model_;
  const Compressor& compressor_;
  SelectorOptions selector_options_;
  DriftMonitor monitor_;
  Strategy current_;
};

}  // namespace espresso

#endif  // SRC_FAULT_DRIFT_MONITOR_H_

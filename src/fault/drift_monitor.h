// Online strategy re-selection under cost-model drift.
//
// Espresso picks a per-tensor strategy from *profiled* costs (§4.3); at runtime the
// cluster drifts (congested NICs, contended fabrics). The DriftMonitor tracks the
// observed link parameters as an EWMA and flags when they have moved past a relative
// threshold from the profile; the OnlineReselector then re-runs the full decision
// algorithm against the drifted cost model and publishes the result through the
// fail-closed deployment pipeline (src/ddl/strategy_deployment.h): the re-selection is
// compiled to a digest-stamped StrategyIR, re-validated (digests, linter, schedule
// verifier), and atomically swapped — never mutated in place. A re-selection that
// fails admission leaves the last-known-good strategy running and is visible in the
// deployment's audit log and the espresso_deploy_* metrics. Re-selection is
// rate-limited by a cooldown so jitter does not thrash the strategy.
#ifndef SRC_FAULT_DRIFT_MONITOR_H_
#define SRC_FAULT_DRIFT_MONITOR_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "src/core/espresso.h"
#include "src/costmodel/calibration.h"
#include "src/ddl/strategy_deployment.h"
#include "src/util/config.h"

namespace espresso {

struct DriftConfig {
  double threshold = 0.25;           // relative bandwidth drift triggering re-selection
  double smoothing = 0.5;            // EWMA weight of the newest observation, (0, 1]
  uint64_t cooldown_iterations = 5;  // min iterations between re-selections

  // Parses the [drift] section; bad knobs fall back and surface in config.warnings().
  static DriftConfig FromConfig(const ConfigFile& config);
};

class DriftMonitor {
 public:
  DriftMonitor(const DriftConfig& config, const ClusterSpec& profiled);

  // Feeds one iteration's observed cluster behaviour. Returns true when the smoothed
  // drift exceeds the threshold and the cooldown has elapsed — the caller should
  // re-select and then call AcknowledgeReselection().
  bool Observe(uint64_t iteration, const ClusterSpec& observed);

  // Max relative deviation of the smoothed link parameters (bandwidths AND
  // latencies) from the profile. A pure latency degradation — e.g. a jittery NIC
  // adding alpha without touching beta — drifts just like a bandwidth loss.
  // Latency deviation is only measured for links whose profiled latency is
  // positive (a zero-alpha profile has no relative scale).
  double drift() const;

  // The profiled cluster with its links replaced by the smoothed observations — the
  // perturbed cost model re-selection runs against.
  ClusterSpec SmoothedCluster() const;

  void AcknowledgeReselection(uint64_t iteration);

 private:
  DriftConfig config_;
  ClusterSpec profiled_;
  bool has_observation_ = false;
  double ewma_inter_bw_ = 0.0;
  double ewma_intra_bw_ = 0.0;
  double ewma_inter_latency_ = 0.0;
  double ewma_intra_latency_ = 0.0;
  bool reselected_once_ = false;
  uint64_t last_reselection_ = 0;
};

struct ReselectionEvent {
  uint64_t iteration = 0;
  double drift = 0.0;
  double stale_iteration_time = 0.0;  // F(S_old) under the drifted cost model
  double new_iteration_time = 0.0;    // F(S_new) under the drifted cost model
  size_t options_changed = 0;         // tensors whose option the swap replaced
  // Deployment outcome: false means the admission pass refused the re-selection and
  // the previous strategy is still live (see the deployment's audit log for why).
  bool deployed = false;
  uint64_t version = 0;  // deployment version live after this event
};

// Owns the live strategy (through a StrategyDeployment) and the monitor; Step() feeds
// observations, re-selects on drift, and publishes through the deployment pipeline.
class OnlineReselector {
 public:
  // `compressor` must be the one built from `compressor_config` (the deployment
  // digests are recomputed from the config on every publish).
  OnlineReselector(const ModelProfile& model, const ClusterSpec& profiled,
                   const Compressor& compressor, const CompressorConfig& compressor_config,
                   const SelectorOptions& selector_options, const DriftConfig& drift_config,
                   DeploymentConfig deploy_config = {});

  // The live strategy (the current deployment's snapshot). The reference stays valid
  // until the next strategy() / Step() call on this reselector.
  const Strategy& strategy() const;
  const DriftMonitor& monitor() const { return monitor_; }

  // The deployment pipeline this reselector publishes through: audit log, deploy
  // metrics, version history, regression watchdog.
  StrategyDeployment& deployment() { return deployment_; }
  const StrategyDeployment& deployment() const { return deployment_; }

  // Feeds iteration `iteration`'s observed cluster. When drift triggers, re-runs the
  // Espresso selector on the smoothed cluster, publishes the result as a StrategyIR
  // through the deployment (fail-closed), and reports what changed; returns nullopt
  // when drift stayed below threshold or the cooldown is active.
  std::optional<ReselectionEvent> Step(uint64_t iteration, const ClusterSpec& observed);

 private:
  ModelProfile model_;
  ClusterSpec profiled_;
  const Compressor& compressor_;
  CompressorConfig compressor_config_;
  SelectorOptions selector_options_;
  DriftMonitor monitor_;
  StrategyDeployment deployment_;
  // Keeps the snapshot strategy() handed out alive across the next swap.
  mutable std::shared_ptr<const DeployedStrategy> snapshot_;
};

}  // namespace espresso

#endif  // SRC_FAULT_DRIFT_MONITOR_H_

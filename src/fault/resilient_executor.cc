#include "src/fault/resilient_executor.h"

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace espresso {

namespace {

// The FP32 degradation path: exact allreduce of the raw per-rank gradients.
void ExactAllreduce(RankBuffers& buffers) {
  const size_t elements = CheckUniformSize(buffers);
  std::vector<float> sum(elements, 0.0f);
  for (const auto& buffer : buffers) {
    for (size_t i = 0; i < elements; ++i) {
      sum[i] += buffer[i];
    }
  }
  for (auto& buffer : buffers) {
    buffer = sum;
  }
}

}  // namespace

void ResilientExecuteOption(const CompressionOption& option, const ExecutorConfig& config,
                            uint64_t tensor_id, RankBuffers& buffers,
                            const FaultInjector& injector, const RetryPolicy& policy,
                            uint64_t iteration, ResilienceReport* report) {
  ESP_CHECK(report != nullptr);
  ++report->tensors;
  Rng backoff_rng(DeriveSeed(DeriveSeed(injector.plan().spec().seed, iteration),
                             tensor_id * 0x7F4A7C15ULL));
  // The failure draw happens before the phase commits any state: a failed attempt
  // leaves buffers and error-feedback residuals exactly as they were, so a retry (or
  // the fallback) starts from clean inputs.
  for (uint32_t attempt = 1;; ++attempt) {
    if (!injector.CollectivePhaseFails(iteration, tensor_id, attempt)) {
      ExecuteOption(option, config, tensor_id, buffers);
      if (attempt == 1) {
        ++report->clean;
      } else {
        ++report->retried;
      }
      return;
    }
    if (!policy.ShouldRetry(attempt)) {
      report->events.push_back(
          FaultEventRecord{iteration, static_cast<size_t>(tensor_id), "fp32_fallback",
                           attempt});
      ++report->fallbacks;
      ExactAllreduce(buffers);
      return;
    }
    report->events.push_back(FaultEventRecord{iteration, static_cast<size_t>(tensor_id),
                                              "phase_retry", attempt});
    ++report->total_retries;
    report->backoff_seconds += policy.Delay(attempt, backoff_rng);
  }
}

ResilienceReport ResilientExecuteStrategy(const Strategy& strategy,
                                          const ExecutorConfig& config,
                                          std::vector<RankBuffers>& gradients,
                                          const FaultInjector& injector,
                                          const RetryPolicy& policy, uint64_t iteration) {
  ESP_CHECK_EQ(strategy.options.size(), gradients.size())
      << "strategy has one option per tensor; gradient tensor count must match";
  ResilienceReport report;
  for (size_t t = 0; t < gradients.size(); ++t) {
    ResilientExecuteOption(strategy.options[t], config, t, gradients[t], injector, policy,
                           iteration, &report);
  }
  return report;
}

}  // namespace espresso

#include "src/fault/resilient_executor.h"

#include "src/obs/metrics.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace espresso {

namespace {

struct FaultMetrics {
  obs::Counter clean;
  obs::Counter retried;
  obs::Counter fp32_fallbacks;
  obs::Counter phase_retries;
  obs::Histogram backoff_delay_seconds;
};

const FaultMetrics& Metrics() {
  static const FaultMetrics metrics = [] {
    obs::MetricsRegistry& r = obs::GlobalMetrics();
    FaultMetrics m;
    m.clean = r.RegisterCounter("espresso_fault_clean_total",
                                "Tensor collectives that completed on the first attempt");
    m.retried = r.RegisterCounter("espresso_fault_retried_total",
                                  "Tensor collectives that completed after >= 1 retry");
    m.fp32_fallbacks = r.RegisterCounter(
        "espresso_fault_fp32_fallbacks_total",
        "Tensor collectives that exhausted retries and fell back to exact FP32 allreduce");
    m.phase_retries = r.RegisterCounter("espresso_fault_phase_retries_total",
                                        "Individual failed collective-phase attempts");
    m.backoff_delay_seconds = r.RegisterHistogram(
        "espresso_fault_backoff_delay_seconds",
        "Simulated backoff delay charged per retry", obs::DefaultTimeBuckets());
    return m;
  }();
  return metrics;
}

// The FP32 degradation path: exact allreduce of the raw per-rank gradients. The sum
// buffer is leased from the executor workspace's pool, so fallback steps stay
// allocation-free once warm.
void ExactAllreduce(RankBuffers& buffers, ExecutorWorkspace& workspace) {
  const size_t elements = CheckUniformSize(buffers);
  mem::PooledFloats sum = workspace.pool().AcquireZeroedFloats(elements);
  for (const auto& buffer : buffers) {
    for (size_t i = 0; i < elements; ++i) {
      (*sum)[i] += buffer[i];
    }
  }
  for (auto& buffer : buffers) {
    buffer.assign(sum->begin(), sum->end());
  }
}

}  // namespace

void ResilientExecuteOption(const CompressionOption& option, const ExecutorConfig& config,
                            uint64_t tensor_id, RankBuffers& buffers,
                            const FaultInjector& injector, const RetryPolicy& policy,
                            uint64_t iteration, ResilienceReport* report,
                            ExecutorWorkspace* workspace) {
  ESP_CHECK(report != nullptr);
  ExecutorWorkspace& ws =
      workspace != nullptr ? *workspace : ExecutorWorkspace::ThreadDefault();
  ++report->tensors;
  Rng backoff_rng(DeriveSeed(DeriveSeed(injector.plan().spec().seed, iteration),
                             tensor_id * 0x7F4A7C15ULL));
  // The failure draw happens before the phase commits any state: a failed attempt
  // leaves buffers and error-feedback residuals exactly as they were, so a retry (or
  // the fallback) starts from clean inputs.
  for (uint32_t attempt = 1;; ++attempt) {
    if (!injector.CollectivePhaseFails(iteration, tensor_id, attempt)) {
      ExecuteOption(option, config, tensor_id, buffers, &ws);
      if (attempt == 1) {
        ++report->clean;
        obs::GlobalMetrics().Add(Metrics().clean);
      } else {
        ++report->retried;
        obs::GlobalMetrics().Add(Metrics().retried);
      }
      return;
    }
    if (!policy.ShouldRetry(attempt)) {
      report->events.push_back(
          FaultEventRecord{iteration, static_cast<size_t>(tensor_id), "fp32_fallback",
                           attempt});
      ++report->fallbacks;
      obs::GlobalMetrics().Add(Metrics().fp32_fallbacks);
      ExactAllreduce(buffers, ws);
      return;
    }
    report->events.push_back(FaultEventRecord{iteration, static_cast<size_t>(tensor_id),
                                              "phase_retry", attempt});
    ++report->total_retries;
    const double delay_s = policy.Delay(attempt, backoff_rng);
    report->backoff_seconds += delay_s;
    obs::GlobalMetrics().Add(Metrics().phase_retries);
    obs::GlobalMetrics().Observe(Metrics().backoff_delay_seconds, delay_s);
  }
}

ResilienceReport ResilientExecuteStrategy(const Strategy& strategy,
                                          const ExecutorConfig& config,
                                          std::vector<RankBuffers>& gradients,
                                          const FaultInjector& injector,
                                          const RetryPolicy& policy, uint64_t iteration,
                                          ExecutorWorkspace* workspace) {
  ESP_CHECK_EQ(strategy.options.size(), gradients.size())
      << "strategy has one option per tensor; gradient tensor count must match";
  ResilienceReport report;
  for (size_t t = 0; t < gradients.size(); ++t) {
    ResilientExecuteOption(strategy.options[t], config, t, gradients[t], injector, policy,
                           iteration, &report, workspace);
  }
  return report;
}

}  // namespace espresso

#include "src/fault/drift_monitor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/core/strategy_ir.h"
#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace espresso {

namespace {

double RelativeDeviation(double observed, double profiled) {
  ESP_CHECK_GT(profiled, 0.0) << "profiled link parameter must be positive";
  return std::abs(observed / profiled - 1.0);
}

// Latency may legitimately be profiled as zero (an ideal alpha-free link); there is
// no relative scale to drift against then, so such links contribute no deviation.
double LatencyDeviation(double observed, double profiled) {
  return profiled > 0.0 ? RelativeDeviation(observed, profiled) : 0.0;
}

struct DriftMetrics {
  obs::Counter observations;
  obs::Counter reselections;
  obs::Counter options_changed;
  obs::Gauge drift;
};

const DriftMetrics& Metrics() {
  static const DriftMetrics m = [] {
    auto& r = obs::GlobalMetrics();
    DriftMetrics dm;
    dm.observations = r.RegisterCounter("espresso_drift_observations_total",
                                        "Cluster observations fed to the drift monitor");
    dm.reselections = r.RegisterCounter("espresso_drift_reselections_total",
                                        "Strategy hot-swaps triggered by drift");
    dm.options_changed = r.RegisterCounter(
        "espresso_drift_options_changed_total",
        "Tensor options replaced across all drift-triggered re-selections");
    dm.drift = r.RegisterGauge("espresso_drift_current",
                               "Smoothed relative drift vs the profiled cluster");
    return dm;
  }();
  return m;
}

}  // namespace

DriftConfig DriftConfig::FromConfig(const ConfigFile& config) {
  DriftConfig drift;
  drift.threshold = config.GetDoubleOr("drift", "threshold", drift.threshold, 0.0, 100.0);
  drift.smoothing = config.GetDoubleOr("drift", "smoothing", drift.smoothing, 1e-6, 1.0);
  drift.cooldown_iterations = static_cast<uint64_t>(config.GetIntOr(
      "drift", "cooldown_iterations", static_cast<int64_t>(drift.cooldown_iterations), 0,
      1'000'000));
  return drift;
}

DriftMonitor::DriftMonitor(const DriftConfig& config, const ClusterSpec& profiled)
    : config_(config), profiled_(profiled) {
  ESP_CHECK_GT(config.smoothing, 0.0);
  ESP_CHECK_LE(config.smoothing, 1.0);
  ESP_CHECK_GE(config.threshold, 0.0);
  ESP_CHECK_GT(profiled.inter.bytes_per_second, 0.0);
  ESP_CHECK_GT(profiled.intra.bytes_per_second, 0.0);
  ewma_inter_bw_ = profiled.inter.bytes_per_second;
  ewma_intra_bw_ = profiled.intra.bytes_per_second;
  ewma_inter_latency_ = profiled.inter.latency_s;
  ewma_intra_latency_ = profiled.intra.latency_s;
}

bool DriftMonitor::Observe(uint64_t iteration, const ClusterSpec& observed) {
  const double a = config_.smoothing;
  ewma_inter_bw_ = a * observed.inter.bytes_per_second + (1.0 - a) * ewma_inter_bw_;
  ewma_intra_bw_ = a * observed.intra.bytes_per_second + (1.0 - a) * ewma_intra_bw_;
  ewma_inter_latency_ = a * observed.inter.latency_s + (1.0 - a) * ewma_inter_latency_;
  ewma_intra_latency_ = a * observed.intra.latency_s + (1.0 - a) * ewma_intra_latency_;
  has_observation_ = true;
  auto& registry = obs::GlobalMetrics();
  registry.Add(Metrics().observations);
  registry.Set(Metrics().drift, drift());
  if (reselected_once_ &&
      iteration < last_reselection_ + config_.cooldown_iterations) {
    return false;
  }
  return drift() > config_.threshold;
}

double DriftMonitor::drift() const {
  if (!has_observation_) return 0.0;
  const double bw_drift =
      std::max(RelativeDeviation(ewma_inter_bw_, profiled_.inter.bytes_per_second),
               RelativeDeviation(ewma_intra_bw_, profiled_.intra.bytes_per_second));
  const double latency_drift =
      std::max(LatencyDeviation(ewma_inter_latency_, profiled_.inter.latency_s),
               LatencyDeviation(ewma_intra_latency_, profiled_.intra.latency_s));
  return std::max(bw_drift, latency_drift);
}

ClusterSpec DriftMonitor::SmoothedCluster() const {
  ClusterSpec drifted = profiled_;
  drifted.inter.bytes_per_second = ewma_inter_bw_;
  drifted.inter.latency_s = ewma_inter_latency_;
  drifted.intra.bytes_per_second = ewma_intra_bw_;
  drifted.intra.latency_s = ewma_intra_latency_;
  return drifted;
}

void DriftMonitor::AcknowledgeReselection(uint64_t iteration) {
  reselected_once_ = true;
  last_reselection_ = iteration;
}

OnlineReselector::OnlineReselector(const ModelProfile& model, const ClusterSpec& profiled,
                                   const Compressor& compressor,
                                   const CompressorConfig& compressor_config,
                                   const SelectorOptions& selector_options,
                                   const DriftConfig& drift_config,
                                   DeploymentConfig deploy_config)
    : model_(model),
      profiled_(profiled),
      compressor_(compressor),
      compressor_config_(compressor_config),
      selector_options_(selector_options),
      monitor_(drift_config, profiled),
      deployment_(model_, profiled_, compressor_, compressor_config_,
                  std::move(deploy_config)) {
  EspressoSelector selector(model_, profiled_, compressor_, selector_options_);
  const SelectionResult result = selector.Select();
  deployment_.Bootstrap(result.strategy, "selector", result.iteration_time);
}

const Strategy& OnlineReselector::strategy() const {
  snapshot_ = deployment_.Acquire();
  return snapshot_->strategy;
}

std::optional<ReselectionEvent> OnlineReselector::Step(uint64_t iteration,
                                                       const ClusterSpec& observed) {
  if (!monitor_.Observe(iteration, observed)) return std::nullopt;

  const ClusterSpec drifted = monitor_.SmoothedCluster();
  EspressoSelector selector(model_, drifted, compressor_, selector_options_);
  const SelectionResult result = selector.Select();
  const std::shared_ptr<const DeployedStrategy> live = deployment_.Acquire();

  ReselectionEvent event;
  event.iteration = iteration;
  event.drift = monitor_.drift();
  event.stale_iteration_time = selector.evaluator().IterationTime(live->strategy);
  event.new_iteration_time = result.iteration_time;
  ESP_CHECK_EQ(result.strategy.options.size(), live->strategy.options.size());
  for (size_t t = 0; t < live->strategy.options.size(); ++t) {
    if (!(result.strategy.options[t] == live->strategy.options[t]))
      ++event.options_changed;
  }

  // Publish through the fail-closed pipeline instead of mutating in place. The IR's
  // digests and F(S) are stamped against the PROFILED configuration — the one the
  // deployment validates against — so the document is self-consistent; the drifted
  // scores travel in the event (and the drift magnitude in the provenance).
  StrategyProvenance provenance;
  provenance.origin = "online-reselector";
  provenance.selector = "espresso";
  provenance.iteration = iteration;
  provenance.drift = event.drift;
  const TimelineEvaluator profiled_evaluator(model_, profiled_, compressor_);
  const StrategyIR ir = CompileStrategyIR(
      result.strategy, profiled_evaluator.IterationTime(result.strategy), model_,
      profiled_, compressor_config_, std::move(provenance));
  const DeployResult deploy = deployment_.Deploy(ir);
  event.deployed = deploy.accepted;
  event.version = deploy.version;

  // The cooldown applies whether or not admission accepted: a refused IR would be
  // refused again next iteration, and re-selection is too expensive to spin on.
  monitor_.AcknowledgeReselection(iteration);
  auto& registry = obs::GlobalMetrics();
  if (event.deployed) {
    registry.Add(Metrics().reselections);
    registry.Add(Metrics().options_changed, event.options_changed);
  }
  return event;
}

}  // namespace espresso

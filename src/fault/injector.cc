#include "src/fault/injector.h"

#include <algorithm>
#include <type_traits>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace espresso {

namespace {
// Coordinate tags keeping the independent draw families decorrelated.
constexpr uint64_t kCorruptionRank = 0xC0FFEEULL;
constexpr uint64_t kCollectiveRank = 0xFA11ED'C011ULL;
}  // namespace

ClusterSpec FaultInjector::PerturbCluster(const ClusterSpec& profiled,
                                          const IterationFaults& faults) const {
  ClusterSpec observed = profiled;
  observed.inter =
      profiled.inter.Degraded(faults.inter_bandwidth_factor, faults.inter_extra_latency_s);
  observed.intra = profiled.intra.Degraded(faults.intra_bandwidth_factor);
  return observed;
}

ResourceScales FaultInjector::ScalesFor(const IterationFaults& faults) const {
  ResourceScales scales;
  scales.gpu = 1.0 / faults.compute_slowdown;
  scales.cpu = 1.0 / faults.cpu_slowdown;
  scales.intra = faults.intra_bandwidth_factor;
  scales.inter = faults.inter_bandwidth_factor;
  return scales;
}

PayloadFate FaultInjector::AttemptFate(uint64_t iteration, uint64_t rank,
                                       uint64_t tensor_id, uint32_t attempt) const {
  const FaultSpec& spec = plan_.spec();
  if (spec.drop_probability == 0.0 && spec.corrupt_probability == 0.0) {
    return PayloadFate::kDelivered;
  }
  const double draw = plan_.PayloadDraw(iteration, rank, tensor_id, attempt);
  if (draw < spec.drop_probability) {
    return PayloadFate::kDropped;
  }
  if (draw < spec.drop_probability + spec.corrupt_probability) {
    return PayloadFate::kCorrupted;
  }
  return PayloadFate::kDelivered;
}

void FaultInjector::Corrupt(uint64_t iteration, uint64_t rank, uint64_t tensor_id,
                            uint32_t attempt, CompressedTensor* payload) const {
  ESP_CHECK(payload != nullptr);
  const double draw =
      plan_.PayloadDraw(iteration, rank ^ kCorruptionRank, tensor_id, attempt);
  auto flip_bit = [&](auto& container) {
    using Value = typename std::remove_reference_t<decltype(container)>::value_type;
    const size_t index = static_cast<size_t>(draw * static_cast<double>(container.size()));
    const size_t clamped = std::min(index, container.size() - 1);
    auto* bytes = reinterpret_cast<uint8_t*>(container.data()) + clamped * sizeof(Value);
    bytes[0] ^= 0x40;  // flip a mid-significance bit
  };
  if (!payload->values.empty()) {
    flip_bit(payload->values);
  } else if (!payload->bytes.empty()) {
    flip_bit(payload->bytes);
  } else if (!payload->scales.empty()) {
    flip_bit(payload->scales);
  } else if (!payload->indices.empty()) {
    flip_bit(payload->indices);
  }
  // An entirely empty payload has no contents to corrupt; it passes through.
}

bool FaultInjector::CollectivePhaseFails(uint64_t iteration, uint64_t tensor_id,
                                         uint32_t attempt) const {
  const double p = plan_.spec().collective_failure_probability;
  if (p == 0.0) {
    return false;
  }
  return plan_.PayloadDraw(iteration, kCollectiveRank, tensor_id, attempt) < p;
}

}  // namespace espresso

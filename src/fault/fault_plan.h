// Deterministic, seed-driven fault schedules for chaos testing the Espresso runtime.
//
// §3.1's motivation — GPU/CPU resource contention and heterogeneous links — is exactly
// what drifts at runtime in a real cluster: stragglers, link jitter, contention spikes.
// A FaultPlan describes those hazards as probabilities and magnitudes; AtIteration()
// materializes the concrete faults of one training iteration as a pure function of
// (seed, iteration), so a schedule is reproducible bit-for-bit: two runs with the same
// spec see the same stragglers, the same jitter draws, the same payload fates.
#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>

#include "src/util/config.h"

namespace espresso {

// Static description of the hazards ([faults] section of a fault config).
struct FaultSpec {
  uint64_t seed = 42;

  // Straggler: with `straggler_probability` per iteration, one machine's GPUs run
  // `straggler_slowdown`x slower, gating the whole synchronous iteration.
  double straggler_probability = 0.0;
  double straggler_slowdown = 1.0;  // >= 1

  // Link degradation: persistent bandwidth factors (1 = profiled speed) plus a
  // per-iteration multiplicative jitter of up to +/- `link_jitter` on each link.
  double inter_bandwidth_factor = 1.0;  // (0, 1]
  double intra_bandwidth_factor = 1.0;  // (0, 1]
  double link_jitter = 0.0;             // [0, 0.9]
  double inter_extra_latency_s = 0.0;

  // CPU-contention spike: with `cpu_contention_probability` per iteration the host
  // CPU compression workers run `cpu_slowdown`x slower.
  double cpu_contention_probability = 0.0;
  double cpu_slowdown = 1.0;  // >= 1

  // Data-path faults, drawn per payload transmission attempt.
  double drop_probability = 0.0;     // payload lost outright
  double corrupt_probability = 0.0;  // payload delivered with flipped bits

  // Coarse-grained failure of a whole collective phase (retry/fallback exercise).
  double collective_failure_probability = 0.0;
};

// The concrete faults of one iteration (all draws resolved).
struct IterationFaults {
  uint64_t iteration = 0;
  bool straggler_active = false;
  bool cpu_contention_active = false;
  double compute_slowdown = 1.0;        // >= 1; applies to the GPU stream
  double cpu_slowdown = 1.0;            // >= 1; applies to the CPU compression pool
  double inter_bandwidth_factor = 1.0;  // jittered, (0, +inf)
  double intra_bandwidth_factor = 1.0;
  double inter_extra_latency_s = 0.0;
};

class FaultPlan {
 public:
  explicit FaultPlan(const FaultSpec& spec);

  // Parses the [faults] section through the range-checked config getters; bad knobs
  // fall back to their defaults and surface in config.warnings().
  static FaultPlan FromConfig(const ConfigFile& config);

  // Deterministic: a pure function of (spec.seed, iteration). Calls may come in any
  // order and from any thread.
  IterationFaults AtIteration(uint64_t iteration) const;

  // Deterministic per-attempt draw in [0, 1) for payload-level faults, decorrelated
  // across (iteration, rank, tensor, attempt).
  double PayloadDraw(uint64_t iteration, uint64_t rank, uint64_t tensor_id,
                     uint32_t attempt) const;

  const FaultSpec& spec() const { return spec_; }

  // True when every hazard is disabled (the plan is a no-op).
  bool Quiet() const;

  std::string Describe() const;

 private:
  FaultSpec spec_;
};

}  // namespace espresso

#endif  // SRC_FAULT_FAULT_PLAN_H_

#include "src/fault/checksum.h"

#include <array>
#include <cstring>

namespace espresso {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  return table;
}

// Extends `crc` (already inverted) over the object representation of a vector.
template <typename T>
uint32_t CrcOver(uint32_t crc, const std::vector<T>& values) {
  const auto& table = CrcTable();
  const auto* bytes = reinterpret_cast<const uint8_t*>(values.data());
  const size_t count = values.size() * sizeof(T);
  for (size_t i = 0; i < count; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> bytes, uint32_t seed) {
  const auto& table = CrcTable();
  uint32_t crc = ~seed;
  for (const uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t PayloadChecksum(const CompressedTensor& payload) {
  uint32_t crc = ~0u;
  const auto& table = CrcTable();
  uint8_t header[9];
  header[0] = static_cast<uint8_t>(payload.kind);
  std::memcpy(header + 1, &payload.original_elements, sizeof(payload.original_elements));
  for (const uint8_t b : header) {
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  crc = CrcOver(crc, payload.indices);
  crc = CrcOver(crc, payload.values);
  crc = CrcOver(crc, payload.scales);
  crc = CrcOver(crc, payload.bytes);
  return ~crc;
}

}  // namespace espresso

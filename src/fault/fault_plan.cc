#include "src/fault/fault_plan.h"

#include <sstream>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace espresso {

namespace {

// Distinct stream tags so iteration-level and payload-level draws never collide.
constexpr uint64_t kIterationStream = 0x1755A1EA0ULL;
constexpr uint64_t kPayloadStream = 0x9E3779B97F4A7C15ULL;

}  // namespace

FaultPlan::FaultPlan(const FaultSpec& spec) : spec_(spec) {
  ESP_CHECK_GE(spec.straggler_probability, 0.0);
  ESP_CHECK_LE(spec.straggler_probability, 1.0);
  ESP_CHECK_GE(spec.straggler_slowdown, 1.0) << "slowdown is a multiplier >= 1";
  ESP_CHECK_GT(spec.inter_bandwidth_factor, 0.0);
  ESP_CHECK_GT(spec.intra_bandwidth_factor, 0.0);
  ESP_CHECK_GE(spec.link_jitter, 0.0);
  ESP_CHECK_LT(spec.link_jitter, 1.0) << "jitter fraction must leave positive bandwidth";
  ESP_CHECK_GE(spec.inter_extra_latency_s, 0.0);
  ESP_CHECK_GE(spec.cpu_contention_probability, 0.0);
  ESP_CHECK_LE(spec.cpu_contention_probability, 1.0);
  ESP_CHECK_GE(spec.cpu_slowdown, 1.0);
  ESP_CHECK_GE(spec.drop_probability, 0.0);
  ESP_CHECK_LE(spec.drop_probability, 1.0);
  ESP_CHECK_GE(spec.corrupt_probability, 0.0);
  ESP_CHECK_LE(spec.corrupt_probability, 1.0);
  ESP_CHECK_GE(spec.collective_failure_probability, 0.0);
  ESP_CHECK_LE(spec.collective_failure_probability, 1.0);
}

FaultPlan FaultPlan::FromConfig(const ConfigFile& config) {
  FaultSpec spec;
  const auto seed = config.GetInt("faults", "seed");
  spec.seed = seed ? static_cast<uint64_t>(*seed) : spec.seed;
  spec.straggler_probability =
      config.GetDoubleOr("faults", "straggler_probability", 0.0, 0.0, 1.0);
  spec.straggler_slowdown =
      config.GetDoubleOr("faults", "straggler_slowdown", 1.0, 1.0, 100.0);
  spec.inter_bandwidth_factor =
      config.GetDoubleOr("faults", "inter_bandwidth_factor", 1.0, 1e-3, 1.0);
  spec.intra_bandwidth_factor =
      config.GetDoubleOr("faults", "intra_bandwidth_factor", 1.0, 1e-3, 1.0);
  spec.link_jitter = config.GetDoubleOr("faults", "link_jitter", 0.0, 0.0, 0.9);
  spec.inter_extra_latency_s =
      config.GetDoubleOr("faults", "inter_extra_latency_s", 0.0, 0.0, 1.0);
  spec.cpu_contention_probability =
      config.GetDoubleOr("faults", "cpu_contention_probability", 0.0, 0.0, 1.0);
  spec.cpu_slowdown = config.GetDoubleOr("faults", "cpu_slowdown", 1.0, 1.0, 100.0);
  spec.drop_probability = config.GetDoubleOr("faults", "drop_probability", 0.0, 0.0, 1.0);
  spec.corrupt_probability =
      config.GetDoubleOr("faults", "corrupt_probability", 0.0, 0.0, 1.0);
  spec.collective_failure_probability =
      config.GetDoubleOr("faults", "collective_failure_probability", 0.0, 0.0, 1.0);
  return FaultPlan(spec);
}

IterationFaults FaultPlan::AtIteration(uint64_t iteration) const {
  IterationFaults faults;
  faults.iteration = iteration;
  Rng rng(DeriveSeed(spec_.seed ^ kIterationStream, iteration));

  faults.straggler_active = spec_.straggler_probability > 0.0 &&
                            rng.Uniform(0.0, 1.0) < spec_.straggler_probability;
  faults.compute_slowdown = faults.straggler_active ? spec_.straggler_slowdown : 1.0;

  faults.cpu_contention_active = spec_.cpu_contention_probability > 0.0 &&
                                 rng.Uniform(0.0, 1.0) < spec_.cpu_contention_probability;
  faults.cpu_slowdown = faults.cpu_contention_active ? spec_.cpu_slowdown : 1.0;

  auto jittered = [&](double base) {
    if (spec_.link_jitter == 0.0) {
      return base;
    }
    return base * (1.0 + spec_.link_jitter * rng.Uniform(-1.0, 1.0));
  };
  faults.inter_bandwidth_factor = jittered(spec_.inter_bandwidth_factor);
  faults.intra_bandwidth_factor = jittered(spec_.intra_bandwidth_factor);
  faults.inter_extra_latency_s = spec_.inter_extra_latency_s;
  return faults;
}

double FaultPlan::PayloadDraw(uint64_t iteration, uint64_t rank, uint64_t tensor_id,
                              uint32_t attempt) const {
  // Two SplitMix64 rounds decorrelate the four coordinates; a third maps to [0, 1).
  const uint64_t a = DeriveSeed(spec_.seed ^ kPayloadStream, iteration * 0x100000001B3ULL + rank);
  const uint64_t b = DeriveSeed(a, tensor_id * 0x9E3779B9ULL + attempt);
  Rng rng(b);
  return rng.Uniform(0.0, 1.0);
}

bool FaultPlan::Quiet() const {
  return spec_.straggler_probability == 0.0 && spec_.inter_bandwidth_factor == 1.0 &&
         spec_.intra_bandwidth_factor == 1.0 && spec_.link_jitter == 0.0 &&
         spec_.inter_extra_latency_s == 0.0 && spec_.cpu_contention_probability == 0.0 &&
         spec_.drop_probability == 0.0 && spec_.corrupt_probability == 0.0 &&
         spec_.collective_failure_probability == 0.0;
}

std::string FaultPlan::Describe() const {
  std::ostringstream os;
  os << "FaultPlan{seed=" << spec_.seed
     << " straggler=" << spec_.straggler_probability << "x" << spec_.straggler_slowdown
     << " inter_bw=" << spec_.inter_bandwidth_factor
     << " intra_bw=" << spec_.intra_bandwidth_factor << " jitter=" << spec_.link_jitter
     << " drop=" << spec_.drop_probability << " corrupt=" << spec_.corrupt_probability
     << " coll_fail=" << spec_.collective_failure_probability << "}";
  return os.str();
}

}  // namespace espresso

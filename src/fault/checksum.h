// Payload integrity checksums for compressed gradient wire buffers.
//
// CRC-32 (IEEE polynomial, table-driven) over every field of a CompressedTensor.
// The reliable channel stamps a checksum before transmission and verifies it on
// receipt; a mismatch marks the payload corrupted and triggers retransmission. The
// checksum covers structure (kind, element count) as well as contents, so a bit flip
// anywhere in indices, values, scales, or packed bytes is detected.
#ifndef SRC_FAULT_CHECKSUM_H_
#define SRC_FAULT_CHECKSUM_H_

#include <cstdint>
#include <span>

#include "src/compress/compressed_tensor.h"

namespace espresso {

// CRC-32 of a raw byte span (init 0xFFFFFFFF, final xor, reflected polynomial).
uint32_t Crc32(std::span<const uint8_t> bytes, uint32_t seed = 0);

// Checksum over all payload fields.
uint32_t PayloadChecksum(const CompressedTensor& payload);

}  // namespace espresso

#endif  // SRC_FAULT_CHECKSUM_H_

// PayloadChannel implementations over a FaultInjector.
//
// ChaosChannel is the raw transport: each Transmit is a single attempt whose fate
// comes straight from the injector — drops are final and corruption is silent, exactly
// what a no-integrity-checking datapath would see.
//
// ReliableChannel layers the resilience policy on top: it stamps a CRC-32 checksum
// before each attempt, verifies after, and retransmits dropped or corrupted payloads
// with capped exponential backoff (RetryPolicy, deterministic jitter). Only when
// retries are exhausted does it report kDropped — at which point the schemes fold the
// payload back into the sender's error-feedback residual (graceful degradation).
#ifndef SRC_FAULT_CHAOS_CHANNEL_H_
#define SRC_FAULT_CHAOS_CHANNEL_H_

#include <cstdint>

#include "src/collectives/channel.h"
#include "src/fault/injector.h"
#include "src/fault/retry_policy.h"
#include "src/mem/compressed_tensor_pool.h"
#include "src/util/rng.h"

namespace espresso {

struct ChannelStats {
  uint64_t transmissions = 0;   // Transmit() calls
  uint64_t attempts = 0;        // individual wire attempts (>= transmissions)
  uint64_t delivered = 0;
  uint64_t dropped = 0;         // final drops reported to the caller
  uint64_t corrupted = 0;       // corruptions delivered (raw) or detected (reliable)
  uint64_t retries = 0;
  double backoff_seconds = 0.0; // total simulated backoff delay spent in retries
};

class ChaosChannel : public PayloadChannel {
 public:
  explicit ChaosChannel(const FaultInjector* injector);

  void BeginIteration(uint64_t iteration) override { iteration_ = iteration; }
  PayloadFate Transmit(size_t rank, uint64_t tensor_id, CompressedTensor* payload) override;

  const ChannelStats& stats() const { return stats_; }

 private:
  const FaultInjector* injector_;
  uint64_t iteration_ = 0;
  ChannelStats stats_;
};

class ReliableChannel : public PayloadChannel {
 public:
  ReliableChannel(const FaultInjector* injector, const RetryPolicy& policy);

  void BeginIteration(uint64_t iteration) override { iteration_ = iteration; }
  // Never returns kCorrupted: corruption is detected by checksum and retried; an
  // undeliverable payload surfaces as kDropped after max_attempts.
  PayloadFate Transmit(size_t rank, uint64_t tensor_id, CompressedTensor* payload) override;

  const ChannelStats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  const FaultInjector* injector_;
  RetryPolicy policy_;
  uint64_t iteration_ = 0;
  ChannelStats stats_;
  // Recycles the corruption scratch copy so verification doesn't allocate per attempt.
  mem::CompressedTensorPool scratch_pool_{"fault"};
};

}  // namespace espresso

#endif  // SRC_FAULT_CHAOS_CHANNEL_H_

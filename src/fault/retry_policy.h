// Capped exponential backoff with deterministic jitter.
//
// Retried operations (payload retransmits, failed collective phases) back off
// exponentially from `base_delay_s`, capped at `max_delay_s`, with a +/- `jitter`
// fractional perturbation drawn from a caller-supplied Rng — deterministic given the
// caller's seed, so retry schedules replay exactly. attempts are 1-based: attempt 1 is
// the initial try, attempts 2..max_attempts are retries.
#ifndef SRC_FAULT_RETRY_POLICY_H_
#define SRC_FAULT_RETRY_POLICY_H_

#include <cstdint>

#include "src/util/config.h"
#include "src/util/rng.h"

namespace espresso {

struct RetryPolicy {
  uint32_t max_attempts = 4;    // initial try + 3 retries, then give up
  double base_delay_s = 1e-3;   // backoff before the first retry
  double max_delay_s = 8e-3;    // backoff cap
  double jitter = 0.2;          // +/- fraction applied to each delay, in [0, 1)

  // True if another attempt is allowed after `attempts_made` tries.
  bool ShouldRetry(uint32_t attempts_made) const { return attempts_made < max_attempts; }

  // Backoff delay before retry number `retry` (1-based: 1 = first retry). The
  // unjittered delay is min(max_delay_s, base_delay_s * 2^(retry-1)); jitter scales it
  // by a factor in [1 - jitter, 1 + jitter] drawn from `rng`.
  double Delay(uint32_t retry, Rng& rng) const;

  // Parses the [retry] section; bad knobs fall back and surface in config.warnings().
  static RetryPolicy FromConfig(const ConfigFile& config);
};

}  // namespace espresso

#endif  // SRC_FAULT_RETRY_POLICY_H_

#include "src/fault/retry_policy.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace espresso {

double RetryPolicy::Delay(uint32_t retry, Rng& rng) const {
  ESP_CHECK_GE(retry, 1u) << "retry numbers are 1-based";
  ESP_CHECK_GE(jitter, 0.0);
  ESP_CHECK_LT(jitter, 1.0);
  const double exponential = base_delay_s * std::pow(2.0, static_cast<double>(retry - 1));
  if (jitter == 0.0) {
    return std::min(max_delay_s, exponential);
  }
  // Clamp after jittering: max_delay_s is a hard cap, so a jitter draw must never
  // push the delay past it.
  const double jittered = exponential * (1.0 + jitter * rng.Uniform(-1.0, 1.0));
  return std::min(max_delay_s, jittered);
}

RetryPolicy RetryPolicy::FromConfig(const ConfigFile& config) {
  RetryPolicy policy;
  policy.max_attempts = static_cast<uint32_t>(
      config.GetIntOr("retry", "max_attempts", policy.max_attempts, 1, 64));
  policy.base_delay_s =
      config.GetDoubleOr("retry", "base_delay_s", policy.base_delay_s, 0.0, 10.0);
  policy.max_delay_s =
      config.GetDoubleOr("retry", "max_delay_s", policy.max_delay_s, 0.0, 60.0);
  policy.jitter = config.GetDoubleOr("retry", "jitter", policy.jitter, 0.0, 0.99);
  return policy;
}

}  // namespace espresso

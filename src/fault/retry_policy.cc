#include "src/fault/retry_policy.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace espresso {

double RetryPolicy::Delay(uint32_t retry, Rng& rng) const {
  ESP_CHECK_GE(retry, 1u) << "retry numbers are 1-based";
  ESP_CHECK_GE(jitter, 0.0);
  ESP_CHECK_LT(jitter, 1.0);
  const double exponential = base_delay_s * std::pow(2.0, static_cast<double>(retry - 1));
  const double capped = std::min(max_delay_s, exponential);
  if (jitter == 0.0) {
    return capped;
  }
  return capped * (1.0 + jitter * rng.Uniform(-1.0, 1.0));
}

RetryPolicy RetryPolicy::FromConfig(const ConfigFile& config) {
  RetryPolicy policy;
  policy.max_attempts = static_cast<uint32_t>(
      config.GetIntOr("retry", "max_attempts", policy.max_attempts, 1, 64));
  policy.base_delay_s =
      config.GetDoubleOr("retry", "base_delay_s", policy.base_delay_s, 0.0, 10.0);
  policy.max_delay_s =
      config.GetDoubleOr("retry", "max_delay_s", policy.max_delay_s, 0.0, 60.0);
  policy.jitter = config.GetDoubleOr("retry", "jitter", policy.jitter, 0.0, 0.99);
  return policy;
}

}  // namespace espresso

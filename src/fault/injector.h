// FaultInjector: applies a FaultPlan to the three layers of the runtime.
//
//   * cost model  — PerturbCluster() degrades link bandwidth/latency, feeding the
//     TimelineEvaluator and the online re-selection path with observed (not profiled)
//     link parameters;
//   * simulation  — ScalesFor() converts an iteration's straggler / CPU-contention
//     state into ResourceScales for SimEngine task durations;
//   * data path   — AttemptFate() / Corrupt() decide each payload transmission's
//     outcome and mutate corrupted wire buffers; CollectivePhaseFails() injects
//     coarse-grained phase failures for the retry/fallback machinery.
//
// Everything is a pure function of (plan seed, coordinates), so a chaos run replays
// bit-for-bit.
#ifndef SRC_FAULT_INJECTOR_H_
#define SRC_FAULT_INJECTOR_H_

#include <cstdint>

#include "src/collectives/channel.h"
#include "src/core/timeline.h"
#include "src/costmodel/calibration.h"
#include "src/fault/fault_plan.h"

namespace espresso {

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  // The cluster as it actually behaves during `faults`' iteration: inter/intra links
  // degraded and jittered per the plan. Compute-side slowdowns are returned separately
  // by ScalesFor() because they scale simulated task durations, not link parameters.
  ClusterSpec PerturbCluster(const ClusterSpec& profiled, const IterationFaults& faults) const;

  // SimEngine speed factors for one iteration (straggler GPU, contended CPU pool, and
  // the same link factors as PerturbCluster for engines already built from the
  // profiled cluster).
  ResourceScales ScalesFor(const IterationFaults& faults) const;

  // Outcome of one payload transmission attempt (attempts are 1-based).
  PayloadFate AttemptFate(uint64_t iteration, uint64_t rank, uint64_t tensor_id,
                          uint32_t attempt) const;

  // Deterministically flips one bit of the payload's contents.
  void Corrupt(uint64_t iteration, uint64_t rank, uint64_t tensor_id, uint32_t attempt,
               CompressedTensor* payload) const;

  // Whether a whole collective phase fails on this attempt.
  bool CollectivePhaseFails(uint64_t iteration, uint64_t tensor_id, uint32_t attempt) const;

 private:
  FaultPlan plan_;
};

}  // namespace espresso

#endif  // SRC_FAULT_INJECTOR_H_

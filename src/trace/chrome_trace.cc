#include "src/trace/chrome_trace.h"

#include <map>
#include <string>

#include "src/util/json_writer.h"

namespace espresso {

void WriteChromeTrace(std::ostream& os, const ModelProfile& model,
                      const std::vector<TimelineEntry>& entries,
                      const std::vector<TraceInstant>& instants) {
  // Stable thread ids per resource track; faults get their own track.
  const std::map<std::string, int> tids = {
      {"gpu", 0}, {"cpu", 1}, {"intra", 2}, {"inter", 3}, {"faults", 4}};

  JsonWriter w(os);
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const auto& [name, tid] : tids) {
    w.BeginObject();
    w.Field("name", "thread_name");
    w.Field("ph", "M");
    w.Field("pid", 0);
    w.Field("tid", tid);
    w.Key("args");
    w.BeginObject();
    w.Field("name", name);
    w.EndObject();
    w.EndObject();
  }
  for (const auto& e : entries) {
    auto it = tids.find(e.resource);
    const int tid = it == tids.end() ? 9 : it->second;
    w.BeginObject();
    w.Field("name", e.kind + " " + (e.tensor < model.tensors.size()
                                        ? model.tensors[e.tensor].name
                                        : "T" + std::to_string(e.tensor)));
    w.Field("cat", e.kind);
    w.Field("ph", "X");
    w.Field("ts", e.start * 1e6);            // microseconds
    w.Field("dur", (e.end - e.start) * 1e6);
    w.Field("pid", 0);
    w.Field("tid", tid);
    w.EndObject();
  }
  for (const auto& instant : instants) {
    w.BeginObject();
    w.Field("name", instant.name);
    w.Field("cat", "fault");
    w.Field("ph", "i");
    w.Field("s", "t");  // thread-scoped instant
    w.Field("ts", instant.time_s * 1e6);
    w.Field("pid", 0);
    w.Field("tid", tids.at("faults"));
    if (!instant.detail.empty()) {
      w.Key("args");
      w.BeginObject();
      w.Field("detail", instant.detail);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Field("displayTimeUnit", "ms");
  w.EndObject();
}

}  // namespace espresso

// Exports a simulated training timeline as a chrome://tracing / Perfetto JSON file, so
// the strategy timelines of Figures 2, 5, and 9 can be inspected visually. One track per
// resource (gpu / cpu / intra / inter); event names carry the tensor and op kind.
#ifndef SRC_TRACE_CHROME_TRACE_H_
#define SRC_TRACE_CHROME_TRACE_H_

#include <ostream>
#include <vector>

#include "src/core/timeline.h"

namespace espresso {

void WriteChromeTrace(std::ostream& os, const ModelProfile& model,
                      const std::vector<TimelineEntry>& entries);

}  // namespace espresso

#endif  // SRC_TRACE_CHROME_TRACE_H_

// Exports a simulated training timeline as a chrome://tracing / Perfetto JSON file, so
// the strategy timelines of Figures 2, 5, and 9 can be inspected visually. One track per
// resource (gpu / cpu / intra / inter); event names carry the tensor and op kind.
#ifndef SRC_TRACE_CHROME_TRACE_H_
#define SRC_TRACE_CHROME_TRACE_H_

#include <ostream>
#include <vector>

#include "src/core/timeline.h"

#include <string>

namespace espresso {

// A point event overlaid on the timeline (chrome "instant" event, ph = "i"): fault
// injections, retries, strategy hot-swaps. Rendered on a dedicated "faults" track.
struct TraceInstant {
  double time_s = 0.0;
  std::string name;    // e.g. "payload_drop", "strategy_reselect"
  std::string detail;  // free-form args payload shown in the event inspector
};

void WriteChromeTrace(std::ostream& os, const ModelProfile& model,
                      const std::vector<TimelineEntry>& entries,
                      const std::vector<TraceInstant>& instants = {});

}  // namespace espresso

#endif  // SRC_TRACE_CHROME_TRACE_H_

#include "src/util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace espresso {

namespace internal {
long g_atomic_write_fail_after_bytes = -1;
}  // namespace internal

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

// Thread-safe strerror: std::strerror's static buffer races when two writers fail
// concurrently (concurrency-mt-unsafe). The overload pair absorbs both strerror_r
// variants — GNU returns the message pointer, XSI returns 0 on success into buf —
// without caring which one the libc provides.
#ifndef _WIN32
[[maybe_unused]] const char* StrerrorResult(char* result, const char* /*buf*/) {
  return result;
}
[[maybe_unused]] const char* StrerrorResult(int result, const char* buf) {
  return result == 0 ? buf : nullptr;
}
#endif

std::string ErrnoMessage(int err) {
  char buf[256] = {};
#ifdef _WIN32
  strerror_s(buf, sizeof(buf), err);
  return std::string(buf);
#else
  const char* message = StrerrorResult(strerror_r(err, buf, sizeof(buf)), buf);
  return message != nullptr ? std::string(message)
                            : "errno " + std::to_string(err);
#endif
}

}  // namespace

bool WriteFileAtomic(const std::string& path, std::string_view content,
                     std::string* error) {
  // The temp file must live in the destination's directory: rename(2) is only atomic
  // within one filesystem. The pid suffix keeps concurrent writers from clobbering
  // each other's in-flight temp files.
#ifndef _WIN32
  const std::string tmp_path = path + ".tmp." + std::to_string(::getpid());
#else
  const std::string tmp_path = path + ".tmp";
#endif
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    SetError(error, "cannot create " + tmp_path + ": " + ErrnoMessage(errno));
    return false;
  }

  size_t to_write = content.size();
  bool simulated_crash = false;
  if (internal::g_atomic_write_fail_after_bytes >= 0) {
    const size_t cap = static_cast<size_t>(internal::g_atomic_write_fail_after_bytes);
    if (cap < to_write) {
      to_write = cap;
      simulated_crash = true;
    }
    internal::g_atomic_write_fail_after_bytes = -1;
  }

  const size_t written =
      to_write == 0 ? 0 : std::fwrite(content.data(), 1, to_write, f);
  bool ok = written == to_write && !simulated_crash;
  if (ok && std::fflush(f) != 0) {
    ok = false;
  }
#ifndef _WIN32
  // Push the bytes to stable storage before publishing the name: a crash between
  // rename and writeback must not surface an empty renamed file.
  if (ok && ::fsync(::fileno(f)) != 0) {
    ok = false;
  }
#endif
  if (std::fclose(f) != 0) {
    ok = false;
  }
  if (!ok) {
    std::remove(tmp_path.c_str());
    SetError(error, simulated_crash
                        ? "simulated crash while writing " + tmp_path
                        : "short write to " + tmp_path + ": " + ErrnoMessage(errno));
    return false;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const std::string reason = ErrnoMessage(errno);
    std::remove(tmp_path.c_str());
    SetError(error, "cannot rename " + tmp_path + " to " + path + ": " + reason);
    return false;
  }
  return true;
}

}  // namespace espresso

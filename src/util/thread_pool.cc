#include "src/util/thread_pool.h"

#include <utility>

namespace espresso {

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

size_t TaskGroup::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

void TaskGroup::TaskAdded() {
  std::lock_guard<std::mutex> lock(mu_);
  ++pending_;
}

void TaskGroup::TaskFinished() {
  std::lock_guard<std::mutex> lock(mu_);
  --pending_;
  if (pending_ == 0) {
    // Notify while still holding mu_: the moment a waiter can observe
    // pending_ == 0 it may destroy this group (ServeConnection keeps it on the
    // stack), so the notifier must be done with cv_ before releasing the lock.
    cv_.notify_all();
  }
}

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Submit(TaskGroup& group, std::function<void()> task) {
  // The group count is raised BEFORE the task is queued: a Wait() racing with this
  // Submit either sees the pending task or runs before the submission — it can never
  // miss a task that was already handed to the pool.
  group.TaskAdded();
  TaskGroup* tracked = &group;
  Submit([tracked, task = std::move(task)] {
    task();
    tracked->TaskFinished();
  });
}

void ThreadPool::Wait() {
  if (threads_.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace espresso

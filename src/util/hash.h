// Shared splitmix64-based content hashing. One hash family serves the selector's
// strategy fingerprints (src/core/eval_cache) and the strategy IR's config digests
// (src/core/strategy_ir): 64-bit, order-sensitive, stable across processes — the
// digests written into an IR file by one build must verify in another.
#ifndef SRC_UTIL_HASH_H_
#define SRC_UTIL_HASH_H_

#include <bit>
#include <cstdint>
#include <string_view>

namespace espresso {

// splitmix64 finalizer: full-avalanche 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Order-sensitive combiner (boost-style accumulation through Mix64).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

// Doubles hash by bit pattern: two values hash equal iff they are the same bits
// (0.0 and -0.0 deliberately differ; NaNs hash by payload).
inline uint64_t DoubleBits(double d) { return std::bit_cast<uint64_t>(d); }

inline uint64_t HashDouble(uint64_t seed, double d) {
  return HashCombine(seed, DoubleBits(d));
}

// FNV-1a over the bytes, then mixed into the running seed. Length is combined
// separately so "ab" + "c" and "a" + "bc" cannot collide across successive calls.
inline uint64_t HashString(uint64_t seed, std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  seed = HashCombine(seed, s.size());
  return HashCombine(seed, h);
}

}  // namespace espresso

#endif  // SRC_UTIL_HASH_H_

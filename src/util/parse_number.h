// Locale-independent numeric parsing for untrusted text (config files, .esp
// strategies, RPC payloads). std::stod/std::stoull have two failure modes that a
// long-lived, multi-tenant process cannot tolerate:
//
//   * their decimal handling follows the process locale — under de_DE,
//     strtod("0.25") stops at the '.' and yields 0.0, silently corrupting every
//     fraction in every config the process parses;
//   * out-of-range input throws std::out_of_range instead of diagnosing, so a
//     hostile "1e999" becomes an exception in the middle of a parse loop.
//
// These helpers are built on std::from_chars, which is locale-independent by
// specification and reports overflow as a status, not an exception. The whole
// token must parse (trailing garbage is malformed); a single leading '+' is
// accepted for compatibility with the std::sto* call sites they replace.
#ifndef SRC_UTIL_PARSE_NUMBER_H_
#define SRC_UTIL_PARSE_NUMBER_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace espresso {

enum class NumberParse {
  kOk,
  kMalformed,    // empty, non-numeric, or trailing garbage
  kOutOfRange,   // syntactically a number, but not representable in the target type
};

// One-line suffix for a diagnostic, e.g. "is not a number" / "is out of range".
const char* NumberParseMessage(NumberParse status);

// Whole-token parses. On kOk, *out holds the value; otherwise *out is untouched.
NumberParse ParseDouble(std::string_view text, double* out);
NumberParse ParseInt64(std::string_view text, int64_t* out);
NumberParse ParseUint64(std::string_view text, uint64_t* out);

// Conveniences for call sites that only need success/failure.
std::optional<double> ParseDoubleOpt(std::string_view text);
std::optional<int64_t> ParseInt64Opt(std::string_view text);
std::optional<uint64_t> ParseUint64Opt(std::string_view text);

}  // namespace espresso

#endif  // SRC_UTIL_PARSE_NUMBER_H_

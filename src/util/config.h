// Minimal INI-style configuration parser for Espresso's three input files (§4.1,
// Figure 6: model information, GC information, training-system information).
//
// Supported syntax:
//   [section]
//   key = value            # trailing comments with '#' or ';'
// Keys keep their in-file order within a section (the model file lists tensors in
// backward order). Parsing never throws; malformed lines are reported via ok()/error().
#ifndef SRC_UTIL_CONFIG_H_
#define SRC_UTIL_CONFIG_H_

#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace espresso {

class ConfigFile {
 public:
  // Parses from a stream or a string; check ok() before use.
  static ConfigFile Parse(std::istream& in);
  static ConfigFile ParseString(const std::string& text);
  // Reads and parses a file; !ok() with an error message if unreadable.
  static ConfigFile Load(const std::string& path);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  bool HasSection(std::string_view section) const;
  std::optional<std::string> Get(std::string_view section, std::string_view key) const;
  std::string GetOr(std::string_view section, std::string_view key,
                    std::string_view fallback) const;
  std::optional<double> GetDouble(std::string_view section, std::string_view key) const;
  std::optional<int64_t> GetInt(std::string_view section, std::string_view key) const;
  std::optional<bool> GetBool(std::string_view section, std::string_view key) const;

  // All (key, value) pairs of a section, in file order. Duplicate keys are preserved.
  std::vector<std::pair<std::string, std::string>> Entries(std::string_view section) const;

 private:
  struct Entry {
    std::string section;
    std::string key;
    std::string value;
  };
  std::vector<Entry> entries_;
  std::string error_;
};

// Trims ASCII whitespace from both ends.
std::string_view TrimView(std::string_view s);

// Splits on any-of `delims`, trimming each piece and dropping empties.
std::vector<std::string> SplitFields(std::string_view s, std::string_view delims);

}  // namespace espresso

#endif  // SRC_UTIL_CONFIG_H_

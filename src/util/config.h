// Minimal INI-style configuration parser for Espresso's three input files (§4.1,
// Figure 6: model information, GC information, training-system information).
//
// Supported syntax:
//   [section]
//   key = value            # trailing comments with '#' or ';'
// Keys keep their in-file order within a section (the model file lists tensors in
// backward order). Parsing never throws; malformed lines are reported via ok()/error().
#ifndef SRC_UTIL_CONFIG_H_
#define SRC_UTIL_CONFIG_H_

#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace espresso {

class ConfigFile {
 public:
  // Parses from a stream or a string; check ok() before use.
  static ConfigFile Parse(std::istream& in);
  static ConfigFile ParseString(const std::string& text);
  // Reads and parses a file; !ok() with an error message if unreadable.
  static ConfigFile Load(const std::string& path);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  bool HasSection(std::string_view section) const;
  std::optional<std::string> Get(std::string_view section, std::string_view key) const;
  std::string GetOr(std::string_view section, std::string_view key,
                    std::string_view fallback) const;
  std::optional<double> GetDouble(std::string_view section, std::string_view key) const;
  std::optional<int64_t> GetInt(std::string_view section, std::string_view key) const;
  std::optional<bool> GetBool(std::string_view section, std::string_view key) const;

  // Range-checked lookups with diagnostics: a present-but-malformed value, or one
  // outside [min, max], returns `fallback` AND records a warning citing the file and
  // line — bad knobs (fault-plan probabilities, retry caps) must not vanish silently.
  // A missing key is not an error; it returns `fallback` with no warning.
  double GetDoubleOr(std::string_view section, std::string_view key, double fallback,
                     double min, double max) const;
  int64_t GetIntOr(std::string_view section, std::string_view key, int64_t fallback,
                   int64_t min, int64_t max) const;

  // Diagnostics accumulated by the range-checked getters, e.g.
  // "faults.ini line 7: [faults] drop_probability = 1.7 out of range [0, 1]".
  const std::vector<std::string>& warnings() const { return warnings_; }

  // All (key, value) pairs of a section, in file order. Duplicate keys are preserved.
  std::vector<std::pair<std::string, std::string>> Entries(std::string_view section) const;

  // Every `[section]` header in file order as (name, line), one element per header —
  // a name repeats if its header does. Entries() silently merges duplicated sections,
  // so strict readers (strategy files) use this to reject the duplication instead.
  const std::vector<std::pair<std::string, int>>& SectionHeaders() const {
    return sections_;
  }

 private:
  struct Entry {
    std::string section;
    std::string key;
    std::string value;
    int line = 0;
  };
  const Entry* Find(std::string_view section, std::string_view key) const;
  void Warn(const Entry& entry, const std::string& reason) const;

  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, int>> sections_;  // headers in file order
  std::string error_;
  std::string source_ = "<string>";  // file path for Load(), "<string>" otherwise
  // Collected by const getters; mutable so lookups stay const like the rest of the API.
  mutable std::vector<std::string> warnings_;
};

// Trims ASCII whitespace from both ends.
std::string_view TrimView(std::string_view s);

// Splits on any-of `delims`, trimming each piece and dropping empties.
std::vector<std::string> SplitFields(std::string_view s, std::string_view delims);

}  // namespace espresso

#endif  // SRC_UTIL_CONFIG_H_

// Deterministic random-number utilities.
//
// Every stochastic component in the repository (Random-k sampling, synthetic datasets,
// randomized property tests) draws from an explicitly seeded Rng so that runs are
// reproducible bit-for-bit. Never use global std::rand or a time-seeded engine.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace espresso {

// Thin wrapper over a 64-bit Mersenne engine with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  double Normal(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  // Fills `out` with i.i.d. normal samples; handy for synthetic gradients.
  void FillNormal(std::vector<float>& out, double mean, double stddev) {
    std::normal_distribution<float> dist(static_cast<float>(mean), static_cast<float>(stddev));
    for (float& v : out) {
      v = dist(engine_);
    }
  }

  // Samples k distinct indices from [0, n) via partial Fisher-Yates; O(n) memory, O(k) swaps.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  // Same draws as above, written into `out` (capacity reused across calls). `scratch`
  // holds the O(n) shuffle pool; both vectors are fully overwritten.
  void SampleWithoutReplacement(uint32_t n, uint32_t k, std::vector<uint32_t>* out,
                                std::vector<uint32_t>* scratch);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Derives a child seed from (seed, stream) so parallel components get decorrelated
// but reproducible streams. SplitMix64 finalizer.
uint64_t DeriveSeed(uint64_t seed, uint64_t stream);

}  // namespace espresso

#endif  // SRC_UTIL_RNG_H_

#include "src/util/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "src/util/parse_number.h"

namespace espresso {

std::string_view TrimView(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> SplitFields(std::string_view s, std::string_view delims) {
  std::vector<std::string> fields;
  size_t begin = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      const std::string_view piece = TrimView(s.substr(begin, i - begin));
      if (!piece.empty()) {
        fields.emplace_back(piece);
      }
      begin = i + 1;
    }
  }
  return fields;
}

ConfigFile ConfigFile::Parse(std::istream& in) {
  ConfigFile config;
  std::string line;
  std::string section;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments ('#' or ';') and whitespace.
    const size_t comment = line.find_first_of("#;");
    if (comment != std::string::npos) {
      line.resize(comment);
    }
    const std::string_view trimmed = TrimView(line);
    if (trimmed.empty()) {
      continue;
    }
    if (trimmed.front() == '[') {
      if (trimmed.back() != ']' || trimmed.size() < 3) {
        config.error_ = "line " + std::to_string(line_number) + ": malformed section header";
        return config;
      }
      section = std::string(TrimView(trimmed.substr(1, trimmed.size() - 2)));
      config.sections_.emplace_back(section, line_number);
      continue;
    }
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      config.error_ = "line " + std::to_string(line_number) + ": expected key = value";
      return config;
    }
    Entry entry;
    entry.section = section;
    entry.key = std::string(TrimView(trimmed.substr(0, eq)));
    entry.value = std::string(TrimView(trimmed.substr(eq + 1)));
    entry.line = line_number;
    if (entry.key.empty()) {
      config.error_ = "line " + std::to_string(line_number) + ": empty key";
      return config;
    }
    config.entries_.push_back(std::move(entry));
  }
  return config;
}

ConfigFile ConfigFile::ParseString(const std::string& text) {
  std::istringstream in(text);
  return Parse(in);
}

ConfigFile ConfigFile::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ConfigFile config;
    config.error_ = "cannot open " + path;
    return config;
  }
  ConfigFile config = Parse(in);
  config.source_ = path;
  if (!config.ok()) {
    config.error_ = path + ": " + config.error_;
  }
  return config;
}

const ConfigFile::Entry* ConfigFile::Find(std::string_view section,
                                          std::string_view key) const {
  for (const Entry& e : entries_) {
    if (e.section == section && e.key == key) {
      return &e;
    }
  }
  return nullptr;
}

void ConfigFile::Warn(const Entry& entry, const std::string& reason) const {
  warnings_.push_back(source_ + " line " + std::to_string(entry.line) + ": [" +
                      entry.section + "] " + entry.key + " = " + entry.value + " " +
                      reason);
}

bool ConfigFile::HasSection(std::string_view section) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.section == section; });
}

std::optional<std::string> ConfigFile::Get(std::string_view section,
                                           std::string_view key) const {
  for (const Entry& e : entries_) {
    if (e.section == section && e.key == key) {
      return e.value;
    }
  }
  return std::nullopt;
}

std::string ConfigFile::GetOr(std::string_view section, std::string_view key,
                              std::string_view fallback) const {
  return Get(section, key).value_or(std::string(fallback));
}

std::optional<double> ConfigFile::GetDouble(std::string_view section,
                                            std::string_view key) const {
  const auto value = Get(section, key);
  if (!value) {
    return std::nullopt;
  }
  // Locale-independent and exception-free: a de_DE process locale must not turn
  // "0.25" into 0, and a hostile "1e999" must diagnose, not throw.
  return ParseDoubleOpt(*value);
}

std::optional<int64_t> ConfigFile::GetInt(std::string_view section,
                                          std::string_view key) const {
  const auto value = Get(section, key);
  if (!value) {
    return std::nullopt;
  }
  return ParseInt64Opt(*value);
}

std::optional<bool> ConfigFile::GetBool(std::string_view section,
                                        std::string_view key) const {
  const auto value = Get(section, key);
  if (!value) {
    return std::nullopt;
  }
  if (*value == "true" || *value == "1" || *value == "yes" || *value == "on") {
    return true;
  }
  if (*value == "false" || *value == "0" || *value == "no" || *value == "off") {
    return false;
  }
  return std::nullopt;
}

double ConfigFile::GetDoubleOr(std::string_view section, std::string_view key,
                               double fallback, double min, double max) const {
  const Entry* entry = Find(section, key);
  if (entry == nullptr) {
    return fallback;
  }
  double value = 0.0;
  const NumberParse status = ParseDouble(entry->value, &value);
  if (status != NumberParse::kOk) {
    Warn(*entry, std::string(NumberParseMessage(status)) + "; using " +
                     std::to_string(fallback));
    return fallback;
  }
  const std::optional<double> parsed = value;
  if (*parsed < min || *parsed > max) {
    Warn(*entry, "out of range [" + std::to_string(min) + ", " + std::to_string(max) +
                     "]; using " + std::to_string(fallback));
    return fallback;
  }
  return *parsed;
}

int64_t ConfigFile::GetIntOr(std::string_view section, std::string_view key,
                             int64_t fallback, int64_t min, int64_t max) const {
  const Entry* entry = Find(section, key);
  if (entry == nullptr) {
    return fallback;
  }
  int64_t value = 0;
  const NumberParse status = ParseInt64(entry->value, &value);
  if (status != NumberParse::kOk) {
    Warn(*entry, std::string(NumberParseMessage(status)) + "; using " +
                     std::to_string(fallback));
    return fallback;
  }
  const std::optional<int64_t> parsed = value;
  if (*parsed < min || *parsed > max) {
    Warn(*entry, "out of range [" + std::to_string(min) + ", " + std::to_string(max) +
                     "]; using " + std::to_string(fallback));
    return fallback;
  }
  return *parsed;
}

std::vector<std::pair<std::string, std::string>> ConfigFile::Entries(
    std::string_view section) const {
  std::vector<std::pair<std::string, std::string>> result;
  for (const Entry& e : entries_) {
    if (e.section == section) {
      result.emplace_back(e.key, e.value);
    }
  }
  return result;
}

}  // namespace espresso

#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace espresso {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) {
    sq += (v - s.mean) * (v - s.mean);
  }
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

double Percentile(std::vector<double> values, double p) {
  ESP_CHECK(!values.empty());
  ESP_CHECK_GE(p, 0.0);
  ESP_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values.front();
  }
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<size_t>(std::floor(rank));
  const auto hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(values.size());
  const auto n = static_cast<double>(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    cdf.push_back(CdfPoint{values[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

}  // namespace espresso

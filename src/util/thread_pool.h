// Fixed-size worker pool. The functional collectives and the data-parallel mini-trainer
// can run each rank's local work on a pool; on single-core hosts callers may pass
// num_threads == 0 to run inline, keeping results byte-identical either way.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace espresso {

class ThreadPool {
 public:
  // num_threads == 0 creates an inline pool: Submit runs the task immediately on the
  // caller's thread. This is deterministic and is the default in tests.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every submitted task has completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace espresso

#endif  // SRC_UTIL_THREAD_POOL_H_

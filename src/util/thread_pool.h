// Fixed-size worker pool. The functional collectives and the data-parallel mini-trainer
// can run each rank's local work on a pool; on single-core hosts callers may pass
// num_threads == 0 to run inline, keeping results byte-identical either way.
//
// Waiting comes in two scopes:
//   * Wait() blocks until the pool is GLOBALLY idle — correct for a pool with a single
//     logical client (the selector's ParallelFor), but two concurrent clients each end
//     up waiting for the *other's* tasks too, serializing independent requests.
//   * TaskGroup scopes the wait to one client's own submissions: tasks submitted via
//     Submit(group, task) are counted per group, and group.Wait() returns as soon as
//     THAT group drains, regardless of what else is in flight. This is what the
//     strategy-selection service uses so concurrent requests complete independently.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace espresso {

// Tracks the in-flight count of one client's tasks across a shared ThreadPool.
// A group may be reused after Wait() returns; it must outlive every task submitted
// against it. Thread-safe: multiple threads may submit against and wait on the same
// group (each waiter wakes when the group drains).
class TaskGroup {
 public:
  TaskGroup() = default;

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Blocks until every task submitted against this group has completed. Unlike
  // ThreadPool::Wait(), tasks other clients submitted to the same pool are ignored.
  void Wait();

  // Tasks submitted against this group that have not finished yet.
  size_t pending() const;

 private:
  friend class ThreadPool;

  void TaskAdded();
  void TaskFinished();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
};

class ThreadPool {
 public:
  // num_threads == 0 creates an inline pool: Submit runs the task immediately on the
  // caller's thread. This is deterministic and is the default in tests.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Submits a task accounted against `group`, so group.Wait() covers it. The group
  // must outlive the task's execution.
  void Submit(TaskGroup& group, std::function<void()> task);

  // Blocks until every submitted task has completed — the whole pool, every client.
  // Prefer TaskGroup::Wait() when the pool is shared across concurrent callers.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace espresso

#endif  // SRC_UTIL_THREAD_POOL_H_

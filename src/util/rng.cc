#include "src/util/rng.h"

#include <numeric>

#include "src/util/logging.h"

namespace espresso {

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  std::vector<uint32_t> out;
  std::vector<uint32_t> scratch;
  SampleWithoutReplacement(n, k, &out, &scratch);
  return out;
}

void Rng::SampleWithoutReplacement(uint32_t n, uint32_t k, std::vector<uint32_t>* out,
                                   std::vector<uint32_t>* scratch) {
  ESP_CHECK_LE(k, n);
  std::vector<uint32_t>& pool = *scratch;
  pool.resize(n);
  std::iota(pool.begin(), pool.end(), 0u);
  for (uint32_t i = 0; i < k; ++i) {
    const auto j = static_cast<uint32_t>(UniformInt(i, static_cast<int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  out->assign(pool.begin(), pool.begin() + k);
}

uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace espresso

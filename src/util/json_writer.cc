#include "src/util/json_writer.h"

#include <charconv>
#include <cmath>

#include "src/util/logging.h"

namespace espresso {

std::string FormatDouble(double d) {
  // Shortest round-trip form; 32 chars cover the longest case
  // (-2.2250738585072014e-308 is 24 chars).
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  ESP_CHECK(ec == std::errc());
  return std::string(buf, ptr);
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Value directly follows its key; no comma.
  }
  if (!scopes_.empty()) {
    if (!first_in_scope_.back()) {
      os_ << ",";
    }
    first_in_scope_.back() = false;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  os_ << "{";
  scopes_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
}

void JsonWriter::EndObject() {
  ESP_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  scopes_.pop_back();
  first_in_scope_.pop_back();
  os_ << "}";
}

void JsonWriter::BeginArray() {
  MaybeComma();
  os_ << "[";
  scopes_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
}

void JsonWriter::EndArray() {
  ESP_CHECK(!scopes_.empty() && scopes_.back() == Scope::kArray);
  scopes_.pop_back();
  first_in_scope_.pop_back();
  os_ << "]";
}

void JsonWriter::Key(std::string_view key) {
  ESP_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  MaybeComma();
  WriteEscaped(key);
  os_ << ":";
  pending_key_ = true;
}

void JsonWriter::Value(std::string_view s) {
  MaybeComma();
  WriteEscaped(s);
}

void JsonWriter::Value(double d) {
  MaybeComma();
  if (!std::isfinite(d)) {
    os_ << "null";
    return;
  }
  // std::to_chars, not ostream insertion: setprecision-style manipulators are both
  // lossy (doubles need up to 17 significant digits to round-trip) and sticky (they
  // would permanently mutate the caller's stream formatting state).
  os_ << FormatDouble(d);
}

void JsonWriter::Value(int64_t i) {
  MaybeComma();
  os_ << i;
}

void JsonWriter::Value(uint64_t u) {
  MaybeComma();
  os_ << u;
}

void JsonWriter::Value(bool b) {
  MaybeComma();
  os_ << (b ? "true" : "false");
}

void JsonWriter::WriteEscaped(std::string_view s) {
  os_ << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os_ << "\\\"";
        break;
      case '\\':
        os_ << "\\\\";
        break;
      case '\n':
        os_ << "\\n";
        break;
      case '\t':
        os_ << "\\t";
        break;
      case '\r':
        os_ << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Manual hex: ostream manipulators would leak formatting state to the caller.
          static constexpr char kHex[] = "0123456789abcdef";
          const auto u = static_cast<unsigned char>(c);
          os_ << "\\u00" << kHex[(u >> 4) & 0xF] << kHex[u & 0xF];
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

}  // namespace espresso

#include "src/util/json_writer.h"

#include <cmath>
#include <iomanip>

#include "src/util/logging.h"

namespace espresso {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Value directly follows its key; no comma.
  }
  if (!scopes_.empty()) {
    if (!first_in_scope_.back()) {
      os_ << ",";
    }
    first_in_scope_.back() = false;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  os_ << "{";
  scopes_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
}

void JsonWriter::EndObject() {
  ESP_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  scopes_.pop_back();
  first_in_scope_.pop_back();
  os_ << "}";
}

void JsonWriter::BeginArray() {
  MaybeComma();
  os_ << "[";
  scopes_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
}

void JsonWriter::EndArray() {
  ESP_CHECK(!scopes_.empty() && scopes_.back() == Scope::kArray);
  scopes_.pop_back();
  first_in_scope_.pop_back();
  os_ << "]";
}

void JsonWriter::Key(std::string_view key) {
  ESP_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  MaybeComma();
  WriteEscaped(key);
  os_ << ":";
  pending_key_ = true;
}

void JsonWriter::Value(std::string_view s) {
  MaybeComma();
  WriteEscaped(s);
}

void JsonWriter::Value(double d) {
  MaybeComma();
  if (!std::isfinite(d)) {
    os_ << "null";
    return;
  }
  os_ << std::setprecision(12) << d;
}

void JsonWriter::Value(int64_t i) {
  MaybeComma();
  os_ << i;
}

void JsonWriter::Value(uint64_t u) {
  MaybeComma();
  os_ << u;
}

void JsonWriter::Value(bool b) {
  MaybeComma();
  os_ << (b ? "true" : "false");
}

void JsonWriter::WriteEscaped(std::string_view s) {
  os_ << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os_ << "\\\"";
        break;
      case '\\':
        os_ << "\\\\";
        break;
      case '\n':
        os_ << "\\n";
        break;
      case '\t':
        os_ << "\\t";
        break;
      case '\r':
        os_ << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os_ << "\\u" << std::hex << std::setw(4) << std::setfill('0') << static_cast<int>(c)
              << std::dec << std::setfill(' ');
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

}  // namespace espresso

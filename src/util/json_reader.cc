#include "src/util/json_reader.h"

#include <cctype>
#include <charconv>
#include <cmath>

namespace espresso {

namespace {

// Fuzzed inputs can nest arbitrarily deep; recursion past this depth is an error, not
// a stack overflow.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult Run() {
    JsonParseResult result;
    SkipWhitespace();
    if (!ParseValue(&result.value, 0)) {
      result.error = error_;
      return result;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      result.error = Err("trailing garbage after the JSON document");
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  std::string Err(const std::string& what) {
    return "line " + std::to_string(line_) + ": " + what;
  }

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = Err(what);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
      } else if (c != ' ' && c != '\t' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(char expected, const char* what) {
    if (AtEnd() || text_[pos_] != expected) {
      return Fail(std::string("expected ") + what);
    }
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    SkipWhitespace();
    if (AtEnd()) {
      return Fail("unexpected end of document");
    }
    out->line = line_;
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->text);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseKeyword(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return Fail("expected object key string");
      }
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWhitespace();
      if (!Consume(':', "':' after object key")) {
        return false;
      }
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) {
        return Fail("unterminated object");
      }
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->items.push_back(std::move(value));
      SkipWhitespace();
      if (AtEnd()) {
        return Fail("unterminated array");
      }
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (AtEnd()) {
        return Fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\n') {
        return Fail("raw newline in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) {
        return Fail("unterminated escape sequence");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed by the IR
          // writer, which escapes only control characters; lone surrogates pass
          // through as their replacement encoding).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape sequence");
      }
    }
  }

  bool ParseKeyword(JsonValue* out) {
    const std::string_view rest = text_.substr(pos_);
    if (rest.rfind("true", 0) == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      pos_ += 4;
      return true;
    }
    if (rest.rfind("false", 0) == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      pos_ += 5;
      return true;
    }
    if (rest.rfind("null", 0) == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return Fail("unexpected token");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') {
      ++pos_;
    }
    // RFC 8259 integer part: a lone 0, or a nonzero digit followed by digits.
    // "01" is malformed — leading zeros are a classic smuggling vector.
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("malformed number");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      bool fraction_digits = false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
        fraction_digits = true;
      }
      if (!fraction_digits) {
        return Fail("malformed number");  // "1." has no fraction digits
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) {
        ++pos_;
      }
      bool exponent_digits = false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
        exponent_digits = true;
      }
      if (!exponent_digits) {
        return Fail("malformed number");
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size() ||
        !std::isfinite(value)) {
      return Fail("number out of range");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    out->text = std::string(token);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

bool JsonValue::AsUint64(uint64_t* out) const {
  if (kind != Kind::kNumber) {
    return false;
  }
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

bool JsonValue::AsInt64(int64_t* out) const {
  if (kind != Kind::kNumber) {
    return false;
  }
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

JsonParseResult ParseJson(std::string_view text) { return Parser(text).Run(); }

}  // namespace espresso

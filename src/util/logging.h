// Lightweight logging and runtime-check facilities shared by every Espresso module.
//
// The library deliberately avoids a heavyweight logging dependency: benchmarks and the
// decision algorithm are measured in milliseconds, so logging must be cheap when disabled.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace espresso {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Process-wide minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

const char* LogLevelName(LogLevel level);

namespace internal {

// Accumulates one log line and emits it (with level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Like LogMessage but aborts the process on destruction. Used by ESP_CHECK.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

}  // namespace espresso

#define ESP_LOG(level)                                                                  \
  if (::espresso::LogLevel::level < ::espresso::GetLogLevel()) {                        \
  } else                                                                                \
    ::espresso::internal::LogMessage(::espresso::LogLevel::level, __FILE__, __LINE__)   \
        .stream()

// Fatal invariant check. Always on (including release builds): the decision algorithm's
// correctness arguments (Lemma 1, pruning rules) rely on these holding at runtime.
#define ESP_CHECK(condition)                                                            \
  if (condition) {                                                                      \
  } else                                                                                \
    ::espresso::internal::FatalMessage(__FILE__, __LINE__, #condition).stream()

#define ESP_CHECK_EQ(a, b) ESP_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define ESP_CHECK_NE(a, b) ESP_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define ESP_CHECK_LE(a, b) ESP_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define ESP_CHECK_LT(a, b) ESP_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define ESP_CHECK_GE(a, b) ESP_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "
#define ESP_CHECK_GT(a, b) ESP_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // SRC_UTIL_LOGGING_H_

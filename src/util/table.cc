#include "src/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/util/logging.h"

namespace espresso {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  ESP_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  ESP_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(width[c])) << row[c] << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string TextTable::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

std::string TextTable::Num(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string TextTable::Percent(double ratio, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << ratio * 100.0 << "%";
  return os.str();
}

}  // namespace espresso

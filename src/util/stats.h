// Small statistics helpers used by benchmarks and the evaluation harness:
// summary statistics, percentiles, and empirical CDFs (Figure 14 reports CDFs of the
// performance difference from the Upper Bound).
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace espresso {

struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary Summarize(const std::vector<double>& values);

// Linear-interpolated percentile, p in [0, 100]. Input need not be sorted.
double Percentile(std::vector<double> values, double p);

// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double cumulative = 0.0;  // fraction of samples <= value, in (0, 1]
};

// Full empirical CDF (one point per sample, sorted ascending).
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values);

}  // namespace espresso

#endif  // SRC_UTIL_STATS_H_

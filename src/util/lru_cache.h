// Intrusive-list LRU map used by the evaluation cache on the decision algorithm's hot
// path. Single-threaded by design (the thread-safe wrapper lives in
// src/core/eval_cache.h); Get/Put are O(1) amortized. Capacity is fixed at
// construction; inserting into a full cache evicts the least-recently-used entry.
#ifndef SRC_UTIL_LRU_CACHE_H_
#define SRC_UTIL_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "src/util/logging.h"

namespace espresso {

template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    ESP_CHECK_GT(capacity, 0u) << "LruCache requires a positive capacity";
    map_.reserve(capacity);
  }

  // Returns the value and marks the entry most-recently-used, or nullptr on a miss.
  const Value* Get(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      return nullptr;
    }
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  // Inserts or refreshes `key`; returns true if an older entry was evicted.
  bool Put(const Key& key, Value value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return false;
    }
    bool evicted = false;
    if (order_.size() == capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      evicted = true;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
    return evicted;
  }

  size_t size() const { return order_.size(); }
  size_t capacity() const { return capacity_; }

  void Clear() {
    map_.clear();
    order_.clear();
  }

 private:
  size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  // front = most recently used
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator> map_;
};

}  // namespace espresso

#endif  // SRC_UTIL_LRU_CACHE_H_

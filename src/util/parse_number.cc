#include "src/util/parse_number.h"

#include <charconv>

namespace espresso {

namespace {

// std::from_chars rejects a leading '+', which the std::sto* family accepted; strip
// exactly one so existing configs keep parsing. Whitespace is NOT skipped — every
// call site trims its tokens first, and silent whitespace tolerance hides data bugs.
std::string_view StripLeadingPlus(std::string_view text) {
  if (!text.empty() && text.front() == '+') {
    text.remove_prefix(1);
  }
  return text;
}

template <typename T, typename... Format>
NumberParse ParseWith(std::string_view text, T* out, Format... format) {
  text = StripLeadingPlus(text);
  if (text.empty()) {
    return NumberParse::kMalformed;
  }
  T value{};
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value,
                                         format...);
  if (ec == std::errc::result_out_of_range) {
    return NumberParse::kOutOfRange;
  }
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return NumberParse::kMalformed;
  }
  *out = value;
  return NumberParse::kOk;
}

}  // namespace

const char* NumberParseMessage(NumberParse status) {
  switch (status) {
    case NumberParse::kOk:
      return "ok";
    case NumberParse::kMalformed:
      return "is not a number";
    case NumberParse::kOutOfRange:
      return "is out of range";
  }
  return "?";
}

NumberParse ParseDouble(std::string_view text, double* out) {
  return ParseWith(text, out, std::chars_format::general);
}

NumberParse ParseInt64(std::string_view text, int64_t* out) {
  return ParseWith(text, out);
}

NumberParse ParseUint64(std::string_view text, uint64_t* out) {
  return ParseWith(text, out);
}

std::optional<double> ParseDoubleOpt(std::string_view text) {
  double value = 0.0;
  return ParseDouble(text, &value) == NumberParse::kOk ? std::optional<double>(value)
                                                       : std::nullopt;
}

std::optional<int64_t> ParseInt64Opt(std::string_view text) {
  int64_t value = 0;
  return ParseInt64(text, &value) == NumberParse::kOk ? std::optional<int64_t>(value)
                                                      : std::nullopt;
}

std::optional<uint64_t> ParseUint64Opt(std::string_view text) {
  uint64_t value = 0;
  return ParseUint64(text, &value) == NumberParse::kOk ? std::optional<uint64_t>(value)
                                                       : std::nullopt;
}

}  // namespace espresso

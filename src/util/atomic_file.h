// Crash-safe file publication: write to an adjacent temporary file, flush + fsync,
// then rename over the destination. On POSIX the rename is atomic within a filesystem,
// so a reader (or a crashed writer) can never observe a torn file — it sees either the
// complete old contents or the complete new contents. This is the publication
// primitive under every strategy artifact (.esp files, strategy IR JSON): the
// offline/online hand-off must survive a writer dying mid-write.
#ifndef SRC_UTIL_ATOMIC_FILE_H_
#define SRC_UTIL_ATOMIC_FILE_H_

#include <string>
#include <string_view>

namespace espresso {

// Atomically replaces `path` with `content`. Returns false (and fills `error`, when
// non-null) on any failure; the previous contents of `path`, if any, are left intact
// and no temporary file is leaked.
bool WriteFileAtomic(const std::string& path, std::string_view content,
                     std::string* error = nullptr);

namespace internal {
// Test hook simulating a writer crash: when >= 0, WriteFileAtomic stops after writing
// this many bytes of the temporary file and reports failure (cleaning the temp up, as
// the surviving filesystem state after a real crash + tmp-file sweep would look).
// Reset to -1 after each triggered failure.
extern long g_atomic_write_fail_after_bytes;
}  // namespace internal

}  // namespace espresso

#endif  // SRC_UTIL_ATOMIC_FILE_H_

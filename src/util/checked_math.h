// Saturating unsigned arithmetic for combinatorial counters. Option-space sizes grow
// as sums of 2^slots terms; on long pipelines (or adversarial slot counts) the shift
// and the sum both overflow size_t and silently wrap, turning "astronomically many"
// into a small plausible-looking number. These helpers clamp to SIZE_MAX instead, which
// is the honest answer for a count only used as "too many to enumerate".
#ifndef SRC_UTIL_CHECKED_MATH_H_
#define SRC_UTIL_CHECKED_MATH_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace espresso {

inline constexpr size_t kSaturated = std::numeric_limits<size_t>::max();

// a + b, clamped to SIZE_MAX.
constexpr size_t SaturatingAdd(size_t a, size_t b) {
  return a > kSaturated - b ? kSaturated : a + b;
}

// a * b, clamped to SIZE_MAX.
constexpr size_t SaturatingMul(size_t a, size_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return a > kSaturated / b ? kSaturated : a * b;
}

// 2^exponent, clamped to SIZE_MAX (exponents >= bit width saturate rather than shift
// into undefined behavior).
constexpr size_t SaturatingPow2(size_t exponent) {
  constexpr size_t kBits = std::numeric_limits<size_t>::digits;
  return exponent >= kBits ? kSaturated : size_t{1} << exponent;
}

}  // namespace espresso

#endif  // SRC_UTIL_CHECKED_MATH_H_

#include "src/util/logging.h"

#include <atomic>

namespace espresso {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LogLevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << condition << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal

}  // namespace espresso

// Plain-text table rendering for the benchmark harness. Every bench binary prints the
// rows/series of the paper table or figure it regenerates; this keeps the formatting
// uniform and diff-friendly.
#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace espresso {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Adds one row; the number of cells must match the header width.
  void AddRow(std::vector<std::string> cells);

  void Print(std::ostream& os) const;
  std::string ToString() const;

  // Formats a double with `digits` decimal places.
  static std::string Num(double value, int digits = 2);
  // Formats a ratio as a percentage string, e.g. 0.154 -> "15.4%".
  static std::string Percent(double ratio, int digits = 1);

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace espresso

#endif  // SRC_UTIL_TABLE_H_

// Minimal JSON parser producing a small DOM, built for the strategy IR loader: every
// value remembers the line it started on so schema errors cite the offending line, and
// numbers keep their raw text so 64-bit integers round-trip exactly (a double would
// silently lose precision past 2^53). Strict by construction: no trailing commas, no
// comments, no garbage after the document, bounded nesting depth — a torn or tampered
// IR file must parse to a diagnostic, never to a crash or a half-read document.
//
// This is deliberately separate from src/obs/validate.h: that is a syntax *scanner*
// for CI output gates; this is the one place in the repo that materializes JSON.
#ifndef SRC_UTIL_JSON_READER_H_
#define SRC_UTIL_JSON_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace espresso {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  int line = 0;  // 1-based line where this value starts

  bool bool_value = false;
  double number = 0.0;    // numeric value (lossy for huge integers)
  std::string text;       // string payload, or the raw token for numbers
  std::vector<JsonValue> items;                                // arrays
  std::vector<std::pair<std::string, JsonValue>> members;      // objects, file order

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsBool() const { return kind == Kind::kBool; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsObject() const { return kind == Kind::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // Exact unsigned/signed integer reads from the raw number token. Returns false for
  // non-numbers, fractional values, or values outside the target range.
  bool AsUint64(uint64_t* out) const;
  bool AsInt64(int64_t* out) const;
};

struct JsonParseResult {
  bool ok = false;
  std::string error;  // "line N: ..." on failure
  JsonValue value;
};

// Parses one complete JSON document. Never throws; never aborts.
JsonParseResult ParseJson(std::string_view text);

}  // namespace espresso

#endif  // SRC_UTIL_JSON_READER_H_

// Minimal streaming JSON writer, used by the trace module to emit chrome://tracing files.
// Supports objects, arrays, and scalar values; escapes strings; no DOM, no parsing.
#ifndef SRC_UTIL_JSON_WRITER_H_
#define SRC_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace espresso {

// Shortest decimal form that round-trips to the exact same double
// (std::to_chars shortest formatting, 17 significant digits when needed).
// Callers must handle non-finite values themselves (JsonWriter maps them to null).
std::string FormatDouble(double d);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Emits a key inside an object; must be followed by a value or Begin*.
  void Key(std::string_view key);

  void Value(std::string_view s);
  void Value(const char* s) { Value(std::string_view(s)); }
  void Value(double d);
  void Value(int64_t i);
  void Value(uint64_t u);
  void Value(int i) { Value(static_cast<int64_t>(i)); }
  void Value(bool b);

  // Convenience: Key + Value in one call.
  template <typename T>
  void Field(std::string_view key, T&& value) {
    Key(key);
    Value(std::forward<T>(value));
  }

 private:
  enum class Scope { kObject, kArray };

  void MaybeComma();
  void WriteEscaped(std::string_view s);

  std::ostream& os_;
  std::vector<Scope> scopes_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

}  // namespace espresso

#endif  // SRC_UTIL_JSON_WRITER_H_

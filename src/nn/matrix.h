// Minimal dense linear algebra for the convergence experiments: row-major float
// matrices with just the kernels an MLP needs. No BLAS dependency — sizes here are
// laptop-scale (the Figure-16 substitute trains a small classifier; DESIGN.md §2).
#ifndef SRC_NN_MATRIX_H_
#define SRC_NN_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

namespace espresso {

struct Matrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<float> data;  // row-major

  Matrix() = default;
  Matrix(size_t r, size_t c) : rows(r), cols(c), data(r * c, 0.0f) {}

  float& at(size_t r, size_t c) { return data[r * cols + c]; }
  float at(size_t r, size_t c) const { return data[r * cols + c]; }
  size_t size() const { return data.size(); }
  std::span<float> flat() { return data; }
  std::span<const float> flat() const { return data; }
};

// out = a * b.
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);
// out = a * b^T.
void MatMulBt(const Matrix& a, const Matrix& b, Matrix* out);
// out = a^T * b.
void MatMulAt(const Matrix& a, const Matrix& b, Matrix* out);
// Adds `bias` (1 x cols) to every row of m.
void AddBiasRows(Matrix* m, std::span<const float> bias);
// In-place ReLU; `mask` (same shape) records 1 where the input was positive.
void ReluForward(Matrix* m, Matrix* mask);
// grad *= mask.
void ReluBackward(Matrix* grad, const Matrix& mask);
// Row-wise softmax in place.
void SoftmaxRows(Matrix* m);

}  // namespace espresso

#endif  // SRC_NN_MATRIX_H_

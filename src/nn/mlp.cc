#include "src/nn/mlp.h"

#include <cmath>

#include "src/util/logging.h"

namespace espresso {

Mlp::Mlp(size_t input_dim, size_t hidden_dim, size_t classes, uint64_t seed)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      classes_(classes),
      w1_(input_dim, hidden_dim),
      b1_(hidden_dim, 0.0f),
      w2_(hidden_dim, classes),
      b2_(classes, 0.0f) {
  Rng rng(seed);
  const double scale1 = std::sqrt(2.0 / static_cast<double>(input_dim));
  rng.FillNormal(w1_.data, 0.0, scale1);
  const double scale2 = std::sqrt(2.0 / static_cast<double>(hidden_dim));
  rng.FillNormal(w2_.data, 0.0, scale2);
}

void Mlp::Forward(const Matrix& x, Matrix* hidden, Matrix* mask, Matrix* logits) const {
  MatMul(x, w1_, hidden);
  AddBiasRows(hidden, b1_);
  ReluForward(hidden, mask);
  MatMul(*hidden, w2_, logits);
  AddBiasRows(logits, b2_);
}

double Mlp::ComputeGradients(const Matrix& x, const std::vector<int>& labels,
                             std::vector<std::vector<float>>* grads) const {
  ESP_CHECK_EQ(x.rows, labels.size());
  Matrix hidden, mask, logits;
  Forward(x, &hidden, &mask, &logits);
  Matrix probs = logits;
  SoftmaxRows(&probs);

  const auto batch = static_cast<double>(x.rows);
  double loss = 0.0;
  // dL/dlogits = (probs - onehot) / batch.
  Matrix dlogits = probs;
  for (size_t i = 0; i < x.rows; ++i) {
    const int y = labels[i];
    ESP_CHECK_GE(y, 0);
    ESP_CHECK_LT(static_cast<size_t>(y), classes_);
    loss += -std::log(std::max(probs.at(i, static_cast<size_t>(y)), 1e-12f));
    dlogits.at(i, static_cast<size_t>(y)) -= 1.0f;
  }
  for (float& v : dlogits.data) {
    v /= static_cast<float>(batch);
  }

  Matrix dw2;
  MatMulAt(hidden, dlogits, &dw2);  // hidden^T * dlogits
  std::vector<float> db2(classes_, 0.0f);
  for (size_t i = 0; i < dlogits.rows; ++i) {
    for (size_t j = 0; j < classes_; ++j) {
      db2[j] += dlogits.at(i, j);
    }
  }

  Matrix dhidden;
  MatMulBt(dlogits, w2_, &dhidden);  // dlogits * W2^T
  ReluBackward(&dhidden, mask);

  Matrix dw1;
  MatMulAt(x, dhidden, &dw1);
  std::vector<float> db1(hidden_dim_, 0.0f);
  for (size_t i = 0; i < dhidden.rows; ++i) {
    for (size_t j = 0; j < hidden_dim_; ++j) {
      db1[j] += dhidden.at(i, j);
    }
  }

  grads->clear();
  grads->push_back(std::move(dw1.data));
  grads->push_back(std::move(db1));
  grads->push_back(std::move(dw2.data));
  grads->push_back(std::move(db2));
  return loss / batch;
}

double Mlp::Accuracy(const Matrix& x, const std::vector<int>& labels) const {
  Matrix hidden, mask, logits;
  Forward(x, &hidden, &mask, &logits);
  size_t correct = 0;
  for (size_t i = 0; i < x.rows; ++i) {
    size_t best = 0;
    for (size_t j = 1; j < classes_; ++j) {
      if (logits.at(i, j) > logits.at(i, best)) {
        best = j;
      }
    }
    if (static_cast<int>(best) == labels[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(x.rows);
}

void Mlp::ApplyGradients(const std::vector<std::vector<float>>& grads, double lr) {
  auto params = Parameters();
  ESP_CHECK_EQ(grads.size(), params.size());
  for (size_t t = 0; t < params.size(); ++t) {
    ESP_CHECK_EQ(grads[t].size(), params[t].size());
    for (size_t i = 0; i < params[t].size(); ++i) {
      params[t][i] -= static_cast<float>(lr) * grads[t][i];
    }
  }
}

std::vector<std::span<float>> Mlp::Parameters() {
  return {w1_.flat(), std::span<float>(b1_), w2_.flat(), std::span<float>(b2_)};
}

std::vector<size_t> Mlp::ParameterSizes() const {
  return {w1_.size(), b1_.size(), w2_.size(), b2_.size()};
}

}  // namespace espresso

// Data-parallel trainer wiring the MLP to the *real* compression pipeline: per-worker
// gradients flow through error feedback, the compressor, and a functional communication
// scheme (Figures 3-4) before the update. Because synchronous data-parallel replicas
// stay identical, one model instance plus per-worker gradient computation is an exact
// simulation of K workers. This is the engine behind the Figure-16 convergence bench.
#ifndef SRC_NN_PARALLEL_TRAINER_H_
#define SRC_NN_PARALLEL_TRAINER_H_

#include <cstdint>
#include <vector>

#include "src/collectives/channel.h"
#include "src/compress/compressor.h"
#include "src/nn/dataset.h"
#include "src/nn/mlp.h"

namespace espresso {

enum class SyncScheme {
  kExactAllreduce,          // FP32 baseline
  kCompressedIndivisible,   // Figure 3
  kCompressedDivisible,     // Figure 4 (alltoall | allgather)
};

struct TrainConfig {
  size_t workers = 8;
  size_t hidden_dim = 64;
  size_t batch_per_worker = 32;
  double learning_rate = 0.1;
  size_t epochs = 10;
  SyncScheme scheme = SyncScheme::kExactAllreduce;
  const Compressor* compressor = nullptr;  // required for compressed schemes
  // Optional imperfect transport for compressed payloads (fault injection); the
  // trainer announces each global step via BeginIteration so schedules stay
  // deterministic. nullptr = perfect network.
  PayloadChannel* channel = nullptr;
  bool error_feedback = true;
  // DGC momentum correction factor for the error-feedback store (0 = plain EF).
  double momentum_correction = 0.0;
  // Indivisible-scheme sync batches tensors at or below this element count: corrected
  // gradients of all small tensors x workers are staged into one SoA column and
  // compressed in a single CompressBatch per step, payload-identical to the per-tensor
  // path. 0 disables batching.
  size_t batch_cutoff_elements = 4096;
  uint64_t seed = 1;
  // Worker-gradient threads. 0 runs the per-worker backward passes inline on the
  // calling thread; >= 1 fans them out over a ThreadPool. The schedule is
  // deterministic either way: losses are reduced in worker order after the barrier.
  size_t threads = 0;
};

struct EpochStats {
  size_t epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  // Fault accounting for the epoch (zero on a perfect channel).
  size_t payloads_dropped = 0;
  size_t payloads_corrupted = 0;
  // Wall-clock decomposition of the epoch's steps: gradient computation (the
  // pooled backward passes) vs gradient synchronization (compress + collective +
  // update). Also published to the metrics registry as espresso_trainer_*.
  double compute_seconds = 0.0;
  double sync_seconds = 0.0;
};

std::vector<EpochStats> TrainDataParallel(const Dataset& train, const Dataset& test,
                                          const TrainConfig& config);

}  // namespace espresso

#endif  // SRC_NN_PARALLEL_TRAINER_H_

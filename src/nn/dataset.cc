#include "src/nn/dataset.h"

#include <algorithm>
#include <numeric>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace espresso {

Dataset MakeGaussianBlobs(size_t samples, size_t features, size_t classes, double margin,
                          uint64_t seed) {
  ESP_CHECK_GT(classes, 1u);
  Rng rng(seed);
  // Random unit-ish centroids scaled by the margin.
  std::vector<std::vector<float>> centroids(classes, std::vector<float>(features));
  for (auto& c : centroids) {
    for (auto& v : c) {
      v = static_cast<float>(rng.Normal(0.0, margin));
    }
  }
  Dataset d;
  d.x = Matrix(samples, features);
  d.labels.resize(samples);
  for (size_t i = 0; i < samples; ++i) {
    const auto y = static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(classes) - 1));
    d.labels[i] = y;
    for (size_t j = 0; j < features; ++j) {
      d.x.at(i, j) =
          centroids[static_cast<size_t>(y)][j] + static_cast<float>(rng.Normal(0.0, 1.0));
    }
  }
  return d;
}

Dataset Slice(const Dataset& d, size_t begin, size_t count) {
  Dataset out;
  SliceInto(d, begin, count, &out);
  return out;
}

void SliceInto(const Dataset& d, size_t begin, size_t count, Dataset* out) {
  ESP_CHECK(out != nullptr);
  ESP_CHECK_LE(begin + count, d.size());
  out->x.rows = count;
  out->x.cols = d.x.cols;
  out->x.data.resize(count * d.x.cols);
  out->labels.resize(count);
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = 0; j < d.x.cols; ++j) {
      out->x.at(i, j) = d.x.at(begin + i, j);
    }
    out->labels[i] = d.labels[begin + i];
  }
}

}  // namespace espresso

// Synthetic classification datasets for the convergence experiments — the offline
// substitute for ImageNet/SQuAD (DESIGN.md §2): Gaussian class clusters with controlled
// separation, plus a deterministic train/test split.
#ifndef SRC_NN_DATASET_H_
#define SRC_NN_DATASET_H_

#include <cstdint>
#include <vector>

#include "src/nn/matrix.h"

namespace espresso {

struct Dataset {
  Matrix x;                 // samples x features
  std::vector<int> labels;  // size == samples

  size_t size() const { return labels.size(); }
};

// `margin` scales the distance between class centroids relative to the noise.
Dataset MakeGaussianBlobs(size_t samples, size_t features, size_t classes, double margin,
                          uint64_t seed);

// Rows [0, count) of `d` as a new dataset (use after MakeGaussianBlobs, whose rows are
// already shuffled).
Dataset Slice(const Dataset& d, size_t begin, size_t count);

// Slice into an existing dataset, reusing its storage (steady-state allocation-free
// for a fixed batch shape). `out` is fully overwritten.
void SliceInto(const Dataset& d, size_t begin, size_t count, Dataset* out);

}  // namespace espresso

#endif  // SRC_NN_DATASET_H_

#include "src/nn/parallel_trainer.h"

#include <algorithm>

#include "src/collectives/schemes.h"
#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace espresso {

std::vector<EpochStats> TrainDataParallel(const Dataset& train, const Dataset& test,
                                          const TrainConfig& config) {
  ESP_CHECK_GT(config.workers, 0u);
  if (config.scheme != SyncScheme::kExactAllreduce) {
    ESP_CHECK(config.compressor != nullptr);
  }
  Mlp model(train.x.cols, config.hidden_dim,
            1 + static_cast<size_t>(*std::max_element(train.labels.begin(),
                                                      train.labels.end())),
            config.seed);
  const std::vector<size_t> tensor_sizes = model.ParameterSizes();
  const size_t tensor_count = tensor_sizes.size();

  // One error-feedback store per (worker); tensor ids distinguish the four tensors.
  std::vector<ErrorFeedback> feedback(config.workers,
                                      ErrorFeedback(config.momentum_correction));

  const size_t global_batch = config.workers * config.batch_per_worker;
  const size_t steps_per_epoch = train.size() / global_batch;
  ESP_CHECK_GT(steps_per_epoch, 0u);

  // The per-worker backward passes are independent reads of the shared model, so they
  // fan out over the pool; each worker writes only its own grads/loss slot, and the
  // loss reduction happens in worker order after Wait() to keep results deterministic.
  ThreadPool pool(config.threads);

  std::vector<EpochStats> history;
  uint64_t step_counter = 0;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    double loss_sum = 0.0;
    size_t dropped = 0;
    size_t corrupted = 0;
    for (size_t step = 0; step < steps_per_epoch; ++step) {
      if (config.channel != nullptr) {
        config.channel->BeginIteration(step_counter);
      }
      // Each worker's gradient on its disjoint shard of the global batch.
      std::vector<std::vector<std::vector<float>>> worker_grads(config.workers);
      std::vector<double> worker_loss(config.workers, 0.0);
      for (size_t w = 0; w < config.workers; ++w) {
        pool.Submit([&, w] {
          const size_t begin = (step * global_batch + w * config.batch_per_worker);
          Dataset shard = Slice(train, begin, config.batch_per_worker);
          worker_loss[w] = model.ComputeGradients(shard.x, shard.labels, &worker_grads[w]);
        });
      }
      pool.Wait();
      for (size_t w = 0; w < config.workers; ++w) {
        loss_sum += worker_loss[w] / static_cast<double>(config.workers);
      }

      // Synchronize tensor by tensor through the configured scheme.
      std::vector<std::vector<float>> aggregated(tensor_count);
      for (size_t t = 0; t < tensor_count; ++t) {
        RankBuffers buffers(config.workers);
        for (size_t w = 0; w < config.workers; ++w) {
          buffers[w] = worker_grads[w][t];
        }
        switch (config.scheme) {
          case SyncScheme::kExactAllreduce: {
            std::vector<float> sum(tensor_sizes[t], 0.0f);
            for (const auto& b : buffers) {
              for (size_t i = 0; i < sum.size(); ++i) {
                sum[i] += b[i];
              }
            }
            aggregated[t] = std::move(sum);
            break;
          }
          case SyncScheme::kCompressedIndivisible:
          case SyncScheme::kCompressedDivisible: {
            SchemeContext ctx;
            ctx.feedback = config.error_feedback ? &feedback : nullptr;
            ctx.channel = config.channel;
            ctx.tensor_id = t;
            ctx.seed = DeriveSeed(config.seed, step_counter * tensor_count + t);
            SchemeResult scheme_result;
            if (config.scheme == SyncScheme::kCompressedIndivisible) {
              scheme_result = CompressedIndivisibleAllgather(*config.compressor, ctx, buffers);
            } else {
              scheme_result = CompressedDivisibleAlltoall(*config.compressor, ctx, buffers);
            }
            dropped += scheme_result.payloads_dropped;
            corrupted += scheme_result.payloads_corrupted;
            // All ranks hold the same aggregate; take rank 0's.
            aggregated[t] = std::move(buffers[0]);
            break;
          }
        }
        // Average over workers.
        for (float& v : aggregated[t]) {
          v /= static_cast<float>(config.workers);
        }
      }
      model.ApplyGradients(aggregated, config.learning_rate);
      ++step_counter;
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_sum / static_cast<double>(steps_per_epoch);
    stats.train_accuracy = model.Accuracy(train.x, train.labels);
    stats.test_accuracy = model.Accuracy(test.x, test.labels);
    stats.payloads_dropped = dropped;
    stats.payloads_corrupted = corrupted;
    history.push_back(stats);
  }
  return history;
}

}  // namespace espresso

#include "src/nn/parallel_trainer.h"

#include <algorithm>
#include <chrono>

#include "src/collectives/schemes.h"
#include "src/mem/batch_plan.h"
#include "src/mem/stable_vec.h"
#include "src/mem/workspace.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace espresso {

namespace {

struct TrainerMetrics {
  obs::Counter steps;
  obs::Counter payloads_dropped;
  obs::Counter payloads_corrupted;
  obs::Histogram step_seconds;
  obs::Histogram compute_seconds;
  obs::Histogram sync_seconds;
  obs::Gauge overlap_ratio;
};

const TrainerMetrics& Metrics() {
  static const TrainerMetrics metrics = [] {
    obs::MetricsRegistry& r = obs::GlobalMetrics();
    TrainerMetrics m;
    m.steps = r.RegisterCounter("espresso_trainer_steps_total",
                                "Global training steps executed");
    m.payloads_dropped = r.RegisterCounter("espresso_trainer_payloads_dropped_total",
                                           "Compressed payloads lost in transit");
    m.payloads_corrupted = r.RegisterCounter(
        "espresso_trainer_payloads_corrupted_total",
        "Compressed payloads rejected by checksum and treated as lost");
    m.step_seconds = r.RegisterHistogram("espresso_trainer_step_seconds",
                                         "Per-iteration wall time (compute + sync)",
                                         obs::DefaultTimeBuckets());
    m.compute_seconds = r.RegisterHistogram(
        "espresso_trainer_compute_seconds",
        "Per-iteration gradient-computation wall time", obs::DefaultTimeBuckets());
    m.sync_seconds = r.RegisterHistogram(
        "espresso_trainer_sync_seconds",
        "Per-iteration gradient-synchronization wall time", obs::DefaultTimeBuckets());
    m.overlap_ratio = r.RegisterGauge(
        "espresso_trainer_overlap_ratio",
        "Compute share of the latest epoch's step time, compute/(compute+sync); "
        "1.0 means communication is fully hidden behind computation");
    return m;
  }();
  return metrics;
}

double SecondsSince(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - from).count();
}

}  // namespace

std::vector<EpochStats> TrainDataParallel(const Dataset& train, const Dataset& test,
                                          const TrainConfig& config) {
  ESP_CHECK_GT(config.workers, 0u);
  if (config.scheme != SyncScheme::kExactAllreduce) {
    ESP_CHECK(config.compressor != nullptr);
  }
  Mlp model(train.x.cols, config.hidden_dim,
            1 + static_cast<size_t>(*std::max_element(train.labels.begin(),
                                                      train.labels.end())),
            config.seed);
  const std::vector<size_t> tensor_sizes = model.ParameterSizes();
  const size_t tensor_count = tensor_sizes.size();

  // One error-feedback store per (worker); tensor ids distinguish the four tensors.
  std::vector<ErrorFeedback> feedback(config.workers,
                                      ErrorFeedback(config.momentum_correction));

  const size_t global_batch = config.workers * config.batch_per_worker;
  const size_t steps_per_epoch = train.size() / global_batch;
  ESP_CHECK_GT(steps_per_epoch, 0u);

  // The per-worker backward passes are independent reads of the shared model, so they
  // fan out over the pool; each worker writes only its own grads/loss slot, and the
  // loss reduction happens in worker order after Wait() to keep results deterministic.
  ThreadPool pool(config.threads);

  // Step-loop containers are hoisted so their storage persists across steps: each
  // worker writes only its own slot (TSan-clean), and capacity-reusing assignment
  // keeps the steady-state sync path off the heap. The sync loop runs on this thread
  // and owns a dedicated collective workspace.
  std::vector<std::vector<std::vector<float>>> worker_grads(config.workers);
  std::vector<double> worker_loss(config.workers, 0.0);
  std::vector<Dataset> worker_shards(config.workers);
  std::vector<std::vector<float>> aggregated(tensor_count);
  RankBuffers buffers(config.workers);
  mem::CollectiveWorkspace sync_workspace;

  // Small-tensor batching (indivisible scheme only): per step, the below-cutoff
  // tensors' corrected gradients for every worker are staged into one SoA column and
  // compressed in a single CompressBatch; the sync loop then swaps the payloads in.
  // Error feedback per (worker, tensor) is independent state, so hoisting it ahead of
  // the per-tensor loop is bit-identical to the interleaved order — and the transmit
  // order the channel sees is untouched.
  const bool batch_sync = config.scheme == SyncScheme::kCompressedIndivisible &&
                          config.batch_cutoff_elements > 0;
  std::vector<size_t> batched_tensors;
  if (batch_sync) {
    for (size_t t = 0; t < tensor_count; ++t) {
      if (tensor_sizes[t] > 0 && tensor_sizes[t] <= config.batch_cutoff_elements) {
        batched_tensors.push_back(t);
      }
    }
  }
  size_t batch_padded_total = 0;
  for (size_t t : batched_tensors) {
    batch_padded_total +=
        config.workers * mem::BatchedCompressPlan::Padded(tensor_sizes[t]);
  }
  mem::BatchedCompressPlan batch_plan;
  mem::StableVec<CompressedTensor> batch_payloads;
  std::vector<std::span<float>> batch_corrected;

  std::vector<EpochStats> history;
  uint64_t step_counter = 0;
  obs::MetricsRegistry& registry = obs::GlobalMetrics();
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    obs::ScopedSpan epoch_span("trainer.epoch", "trainer");
    double loss_sum = 0.0;
    size_t dropped = 0;
    size_t corrupted = 0;
    double epoch_compute_s = 0.0;
    double epoch_sync_s = 0.0;
    for (size_t step = 0; step < steps_per_epoch; ++step) {
      const auto step_start = std::chrono::steady_clock::now();
      if (config.channel != nullptr) {
        config.channel->BeginIteration(step_counter);
      }
      // Each worker's gradient on its disjoint shard of the global batch.
      for (size_t w = 0; w < config.workers; ++w) {
        pool.Submit([&, w] {
          const size_t begin = (step * global_batch + w * config.batch_per_worker);
          SliceInto(train, begin, config.batch_per_worker, &worker_shards[w]);
          worker_loss[w] = model.ComputeGradients(worker_shards[w].x,
                                                  worker_shards[w].labels, &worker_grads[w]);
        });
      }
      pool.Wait();
      for (size_t w = 0; w < config.workers; ++w) {
        loss_sum += worker_loss[w] / static_cast<double>(config.workers);
      }
      const double compute_s = SecondsSince(step_start);
      const auto sync_start = std::chrono::steady_clock::now();

      // Batched compression pre-pass over the small tensors (one CompressBatch for
      // all of them, every worker). Payloads are consumed by the sync loop below.
      mem::ArenaScope batch_scope(sync_workspace.arena);
      if (!batched_tensors.empty()) {
        batch_plan.Begin(sync_workspace.arena, batch_padded_total);
        batch_payloads.clear();
        batch_corrected.clear();
        // Push every output slot BEFORE taking addresses: push() invalidates
        // references when the backing vector grows, and Stage() keeps the pointer
        // until Execute.
        for (size_t i = 0; i < batched_tensors.size() * config.workers; ++i) {
          batch_payloads.push();
        }
        size_t item_index = 0;
        for (size_t t : batched_tensors) {
          const uint64_t seed = DeriveSeed(config.seed, step_counter * tensor_count + t);
          for (size_t w = 0; w < config.workers; ++w) {
            std::span<float> slot = batch_plan.Stage(tensor_sizes[t], seed,
                                                     &batch_payloads[item_index++]);
            if (config.error_feedback) {
              feedback[w].BuildCorrected(t, worker_grads[w][t], slot);
            } else {
              std::copy(worker_grads[w][t].begin(), worker_grads[w][t].end(),
                        slot.begin());
            }
            batch_corrected.push_back(slot);
          }
        }
        batch_plan.Execute(*config.compressor);
        if (config.error_feedback) {
          for (size_t bi = 0; bi < batched_tensors.size(); ++bi) {
            for (size_t w = 0; w < config.workers; ++w) {
              const size_t item = bi * config.workers + w;
              feedback[w].CommitPayload(*config.compressor, batched_tensors[bi],
                                        batch_corrected[item], batch_payloads[item]);
            }
          }
        }
      }
      size_t next_batched = 0;

      // Synchronize tensor by tensor through the configured scheme.
      for (size_t t = 0; t < tensor_count; ++t) {
        for (size_t w = 0; w < config.workers; ++w) {
          buffers[w] = worker_grads[w][t];
        }
        switch (config.scheme) {
          case SyncScheme::kExactAllreduce: {
            // Accumulate straight into the persistent aggregate slot (same order as
            // the previous explicit sum).
            aggregated[t].assign(tensor_sizes[t], 0.0f);
            for (const auto& b : buffers) {
              for (size_t i = 0; i < aggregated[t].size(); ++i) {
                aggregated[t][i] += b[i];
              }
            }
            break;
          }
          case SyncScheme::kCompressedIndivisible:
          case SyncScheme::kCompressedDivisible: {
            SchemeContext ctx;
            ctx.feedback = config.error_feedback ? &feedback : nullptr;
            ctx.channel = config.channel;
            ctx.tensor_id = t;
            ctx.seed = DeriveSeed(config.seed, step_counter * tensor_count + t);
            ctx.workspace = &sync_workspace;
            if (next_batched < batched_tensors.size() && batched_tensors[next_batched] == t) {
              ctx.precompressed = {batch_payloads.begin() + next_batched * config.workers,
                                   config.workers};
              ++next_batched;
            }
            SchemeResult scheme_result;
            if (config.scheme == SyncScheme::kCompressedIndivisible) {
              scheme_result = CompressedIndivisibleAllgather(*config.compressor, ctx, buffers);
            } else {
              scheme_result = CompressedDivisibleAlltoall(*config.compressor, ctx, buffers);
            }
            dropped += scheme_result.payloads_dropped;
            corrupted += scheme_result.payloads_corrupted;
            // All ranks hold the same aggregate; take rank 0's (copy-assign keeps
            // both the rank buffer's and the aggregate slot's capacity warm).
            aggregated[t] = buffers[0];
            break;
          }
        }
        // Average over workers.
        for (float& v : aggregated[t]) {
          v /= static_cast<float>(config.workers);
        }
      }
      model.ApplyGradients(aggregated, config.learning_rate);
      ++step_counter;
      const double sync_s = SecondsSince(sync_start);
      epoch_compute_s += compute_s;
      epoch_sync_s += sync_s;
      registry.Add(Metrics().steps);
      registry.Observe(Metrics().step_seconds, compute_s + sync_s);
      registry.Observe(Metrics().compute_seconds, compute_s);
      registry.Observe(Metrics().sync_seconds, sync_s);
    }
    if (dropped > 0) {
      registry.Add(Metrics().payloads_dropped, dropped);
    }
    if (corrupted > 0) {
      registry.Add(Metrics().payloads_corrupted, corrupted);
    }
    const double epoch_total_s = epoch_compute_s + epoch_sync_s;
    registry.Set(Metrics().overlap_ratio,
                 epoch_total_s > 0.0 ? epoch_compute_s / epoch_total_s : 0.0);
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_sum / static_cast<double>(steps_per_epoch);
    stats.train_accuracy = model.Accuracy(train.x, train.labels);
    stats.test_accuracy = model.Accuracy(test.x, test.labels);
    stats.payloads_dropped = dropped;
    stats.payloads_corrupted = corrupted;
    stats.compute_seconds = epoch_compute_s;
    stats.sync_seconds = epoch_sync_s;
    history.push_back(stats);
  }
  return history;
}

}  // namespace espresso

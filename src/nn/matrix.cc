#include "src/nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace espresso {

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  ESP_CHECK_EQ(a.cols, b.rows);
  out->rows = a.rows;
  out->cols = b.cols;
  out->data.assign(a.rows * b.cols, 0.0f);
  for (size_t i = 0; i < a.rows; ++i) {
    for (size_t k = 0; k < a.cols; ++k) {
      const float av = a.at(i, k);
      if (av == 0.0f) {
        continue;
      }
      const size_t arow = i * b.cols;
      const size_t brow = k * b.cols;
      for (size_t j = 0; j < b.cols; ++j) {
        out->data[arow + j] += av * b.data[brow + j];
      }
    }
  }
}

void MatMulBt(const Matrix& a, const Matrix& b, Matrix* out) {
  ESP_CHECK_EQ(a.cols, b.cols);
  out->rows = a.rows;
  out->cols = b.rows;
  out->data.assign(a.rows * b.rows, 0.0f);
  for (size_t i = 0; i < a.rows; ++i) {
    for (size_t j = 0; j < b.rows; ++j) {
      float sum = 0.0f;
      for (size_t k = 0; k < a.cols; ++k) {
        sum += a.at(i, k) * b.at(j, k);
      }
      out->at(i, j) = sum;
    }
  }
}

void MatMulAt(const Matrix& a, const Matrix& b, Matrix* out) {
  ESP_CHECK_EQ(a.rows, b.rows);
  out->rows = a.cols;
  out->cols = b.cols;
  out->data.assign(a.cols * b.cols, 0.0f);
  for (size_t k = 0; k < a.rows; ++k) {
    for (size_t i = 0; i < a.cols; ++i) {
      const float av = a.at(k, i);
      if (av == 0.0f) {
        continue;
      }
      for (size_t j = 0; j < b.cols; ++j) {
        out->at(i, j) += av * b.at(k, j);
      }
    }
  }
}

void AddBiasRows(Matrix* m, std::span<const float> bias) {
  ESP_CHECK_EQ(m->cols, bias.size());
  for (size_t i = 0; i < m->rows; ++i) {
    for (size_t j = 0; j < m->cols; ++j) {
      m->at(i, j) += bias[j];
    }
  }
}

void ReluForward(Matrix* m, Matrix* mask) {
  mask->rows = m->rows;
  mask->cols = m->cols;
  mask->data.assign(m->size(), 0.0f);
  for (size_t i = 0; i < m->size(); ++i) {
    if (m->data[i] > 0.0f) {
      mask->data[i] = 1.0f;
    } else {
      m->data[i] = 0.0f;
    }
  }
}

void ReluBackward(Matrix* grad, const Matrix& mask) {
  ESP_CHECK_EQ(grad->size(), mask.size());
  for (size_t i = 0; i < grad->size(); ++i) {
    grad->data[i] *= mask.data[i];
  }
}

void SoftmaxRows(Matrix* m) {
  for (size_t i = 0; i < m->rows; ++i) {
    float max_v = m->at(i, 0);
    for (size_t j = 1; j < m->cols; ++j) {
      max_v = std::max(max_v, m->at(i, j));
    }
    float sum = 0.0f;
    for (size_t j = 0; j < m->cols; ++j) {
      m->at(i, j) = std::exp(m->at(i, j) - max_v);
      sum += m->at(i, j);
    }
    for (size_t j = 0; j < m->cols; ++j) {
      m->at(i, j) /= sum;
    }
  }
}

}  // namespace espresso

// Two-layer MLP classifier (ReLU hidden layer, softmax cross-entropy loss) with
// explicit forward/backward — the training substrate for the Figure-16 convergence
// experiments. Parameters are exposed as four named gradient tensors so the
// data-parallel trainer can run each through the real compression pipeline.
#ifndef SRC_NN_MLP_H_
#define SRC_NN_MLP_H_

#include <cstdint>
#include <vector>

#include "src/nn/matrix.h"
#include "src/util/rng.h"

namespace espresso {

class Mlp {
 public:
  Mlp(size_t input_dim, size_t hidden_dim, size_t classes, uint64_t seed);

  // Forward + backward over a batch; fills `grads` (same layout as Parameters()) and
  // returns the mean cross-entropy loss. Const: safe to call concurrently from several
  // worker threads against one model instance (data-parallel replicas stay identical).
  double ComputeGradients(const Matrix& x, const std::vector<int>& labels,
                          std::vector<std::vector<float>>* grads) const;

  // Fraction of correct argmax predictions on (x, labels).
  double Accuracy(const Matrix& x, const std::vector<int>& labels) const;

  // SGD step: params -= lr * grads.
  void ApplyGradients(const std::vector<std::vector<float>>& grads, double lr);

  // Mutable views of the four parameter tensors: {W1, b1, W2, b2}.
  std::vector<std::span<float>> Parameters();
  std::vector<size_t> ParameterSizes() const;

  size_t input_dim() const { return input_dim_; }
  size_t classes() const { return classes_; }

 private:
  void Forward(const Matrix& x, Matrix* hidden, Matrix* mask, Matrix* logits) const;

  size_t input_dim_, hidden_dim_, classes_;
  Matrix w1_;               // input x hidden
  std::vector<float> b1_;
  Matrix w2_;               // hidden x classes
  std::vector<float> b2_;
};

}  // namespace espresso

#endif  // SRC_NN_MLP_H_

// Runtime execution of a compression strategy (§4.1: after selection, Espresso
// "applies the compression strategy to the DDL framework to execute the compression
// option for each tensor at run-time whenever their gradients are ready").
//
// This module is that runtime, at functional fidelity: each tensor's gradient — one
// buffer per global rank — flows through its CompressionOption's op pipeline with real
// compression (error feedback included) and real collective data movement over the
// in-process ranks. Hierarchical options run their intra phases on per-machine rank
// groups and the inter phase on the cross-machine groups that own each shard, exactly
// as Figure 1 describes. The executor is the semantic ground truth the timeline engine
// prices: tests verify that every candidate option aggregates correctly (exactly with a
// near-lossless compressor, approximately otherwise).
#ifndef SRC_DDL_STRATEGY_EXECUTOR_H_
#define SRC_DDL_STRATEGY_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "src/collectives/rank_group.h"
#include "src/compress/compressor.h"
#include "src/compress/error_feedback.h"
#include "src/core/strategy.h"

namespace espresso {

struct ExecutorConfig {
  size_t machines = 2;
  size_t gpus_per_machine = 2;
  const Compressor* compressor = nullptr;          // required for compressed options
  std::vector<ErrorFeedback>* feedback = nullptr;  // one per global rank, optional
  uint64_t seed = 0;

  size_t ranks() const { return machines * gpus_per_machine; }
};

// Executes `option` for one tensor. `buffers` holds each global rank's local gradient
// (machine-major order: rank = machine * gpus_per_machine + local); on return every
// rank holds the aggregated tensor. `tensor_id` keys the error-feedback residual.
void ExecuteOption(const CompressionOption& option, const ExecutorConfig& config,
                   uint64_t tensor_id, RankBuffers& buffers);

// Executes a whole strategy: `gradients[t]` is tensor t's per-rank buffers.
void ExecuteStrategy(const Strategy& strategy, const ExecutorConfig& config,
                     std::vector<RankBuffers>& gradients);

}  // namespace espresso

#endif  // SRC_DDL_STRATEGY_EXECUTOR_H_

// Runtime execution of a compression strategy (§4.1: after selection, Espresso
// "applies the compression strategy to the DDL framework to execute the compression
// option for each tensor at run-time whenever their gradients are ready").
//
// This module is that runtime, at functional fidelity: each tensor's gradient — one
// buffer per global rank — flows through its CompressionOption's op pipeline with real
// compression (error feedback included) and real collective data movement over the
// in-process ranks. Hierarchical options run their intra phases on per-machine rank
// groups and the inter phase on the cross-machine groups that own each shard, exactly
// as Figure 1 describes. The executor is the semantic ground truth the timeline engine
// prices: tests verify that every candidate option aggregates correctly (exactly with a
// near-lossless compressor, approximately otherwise).
#ifndef SRC_DDL_STRATEGY_EXECUTOR_H_
#define SRC_DDL_STRATEGY_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/collectives/rank_group.h"
#include "src/compress/compressor.h"
#include "src/compress/error_feedback.h"
#include "src/core/strategy.h"
#include "src/mem/buffer_pool.h"

namespace espresso {

struct ExecutorConfig {
  size_t machines = 2;
  size_t gpus_per_machine = 2;
  const Compressor* compressor = nullptr;          // required for compressed options
  std::vector<ErrorFeedback>* feedback = nullptr;  // one per global rank, optional
  uint64_t seed = 0;
  // ExecuteStrategy batches the compression of tensors at or below this element count
  // whose option compresses every rank's full gradient at its first communication
  // (compressed allgather/gather pipelines): corrected gradients are staged into one
  // SoA column (mem::BatchedCompressPlan) and compressed in a single CompressBatch
  // call. Payloads are bit-identical to the per-tensor path. 0 disables batching.
  size_t batch_cutoff_elements = 4096;

  size_t ranks() const { return machines * gpus_per_machine; }
};

// Persistent scratch for the option interpreter: per-rank states (raw ranges and
// compressed payload sets, recycled via capacity-keeping containers), group index
// lists, payload gather/shuffle staging, and a BufferPool/Arena pair for transient
// float scratch. One workspace serves every tensor of a strategy and every step of a
// run — after the first execution at a given topology and tensor shape, the executor
// performs no heap allocations. A workspace is single-threaded; executions with
// different shapes/topologies may share one (containers grow to the high-water mark).
class ExecutorWorkspace {
 public:
  ExecutorWorkspace();
  ~ExecutorWorkspace();
  ExecutorWorkspace(const ExecutorWorkspace&) = delete;
  ExecutorWorkspace& operator=(const ExecutorWorkspace&) = delete;

  // Pool feeding the interpreter's transient float buffers ("executor" metrics).
  mem::BufferPool& pool();

  // The calling thread's shared workspace (what the nullptr default resolves to).
  static ExecutorWorkspace& ThreadDefault();

  struct Impl;  // defined in strategy_executor.cc
  Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

// Executes `option` for one tensor. `buffers` holds each global rank's local gradient
// (machine-major order: rank = machine * gpus_per_machine + local); on return every
// rank holds the aggregated tensor. `tensor_id` keys the error-feedback residual.
// `workspace` supplies all scratch; nullptr resolves to the calling thread's default.
void ExecuteOption(const CompressionOption& option, const ExecutorConfig& config,
                   uint64_t tensor_id, RankBuffers& buffers,
                   ExecutorWorkspace* workspace = nullptr);

// Executes a whole strategy: `gradients[t]` is tensor t's per-rank buffers. The one
// workspace is reused across all tensors.
void ExecuteStrategy(const Strategy& strategy, const ExecutorConfig& config,
                     std::vector<RankBuffers>& gradients,
                     ExecutorWorkspace* workspace = nullptr);

}  // namespace espresso

#endif  // SRC_DDL_STRATEGY_EXECUTOR_H_

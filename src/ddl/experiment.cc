#include "src/ddl/experiment.h"

#include "src/core/baselines.h"
#include "src/core/espresso.h"
#include "src/core/timeline.h"
#include "src/core/upper_bound.h"
#include "src/util/logging.h"

namespace espresso {

double SingleGpuThroughput(const ModelProfile& model) {
  return static_cast<double>(model.batch_size) / model.SingleGpuIterationTime();
}

namespace {

ThroughputResult FromIterationTime(const ModelProfile& model, const ClusterSpec& cluster,
                                   double iteration_time) {
  ThroughputResult result;
  result.iteration_time_s = iteration_time;
  const auto n = static_cast<double>(cluster.total_gpus());
  result.throughput = n * static_cast<double>(model.batch_size) / iteration_time;
  result.scaling_factor = result.throughput / (n * SingleGpuThroughput(model));
  return result;
}

}  // namespace

ThroughputResult MeasureThroughput(const ModelProfile& model, const ClusterSpec& cluster,
                                   const Compressor& compressor, const Strategy& strategy) {
  TimelineEvaluator evaluator(model, cluster, compressor);
  return FromIterationTime(model, cluster, evaluator.IterationTime(strategy));
}

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kFp32:
      return "FP32";
    case Scheme::kBytePSCompress:
      return "BytePS-Compress";
    case Scheme::kHiTopKComm:
      return "HiTopKComm";
    case Scheme::kHiPress:
      return "HiPress";
    case Scheme::kEspresso:
      return "Espresso";
    case Scheme::kUpperBound:
      return "Upper Bound";
  }
  return "?";
}

ThroughputResult RunScheme(const ModelProfile& model, const ClusterSpec& cluster,
                           const Compressor& compressor, Scheme scheme) {
  switch (scheme) {
    case Scheme::kFp32:
      return MeasureThroughput(model, cluster, compressor, Fp32Strategy(model, cluster));
    case Scheme::kBytePSCompress:
      return MeasureThroughput(model, cluster, compressor,
                               BytePSCompressStrategy(model, cluster, compressor));
    case Scheme::kHiTopKComm:
      return MeasureThroughput(model, cluster, compressor,
                               HiTopKCommStrategy(model, cluster, compressor));
    case Scheme::kHiPress:
      return MeasureThroughput(model, cluster, compressor,
                               HiPressStrategy(model, cluster, compressor));
    case Scheme::kEspresso: {
      EspressoSelector selector(model, cluster, compressor);
      return FromIterationTime(model, cluster, selector.Select().iteration_time);
    }
    case Scheme::kUpperBound: {
      const UpperBoundResult bound = ComputeUpperBound(model, cluster, compressor);
      return FromIterationTime(model, cluster, bound.iteration_time);
    }
  }
  ESP_CHECK(false);
  return {};
}

}  // namespace espresso

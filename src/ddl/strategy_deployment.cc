#include "src/ddl/strategy_deployment.h"

#include <algorithm>
#include <utility>

#include "src/analysis/ir_validator.h"
#include "src/core/eval_cache.h"
#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace espresso {

namespace {

struct DeployMetrics {
  obs::Counter attempts;
  obs::Counter deployed;
  obs::Counter rejected;
  obs::Counter rollbacks;
  obs::Counter forced;
  obs::Gauge current_version;
};

DeployMetrics& Metrics() {
  static DeployMetrics metrics = [] {
    auto& r = obs::GlobalMetrics();
    DeployMetrics m;
    m.attempts = r.RegisterCounter("espresso_deploy_attempts_total",
                                   "Strategy IR deployment attempts (Deploy calls)");
    m.deployed = r.RegisterCounter("espresso_deploy_deployed_total",
                                   "Strategy deployments accepted and swapped live");
    m.rejected = r.RegisterCounter("espresso_deploy_rejected_total",
                                   "Strategy IRs refused by the fail-closed admission pass");
    m.rollbacks = r.RegisterCounter("espresso_deploy_rollbacks_total",
                                    "Reverts to the last-known-good deployment");
    m.forced = r.RegisterCounter("espresso_deploy_forced_total",
                                 "Deployments admitted past a digest mismatch (--force-digest)");
    m.current_version = r.RegisterGauge("espresso_deploy_current_version",
                                        "Version of the live strategy deployment");
    return m;
  }();
  return metrics;
}

std::string FirstErrorLine(const DiagnosticReport& report) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.severity == Severity::kError) {
      return d.rule + ": " + d.message;
    }
  }
  return "rejected";
}

}  // namespace

StrategyDeployment::StrategyDeployment(const ModelProfile& model,
                                       const ClusterSpec& cluster,
                                       const Compressor& compressor,
                                       const CompressorConfig& compressor_config,
                                       DeploymentConfig config)
    : model_(model),
      cluster_(cluster),
      compressor_(compressor),
      compressor_config_(compressor_config),
      config_(std::move(config)) {
  if (!config_.audit_log_path.empty()) {
    std::string error;
    if (!audit_.Open(config_.audit_log_path, &error)) {
      ESP_LOG(kWarning) << "strategy deployment: " << error
                        << " (auditing in memory only)";
    }
  }
}

void StrategyDeployment::RecordEventLocked(const std::string& event, uint64_t iteration,
                                           const std::string& origin, double fs_score,
                                           const std::string& detail) {
  DeployEvent record;
  record.event = event;
  record.version = version_;
  record.iteration = iteration;
  record.origin = origin;
  record.fs_score = fs_score;
  record.detail = detail;
  record.seq = audit_.Append(event, [&](JsonWriter& json) {
    json.Field("version", version_);
    json.Field("iteration", iteration);
    json.Field("origin", origin);
    json.Field("fs_score", fs_score);
    if (current_ != nullptr) {
      json.Field("fingerprint", DigestHex(current_->fingerprint));
    }
    if (!detail.empty()) {
      json.Field("detail", detail);
    }
  });
  events_.push_back(std::move(record));
}

void StrategyDeployment::SwapLocked(Strategy strategy, std::string origin,
                                    double fs_score, bool keep_previous) {
  auto next = std::make_shared<DeployedStrategy>();
  next->strategy = std::move(strategy);
  next->version = ++version_;
  next->fingerprint = StrategyFingerprint(next->strategy);
  next->fs_score = fs_score;
  next->origin = std::move(origin);
  previous_ = keep_previous ? current_ : nullptr;
  // The swap: one shared_ptr assignment. Readers that already hold a snapshot keep
  // executing it; the next Acquire() sees the new deployment, complete.
  current_ = std::move(next);
  pending_regression_check_ = keep_previous && baseline_samples_ > 0;
  obs::GlobalMetrics().Set(Metrics().current_version, static_cast<double>(version_));
}

void StrategyDeployment::Bootstrap(const Strategy& strategy, std::string origin,
                                   double fs_score) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string origin_copy = origin;
  SwapLocked(strategy, std::move(origin), fs_score, /*keep_previous=*/false);
  pending_regression_check_ = false;
  RecordEventLocked("bootstrap", /*iteration=*/0, origin_copy, fs_score, "");
}

DeployResult StrategyDeployment::Deploy(const StrategyIR& ir) {
  auto& registry = obs::GlobalMetrics();
  registry.Add(Metrics().attempts);

  // Admission runs before the lock: linting plus a full timeline simulation is far
  // too expensive to hold readers for, and a rejected IR must not perturb them at all.
  IRValidationOptions options;
  options.force_digest = config_.force_digest;
  options.verify_schedule = config_.verify_schedule;
  options.max_compress_ops = config_.max_compress_ops;
  IRValidationResult validation = ValidateStrategyIR(ir, model_, cluster_, compressor_,
                                                     compressor_config_, options);

  DeployResult result;
  result.report = std::move(validation.report);
  result.forced_digest = validation.digest_mismatch && validation.ok;

  std::lock_guard<std::mutex> lock(mu_);
  if (!validation.ok) {
    result.accepted = false;
    result.version = version_;
    result.reason = FirstErrorLine(result.report);
    registry.Add(Metrics().rejected);
    RecordEventLocked("reject", ir.provenance.iteration, ir.provenance.origin,
                      ir.fs_score, result.reason);
    return result;
  }
  SwapLocked(ir.strategy, ir.provenance.origin, ir.fs_score, /*keep_previous=*/true);
  result.accepted = true;
  result.version = version_;
  registry.Add(Metrics().deployed);
  if (result.forced_digest) {
    registry.Add(Metrics().forced);
    RecordEventLocked("forced-deploy", ir.provenance.iteration, ir.provenance.origin,
                      ir.fs_score, "config digest mismatch admitted by force_digest");
  } else {
    RecordEventLocked("deploy", ir.provenance.iteration, ir.provenance.origin,
                      ir.fs_score, "");
  }
  return result;
}

std::shared_ptr<const DeployedStrategy> StrategyDeployment::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

bool StrategyDeployment::RollbackLocked(const std::string& reason) {
  if (previous_ == nullptr) {
    return false;
  }
  const std::shared_ptr<const DeployedStrategy> restored = previous_;
  SwapLocked(restored->strategy, restored->origin, restored->fs_score,
             /*keep_previous=*/false);
  pending_regression_check_ = false;
  obs::GlobalMetrics().Add(Metrics().rollbacks);
  RecordEventLocked("rollback", /*iteration=*/0, restored->origin, restored->fs_score,
                    reason);
  return true;
}

bool StrategyDeployment::Rollback(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  return RollbackLocked(reason);
}

bool StrategyDeployment::ReportStepTime(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_regression_check_ && config_.regression_threshold > 0.0) {
    pending_regression_check_ = false;
    if (baseline_samples_ > 0 &&
        seconds > config_.regression_threshold * baseline_step_s_) {
      // The regressing sample is not folded into the baseline: it measured the bad
      // deployment, and the restored one should be judged against pre-swap history.
      return RollbackLocked("first post-swap step took " + std::to_string(seconds) +
                            "s vs baseline " + std::to_string(baseline_step_s_) +
                            "s (threshold x" +
                            std::to_string(config_.regression_threshold) + ")");
    }
  }
  const size_t window = std::max<size_t>(config_.baseline_window, 1);
  const size_t effective = std::min(baseline_samples_ + 1, window);
  baseline_step_s_ += (seconds - baseline_step_s_) / static_cast<double>(effective);
  ++baseline_samples_;
  return false;
}

uint64_t StrategyDeployment::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

std::vector<DeployEvent> StrategyDeployment::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::shared_ptr<const DeployedStrategy> ExecuteDeployedStrategy(
    const StrategyDeployment& deployment, const ExecutorConfig& config,
    std::vector<RankBuffers>& gradients, ExecutorWorkspace* workspace) {
  std::shared_ptr<const DeployedStrategy> snapshot = deployment.Acquire();
  if (snapshot == nullptr) {
    return nullptr;
  }
  ExecuteStrategy(snapshot->strategy, config, gradients, workspace);
  return snapshot;
}

std::vector<TraceInstant> DeployTraceInstants(const std::vector<DeployEvent>& events,
                                              double seconds_per_iteration) {
  std::vector<TraceInstant> instants;
  instants.reserve(events.size());
  for (const DeployEvent& event : events) {
    TraceInstant instant;
    instant.time_s = static_cast<double>(event.iteration) * seconds_per_iteration;
    instant.name = "deploy_" + event.event;
    instant.detail = "v" + std::to_string(event.version) + " origin=" + event.origin +
                     (event.detail.empty() ? "" : " " + event.detail);
    instants.push_back(std::move(instant));
  }
  return instants;
}

}  // namespace espresso

// Empirical measurement (§4.3): Espresso builds its models from profiling runs —
// "it collects execution traces of DNN training jobs without GC for 100 iterations",
// averages the per-tensor computation times, and "runs compression and decompression
// operations with different tensor sizes 100 times and then averages the results".
//
// ProfileModel reproduces the trace-collection loop against a noisy training source
// (the simulator stands in for the real job; per-iteration times jitter around the
// true values and the profiler recovers them by averaging — the paper reports <5%
// normalized standard deviation, which the profiler also measures).
//
// ProfileCompressor measures *actual wall-clock* compression/decompression times of the
// CPU compressor implementations in src/compress on this host, and fits the affine
// cost model (launch overhead + bytes/s) the timeline engine consumes.
#ifndef SRC_DDL_PROFILER_H_
#define SRC_DDL_PROFILER_H_

#include <cstdint>
#include <vector>

#include "src/compress/compressor.h"
#include "src/costmodel/compression_cost.h"
#include "src/models/model_profile.h"

namespace espresso {

struct ModelProfileResult {
  ModelProfile profile;                  // averaged tensor computation times
  double max_normalized_stddev = 0.0;    // worst per-tensor stddev/mean across tensors
  size_t iterations = 0;
};

// Collects `iterations` noisy traces of `ground_truth` (each per-tensor backward time
// multiplied by 1 + N(0, jitter)) and averages them, exactly like the paper's
// 100-iteration trace collection. With jitter <= 0.05 the recovered times land within a
// few percent of the ground truth (tested).
ModelProfileResult ProfileModel(const ModelProfile& ground_truth, size_t iterations,
                                double jitter, uint64_t seed);

struct CompressorProfilePoint {
  size_t elements = 0;
  double compress_seconds = 0.0;    // averaged over repetitions
  double decompress_seconds = 0.0;
};

struct CompressorProfileResult {
  std::vector<CompressorProfilePoint> points;
  // Affine fits over original tensor bytes: time = launch_overhead + bytes / throughput.
  DeviceCostSpec fitted;
};

// Measures the real (host CPU) compression/decompression wall-clock of `compressor`
// over `sizes` (elements), `repetitions` runs each, and least-squares fits the affine
// model. This is how a deployment would calibrate ClusterSpec::cpu_compression for its
// own hardware.
CompressorProfileResult ProfileCompressor(const Compressor& compressor,
                                          const std::vector<size_t>& sizes,
                                          size_t repetitions, uint64_t seed = 1);

}  // namespace espresso

#endif  // SRC_DDL_PROFILER_H_

// Espresso's three input files (§4.1, Figure 6): the model information (tensor sizes
// and backward-computation times), the GC information (algorithm + parameters), and the
// training-system information (machines, GPUs, networks). This module turns those files
// into the runtime objects the selector consumes.
//
// Model file:
//   [model]
//   name = gpt2                  # load a zoo profile; everything else optional
//   # -- or describe a custom model --
//   forward_ms = 40
//   optimizer_ms = 5
//   batch_size = 80
//   unit = tokens/s
//   [tensors]                    # backward-completion order
//   ln_f.weight = 768, 0.01      # elements, backward time in ms
//   mlp.proj.weight = 2359296, 2.0
//
// GC file:
//   [compression]
//   algorithm = dgc              # randomk | dgc/topk | efsignsgd | qsgd | terngrad | fp16
//   ratio = 0.01
//   bits = 4
//   max_compress_ops = 2         # optional user pruning constraint (§4.2.2)
//
// System file:
//   [cluster]
//   machines = 8
//   gpus_per_machine = 8
//   testbed = nvlink             # nvlink | pcie preset, then optional overrides:
//   inter_gbps = 100
//   inter_latency_us = 15
//   intra_gbps = 960
//   intra_latency_us = 4
//   cpu_workers_per_gpu = 3
#ifndef SRC_DDL_JOB_CONFIG_H_
#define SRC_DDL_JOB_CONFIG_H_

#include <memory>
#include <string>

#include "src/compress/compressor.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_profile.h"
#include "src/util/config.h"

namespace espresso {

struct JobConfig {
  ModelProfile model;
  CompressorConfig compressor;
  ClusterSpec cluster;
  size_t max_compress_ops = 0;  // 0 = unlimited

  std::unique_ptr<Compressor> MakeCompressor() const { return CreateCompressor(compressor); }
};

struct JobConfigResult {
  bool ok = false;
  std::string error;
  JobConfig job;
};

// Parses the three configuration objects; `error` names the offending file/field.
JobConfigResult LoadJobConfig(const ConfigFile& model_file, const ConfigFile& gc_file,
                              const ConfigFile& system_file);

// Convenience: loads the three files from disk.
JobConfigResult LoadJobConfigFromFiles(const std::string& model_path,
                                       const std::string& gc_path,
                                       const std::string& system_path);

}  // namespace espresso

#endif  // SRC_DDL_JOB_CONFIG_H_

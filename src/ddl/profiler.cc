#include "src/ddl/profiler.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace espresso {

ModelProfileResult ProfileModel(const ModelProfile& ground_truth, size_t iterations,
                                double jitter, uint64_t seed) {
  ESP_CHECK_GT(iterations, 0u);
  const size_t n = ground_truth.tensors.size();
  Rng rng(seed);

  std::vector<double> sum(n, 0.0);
  std::vector<double> sum_sq(n, 0.0);
  for (size_t it = 0; it < iterations; ++it) {
    for (size_t i = 0; i < n; ++i) {
      // One trace sample: the true computation time perturbed by run-to-run noise
      // (kernel scheduling, clocks). Clamped so a pathological draw stays positive.
      const double factor = std::max(0.1, 1.0 + rng.Normal(0.0, jitter));
      const double sample = ground_truth.tensors[i].backward_time_s * factor;
      sum[i] += sample;
      sum_sq[i] += sample * sample;
    }
  }

  ModelProfileResult result;
  result.profile = ground_truth;
  result.iterations = iterations;
  for (size_t i = 0; i < n; ++i) {
    const double mean = sum[i] / static_cast<double>(iterations);
    result.profile.tensors[i].backward_time_s = mean;
    const double variance =
        std::max(0.0, sum_sq[i] / static_cast<double>(iterations) - mean * mean);
    if (mean > 0.0) {
      result.max_normalized_stddev =
          std::max(result.max_normalized_stddev, std::sqrt(variance) / mean);
    }
  }
  return result;
}

CompressorProfileResult ProfileCompressor(const Compressor& compressor,
                                          const std::vector<size_t>& sizes,
                                          size_t repetitions, uint64_t seed) {
  ESP_CHECK(!sizes.empty());
  ESP_CHECK_GT(repetitions, 0u);
  CompressorProfileResult result;
  Rng rng(seed);

  for (size_t elements : sizes) {
    std::vector<float> input(elements);
    rng.FillNormal(input, 0.0, 1.0);
    std::vector<float> output(elements, 0.0f);
    CompressedTensor payload;

    // Warm-up (first-touch faults, allocator).
    compressor.Compress(input, seed, &payload);
    compressor.Decompress(payload, output);

    CompressorProfilePoint point;
    point.elements = elements;
    const auto c0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < repetitions; ++r) {
      compressor.Compress(input, seed + r, &payload);
    }
    const auto c1 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < repetitions; ++r) {
      compressor.DecompressAdd(payload, output);
    }
    const auto c2 = std::chrono::steady_clock::now();
    point.compress_seconds =
        std::chrono::duration<double>(c1 - c0).count() / static_cast<double>(repetitions);
    point.decompress_seconds =
        std::chrono::duration<double>(c2 - c1).count() / static_cast<double>(repetitions);
    result.points.push_back(point);
  }

  // Least-squares fit of time = a + b * bytes over the measured points; the throughput
  // entries of DeviceCostSpec are 1/b and the launch overhead is a (clamped to >= 0).
  auto fit = [&](bool compress) {
    const auto n = static_cast<double>(result.points.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (const auto& p : result.points) {
      const double x = static_cast<double>(p.elements) * sizeof(float);
      const double y = compress ? p.compress_seconds : p.decompress_seconds;
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    const double denom = n * sxx - sx * sx;
    double b = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
    double a = (sy - b * sx) / n;
    if (b <= 0.0) {
      // Degenerate fit (all sizes equal or timer noise): fall back to mean throughput.
      b = sy > 0.0 ? sy / std::max(sx, 1.0) : 1e-12;
    }
    return std::make_pair(std::max(0.0, a), 1.0 / b);
  };
  const auto [comp_overhead, comp_throughput] = fit(true);
  const auto [decomp_overhead, decomp_throughput] = fit(false);
  result.fitted.launch_overhead_s = std::max(comp_overhead, decomp_overhead);
  result.fitted.compress_bytes_per_s = comp_throughput;
  result.fitted.decompress_bytes_per_s = decomp_throughput;
  return result;
}

}  // namespace espresso

#include "src/ddl/strategy_executor.h"

#include <algorithm>

#include "src/mem/arena.h"
#include "src/mem/batch_plan.h"
#include "src/mem/stable_vec.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace espresso {

namespace {

// One compressed payload together with the tensor range it decompresses into.
struct RangedPayload {
  size_t offset = 0;
  size_t length = 0;
  CompressedTensor payload;
};

// Per-rank interpreter state: either a raw (sub-)vector of the tensor or a set of
// compressed payloads awaiting decompression/aggregation. `active` is false for ranks
// whose data was consumed by a rooted collective (Reduce/Gather). States persist in
// the workspace across executions; every field is reinitialized per run, and the
// capacity-keeping containers (raw, payloads) are reused in place.
struct RankState {
  bool active = true;
  // When a rooted collective (Reduce/Gather) consumes a rank's data, the rank goes
  // dormant at that communication level until the matching Broadcast revives it:
  // 0 = machine level (intra phases), 1 = inter level, 2 = flat, -1 = not dormant.
  int dormant_level = -1;
  size_t offset = 0;
  size_t length = 0;
  std::vector<float> raw;                            // valid when payloads is empty
  mem::StableVec<RangedPayload> payloads;            // valid when non-empty
  bool pending_compress = false;  // a Comp op ran; the next comm compresses

  bool HasPayloads() const { return !payloads.empty(); }
};

// Splits a sparse payload covering `length` elements into the sub-range
// [sub_offset, sub_offset + sub_length): indices are re-based to the sub-range. Only
// sparse layouts split exactly; skip-style pipelines only arise for shared-seed
// Random-k, which is sparse. Writes into `part` (cleared first, capacity kept).
void SplitSparsePayload(const CompressedTensor& payload, size_t sub_offset,
                        size_t sub_length, CompressedTensor* part) {
  ESP_CHECK(payload.kind == PayloadKind::kSparse)
      << "only sparse payloads can be range-split";
  part->Clear();
  part->kind = PayloadKind::kSparse;
  part->original_elements = sub_length;
  for (size_t i = 0; i < payload.indices.size(); ++i) {
    const uint32_t index = payload.indices[i];
    if (index >= sub_offset && index < sub_offset + sub_length) {
      part->indices.push_back(static_cast<uint32_t>(index - sub_offset));
      part->values.push_back(payload.values[i]);
    }
  }
}

int PhaseLevel(CommPhase phase) {
  switch (phase) {
    case CommPhase::kIntraFirst:
    case CommPhase::kIntraSecond:
      return 0;
    case CommPhase::kInter:
      return 1;
    case CommPhase::kFlat:
      return 2;
  }
  return -1;
}

}  // namespace

// The workspace body lives here so it can hold the interpreter-internal types.
struct ExecutorWorkspace::Impl {
  mem::BufferPool pool{"executor"};
  mem::Arena arena;
  std::vector<RankState> states;
  mem::StableVec<std::vector<size_t>> groups;        // Groups() output
  mem::StableVec<RangedPayload> gather_scratch;      // allgather/gather/broadcast staging
  std::vector<mem::StableVec<RangedPayload>> inbox;  // alltoall per-member staging
  std::vector<std::vector<float>> shards;            // reduce-scatter staging
  // Small-tensor batching (ExecuteStrategy pre-pass): the SoA staging plan, the
  // payload store indexed [batched tensor * ranks + rank], the staged corrected
  // columns awaiting EF commit, and the batched tensor index list. All grow-only.
  mem::BatchedCompressPlan batch_plan;
  mem::StableVec<CompressedTensor> batch_payloads;
  std::vector<std::span<float>> batch_corrected;
  std::vector<size_t> batch_tensors;
};

ExecutorWorkspace::ExecutorWorkspace() : impl_(std::make_unique<Impl>()) {}
ExecutorWorkspace::~ExecutorWorkspace() = default;

mem::BufferPool& ExecutorWorkspace::pool() { return impl_->pool; }

ExecutorWorkspace& ExecutorWorkspace::ThreadDefault() {
  thread_local ExecutorWorkspace workspace;
  return workspace;
}

namespace {

class OptionExecutor {
 public:
  OptionExecutor(const CompressionOption& option, const ExecutorConfig& config,
                 uint64_t tensor_id, RankBuffers& buffers, ExecutorWorkspace::Impl& ws,
                 std::span<CompressedTensor> precompressed = {})
      : option_(option),
        config_(config),
        tensor_id_(tensor_id),
        buffers_(buffers),
        elements_(CheckUniformSize(buffers)),
        ws_(ws),
        states_(ws.states),
        precompressed_(precompressed) {
    ESP_CHECK(precompressed_.empty() || precompressed_.size() == config.ranks());
    ESP_CHECK_GT(config.machines, 0u) << "ExecutorConfig needs at least one machine";
    ESP_CHECK_GT(config.gpus_per_machine, 0u)
        << "ExecutorConfig needs at least one GPU per machine";
    ESP_CHECK_EQ(buffers.size(), config.ranks())
        << "buffer count must match the rank topology (machines=" << config.machines
        << " x gpus_per_machine=" << config.gpus_per_machine << ")";
    ESP_CHECK_GT(elements_, 0u) << "rank buffers must be non-empty";
    if (config.feedback != nullptr) {
      ESP_CHECK_EQ(config.feedback->size(), config.ranks())
          << "error-feedback store count must match the rank topology";
    }
    if (option.Compressed()) {
      ESP_CHECK(config.compressor != nullptr) << "compressed option needs a compressor";
    }
    ESP_CHECK(!option.ops.empty()) << "option has no ops: " << option.Describe();
    states_.resize(config.ranks());
    for (size_t r = 0; r < states_.size(); ++r) {
      RankState& s = states_[r];
      s.active = true;
      s.dormant_level = -1;
      s.offset = 0;
      s.length = elements_;
      s.raw = buffers[r];  // copy-assign: reuses the persistent state's capacity
      s.payloads.clear();
      s.pending_compress = false;
    }
  }

  void Run() {
    for (const Op& op : option_.ops) {
      switch (op.task) {
        case ActionTask::kCompress:
          for (RankState& s : states_) {
            if (s.active) {
              ESP_CHECK(!s.HasPayloads());
              s.pending_compress = true;
            }
          }
          break;
        case ActionTask::kDecompress:
          Decompress(op);
          break;
        case ActionTask::kComm:
          Communicate(op);
          break;
      }
    }
    // A valid option ends with every rank holding the full aggregated tensor.
    for (size_t r = 0; r < states_.size(); ++r) {
      const RankState& s = states_[r];
      ESP_CHECK(s.active && !s.HasPayloads() && s.offset == 0 && s.length == elements_)
          << "option did not terminate replicated: " << option_.Describe();
      buffers_[r] = s.raw;
    }
  }

 private:
  // Stable partition of `group` by active state (actives first, relative order kept),
  // staged through the arena instead of std::stable_partition's temporary buffer.
  void StablePartitionActive(std::vector<size_t>& group) {
    mem::ArenaScope scope(ws_.arena);
    std::span<size_t> tmp = ws_.arena.Alloc<size_t>(group.size());
    size_t k = 0;
    for (size_t r : group) {
      if (states_[r].active) {
        tmp[k++] = r;
      }
    }
    for (size_t r : group) {
      if (!states_[r].active) {
        tmp[k++] = r;
      }
    }
    std::copy(tmp.begin(), tmp.end(), group.begin());
  }

  // Rank groups participating in a communication op of the given phase: machine groups
  // for intra phases; active ranks grouped by their current range for inter/flat (the
  // cross-machine column groups of Figure 1 fall out of the shared shard offsets).
  // The group lists live in the workspace; valid until the next BuildGroups call.
  mem::StableVec<std::vector<size_t>>& BuildGroups(const Op& op) {
    // A Broadcast revives the ranks that a rooted first step (Reduce/Gather) at the
    // same communication level made dormant — they are recipients.
    const bool revive = op.routine == Routine::kBroadcast;
    const int level = PhaseLevel(op.phase);
    auto participates = [&](size_t r) {
      return states_[r].active || (revive && states_[r].dormant_level == level);
    };
    mem::StableVec<std::vector<size_t>>& groups = ws_.groups;
    groups.clear();
    auto begin_group = [&]() -> std::vector<size_t>& {
      std::vector<size_t>& g = groups.push();
      g.clear();  // recycled storage: logical clear keeps capacity
      return g;
    };
    if (op.phase == CommPhase::kIntraFirst || op.phase == CommPhase::kIntraSecond) {
      for (size_t m = 0; m < config_.machines; ++m) {
        std::vector<size_t>& group = begin_group();
        for (size_t l = 0; l < config_.gpus_per_machine; ++l) {
          const size_t r = m * config_.gpus_per_machine + l;
          if (participates(r)) {
            group.push_back(r);
          }
        }
        if (group.empty()) {
          groups.truncate(groups.size() - 1);
        }
      }
      return groups;
    }
    if (op.phase == CommPhase::kInter) {
      // Cross-machine column groups (Figure 1): the l-th GPU of every machine. Columns
      // whose ranks all went dormant at the machine level (rooted intra) sit out.
      for (size_t l = 0; l < config_.gpus_per_machine; ++l) {
        std::vector<size_t>& group = begin_group();
        for (size_t m = 0; m < config_.machines; ++m) {
          const size_t r = m * config_.gpus_per_machine + l;
          if (participates(r)) {
            group.push_back(r);
          }
        }
        if (group.empty()) {
          groups.truncate(groups.size() - 1);
        } else {
          // The (active) root must lead so Broadcast reads live data.
          StablePartitionActive(group);
        }
      }
      return groups;
    }
    // Flat: one group over every participating rank.
    std::vector<size_t>& group = begin_group();
    for (size_t r = 0; r < states_.size(); ++r) {
      if (participates(r)) {
        group.push_back(r);
      }
    }
    if (group.empty()) {
      groups.truncate(groups.size() - 1);
    } else {
      StablePartitionActive(group);
    }
    return groups;
  }

  // Compresses `view` for rank `rank` into `out`. Error feedback applies at the
  // pipeline's FIRST compression site — whether that is the rank's raw gradient or its
  // post-reduce-scatter shard — with the residual keyed by (tensor, range) so each
  // rank's compression site keeps its own memory; re-compressions at later stages
  // (divisible middle stages, second steps) are transient and carry no residual.
  void Compress(size_t rank, size_t range_key, std::span<const float> view,
                CompressedTensor* out) {
    // Batched pre-pass payloads: ExecuteStrategy admits only options whose sole
    // EF-bearing compression is every rank's full-range gradient at the first comm, so
    // the guard identifies that site exactly and each rank consumes its payload once.
    // Swap keeps the payload store's capacities circulating for the next step.
    if (!precompressed_.empty() && first_compression_ && range_key == 0 &&
        view.size() == elements_) {
      std::swap(*out, precompressed_[rank]);
      return;
    }
    if (first_compression_ && config_.feedback != nullptr) {
      ESP_CHECK_LT(rank, config_.feedback->size());
      (*config_.feedback)[rank].CompressWithFeedback(
          *config_.compressor, tensor_id_ * 1315423911ULL + range_key, view, config_.seed,
          out);
    } else {
      config_.compressor->Compress(view, config_.seed, out);
    }
  }

  // --- communication routines -------------------------------------------------------

  void Communicate(const Op& op) {
    // A payload-set on the wire without a preceding Decompress means the option either
    // skips the decompress-aggregate-recompress stage (same-range payloads: aggregate
    // in the compressed domain) or carries a multi-chunk compressed tensor (disjoint
    // ranges: pass through untouched).
    for (RankState& s : states_) {
      if (s.active && s.HasPayloads() && !s.pending_compress) {
        DedupePayloads(&s);
      }
    }
    mem::StableVec<std::vector<size_t>>& groups = BuildGroups(op);
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      const std::vector<size_t>& group = groups[gi];
      switch (op.routine) {
        case Routine::kAllreduce:
          GroupAllreduce(group);
          break;
        case Routine::kReduceScatter:
          GroupReduceScatter(group);
          break;
        case Routine::kAllgather:
          GroupAllgather(group, op.compressed);
          break;
        case Routine::kReduce:
          GroupReduce(group, PhaseLevel(op.phase));
          break;
        case Routine::kBroadcast:
          GroupBroadcast(group, op.compressed);
          break;
        case Routine::kAlltoall:
          GroupAlltoall(group);
          break;
        case Routine::kGather:
          GroupGather(group, PhaseLevel(op.phase));
          break;
        case Routine::kNone:
          ESP_CHECK(false);
      }
    }
    bool consumed_pending = false;
    for (RankState& s : states_) {
      consumed_pending = consumed_pending || s.pending_compress;
      s.pending_compress = false;
    }
    if (consumed_pending) {
      first_compression_ = false;
    }
  }

  void GroupAllreduce(const std::vector<size_t>& group) {
    RankState& first = states_[group.front()];
    ESP_CHECK(!first.pending_compress && !first.HasPayloads());
    mem::PooledFloats sum = ws_.pool.AcquireZeroedFloats(first.length);
    for (size_t r : group) {
      ESP_CHECK_EQ(states_[r].length, first.length);
      for (size_t i = 0; i < sum->size(); ++i) {
        (*sum)[i] += states_[r].raw[i];
      }
    }
    for (size_t r : group) {
      states_[r].raw.assign(sum->begin(), sum->end());
    }
  }

  void GroupReduceScatter(const std::vector<size_t>& group) {
    const size_t G = group.size();
    const RankState& first = states_[group.front()];
    ESP_CHECK(!first.pending_compress && !first.HasPayloads());
    const Partition part(first.length, G);
    // All shards are computed before any state is overwritten (rank j's raw feeds
    // every shard), staged in the workspace.
    std::vector<std::vector<float>>& shards = ws_.shards;
    // Grow-only: shrinking would destroy warm shard buffers when groups of different
    // sizes share the workspace. Entries past G sit unused.
    if (shards.size() < G) {
      shards.resize(G);
    }
    for (size_t j = 0; j < G; ++j) {
      shards[j].assign(part.Length(j), 0.0f);
      for (size_t r : group) {
        for (size_t i = 0; i < shards[j].size(); ++i) {
          shards[j][i] += states_[r].raw[part.Offset(j) + i];
        }
      }
    }
    for (size_t j = 0; j < G; ++j) {
      RankState& s = states_[group[j]];
      s.offset += part.Offset(j);
      s.length = part.Length(j);
      s.raw.assign(shards[j].begin(), shards[j].end());
    }
  }

  void GroupReduce(const std::vector<size_t>& group, int level) {
    GroupAllreduce(group);
    for (size_t j = 1; j < group.size(); ++j) {
      states_[group[j]].active = false;
      states_[group[j]].dormant_level = level;
    }
  }

  void GroupAllgather(const std::vector<size_t>& group, bool compressed) {
    if (compressed) {
      // Every member contributes its payloads (compressing its raw range now if a Comp
      // op is pending); everyone ends with the union of the group's payload sets.
      mem::StableVec<RangedPayload>& gathered = ws_.gather_scratch;
      gathered.clear();
      for (size_t r : group) {
        RankState& s = states_[r];
        if (s.pending_compress) {
          ESP_CHECK(!s.HasPayloads());
          RangedPayload& p = gathered.push();
          p.offset = s.offset;
          p.length = s.length;
          Compress(r, s.offset, s.raw, &p.payload);
        } else {
          ESP_CHECK(s.HasPayloads());
          gathered.AppendFrom(s.payloads);
        }
      }
      for (size_t r : group) {
        states_[r].payloads.CopyFrom(gathered);
        states_[r].raw.clear();
      }
      return;
    }
    // Uncompressed: concatenate the members' (disjoint) ranges on every member.
    size_t lo = SIZE_MAX, hi = 0;
    for (size_t r : group) {
      lo = std::min(lo, states_[r].offset);
      hi = std::max(hi, states_[r].offset + states_[r].length);
    }
    mem::PooledFloats merged = ws_.pool.AcquireZeroedFloats(hi - lo);
    for (size_t r : group) {
      const RankState& s = states_[r];
      std::copy(s.raw.begin(), s.raw.end(), merged->begin() + (s.offset - lo));
    }
    for (size_t r : group) {
      states_[r].offset = lo;
      states_[r].length = hi - lo;
      states_[r].raw.assign(merged->begin(), merged->end());
    }
  }

  void GroupBroadcast(const std::vector<size_t>& group, bool compressed) {
    RankState& root = states_[group.front()];
    if (compressed) {
      mem::StableVec<RangedPayload>& payloads = ws_.gather_scratch;
      payloads.clear();
      if (root.pending_compress) {
        ESP_CHECK(!root.HasPayloads());
        RangedPayload& p = payloads.push();
        p.offset = root.offset;
        p.length = root.length;
        Compress(group.front(), root.offset, root.raw, &p.payload);
      } else {
        ESP_CHECK(root.HasPayloads());
        payloads.CopyFrom(root.payloads);
      }
      size_t lo = SIZE_MAX, hi = 0;
      for (size_t i = 0; i < payloads.size(); ++i) {
        const RangedPayload& p = payloads[i];
        lo = std::min(lo, p.offset);
        hi = std::max(hi, p.offset + p.length);
      }
      for (size_t r : group) {
        RankState& s = states_[r];
        s.active = true;
        s.dormant_level = -1;
        s.offset = lo;
        s.length = hi - lo;
        s.raw.clear();
        s.payloads.CopyFrom(payloads);
      }
      return;
    }
    ESP_CHECK(!root.HasPayloads());
    // Stage the root's value: the loop overwrites the root's own raw vector.
    mem::PooledFloats value = ws_.pool.AcquireFloats(root.raw.size());
    std::copy(root.raw.begin(), root.raw.end(), value->begin());
    const size_t offset = root.offset;
    const size_t length = root.length;
    for (size_t r : group) {
      RankState& s = states_[r];
      s.active = true;
      s.dormant_level = -1;
      s.offset = offset;
      s.length = length;
      s.raw.assign(value->begin(), value->end());
      s.payloads.clear();
    }
  }

  void GroupAlltoall(const std::vector<size_t>& group) {
    // Compressed shuffle: each member splits its range into G parts (compressing now if
    // a Comp op is pending, range-splitting its carried payload otherwise) and sends
    // part j to member j. Member j ends with G payloads covering part j.
    const size_t G = group.size();
    const RankState& first = states_[group.front()];
    const Partition part(first.length, G);
    std::vector<mem::StableVec<RangedPayload>>& inbox = ws_.inbox;
    if (inbox.size() < G) {
      inbox.resize(G);
    }
    for (size_t j = 0; j < G; ++j) {
      inbox[j].clear();
    }
    for (size_t r : group) {
      RankState& s = states_[r];
      ESP_CHECK_EQ(s.length, first.length);
      for (size_t j = 0; j < G; ++j) {
        RangedPayload& p = inbox[j].push();
        p.offset = s.offset + part.Offset(j);
        p.length = part.Length(j);
        if (s.pending_compress) {
          ESP_CHECK(!s.HasPayloads()) << option_.Describe();
          const std::span<const float> view(s.raw);
          Compress(r, s.offset + part.Offset(j),
                   view.subspan(part.Offset(j), part.Length(j)), &p.payload);
        } else {
          ESP_CHECK_EQ(s.payloads.size(), 1u);
          SplitSparsePayload(s.payloads.front().payload, part.Offset(j), part.Length(j),
                             &p.payload);
        }
      }
    }
    for (size_t j = 0; j < G; ++j) {
      RankState& s = states_[group[j]];
      s.offset += part.Offset(j);
      s.length = part.Length(j);
      s.raw.clear();
      s.payloads.Swap(inbox[j]);  // constant-time; capacities circulate, never drop
    }
  }

  void GroupGather(const std::vector<size_t>& group, int level) {
    mem::StableVec<RangedPayload>& gathered = ws_.gather_scratch;
    gathered.clear();
    for (size_t r : group) {
      RankState& s = states_[r];
      if (s.pending_compress) {
        ESP_CHECK(!s.HasPayloads()) << option_.Describe();
        RangedPayload& p = gathered.push();
        p.offset = s.offset;
        p.length = s.length;
        Compress(r, s.offset, s.raw, &p.payload);
      } else {
        ESP_CHECK(s.HasPayloads()) << option_.Describe();
        gathered.AppendFrom(s.payloads);
      }
    }
    RankState& root = states_[group.front()];
    root.raw.clear();
    root.payloads.Swap(gathered);
    for (size_t j = 1; j < group.size(); ++j) {
      states_[group[j]].active = false;
      states_[group[j]].dormant_level = level;
    }
  }

  // --- decompression ------------------------------------------------------------------

  // Deduplicates a payload set by range: payloads covering the same range are partial
  // sums and get aggregated in the compressed domain (the "skip" shortcut; requires
  // compressor support, e.g. shared-seed Random-k). Disjoint ranges are chunks of one
  // logical compressed tensor and pass through untouched. In-place compaction: each
  // duplicate is folded (in encounter order) into the first payload of its range, and
  // only when something was folded does the surviving set get re-sorted by offset —
  // a dedupe-free set keeps its original order, bit for bit.
  void DedupePayloads(RankState* s) {
    mem::StableVec<RangedPayload>& ps = s->payloads;
    size_t unique = 0;
    bool aggregated = false;
    for (size_t i = 0; i < ps.size(); ++i) {
      size_t found = unique;
      for (size_t k = 0; k < unique; ++k) {
        if (ps[k].offset == ps[i].offset) {
          found = k;
          break;
        }
      }
      if (found < unique) {
        ESP_CHECK(config_.compressor->SupportsCompressedAggregation())
            << "option skips decompress-aggregate but " << config_.compressor->name()
            << " cannot aggregate compressed payloads: " << option_.Describe();
        ESP_CHECK_EQ(ps[found].length, ps[i].length);
        config_.compressor->AggregateCompressed(ps[i].payload, &ps[found].payload);
        aggregated = true;
      } else {
        if (i != unique) {
          std::swap(ps[unique], ps[i]);  // compact; the displaced dup is retired
        }
        ++unique;
      }
    }
    if (aggregated || unique != ps.size()) {
      ps.truncate(unique);
      std::sort(ps.begin(), ps.end(),
                [](const RangedPayload& a, const RangedPayload& b) {
                  return a.offset < b.offset;
                });
    }
  }

  void Decompress(const Op& op) {
    for (RankState& s : states_) {
      if (!s.active) {
        continue;
      }
      ESP_CHECK(s.HasPayloads()) << "decompress without payloads: " << option_.Describe();
      if (op.fan_in == 1 && s.payloads.size() > 1) {
        DedupePayloads(&s);
      }
      size_t lo = SIZE_MAX, hi = 0;
      for (size_t i = 0; i < s.payloads.size(); ++i) {
        const RangedPayload& p = s.payloads[i];
        lo = std::min(lo, p.offset);
        hi = std::max(hi, p.offset + p.length);
      }
      // Decompress straight into the state's raw vector (payloads hold the data; raw
      // is dead here, so zero-assign reuses its capacity).
      s.raw.assign(hi - lo, 0.0f);
      for (size_t i = 0; i < s.payloads.size(); ++i) {
        const RangedPayload& p = s.payloads[i];
        auto view = std::span<float>(s.raw).subspan(p.offset - lo, p.length);
        config_.compressor->DecompressAdd(p.payload, view);
      }
      s.offset = lo;
      s.length = hi - lo;
      s.payloads.clear();
    }
  }

  const CompressionOption& option_;
  const ExecutorConfig& config_;
  const uint64_t tensor_id_;
  RankBuffers& buffers_;
  const size_t elements_;
  ExecutorWorkspace::Impl& ws_;
  std::vector<RankState>& states_;
  std::span<CompressedTensor> precompressed_;  // per-rank batched payloads, or empty
  bool first_compression_ = true;  // EF applies until the first compression completes
};

// A tensor's option joins the batched pre-pass when its pipeline opens with Compress
// followed immediately by a compressed allgather/gather — the shapes where EVERY rank
// compresses its full-range gradient at offset 0 under the first-compression error
// feedback key. Broadcast is excluded (only the root compresses; batching would run
// error feedback for ranks that never compress) and alltoall is excluded (per-part
// compressions carry distinct range keys).
bool BatchableOption(const CompressionOption& option) {
  if (option.ops.size() < 2) {
    return false;
  }
  if (option.ops[0].task != ActionTask::kCompress) {
    return false;
  }
  const Op& comm = option.ops[1];
  return comm.task == ActionTask::kComm && comm.compressed &&
         (comm.routine == Routine::kAllgather || comm.routine == Routine::kGather);
}

}  // namespace

void ExecuteOption(const CompressionOption& option, const ExecutorConfig& config,
                   uint64_t tensor_id, RankBuffers& buffers,
                   ExecutorWorkspace* workspace) {
  ExecutorWorkspace& ws =
      workspace != nullptr ? *workspace : ExecutorWorkspace::ThreadDefault();
  OptionExecutor(option, config, tensor_id, buffers, ws.impl()).Run();
}

void ExecuteStrategy(const Strategy& strategy, const ExecutorConfig& config,
                     std::vector<RankBuffers>& gradients, ExecutorWorkspace* workspace) {
  ESP_CHECK_EQ(strategy.options.size(), gradients.size())
      << "strategy has one option per tensor; gradient tensor count must match";
  ExecutorWorkspace& resolved =
      workspace != nullptr ? *workspace : ExecutorWorkspace::ThreadDefault();
  ExecutorWorkspace::Impl& ws = resolved.impl();
  const size_t ranks = config.ranks();

  // Pre-pass: collect the small tensors whose options compress every rank's full
  // gradient up front, stage their EF-corrected gradients into one SoA column, and
  // compress the whole batch in a single CompressBatch call. Error feedback for
  // distinct tensors is independent state, so hoisting it ahead of the option loop is
  // bit-identical to the interleaved order.
  std::vector<size_t>& batched = ws.batch_tensors;
  batched.clear();
  if (config.batch_cutoff_elements > 0 && config.compressor != nullptr) {
    for (size_t t = 0; t < gradients.size(); ++t) {
      if (!BatchableOption(strategy.options[t]) || gradients[t].size() != ranks) {
        continue;
      }
      const size_t n = gradients[t].front().size();
      if (n == 0 || n > config.batch_cutoff_elements) {
        continue;
      }
      bool uniform = true;
      for (const std::vector<float>& b : gradients[t]) {
        uniform = uniform && b.size() == n;
      }
      if (uniform) {
        batched.push_back(t);
      }
    }
  }
  mem::ArenaScope batch_scope(ws.arena);
  std::span<CompressedTensor> payloads;
  if (!batched.empty()) {
    size_t padded_total = 0;
    for (size_t t : batched) {
      padded_total += ranks * mem::BatchedCompressPlan::Padded(gradients[t].front().size());
    }
    ws.batch_plan.Begin(ws.arena, padded_total);
    ws.batch_payloads.clear();
    ws.batch_corrected.clear();
    // Push every output slot BEFORE taking addresses: push() invalidates references
    // when the backing vector grows, and Stage() keeps the pointer until Execute.
    for (size_t i = 0; i < batched.size() * ranks; ++i) {
      ws.batch_payloads.push();
    }
    size_t item_index = 0;
    for (size_t t : batched) {
      for (size_t r = 0; r < ranks; ++r) {
        std::span<float> slot = ws.batch_plan.Stage(gradients[t][r].size(), config.seed,
                                                    &ws.batch_payloads[item_index++]);
        if (config.feedback != nullptr) {
          ESP_CHECK_EQ(config.feedback->size(), ranks);
          (*config.feedback)[r].BuildCorrected(t * 1315423911ULL, gradients[t][r], slot);
        } else {
          std::copy(gradients[t][r].begin(), gradients[t][r].end(), slot.begin());
        }
        ws.batch_corrected.push_back(slot);
      }
    }
    ws.batch_plan.Execute(*config.compressor);
    if (config.feedback != nullptr) {
      for (size_t bi = 0; bi < batched.size(); ++bi) {
        for (size_t r = 0; r < ranks; ++r) {
          const size_t item = bi * ranks + r;
          (*config.feedback)[r].CommitPayload(*config.compressor,
                                              batched[bi] * 1315423911ULL,
                                              ws.batch_corrected[item],
                                              ws.batch_payloads[item]);
        }
      }
    }
    // StableVec storage is contiguous and all pushes are done: spans are stable now.
    payloads = {ws.batch_payloads.begin(), ws.batch_payloads.end()};
  }

  size_t next_batched = 0;
  for (size_t t = 0; t < gradients.size(); ++t) {
    std::span<CompressedTensor> pre = {};
    if (next_batched < batched.size() && batched[next_batched] == t) {
      pre = payloads.subspan(next_batched * ranks, ranks);
      ++next_batched;
    }
    OptionExecutor(strategy.options[t], config, t, gradients[t], ws, pre).Run();
  }
}

}  // namespace espresso

// Experiment harness: evaluates a (model, cluster, GC algorithm, scheme) combination and
// reports the metrics of §5 — aggregate training throughput (images/s or tokens/s),
// iteration time, and the scaling factor T_n / (n * T) of §2.2.
#ifndef SRC_DDL_EXPERIMENT_H_
#define SRC_DDL_EXPERIMENT_H_

#include <string>

#include "src/compress/compressor.h"
#include "src/core/strategy.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_profile.h"

namespace espresso {

struct ThroughputResult {
  double iteration_time_s = 0.0;
  double throughput = 0.0;      // aggregate samples (or tokens) per second
  double scaling_factor = 0.0;  // T_n / (n * T_1)
};

// Throughput of one GPU with no communication.
double SingleGpuThroughput(const ModelProfile& model);

// Evaluates a concrete strategy on a cluster.
ThroughputResult MeasureThroughput(const ModelProfile& model, const ClusterSpec& cluster,
                                   const Compressor& compressor, const Strategy& strategy);

// The schemes compared throughout §5.
enum class Scheme {
  kFp32,
  kBytePSCompress,
  kHiTopKComm,
  kHiPress,
  kEspresso,
  kUpperBound,
};

const char* SchemeName(Scheme scheme);

// Builds the scheme's strategy (running Espresso's selector where applicable) and
// measures it. For kUpperBound the iteration time is the zero-compression-cost bound.
ThroughputResult RunScheme(const ModelProfile& model, const ClusterSpec& cluster,
                           const Compressor& compressor, Scheme scheme);

}  // namespace espresso

#endif  // SRC_DDL_EXPERIMENT_H_

#include "src/ddl/job_config.h"

#include "src/models/model_zoo.h"
#include "src/util/parse_number.h"

namespace espresso {

namespace {

JobConfigResult Fail(const std::string& message) {
  JobConfigResult result;
  result.error = message;
  return result;
}

bool ParseModel(const ConfigFile& file, ModelProfile* model, std::string* error) {
  if (const auto name = file.Get("model", "name")) {
    *model = GetModel(*name);
  } else {
    model->name = file.GetOr("model", "label", "custom");
    model->tensors.clear();
  }
  if (const auto v = file.GetDouble("model", "forward_ms")) {
    model->forward_time_s = *v * 1e-3;
  }
  if (const auto v = file.GetDouble("model", "optimizer_ms")) {
    model->optimizer_time_s = *v * 1e-3;
  }
  if (const auto v = file.GetInt("model", "batch_size")) {
    model->batch_size = static_cast<size_t>(*v);
  }
  if (const auto v = file.Get("model", "unit")) {
    model->throughput_unit = *v;
  }
  // Custom tensor list (backward order): "name = elements, backward_ms".
  const auto tensors = file.Entries("tensors");
  if (!tensors.empty()) {
    model->tensors.clear();
    for (const auto& [name, value] : tensors) {
      const auto fields = SplitFields(value, ",");
      if (fields.size() != 2) {
        *error = "tensor '" + name + "': expected 'elements, backward_ms'";
        return false;
      }
      TensorSpec spec;
      spec.name = name;
      uint64_t elements = 0;
      const NumberParse elements_status = ParseUint64(fields[0], &elements);
      if (elements_status != NumberParse::kOk) {
        *error = "tensor '" + name + "': elements " +
                 NumberParseMessage(elements_status);
        return false;
      }
      double backward_ms = 0.0;
      const NumberParse backward_status = ParseDouble(fields[1], &backward_ms);
      if (backward_status != NumberParse::kOk) {
        *error = "tensor '" + name + "': backward_ms " +
                 NumberParseMessage(backward_status);
        return false;
      }
      spec.elements = static_cast<size_t>(elements);
      spec.backward_time_s = backward_ms * 1e-3;
      if (spec.elements == 0 || spec.backward_time_s <= 0.0) {
        *error = "tensor '" + name + "': elements and backward_ms must be positive";
        return false;
      }
      model->tensors.push_back(std::move(spec));
    }
  }
  if (model->tensors.empty()) {
    *error = "model file needs either [model] name = <zoo model> or a [tensors] section";
    return false;
  }
  return true;
}

bool ParseCompression(const ConfigFile& file, CompressorConfig* config,
                      size_t* max_compress_ops, std::string* error) {
  config->algorithm = file.GetOr("compression", "algorithm", "randomk");
  config->bits = 4;  // QSGD default when the file does not set one
  if (const auto v = file.GetDouble("compression", "ratio")) {
    config->ratio = *v;
  }
  if (const auto v = file.GetInt("compression", "bits")) {
    config->bits = static_cast<int>(*v);
  }
  if (const auto v = file.GetDouble("compression", "threshold")) {
    config->threshold = *v;
  }
  if (const auto v = file.GetInt("compression", "max_compress_ops")) {
    *max_compress_ops = static_cast<size_t>(*v);
  }
  if (config->ratio <= 0.0 || config->ratio > 1.0) {
    *error = "compression ratio must be in (0, 1]";
    return false;
  }
  if (config->bits < 1 || config->bits > 7) {
    *error = "compression bits must be in [1, 7]";
    return false;
  }
  return true;
}

bool ParseCluster(const ConfigFile& file, ClusterSpec* cluster, std::string* error) {
  const std::string testbed = file.GetOr("cluster", "testbed", "nvlink");
  if (testbed == "nvlink") {
    *cluster = NvlinkCluster();
  } else if (testbed == "pcie") {
    *cluster = PcieCluster();
  } else {
    *error = "unknown testbed '" + testbed + "' (expected nvlink or pcie)";
    return false;
  }
  if (const auto v = file.GetInt("cluster", "machines")) {
    cluster->machines = static_cast<size_t>(*v);
  }
  if (const auto v = file.GetInt("cluster", "gpus_per_machine")) {
    cluster->gpus_per_machine = static_cast<size_t>(*v);
  }
  if (const auto v = file.GetDouble("cluster", "inter_gbps")) {
    cluster->inter.bytes_per_second = *v * 1e9 / 8.0;  // Gb/s -> bytes/s
  }
  if (const auto v = file.GetDouble("cluster", "intra_gbps")) {
    cluster->intra.bytes_per_second = *v * 1e9 / 8.0;
  }
  if (const auto v = file.GetDouble("cluster", "inter_latency_us")) {
    cluster->inter.latency_s = *v * 1e-6;
  }
  if (const auto v = file.GetDouble("cluster", "intra_latency_us")) {
    cluster->intra.latency_s = *v * 1e-6;
  }
  if (const auto v = file.GetInt("cluster", "cpu_workers_per_gpu")) {
    cluster->cpu_workers_per_gpu = static_cast<size_t>(*v);
  }
  if (const auto v = file.GetBool("cluster", "host_copy_contends_intra")) {
    cluster->host_copy_contends_intra = *v;
  }
  if (cluster->machines == 0 || cluster->gpus_per_machine == 0) {
    *error = "cluster must have at least one machine and one GPU";
    return false;
  }
  return true;
}

}  // namespace

JobConfigResult LoadJobConfig(const ConfigFile& model_file, const ConfigFile& gc_file,
                              const ConfigFile& system_file) {
  if (!model_file.ok()) {
    return Fail("model config: " + model_file.error());
  }
  if (!gc_file.ok()) {
    return Fail("gc config: " + gc_file.error());
  }
  if (!system_file.ok()) {
    return Fail("system config: " + system_file.error());
  }
  JobConfigResult result;
  std::string error;
  if (!ParseModel(model_file, &result.job.model, &error)) {
    return Fail("model config: " + error);
  }
  if (!ParseCompression(gc_file, &result.job.compressor, &result.job.max_compress_ops,
                        &error)) {
    return Fail("gc config: " + error);
  }
  if (!ParseCluster(system_file, &result.job.cluster, &error)) {
    return Fail("system config: " + error);
  }
  result.ok = true;
  return result;
}

JobConfigResult LoadJobConfigFromFiles(const std::string& model_path,
                                       const std::string& gc_path,
                                       const std::string& system_path) {
  return LoadJobConfig(ConfigFile::Load(model_path), ConfigFile::Load(gc_path),
                       ConfigFile::Load(system_path));
}

}  // namespace espresso

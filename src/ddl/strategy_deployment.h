// StrategyDeployment: the runtime half of the fail-closed deployment pipeline
// (src/analysis/ir_validator.h is the admission half).
//
// Training steps read the live strategy through Acquire(), which returns an immutable
// snapshot: a step that grabbed version N keeps executing version N even while a
// Deploy() lands version N+1 — readers always see a complete old or complete new
// strategy, never a mix. Deploy() runs the full admission pass (digests, linter,
// schedule verifier) on the caller's thread *before* taking the swap lock, so a bad IR
// never displaces the last-known-good deployment and validation cost never blocks
// readers.
//
// Two recovery paths guard the swap itself:
//   * Rollback() reverts to the deployment that was live before the last accepted
//     swap (operator- or policy-initiated);
//   * ReportStepTime() is a regression watchdog: the caller feeds measured step wall
//     times; the first step after a swap that comes in worse than
//     `regression_threshold` x the pre-swap baseline triggers an automatic rollback.
// Every bootstrap/deploy/reject/rollback is appended to an AuditLog (JSONL), counted
// in espresso_deploy_* metrics, and kept as typed DeployEvents that render into
// chrome-trace instants.
#ifndef SRC_DDL_STRATEGY_DEPLOYMENT_H_
#define SRC_DDL_STRATEGY_DEPLOYMENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/strategy_ir.h"
#include "src/ddl/strategy_executor.h"
#include "src/obs/audit_log.h"
#include "src/trace/chrome_trace.h"

namespace espresso {

struct DeploymentConfig {
  // Admission knobs forwarded to ValidateStrategyIR.
  bool force_digest = false;
  bool verify_schedule = true;
  size_t max_compress_ops = 0;
  // Automatic rollback when the first post-swap step exceeds this multiple of the
  // pre-swap baseline step time. <= 0 disables the watchdog.
  double regression_threshold = 2.0;
  // Moving-average window (in steps) of the baseline the watchdog compares against.
  size_t baseline_window = 4;
  // JSONL audit destination; empty keeps the audit in memory only.
  std::string audit_log_path;
};

// Immutable snapshot of one deployed strategy. Shared out by Acquire(); destroyed when
// the last in-flight step drops its reference.
struct DeployedStrategy {
  Strategy strategy;
  uint64_t version = 0;      // monotonic across swaps (rollbacks included)
  uint64_t fingerprint = 0;  // StrategyFingerprint(strategy)
  double fs_score = 0.0;     // selector's F(S) claim for this strategy
  std::string origin;        // who published it ("selector", "online-reselector", ...)
};

struct DeployResult {
  bool accepted = false;
  // The config digests mismatched but force_digest admitted the IR anyway.
  bool forced_digest = false;
  // Version now live: the new deployment's on accept, the untouched one's on reject.
  uint64_t version = 0;
  // One-line cause on rejection (first error diagnostic), empty on accept.
  std::string reason;
  DiagnosticReport report;
};

// One entry of the deployment history (the typed mirror of the audit log).
struct DeployEvent {
  uint64_t seq = 0;
  std::string event;       // "bootstrap" | "deploy" | "forced-deploy" | "reject" | "rollback"
  uint64_t version = 0;    // version live after the event
  uint64_t iteration = 0;  // publishing iteration from the IR provenance (0 if unknown)
  std::string origin;
  double fs_score = 0.0;
  std::string detail;      // rejection reason / rollback cause, empty otherwise
};

class StrategyDeployment {
 public:
  // The references must outlive the deployment. `compressor` must be the one built
  // from `compressor_config` (digests are recomputed from the config).
  StrategyDeployment(const ModelProfile& model, const ClusterSpec& cluster,
                     const Compressor& compressor,
                     const CompressorConfig& compressor_config,
                     DeploymentConfig config = {});

  StrategyDeployment(const StrategyDeployment&) = delete;
  StrategyDeployment& operator=(const StrategyDeployment&) = delete;

  // Installs the initial strategy without the admission gates: the bootstrap comes
  // from an in-process selection, already linted/verified by construction. Resets any
  // prior history (version keeps counting up).
  void Bootstrap(const Strategy& strategy, std::string origin, double fs_score);

  // The fail-closed pipeline: admission pass, then atomic swap. On rejection the live
  // deployment is untouched and the result says why.
  DeployResult Deploy(const StrategyIR& ir);

  // Current deployment snapshot (nullptr before Bootstrap). Cheap: one lock + one
  // shared_ptr copy; the snapshot stays valid for as long as the caller holds it.
  std::shared_ptr<const DeployedStrategy> Acquire() const;

  // Reverts to the deployment live before the last accepted swap. Returns false when
  // there is nothing to roll back to (no swap yet, or already rolled back).
  bool Rollback(const std::string& reason);

  // Regression watchdog: feed each step's measured wall time. Returns true when this
  // report triggered an automatic rollback (the regressing sample is discarded; the
  // baseline keeps the pre-swap history).
  bool ReportStepTime(double seconds);

  // Version currently live (0 before Bootstrap).
  uint64_t version() const;

  // Typed deployment history, in order (copy, thread-safe).
  std::vector<DeployEvent> events() const;

  obs::AuditLog& audit_log() { return audit_; }
  const DeploymentConfig& config() const { return config_; }

 private:
  void SwapLocked(Strategy strategy, std::string origin, double fs_score,
                  bool keep_previous);
  bool RollbackLocked(const std::string& reason);
  void RecordEventLocked(const std::string& event, uint64_t iteration,
                         const std::string& origin, double fs_score,
                         const std::string& detail);

  const ModelProfile& model_;
  const ClusterSpec& cluster_;
  const Compressor& compressor_;
  const CompressorConfig& compressor_config_;
  DeploymentConfig config_;

  mutable std::mutex mu_;
  std::shared_ptr<const DeployedStrategy> current_;
  std::shared_ptr<const DeployedStrategy> previous_;  // last-known-good before the swap
  uint64_t version_ = 0;
  // Watchdog state: moving-average baseline of pre-swap step times and whether the
  // next reported step is the first after a swap.
  double baseline_step_s_ = 0.0;
  size_t baseline_samples_ = 0;
  bool pending_regression_check_ = false;
  std::vector<DeployEvent> events_;
  obs::AuditLog audit_;
};

// Executes one training step against the deployment's live strategy, acquiring
// exactly ONE snapshot for the whole step (every tensor of the step runs the same
// strategy version even if a swap lands mid-step). Returns the snapshot used, or
// nullptr (without touching the gradients) when nothing is deployed.
std::shared_ptr<const DeployedStrategy> ExecuteDeployedStrategy(
    const StrategyDeployment& deployment, const ExecutorConfig& config,
    std::vector<RankBuffers>& gradients, ExecutorWorkspace* workspace = nullptr);

// Renders a deployment history as chrome-trace instant events, placing each event at
// `iteration * seconds_per_iteration` on the trace clock.
std::vector<TraceInstant> DeployTraceInstants(const std::vector<DeployEvent>& events,
                                              double seconds_per_iteration);

}  // namespace espresso

#endif  // SRC_DDL_STRATEGY_DEPLOYMENT_H_

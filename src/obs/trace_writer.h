// Extended chrome-trace / Perfetto writer: everything WriteChromeTrace emits, plus
//   * flow arrows linking each tensor's pipeline ops (compress -> send -> decompress)
//     across resource tracks, so a chain reads as one causal sequence in Perfetto;
//   * counter tracks derived from the simulated schedule: consumed link bandwidth
//     (bytes/s, per link) and CPU-pool occupancy (concurrent CPU compression ops);
//   * an optional second process carrying real wall-clock ScopedSpan events from a
//     TraceCollector (pid 1), next to the simulated timeline (pid 0).
//
// Open the output in ui.perfetto.dev or chrome://tracing.
#ifndef SRC_OBS_TRACE_WRITER_H_
#define SRC_OBS_TRACE_WRITER_H_

#include <ostream>
#include <vector>

#include "src/core/timeline.h"
#include "src/costmodel/calibration.h"
#include "src/obs/span.h"
#include "src/trace/chrome_trace.h"

namespace espresso::obs {

struct ExtendedTraceOptions {
  bool flow_events = true;
  bool counter_tracks = true;
};

// `cluster` prices the link-bandwidth counter tracks; `wall` (optional) appends the
// collector's wall-clock spans as a second process. The simulated part of the
// output is deterministic for a given (model, entries, instants).
void WriteExtendedChromeTrace(std::ostream& os, const ModelProfile& model,
                              const ClusterSpec& cluster,
                              const std::vector<TimelineEntry>& entries,
                              const std::vector<TraceInstant>& instants = {},
                              const TraceCollector* wall = nullptr,
                              const ExtendedTraceOptions& options = {});

// Wall-clock spans only (no simulated timeline) — the benches' `--trace-out`.
void WriteSpanTrace(std::ostream& os, const TraceCollector& wall);

}  // namespace espresso::obs

#endif  // SRC_OBS_TRACE_WRITER_H_

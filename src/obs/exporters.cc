#include "src/obs/exporters.h"

#include <cmath>
#include <string>

#include "src/util/json_writer.h"

namespace espresso::obs {

namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::string PromDouble(double d) {
  if (std::isnan(d)) {
    return "NaN";
  }
  if (std::isinf(d)) {
    return d > 0 ? "+Inf" : "-Inf";
  }
  return FormatDouble(d);
}

}  // namespace

void WritePrometheus(const MetricsSnapshot& snapshot, std::ostream& os) {
  for (const MetricValue& m : snapshot.metrics) {
    if (!m.help.empty()) {
      os << "# HELP " << m.name << " " << m.help << "\n";
    }
    os << "# TYPE " << m.name << " " << KindName(m.kind) << "\n";
    switch (m.kind) {
      case MetricKind::kCounter:
        os << m.name << " " << m.count << "\n";
        break;
      case MetricKind::kGauge:
        os << m.name << " " << PromDouble(m.value) << "\n";
        break;
      case MetricKind::kHistogram: {
        uint64_t cumulative = 0;
        for (size_t b = 0; b < m.bounds.size(); ++b) {
          cumulative += m.bucket_counts[b];
          os << m.name << "_bucket{le=\"" << PromDouble(m.bounds[b]) << "\"} "
             << cumulative << "\n";
        }
        cumulative += m.bucket_counts.back();
        os << m.name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
        os << m.name << "_sum " << PromDouble(m.value) << "\n";
        os << m.name << "_count " << m.count << "\n";
        break;
      }
    }
  }
}

void WriteMetricsJson(const MetricsSnapshot& snapshot, std::ostream& os) {
  JsonWriter json(os);
  json.BeginObject();
  json.Key("metrics");
  json.BeginArray();
  for (const MetricValue& m : snapshot.metrics) {
    json.BeginObject();
    json.Field("name", m.name);
    json.Field("kind", KindName(m.kind));
    if (!m.help.empty()) {
      json.Field("help", m.help);
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        json.Field("value", m.count);
        break;
      case MetricKind::kGauge:
        json.Field("value", m.value);
        break;
      case MetricKind::kHistogram: {
        json.Field("count", m.count);
        json.Field("sum", m.value);
        json.Key("bounds");
        json.BeginArray();
        for (const double b : m.bounds) {
          json.Value(b);
        }
        json.EndArray();
        json.Key("counts");
        json.BeginArray();
        for (const uint64_t c : m.bucket_counts) {
          json.Value(c);
        }
        json.EndArray();
        break;
      }
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  os << "\n";
}

}  // namespace espresso::obs

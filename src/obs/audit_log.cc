#include "src/obs/audit_log.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include "src/obs/metrics.h"

namespace espresso::obs {

namespace {

Counter WriteFailuresCounter() {
  static const Counter counter = GlobalMetrics().RegisterCounter(
      "espresso_audit_write_failures_total",
      "Audit-log lines that failed to reach the attached file (disk full, I/O error)");
  return counter;
}

}  // namespace

AuditLog::AuditLog(size_t retention) : retention_(retention) {}

bool AuditLog::Open(const std::string& path, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  file_.open(path, std::ios::app);
  if (!file_) {
    if (error != nullptr) {
      *error = "cannot open audit log " + path;
    }
    return false;
  }
  path_ = path;
  return true;
}

uint64_t AuditLog::Append(std::string_view event,
                          const std::function<void(JsonWriter&)>& fields) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t seq = next_seq_++;
  std::ostringstream line;
  {
    JsonWriter json(line);
    json.BeginObject();
    json.Field("seq", seq);
    json.Field("event", event);
    if (fields) {
      fields(json);
    }
    json.EndObject();
  }
  const std::string text = line.str();
  // Bounded retention: the ring holds the last `retention_` lines; the complete
  // history is the attached file's job. pop_front keeps this O(1) per append.
  entries_.push_back(text);
  while (entries_.size() > retention_) {
    entries_.pop_front();
  }
  if (file_.is_open()) {
    // One line per event, flushed immediately: a crash can tear at most the line in
    // flight, never an earlier record. The stream is checked after the flush — an
    // audit record silently lost to a full disk is a hole in a fail-closed pipeline.
    errno = 0;
    file_ << text << '\n' << std::flush;
    if (!file_) {
      ++write_failures_;
      GlobalMetrics().Add(WriteFailuresCounter());
      if (write_error_.empty()) {
        const int saved_errno = errno;
        write_error_ = "audit write to " + path_ + " failed at seq " +
                       std::to_string(seq) +
                       (saved_errno != 0
                            ? " (errno " + std::to_string(saved_errno) + ")"
                            : "");
      }
      // Clear the stream error so later appends still try (and keep counting):
      // a transient ENOSPC should not end the audit trail forever.
      file_.clear();
    }
  }
  return seq;
}

std::vector<std::string> AuditLog::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

uint64_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

bool AuditLog::write_failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_failures_ > 0;
}

uint64_t AuditLog::write_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_failures_;
}

std::string AuditLog::last_write_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_error_;
}

}  // namespace espresso::obs

#include "src/obs/audit_log.h"

#include <sstream>

namespace espresso::obs {

bool AuditLog::Open(const std::string& path, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  file_.open(path, std::ios::app);
  if (!file_) {
    if (error != nullptr) {
      *error = "cannot open audit log " + path;
    }
    return false;
  }
  path_ = path;
  return true;
}

uint64_t AuditLog::Append(std::string_view event,
                          const std::function<void(JsonWriter&)>& fields) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t seq = next_seq_++;
  std::ostringstream line;
  {
    JsonWriter json(line);
    json.BeginObject();
    json.Field("seq", seq);
    json.Field("event", event);
    if (fields) {
      fields(json);
    }
    json.EndObject();
  }
  entries_.push_back(line.str());
  if (file_.is_open()) {
    // One line per event, flushed immediately: a crash can tear at most the line in
    // flight, never an earlier record.
    file_ << entries_.back() << '\n' << std::flush;
  }
  return seq;
}

std::vector<std::string> AuditLog::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

uint64_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

}  // namespace espresso::obs

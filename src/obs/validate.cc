#include "src/obs/validate.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace espresso::obs {

namespace {

// Recursive-descent JSON syntax scanner. Tracks the element count of the first
// array appearing under a "metrics" or "traceEvents" key.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  ValidationResult Run() {
    ValidationResult result;
    SkipSpace();
    if (!ParseValue(false)) {
      result.error = error_.empty() ? Fail("invalid JSON value") : error_;
      return result;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      result.error = Fail("trailing bytes after JSON document");
      return result;
    }
    result.ok = true;
    result.samples = samples_;
    return result;
  }

 private:
  std::string Fail(const std::string& what) {
    return what + " at byte " + std::to_string(pos_);
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Error(const std::string& what) {
    if (error_.empty()) {
      error_ = Fail(what);
    }
    return false;
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Error("invalid literal");
    }
    pos_ += lit.size();
    return true;
  }

  bool ParseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return Error("truncated escape");
        }
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Error("invalid \\u escape");
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return Error("invalid escape");
        }
        ++pos_;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      } else {
        ++pos_;
      }
    }
    return Error("unterminated string");
  }

  bool ParseNumber() {
    const size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    size_t digits = 0;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      return Error("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++digits;
      }
      if (digits == 0) {
        return Error("invalid fraction");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      digits = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++digits;
      }
      if (digits == 0) {
        return Error("invalid exponent");
      }
    }
    return pos_ > begin;
  }

  bool ParseArray(bool counted) {
    ++pos_;  // consume '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!ParseValue(false)) {
        return false;
      }
      if (counted) {
        ++samples_;
      }
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Error("unterminated array");
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      if (text_[pos_] != ',') {
        return Error("expected ',' or ']'");
      }
      ++pos_;
      SkipSpace();
    }
  }

  bool ParseObject() {
    ++pos_;  // consume '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      const size_t key_begin = pos_;
      if (!ParseString()) {
        return false;
      }
      const std::string_view key = text_.substr(key_begin, pos_ - key_begin);
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':'");
      }
      ++pos_;
      SkipSpace();
      const bool count_elements =
          !counted_array_seen_ &&
          (key == "\"metrics\"" || key == "\"traceEvents\"");
      if (count_elements) {
        counted_array_seen_ = true;
      }
      if (!ParseValue(count_elements)) {
        return false;
      }
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Error("unterminated object");
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      if (text_[pos_] != ',') {
        return Error("expected ',' or '}'");
      }
      ++pos_;
      SkipSpace();
    }
  }

  bool ParseValue(bool counted_array) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of document");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray(counted_array);
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t samples_ = 0;
  bool counted_array_seen_ = false;
  std::string error_;
};

bool ValidPrometheusValue(std::string_view token) {
  if (token.empty()) {
    return false;
  }
  if (token == "NaN" || token == "+Inf" || token == "-Inf" || token == "Inf") {
    return true;
  }
  const std::string copy(token);
  char* end = nullptr;
  std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

ValidationResult ValidateJsonDocument(std::string_view text) {
  return JsonScanner(text).Run();
}

ValidationResult ValidatePrometheusText(std::string_view text) {
  ValidationResult result;
  size_t line_number = 0;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t nl = text.find('\n', begin);
    const std::string_view line =
        text.substr(begin, nl == std::string_view::npos ? text.size() - begin
                                                        : nl - begin);
    begin = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    // `name[{labels}] value` — split on the last space.
    const size_t value_at = line.rfind(' ');
    if (value_at == std::string_view::npos || value_at == 0) {
      result.error = "line " + std::to_string(line_number) + ": no value";
      return result;
    }
    const std::string_view series = line.substr(0, value_at);
    const std::string_view value = line.substr(value_at + 1);
    const char first = series[0];
    if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_')) {
      result.error = "line " + std::to_string(line_number) + ": bad metric name";
      return result;
    }
    const size_t brace = series.find('{');
    if (brace != std::string_view::npos && series.back() != '}') {
      result.error = "line " + std::to_string(line_number) + ": unclosed labels";
      return result;
    }
    if (!ValidPrometheusValue(value)) {
      result.error = "line " + std::to_string(line_number) + ": bad sample value";
      return result;
    }
    ++result.samples;
  }
  if (result.samples == 0) {
    result.error = "no metric samples";
    return result;
  }
  result.ok = true;
  return result;
}

ValidationResult ValidateMetricsFile(const std::string& path) {
  ValidationResult result;
  std::ifstream in(path);
  if (!in) {
    result.error = "cannot read " + path;
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  size_t first = 0;
  while (first < text.size() && std::isspace(static_cast<unsigned char>(text[first]))) {
    ++first;
  }
  if (first == text.size()) {
    result.error = path + ": empty file";
    return result;
  }
  if (text[first] == '{') {
    result = ValidateJsonDocument(text);
    if (result.ok && result.samples == 0) {
      result.ok = false;
      result.error = "no metrics or traceEvents entries";
    }
  } else {
    result = ValidatePrometheusText(text);
  }
  if (!result.ok && result.error.find(path) == std::string::npos) {
    result.error = path + ": " + result.error;
  }
  return result;
}

}  // namespace espresso::obs

// Snapshot exporters: Prometheus text exposition format (v0.0.4) and a byte-stable
// JSON dump. Both render a given snapshot deterministically — metrics are
// name-sorted by Scrape() and every double is formatted with shortest-round-trip
// std::to_chars — so identical snapshots serialize to identical bytes.
#ifndef SRC_OBS_EXPORTERS_H_
#define SRC_OBS_EXPORTERS_H_

#include <ostream>

#include "src/obs/metrics.h"

namespace espresso::obs {

// Prometheus text format: # HELP / # TYPE headers, histogram _bucket{le=...} /
// _sum / _count series.
void WritePrometheus(const MetricsSnapshot& snapshot, std::ostream& os);

// {"metrics":[{"name":...,"kind":...,"help":...,...}]} — histograms carry
// "bounds" and "counts" arrays (counts has one extra +Inf entry).
void WriteMetricsJson(const MetricsSnapshot& snapshot, std::ostream& os);

}  // namespace espresso::obs

#endif  // SRC_OBS_EXPORTERS_H_

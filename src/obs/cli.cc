#include "src/obs/cli.h"

#include <fstream>
#include <string_view>

#include "src/obs/exporters.h"
#include "src/obs/span.h"

namespace espresso::obs {

namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

// Matches `--flag=value` and `--flag value`; on match stores the value and
// advances *index past the consumed arguments.
ObsCliOptions::Parse MatchFlag(std::string_view flag, int argc, char* const* argv,
                               int* index, std::vector<std::string>* out,
                               std::string* error) {
  const std::string_view arg = argv[*index];
  if (arg.substr(0, flag.size()) != flag) {
    return ObsCliOptions::Parse::kNotMine;
  }
  if (arg.size() > flag.size() && arg[flag.size()] == '=') {
    const std::string_view value = arg.substr(flag.size() + 1);
    if (value.empty()) {
      *error = std::string(flag) + " requires a file path";
      return ObsCliOptions::Parse::kError;
    }
    out->emplace_back(value);
    return ObsCliOptions::Parse::kConsumed;
  }
  if (arg.size() == flag.size()) {
    if (*index + 1 >= argc) {
      *error = std::string(flag) + " requires a file path";
      return ObsCliOptions::Parse::kError;
    }
    ++*index;
    out->emplace_back(argv[*index]);
    return ObsCliOptions::Parse::kConsumed;
  }
  return ObsCliOptions::Parse::kNotMine;
}

}  // namespace

ObsCliOptions::Parse ObsCliOptions::ParseArg(int argc, char* const* argv, int* index,
                                             ObsCliOptions* options,
                                             std::string* error) {
  Parse result =
      MatchFlag("--metrics-out", argc, argv, index, &options->metrics_out, error);
  if (result != Parse::kNotMine) {
    return result;
  }
  result = MatchFlag("--trace-out", argc, argv, index, &options->trace_out, error);
  return result;
}

void ObsCliOptions::ApplyTraceEnable() const {
  if (WantsTrace()) {
    GlobalTrace().set_enabled(true);
  }
}

bool ObsCliOptions::WriteMetricsFiles(MetricsRegistry& registry,
                                      std::ostream& err) const {
  if (metrics_out.empty()) {
    return true;
  }
  const MetricsSnapshot snapshot = registry.Scrape();
  bool ok = true;
  for (const std::string& path : metrics_out) {
    std::ofstream out(path);
    if (!out) {
      err << "error: cannot write metrics file " << path << "\n";
      ok = false;
      continue;
    }
    if (EndsWith(path, ".json")) {
      WriteMetricsJson(snapshot, out);
    } else {
      WritePrometheus(snapshot, out);
    }
    if (!out.good()) {
      err << "error: failed writing metrics file " << path << "\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace espresso::obs

#include "src/obs/trace_writer.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "src/util/json_writer.h"

namespace espresso::obs {

namespace {

// Stable thread ids per simulated resource track; faults get their own track.
const std::map<std::string, int>& ResourceTids() {
  static const std::map<std::string, int> tids = {
      {"gpu", 0}, {"cpu", 1}, {"intra", 2}, {"inter", 3}, {"faults", 4}};
  return tids;
}

constexpr int kSimPid = 0;
constexpr int kWallPid = 1;
// Wall-clock thread ordinals are offset so they never collide with resource tids.
constexpr int kWallTidBase = 100;

void WriteThreadName(JsonWriter& w, int pid, int tid, const std::string& name) {
  w.BeginObject();
  w.Field("name", "thread_name");
  w.Field("ph", "M");
  w.Field("pid", pid);
  w.Field("tid", tid);
  w.Key("args");
  w.BeginObject();
  w.Field("name", name);
  w.EndObject();
  w.EndObject();
}

void WriteProcessName(JsonWriter& w, int pid, const std::string& name) {
  w.BeginObject();
  w.Field("name", "process_name");
  w.Field("ph", "M");
  w.Field("pid", pid);
  w.Key("args");
  w.BeginObject();
  w.Field("name", name);
  w.EndObject();
  w.EndObject();
}

std::string TensorName(const ModelProfile& model, size_t tensor) {
  return tensor < model.tensors.size() ? model.tensors[tensor].name
                                       : "T" + std::to_string(tensor);
}

int EntryTid(const TimelineEntry& entry) {
  const auto& tids = ResourceTids();
  const auto it = tids.find(entry.resource);
  return it == tids.end() ? 9 : it->second;
}

// One chrome flow event ("s" start / "t" step / "f" finish). The event binds to
// the slice enclosing `ts` on (pid, tid), so timestamps are slice midpoints.
void WriteFlowEvent(JsonWriter& w, const char* phase, uint64_t id, double ts_us,
                    int tid) {
  w.BeginObject();
  w.Field("name", "pipeline");
  w.Field("cat", "flow");
  w.Field("ph", phase);
  w.Field("id", id);
  w.Field("ts", ts_us);
  w.Field("pid", kSimPid);
  w.Field("tid", tid);
  if (phase[0] == 'f') {
    w.Field("bp", "e");  // bind to the enclosing slice, not the next one
  }
  w.EndObject();
}

void WriteCounterEvent(JsonWriter& w, const std::string& track, double ts_us,
                       double value) {
  w.BeginObject();
  w.Field("name", track);
  w.Field("ph", "C");
  w.Field("ts", ts_us);
  w.Field("pid", kSimPid);
  w.Key("args");
  w.BeginObject();
  w.Field("value", value);
  w.EndObject();
  w.EndObject();
}

// Emits a step-function counter track from per-entry [start, end) intervals:
// value(t) = (number of active intervals) * unit.
void WriteOccupancyTrack(JsonWriter& w, const std::string& track, double unit,
                         const std::vector<std::pair<double, double>>& intervals) {
  if (intervals.empty()) {
    return;
  }
  std::vector<std::pair<double, double>> deltas;  // (time, +unit/-unit)
  deltas.reserve(intervals.size() * 2);
  for (const auto& [start, end] : intervals) {
    deltas.emplace_back(start, unit);
    deltas.emplace_back(end, -unit);
  }
  std::sort(deltas.begin(), deltas.end());
  double value = 0.0;
  for (size_t i = 0; i < deltas.size();) {
    const double at = deltas[i].first;
    while (i < deltas.size() && deltas[i].first == at) {
      value += deltas[i].second;
      ++i;
    }
    // Clamp float cancellation noise so the track returns to exactly zero.
    if (value < unit * 0.5) {
      value = 0.0;
    }
    WriteCounterEvent(w, track, at * 1e6, value);
  }
}

void WriteWallSpans(JsonWriter& w, const TraceCollector& wall) {
  const std::vector<TraceCollector::SpanEvent> spans = wall.spans();
  std::set<uint32_t> threads;
  for (const auto& span : spans) {
    threads.insert(span.thread);
  }
  WriteProcessName(w, kWallPid, "wall clock");
  for (const uint32_t thread : threads) {
    WriteThreadName(w, kWallPid, kWallTidBase + static_cast<int>(thread),
                    "wall:" + std::to_string(thread));
  }
  for (const auto& span : spans) {
    w.BeginObject();
    w.Field("name", span.name);
    w.Field("cat", span.category);
    w.Field("ph", "X");
    w.Field("ts", span.start_s * 1e6);
    w.Field("dur", (span.end_s - span.start_s) * 1e6);
    w.Field("pid", kWallPid);
    w.Field("tid", kWallTidBase + static_cast<int>(span.thread));
    w.EndObject();
  }
}

}  // namespace

void WriteExtendedChromeTrace(std::ostream& os, const ModelProfile& model,
                              const ClusterSpec& cluster,
                              const std::vector<TimelineEntry>& entries,
                              const std::vector<TraceInstant>& instants,
                              const TraceCollector* wall,
                              const ExtendedTraceOptions& options) {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();

  WriteProcessName(w, kSimPid, "simulated timeline");
  for (const auto& [name, tid] : ResourceTids()) {
    WriteThreadName(w, kSimPid, tid, name);
  }

  for (const auto& e : entries) {
    w.BeginObject();
    w.Field("name", e.kind + " " + TensorName(model, e.tensor));
    w.Field("cat", e.kind);
    w.Field("ph", "X");
    w.Field("ts", e.start * 1e6);
    w.Field("dur", (e.end - e.start) * 1e6);
    w.Field("pid", kSimPid);
    w.Field("tid", EntryTid(e));
    w.Key("args");
    w.BeginObject();
    w.Field("tensor", TensorName(model, e.tensor));
    w.EndObject();
    w.EndObject();
  }

  if (options.flow_events) {
    // Group each tensor's ops in schedule order; a chain of >= 2 ops gets one flow
    // (s at the first op, t through the middle, f at the last) so Perfetto draws
    // arrows along compress -> send -> decompress across the resource tracks.
    std::map<size_t, std::vector<const TimelineEntry*>> chains;
    for (const auto& e : entries) {
      chains[e.tensor].push_back(&e);
    }
    for (auto& [tensor, chain] : chains) {
      std::sort(chain.begin(), chain.end(),
                [](const TimelineEntry* a, const TimelineEntry* b) {
                  return std::tie(a->start, a->end) < std::tie(b->start, b->end);
                });
      if (chain.size() < 2) {
        continue;
      }
      const uint64_t flow_id = tensor + 1;  // non-zero ids render more reliably
      for (size_t i = 0; i < chain.size(); ++i) {
        const TimelineEntry& e = *chain[i];
        const double mid_us = (e.start + e.end) * 0.5 * 1e6;
        const char* phase = i == 0 ? "s" : (i + 1 == chain.size() ? "f" : "t");
        WriteFlowEvent(w, phase, flow_id, mid_us, EntryTid(e));
      }
    }
  }

  if (options.counter_tracks) {
    std::vector<std::pair<double, double>> cpu, intra, inter;
    for (const auto& e : entries) {
      if (e.resource == "cpu") {
        cpu.emplace_back(e.start, e.end);
      } else if (e.resource == "intra") {
        intra.emplace_back(e.start, e.end);
      } else if (e.resource == "inter") {
        inter.emplace_back(e.start, e.end);
      }
    }
    WriteOccupancyTrack(w, "cpu_pool_occupancy", 1.0, cpu);
    WriteOccupancyTrack(w, "intra_link_bandwidth_bytes_per_s",
                        cluster.intra.bytes_per_second, intra);
    WriteOccupancyTrack(w, "inter_link_bandwidth_bytes_per_s",
                        cluster.inter.bytes_per_second, inter);
  }

  for (const auto& instant : instants) {
    w.BeginObject();
    w.Field("name", instant.name);
    w.Field("cat", "fault");
    w.Field("ph", "i");
    w.Field("s", "t");  // thread-scoped instant
    w.Field("ts", instant.time_s * 1e6);
    w.Field("pid", kSimPid);
    w.Field("tid", ResourceTids().at("faults"));
    if (!instant.detail.empty()) {
      w.Key("args");
      w.BeginObject();
      w.Field("detail", instant.detail);
      w.EndObject();
    }
    w.EndObject();
  }

  if (wall != nullptr) {
    WriteWallSpans(w, *wall);
  }

  w.EndArray();
  w.Field("displayTimeUnit", "ms");
  w.EndObject();
  os << "\n";
}

void WriteSpanTrace(std::ostream& os, const TraceCollector& wall) {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  WriteWallSpans(w, wall);
  w.EndArray();
  w.Field("displayTimeUnit", "ms");
  w.EndObject();
  os << "\n";
}

}  // namespace espresso::obs

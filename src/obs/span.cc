#include "src/obs/span.h"

#include <algorithm>
#include <tuple>
#include <utility>

namespace espresso::obs {

namespace {

std::atomic<uint32_t> g_next_thread_ordinal{0};

thread_local int g_span_depth = 0;

}  // namespace

TraceCollector::TraceCollector() : epoch_(std::chrono::steady_clock::now()) {}

double TraceCollector::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void TraceCollector::Record(SpanEvent event) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(event));
}

std::vector<TraceCollector::SpanEvent> TraceCollector::spans() const {
  std::vector<SpanEvent> copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    copy = spans_;
  }
  std::sort(copy.begin(), copy.end(), [](const SpanEvent& a, const SpanEvent& b) {
    return std::tie(a.start_s, a.end_s, a.name) < std::tie(b.start_s, b.end_s, b.name);
  });
  return copy;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

uint32_t TraceCollector::ThreadOrdinal() {
  thread_local const uint32_t ordinal =
      g_next_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

TraceCollector& GlobalTrace() {
  static TraceCollector* collector = new TraceCollector();  // never destroyed
  return *collector;
}

ScopedSpan::ScopedSpan(std::string name, std::string category, Histogram metric,
                       MetricsRegistry* metrics, TraceCollector* trace)
    : name_(std::move(name)),
      category_(std::move(category)),
      metric_(metric),
      metrics_(metrics),
      trace_(trace) {
  ++g_span_depth;
  // Sample the trace clock only when the span will actually be recorded; the
  // steady_clock read below serves the metric either way.
  tracing_ = trace_ != nullptr && trace_->enabled();
  if (tracing_) {
    trace_start_s_ = trace_->NowSeconds();
  }
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  const double elapsed = ElapsedSeconds();
  --g_span_depth;
  if (metrics_ != nullptr && metric_.valid()) {
    metrics_->Observe(metric_, elapsed);
  }
  if (tracing_) {
    TraceCollector::SpanEvent event;
    event.name = std::move(name_);
    event.category = std::move(category_);
    event.thread = TraceCollector::ThreadOrdinal();
    event.start_s = trace_start_s_;
    event.end_s = trace_start_s_ + elapsed;
    trace_->Record(std::move(event));
  }
}

double ScopedSpan::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

int ScopedSpan::CurrentDepth() { return g_span_depth; }

}  // namespace espresso::obs

// Output validation for the observability surfaces: a minimal JSON well-formedness
// checker plus Prometheus text-format line validation. Used by the `metrics_check`
// CI gate — exit non-zero on malformed or empty metric/trace files — and by tests.
// The repo deliberately ships no JSON DOM; this is a syntax scanner, not a parser.
#ifndef SRC_OBS_VALIDATE_H_
#define SRC_OBS_VALIDATE_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace espresso::obs {

struct ValidationResult {
  bool ok = false;
  std::string error;   // empty when ok
  size_t samples = 0;  // metric samples / trace events / array elements found
};

// Full-document JSON syntax check. `samples` counts the elements of the first
// "metrics" or "traceEvents" array (0 if neither key exists).
ValidationResult ValidateJsonDocument(std::string_view text);

// Prometheus text exposition format: every non-comment, non-blank line must be
// `name[{labels}] value`; `samples` counts sample lines and must be > 0.
ValidationResult ValidatePrometheusText(std::string_view text);

// Dispatches on the first non-space byte ('{' -> JSON, else Prometheus), and
// additionally fails empty files and JSON documents with zero samples.
ValidationResult ValidateMetricsFile(const std::string& path);

}  // namespace espresso::obs

#endif  // SRC_OBS_VALIDATE_H_

// Shared `--metrics-out=<file>` / `--trace-out=<file>` flag handling for
// espresso_cli, the benches, and the examples. Both flags repeat; metrics files
// ending in ".json" get the byte-stable JSON dump, anything else gets Prometheus
// text. Requesting a trace enables the global wall-clock span collector.
#ifndef SRC_OBS_CLI_H_
#define SRC_OBS_CLI_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace espresso::obs {

struct ObsCliOptions {
  std::vector<std::string> metrics_out;
  std::vector<std::string> trace_out;

  enum class Parse { kNotMine, kConsumed, kError };

  // Examines argv[*index]; consumes it (and possibly the following value argument,
  // advancing *index) when it is an observability flag. On kError, `error` says why.
  static Parse ParseArg(int argc, char* const* argv, int* index, ObsCliOptions* options,
                        std::string* error);

  bool WantsTrace() const { return !trace_out.empty(); }

  // Call once flags are parsed: turns on the global span collector when a trace
  // was requested (so the run's ScopedSpans are captured from the start).
  void ApplyTraceEnable() const;

  // Scrapes `registry` and writes every --metrics-out file. Returns false (with a
  // message on `err`) if any file cannot be written.
  bool WriteMetricsFiles(MetricsRegistry& registry, std::ostream& err) const;
};

}  // namespace espresso::obs

#endif  // SRC_OBS_CLI_H_

// AuditLog: a thread-safe, append-only JSONL event stream.
//
// The deployment pipeline (src/ddl/strategy_deployment.h) records every strategy
// deploy, rejection, and rollback here — and the strategy-selection service records
// every served and rejected request — so an operator can reconstruct *why* the
// executors are running the strategy they are running: the metrics say how often,
// the audit log says what and when. One event per line, flushed as written, so a
// crashed process leaves at worst a complete prefix (a torn final line is ignorable
// by any JSONL reader). The log is generic: callers supply the event fields through
// a JsonWriter callback; AuditLog owns the envelope (monotonic "seq", "event").
//
// Long-lived-process guarantees:
//   * In-memory retention is BOUNDED: entries() is a ring of the most recent
//     `retention` lines; the complete history lives only in the attached file.
//     (Pre-fix, every line was retained forever — a slow leak in a server that
//     audits every request.)
//   * Write failures are DETECTED: the stream state is checked after every flush;
//     a failed write bumps the espresso_audit_write_failures_total counter and
//     latches a sticky error (write_failed()/last_write_error()) that operators
//     can alert on. Appends keep going — a full disk degrades the audit trail, it
//     must not silently drop records with no trace, and must not take the serving
//     path down with it.
#ifndef SRC_OBS_AUDIT_LOG_H_
#define SRC_OBS_AUDIT_LOG_H_

#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/json_writer.h"

namespace espresso::obs {

// Default bound on the in-memory ring. Big enough that tests and operator tooling
// see a useful window, small enough that a server auditing millions of requests
// holds a constant few hundred KB.
inline constexpr size_t kDefaultAuditRetention = 1024;

class AuditLog {
 public:
  // A default-constructed log is in-memory only; events accumulate in entries(),
  // keeping at most `retention` of the most recent lines (0 means keep none).
  explicit AuditLog(size_t retention = kDefaultAuditRetention);

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  // Attaches a JSONL file, created if absent, appended to if present (a restarted
  // process continues the same audit trail). Returns false (with *error set) if the
  // file cannot be opened; the log then stays in-memory only.
  bool Open(const std::string& path, std::string* error = nullptr);

  // Appends one event line: {"seq": N, "event": "<event>", ...fields}. The callback
  // writes the remaining fields via JsonWriter::Field inside the already-open object
  // (it may be null for envelope-only events). Returns the event's sequence number.
  // Thread-safe; the line is flushed to the file before returning, and the stream
  // state is checked — see write_failed().
  uint64_t Append(std::string_view event,
                  const std::function<void(JsonWriter&)>& fields = nullptr);

  // The most recent lines appended by this process (at most retention()), in order,
  // regardless of whether a file is attached. Returns a copy for thread safety.
  std::vector<std::string> entries() const;

  // Total events appended by this process (NOT capped by retention).
  uint64_t size() const;
  size_t retention() const { return retention_; }
  const std::string& path() const { return path_; }

  // Sticky write-failure state: true once any file write has failed (disk full,
  // volume gone). Subsequent appends still try — and keep counting failures.
  bool write_failed() const;
  uint64_t write_failures() const;
  // Description of the first failure ("" while healthy).
  std::string last_write_error() const;

 private:
  mutable std::mutex mu_;
  std::ofstream file_;
  std::string path_;
  size_t retention_;
  uint64_t next_seq_ = 0;
  std::deque<std::string> entries_;
  uint64_t write_failures_ = 0;
  std::string write_error_;
};

}  // namespace espresso::obs

#endif  // SRC_OBS_AUDIT_LOG_H_

// AuditLog: a thread-safe, append-only JSONL event stream.
//
// The deployment pipeline (src/ddl/strategy_deployment.h) records every strategy
// deploy, rejection, and rollback here so an operator can reconstruct *why* the
// executors are running the strategy they are running — the metrics say how often,
// the audit log says what and when. One event per line, flushed as written, so a
// crashed process leaves at worst a complete prefix (a torn final line is ignorable
// by any JSONL reader). The log is generic: callers supply the event fields through
// a JsonWriter callback; AuditLog owns the envelope (monotonic "seq", "event").
#ifndef SRC_OBS_AUDIT_LOG_H_
#define SRC_OBS_AUDIT_LOG_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/json_writer.h"

namespace espresso::obs {

class AuditLog {
 public:
  // A default-constructed log is in-memory only; events accumulate in entries().
  AuditLog() = default;

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  // Attaches a JSONL file, created if absent, appended to if present (a restarted
  // process continues the same audit trail). Returns false (with *error set) if the
  // file cannot be opened; the log then stays in-memory only.
  bool Open(const std::string& path, std::string* error = nullptr);

  // Appends one event line: {"seq": N, "event": "<event>", ...fields}. The callback
  // writes the remaining fields via JsonWriter::Field inside the already-open object
  // (it may be null for envelope-only events). Returns the event's sequence number.
  // Thread-safe; the line is flushed to the file before returning.
  uint64_t Append(std::string_view event,
                  const std::function<void(JsonWriter&)>& fields = nullptr);

  // Every line appended by this process, in order (the envelope included), regardless
  // of whether a file is attached. Returns a copy for thread safety.
  std::vector<std::string> entries() const;

  uint64_t size() const;
  const std::string& path() const { return path_; }

 private:
  mutable std::mutex mu_;
  std::ofstream file_;
  std::string path_;
  uint64_t next_seq_ = 0;
  std::vector<std::string> entries_;
};

}  // namespace espresso::obs

#endif  // SRC_OBS_AUDIT_LOG_H_

#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/util/logging.h"

namespace espresso::obs {

namespace {

// Fixed shard capacity: registration past this is a programming error, caught by
// ESP_CHECK. 4096 cells comfortably hold hundreds of counters plus dozens of
// histograms (a histogram with b bounds uses b + 2 cells).
constexpr uint32_t kShardCells = 4096;
constexpr uint32_t kMaxGauges = 512;

std::atomic<uint64_t> g_next_generation{1};

}  // namespace

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) {
      return &m;
    }
  }
  return nullptr;
}

std::vector<double> LinearBuckets(double start, double width, size_t count) {
  ESP_CHECK_GT(width, 0.0);
  ESP_CHECK_GT(count, 0u);
  std::vector<double> bounds(count);
  for (size_t i = 0; i < count; ++i) {
    bounds[i] = start + width * static_cast<double>(i);
  }
  return bounds;
}

std::vector<double> ExponentialBuckets(double start, double factor, size_t count) {
  ESP_CHECK_GT(start, 0.0);
  ESP_CHECK_GT(factor, 1.0);
  ESP_CHECK_GT(count, 0u);
  std::vector<double> bounds(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds[i] = bound;
    bound *= factor;
  }
  return bounds;
}

std::vector<double> DefaultTimeBuckets() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1.0, 5.0, 10.0};
}

MetricsRegistry::MetricsRegistry()
    : gauges_(std::make_unique<Cell[]>(kMaxGauges)),
      generation_(g_next_generation.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

size_t MetricsRegistry::RegisterCommon(std::string_view name, std::string_view help,
                                       MetricKind kind, uint32_t width,
                                       const std::vector<double>* bounds) {
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    const MetricDef& def = defs_[it->second];
    ESP_CHECK(def.kind == kind) << "metric '" << std::string(name)
                                << "' re-registered with a different kind";
    if (kind == MetricKind::kHistogram) {
      ESP_CHECK(def.bounds != nullptr && bounds != nullptr && *def.bounds == *bounds)
          << "histogram '" << std::string(name) << "' re-registered with different buckets";
    }
    return it->second;
  }
  MetricDef def;
  def.name = std::string(name);
  def.help = std::string(help);
  def.kind = kind;
  def.bounds = bounds;
  if (kind == MetricKind::kGauge) {
    ESP_CHECK_LT(gauges_used_, kMaxGauges) << "gauge capacity exhausted";
    def.cell = gauges_used_++;
  } else {
    ESP_CHECK_LE(cells_used_ + width, kShardCells) << "metric cell capacity exhausted";
    def.cell = cells_used_;
    cells_used_ += width;
  }
  defs_.push_back(def);
  by_name_.emplace(def.name, defs_.size() - 1);
  return defs_.size() - 1;
}

Counter MetricsRegistry::RegisterCounter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t index = RegisterCommon(name, help, MetricKind::kCounter, 1, nullptr);
  return Counter{defs_[index].cell};
}

Gauge MetricsRegistry::RegisterGauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t index = RegisterCommon(name, help, MetricKind::kGauge, 0, nullptr);
  return Gauge{defs_[index].cell};
}

Histogram MetricsRegistry::RegisterHistogram(std::string_view name, std::string_view help,
                                             std::vector<double> bounds) {
  ESP_CHECK(!bounds.empty()) << "histogram needs at least one bucket bound";
  ESP_CHECK(std::is_sorted(bounds.begin(), bounds.end()))
      << "histogram bounds must be ascending";
  std::lock_guard<std::mutex> lock(mu_);
  bounds_store_.push_back(std::move(bounds));
  const std::vector<double>* stable = &bounds_store_.back();
  // bounds.size() bucket cells + one +Inf overflow cell + one sum cell.
  const auto width = static_cast<uint32_t>(stable->size() + 2);
  const size_t index =
      RegisterCommon(name, help, MetricKind::kHistogram, width, stable);
  if (defs_[index].bounds != stable) {
    bounds_store_.pop_back();  // duplicate registration; keep the original bounds
  }
  return Histogram{defs_[index].cell, defs_[index].bounds};
}

MetricsRegistry::Cell* MetricsRegistry::LocalCells() {
  struct CacheEntry {
    const MetricsRegistry* registry;
    uint64_t generation;
    Cell* cells;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.registry == this && entry.generation == generation_) {
      return entry.cells;
    }
  }
  Cell* cells = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // make_unique value-initializes: every atomic cell starts at zero.
    shards_.push_back(std::make_unique<Cell[]>(kShardCells));
    cells = shards_.back().get();
  }
  cache.push_back(CacheEntry{this, generation_, cells});
  return cells;
}

void MetricsRegistry::Add(Counter counter, uint64_t delta) {
  if (!counter.valid()) {
    return;
  }
  LocalCells()[counter.cell].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::Set(Gauge gauge, double value) {
  if (!gauge.valid()) {
    return;
  }
  gauges_[gauge.cell].store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
}

void MetricsRegistry::Observe(Histogram histogram, double value) {
  if (!histogram.valid()) {
    return;
  }
  Cell* cells = LocalCells();
  const std::vector<double>& bounds = *histogram.bounds;
  size_t bucket = 0;
  while (bucket < bounds.size() && value > bounds[bucket]) {
    ++bucket;
  }
  cells[histogram.cell + bucket].fetch_add(1, std::memory_order_relaxed);
  // The sum cell is a bit-cast double. Only the owning thread writes this shard, so
  // a relaxed load/modify/store cannot lose updates; scrapers only read.
  Cell& sum = cells[histogram.cell + bounds.size() + 1];
  const double current = std::bit_cast<double>(sum.load(std::memory_order_relaxed));
  sum.store(std::bit_cast<uint64_t>(current + value), std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::Scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.metrics.reserve(defs_.size());
  for (const MetricDef& def : defs_) {
    MetricValue value;
    value.name = def.name;
    value.help = def.help;
    value.kind = def.kind;
    switch (def.kind) {
      case MetricKind::kCounter: {
        uint64_t total = 0;
        for (const auto& shard : shards_) {
          total += shard[def.cell].load(std::memory_order_relaxed);
        }
        value.count = total;
        break;
      }
      case MetricKind::kGauge:
        value.value =
            std::bit_cast<double>(gauges_[def.cell].load(std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        value.bounds = *def.bounds;
        value.bucket_counts.assign(def.bounds->size() + 1, 0);
        for (const auto& shard : shards_) {
          for (size_t b = 0; b < value.bucket_counts.size(); ++b) {
            value.bucket_counts[b] +=
                shard[def.cell + b].load(std::memory_order_relaxed);
          }
          value.value += std::bit_cast<double>(
              shard[def.cell + def.bounds->size() + 1].load(std::memory_order_relaxed));
        }
        for (const uint64_t c : value.bucket_counts) {
          value.count += c;
        }
        break;
      }
    }
    snapshot.metrics.push_back(std::move(value));
  }
  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (uint32_t i = 0; i < kShardCells; ++i) {
      shard[i].store(0, std::memory_order_relaxed);
    }
  }
  for (uint32_t i = 0; i < kMaxGauges; ++i) {
    gauges_[i].store(0, std::memory_order_relaxed);
  }
}

size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return defs_.size();
}

size_t MetricsRegistry::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace espresso::obs

// RAII wall-clock timing spans feeding two sinks at once: a MetricsRegistry
// histogram (always on, a few ns when the handle is invalid) and a TraceCollector
// that buffers chrome-trace duration events for `--trace-out` (off by default;
// CLIs enable it when a trace file is requested).
//
// Spans nest naturally: events on the same thread are rendered as a flame stack
// by Perfetto because inner spans are strictly contained in their parents'
// intervals. ScopedSpan::CurrentDepth() exposes the live per-thread nesting depth
// for tests.
#ifndef SRC_OBS_SPAN_H_
#define SRC_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace espresso::obs {

// Thread-safe buffer of completed wall-clock spans, timestamped in seconds since
// the collector's construction. Disabled collectors drop records at a single
// relaxed atomic load.
class TraceCollector {
 public:
  struct SpanEvent {
    std::string name;
    std::string category;
    uint32_t thread = 0;   // small per-process thread ordinal
    double start_s = 0.0;  // seconds since collector epoch
    double end_s = 0.0;
  };

  TraceCollector();

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  double NowSeconds() const;

  void Record(SpanEvent event);

  // Completed spans sorted by (start, end, name) — a deterministic order for a
  // given set of events regardless of which thread recorded first.
  std::vector<SpanEvent> spans() const;

  void Clear();

  // Small dense ordinal for the calling thread (stable for the thread's lifetime).
  static uint32_t ThreadOrdinal();

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<SpanEvent> spans_;
};

// The process-wide collector `--trace-out` drains.
TraceCollector& GlobalTrace();

class ScopedSpan {
 public:
  // `metric`, when valid, receives the span duration (seconds) at destruction.
  // Null registry/collector pointers disable the respective sink.
  explicit ScopedSpan(std::string name, std::string category = "espresso",
                      Histogram metric = {}, MetricsRegistry* metrics = &GlobalMetrics(),
                      TraceCollector* trace = &GlobalTrace());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  double ElapsedSeconds() const;

  // Live nesting depth of ScopedSpans on the calling thread.
  static int CurrentDepth();

 private:
  std::string name_;
  std::string category_;
  Histogram metric_;
  MetricsRegistry* metrics_;
  TraceCollector* trace_;
  double trace_start_s_ = 0.0;
  bool tracing_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace espresso::obs

#endif  // SRC_OBS_SPAN_H_

// MetricsRegistry: the process-wide measurement substrate (counters, gauges,
// fixed-bucket histograms) behind `--metrics-out` and the Prometheus/JSON exporters.
//
// The record path is built for the selector's parallel hot loop: each recording
// thread owns a private shard of atomic cells (allocated on the thread's first
// record against a registry), so counter increments and histogram observations
// never contend — no locks, no shared cache lines. Scrape() takes the registry
// mutex, sums the shards in creation order, and returns a name-sorted snapshot.
// Registration is mutex-guarded and idempotent: re-registering an existing name
// with a matching kind returns the original handle, so translation units can each
// lazily register the metrics they record.
//
// Gauges are registry-global last-write-wins cells (a gauge is a statement about
// the present, not a per-thread accumulation), stored as bit-cast doubles.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace espresso::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

inline constexpr uint32_t kInvalidCell = UINT32_MAX;

// Handles are cheap POD values; a default-constructed handle is inert (records
// against it are dropped), so instrumented code never needs null checks.
struct Counter {
  uint32_t cell = kInvalidCell;
  bool valid() const { return cell != kInvalidCell; }
};

struct Gauge {
  uint32_t cell = kInvalidCell;
  bool valid() const { return cell != kInvalidCell; }
};

struct Histogram {
  uint32_t cell = kInvalidCell;                 // first bucket cell in each shard
  const std::vector<double>* bounds = nullptr;  // stable; owned by the registry
  bool valid() const { return cell != kInvalidCell && bounds != nullptr; }
};

// One scraped metric. For histograms, `bucket_counts` has bounds.size() + 1
// entries (the last is the +Inf overflow bucket), `count` is their total, and
// `value` is the sum of observations. For counters `count` holds the value; for
// gauges `value` does.
struct MetricValue {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  uint64_t count = 0;
  double value = 0.0;
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;
};

struct MetricsSnapshot {
  std::vector<MetricValue> metrics;  // sorted by name

  const MetricValue* Find(std::string_view name) const;
};

// Bucket helpers for histogram registration.
std::vector<double> LinearBuckets(double start, double width, size_t count);
std::vector<double> ExponentialBuckets(double start, double factor, size_t count);
// 1us .. 10s, decade-ish spacing — fits everything from a single F(S) simulation
// to a full strategy selection.
std::vector<double> DefaultTimeBuckets();

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter RegisterCounter(std::string_view name, std::string_view help);
  Gauge RegisterGauge(std::string_view name, std::string_view help);
  Histogram RegisterHistogram(std::string_view name, std::string_view help,
                              std::vector<double> bounds);

  void Add(Counter counter, uint64_t delta = 1);
  void Set(Gauge gauge, double value);
  void Observe(Histogram histogram, double value);

  // Merges every thread shard into a name-sorted snapshot. Safe to call while
  // other threads record (their in-flight increments land in a later scrape).
  MetricsSnapshot Scrape() const;

  // Zeroes every cell in every shard and every gauge. For tests; not safe
  // concurrently with recording threads.
  void Reset();

  size_t metric_count() const;
  size_t shard_count() const;  // threads that have recorded so far

 private:
  using Cell = std::atomic<uint64_t>;

  struct MetricDef {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    uint32_t cell = 0;  // shard offset (counter/histogram) or gauge index
    const std::vector<double>* bounds = nullptr;
  };

  // Returns this thread's shard for this registry, creating it on first use.
  Cell* LocalCells();
  size_t RegisterCommon(std::string_view name, std::string_view help, MetricKind kind,
                        uint32_t width, const std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::vector<MetricDef> defs_;
  std::unordered_map<std::string, size_t> by_name_;
  std::deque<std::vector<double>> bounds_store_;  // stable storage for histogram bounds
  uint32_t cells_used_ = 0;
  uint32_t gauges_used_ = 0;
  std::unique_ptr<Cell[]> gauges_;
  mutable std::vector<std::unique_ptr<Cell[]>> shards_;
  uint64_t generation_ = 0;  // distinguishes registries that reuse an address
};

// The process-wide registry every instrumented layer records into.
MetricsRegistry& GlobalMetrics();

}  // namespace espresso::obs

#endif  // SRC_OBS_METRICS_H_

// CI gate over emitted observability files: validates each argument as Prometheus
// text or JSON (metrics dump / chrome trace) and exits non-zero on the first
// malformed or empty file.
//
// Usage: metrics_check <file>...
#include <cstdio>

#include "src/obs/validate.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <metrics-or-trace-file>...\n", argv[0]);
    return 2;
  }
  bool failed = false;
  for (int i = 1; i < argc; ++i) {
    const espresso::obs::ValidationResult result =
        espresso::obs::ValidateMetricsFile(argv[i]);
    if (result.ok) {
      std::fprintf(stderr, "%s: OK (%zu samples)\n", argv[i], result.samples);
    } else {
      std::fprintf(stderr, "%s: FAIL: %s\n", argv[i], result.error.c_str());
      failed = true;
    }
  }
  return failed ? 1 : 0;
}

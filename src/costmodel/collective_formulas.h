// The alpha-beta collective formulas of Table 2, templated over the number type so the
// concrete cost model (double, src/costmodel/collective_cost.h) and the symbolic
// interval audit (Interval, src/costmodel/interval.h) evaluate the SAME expressions —
// the property checker cannot drift from the model it certifies.
//
// `Num` needs +, *, / against itself and construction from double; `LinkT` needs
// `latency_s` and `bytes_per_second` members of type Num (LinkSpec and IntervalLink
// both qualify). All formulas return 0 for a single participant.
#ifndef SRC_COSTMODEL_COLLECTIVE_FORMULAS_H_
#define SRC_COSTMODEL_COLLECTIVE_FORMULAS_H_

#include <cmath>
#include <cstddef>

namespace espresso {

namespace formulas {

inline double Log2CeilF(size_t p) { return std::ceil(std::log2(static_cast<double>(p))); }

// Ring allreduce of a tensor: 2(p-1) rounds moving tensor/p each.
template <typename Num, typename LinkT>
Num Allreduce(size_t p, Num tensor_bytes, const LinkT& link) {
  if (p == 1) {
    return Num(0.0);
  }
  return Num(static_cast<double>(2 * (p - 1))) * link.latency_s +
         Num(2.0 * static_cast<double>(p - 1) / static_cast<double>(p)) * tensor_bytes /
             link.bytes_per_second;
}

// Ring reduce-scatter: (p-1) rounds of tensor/p.
template <typename Num, typename LinkT>
Num ReduceScatter(size_t p, Num tensor_bytes, const LinkT& link) {
  if (p == 1) {
    return Num(0.0);
  }
  return Num(static_cast<double>(p - 1)) * link.latency_s +
         Num(static_cast<double>(p - 1) / static_cast<double>(p)) * tensor_bytes /
             link.bytes_per_second;
}

// Ring allgather where each rank contributes `per_rank_bytes`: (p-1) rounds.
template <typename Num, typename LinkT>
Num Allgather(size_t p, Num per_rank_bytes, const LinkT& link) {
  if (p == 1) {
    return Num(0.0);
  }
  return Num(static_cast<double>(p - 1)) * link.latency_s +
         Num(static_cast<double>(p - 1)) * per_rank_bytes / link.bytes_per_second;
}

// Pipelined binomial reduce of a tensor to one root.
template <typename Num, typename LinkT>
Num Reduce(size_t p, Num tensor_bytes, const LinkT& link) {
  if (p == 1) {
    return Num(0.0);
  }
  return Num(Log2CeilF(p)) * link.latency_s + tensor_bytes / link.bytes_per_second;
}

// Pipelined binomial broadcast of `bytes` from one root.
template <typename Num, typename LinkT>
Num Broadcast(size_t p, Num bytes, const LinkT& link) {
  if (p == 1) {
    return Num(0.0);
  }
  return Num(Log2CeilF(p)) * link.latency_s + bytes / link.bytes_per_second;
}

// Alltoall where each rank sends `per_pair_bytes` to each of the p-1 others.
template <typename Num, typename LinkT>
Num Alltoall(size_t p, Num per_pair_bytes, const LinkT& link) {
  if (p == 1) {
    return Num(0.0);
  }
  return Num(static_cast<double>(p - 1)) * link.latency_s +
         Num(static_cast<double>(p - 1)) * per_pair_bytes / link.bytes_per_second;
}

// Gather to a root where each rank contributes `per_rank_bytes`; the root's ingress
// link is the bottleneck.
template <typename Num, typename LinkT>
Num Gather(size_t p, Num per_rank_bytes, const LinkT& link) {
  if (p == 1) {
    return Num(0.0);
  }
  return Num(Log2CeilF(p)) * link.latency_s +
         Num(static_cast<double>(p - 1)) * per_rank_bytes / link.bytes_per_second;
}

}  // namespace formulas

}  // namespace espresso

#endif  // SRC_COSTMODEL_COLLECTIVE_FORMULAS_H_

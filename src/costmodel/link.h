// Network link description used by the alpha-beta collective cost models (§4.3,
// "The cost models follow the model analysis in the literature [48, 65]" — Thakur et al.).
#ifndef SRC_COSTMODEL_LINK_H_
#define SRC_COSTMODEL_LINK_H_

#include <string>

namespace espresso {

struct LinkSpec {
  std::string name;
  double latency_s = 0.0;        // alpha: per-message startup cost
  double bytes_per_second = 0.0; // 1/beta: point-to-point bandwidth per endpoint

  double TransferTime(double bytes) const { return latency_s + bytes / bytes_per_second; }

  // Returns this link with bandwidth scaled by `bandwidth_factor` (in (0, 1] for
  // degradation, > 1 for recovery headroom) and `extra_latency_s` added to alpha.
  // The fault injector uses this to model congested or jittery links.
  LinkSpec Degraded(double bandwidth_factor, double extra_latency_s = 0.0) const;
};

// Presets matching the paper's two testbeds (§5.1). Bandwidths are effective
// (protocol-efficiency discounted) endpoint bandwidths.
LinkSpec NvLinkIntra();      // NVLink 2.0: ~1.2 Tb/s aggregate per GPU
LinkSpec PcieIntra();        // PCIe 3.0 x16: ~100 Gb/s raw, lower effective through the root complex
LinkSpec Ethernet100G();     // 100 Gbps TCP/IP inter-machine network
LinkSpec Ethernet25G();      // 25 Gbps inter-machine network

}  // namespace espresso

#endif  // SRC_COSTMODEL_LINK_H_

// Cluster descriptions and calibrated cost constants for the paper's two testbeds
// (§5.1): 8 machines x 8 V100 GPUs with (a) NVLink + 100Gbps Ethernet and (b) PCIe-only
// + 25Gbps Ethernet; 2 Xeon 8260 CPUs (48 cores) per machine.
//
// The constants are calibrated so the *shapes* of the paper's results hold (see
// DESIGN.md §5.4 and EXPERIMENTS.md); absolute seconds are simulator units.
#ifndef SRC_COSTMODEL_CALIBRATION_H_
#define SRC_COSTMODEL_CALIBRATION_H_

#include <cstddef>

#include "src/costmodel/compression_cost.h"
#include "src/costmodel/link.h"

namespace espresso {

struct ClusterSpec {
  size_t machines = 8;
  size_t gpus_per_machine = 8;
  LinkSpec intra;
  LinkSpec inter;
  DeviceCostSpec gpu_compression;
  DeviceCostSpec cpu_compression;
  // Number of CPU compression tasks one GPU's share of the host CPUs can run
  // concurrently (48 cores / 8 GPUs, a few cores per worker).
  size_t cpu_workers_per_gpu = 3;
  // On PCIe-only machines the GPU<->host copies that feed CPU compression ride the
  // same PCIe fabric the intra-machine collectives use, so they contend with the
  // intra link (the reason CPU compression backfires on the paper's PCIe testbed,
  // §5.2.3). NVLink machines carry collectives on NVLink, so host copies do not
  // contend there.
  bool host_copy_contends_intra = false;

  size_t total_gpus() const { return machines * gpus_per_machine; }
};

// Testbed 1: NVLink machines, 100Gbps TCP/IP network.
ClusterSpec NvlinkCluster(size_t machines = 8, size_t gpus_per_machine = 8);

// Testbed 2: PCIe-only machines, 25Gbps network.
ClusterSpec PcieCluster(size_t machines = 8, size_t gpus_per_machine = 8);

// Device cost presets (shared by both testbeds; the hosts are identical).
DeviceCostSpec V100CompressionSpec();
DeviceCostSpec XeonCompressionSpec();

// Builds the per-algorithm compression cost model for a cluster.
CompressionCostModel MakeCompressionCostModel(const ClusterSpec& cluster,
                                              std::string_view algorithm);

}  // namespace espresso

#endif  // SRC_COSTMODEL_CALIBRATION_H_

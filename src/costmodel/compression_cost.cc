#include "src/costmodel/compression_cost.h"

#include "src/util/logging.h"

namespace espresso {

const char* DeviceName(Device device) {
  switch (device) {
    case Device::kGpu:
      return "GPU";
    case Device::kCpu:
      return "CPU";
  }
  return "?";
}

CompressionCostModel::CompressionCostModel(DeviceCostSpec gpu, DeviceCostSpec cpu,
                                           double gpu_weight, double cpu_weight) {
  specs_[static_cast<int>(Device::kGpu)] = gpu;
  specs_[static_cast<int>(Device::kCpu)] = cpu;
  weights_[static_cast<int>(Device::kGpu)] = gpu_weight;
  weights_[static_cast<int>(Device::kCpu)] = cpu_weight;
  ESP_CHECK_GT(gpu_weight, 0.0);
  ESP_CHECK_GT(cpu_weight, 0.0);
}

double CompressionCostModel::CompressTime(Device device, double original_bytes,
                                          size_t invocations) const {
  const DeviceCostSpec& s = spec(device);
  if (s.compress_bytes_per_s <= 0.0) {
    return 0.0;  // zeroed model: the Upper Bound configuration
  }
  return static_cast<double>(invocations) * s.launch_overhead_s +
         algorithm_weight(device) * original_bytes / s.compress_bytes_per_s;
}

double CompressionCostModel::DecompressTime(Device device, double original_bytes,
                                            size_t invocations) const {
  const DeviceCostSpec& s = spec(device);
  if (s.decompress_bytes_per_s <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(invocations) * s.launch_overhead_s +
         algorithm_weight(device) * original_bytes / s.decompress_bytes_per_s;
}

double CompressionCostModel::AggregateDecompressTime(Device device, double original_bytes,
                                                     double payload_bytes,
                                                     size_t fan_in) const {
  const DeviceCostSpec& s = spec(device);
  if (s.decompress_bytes_per_s <= 0.0) {
    return 0.0;
  }
  // One fused aggregation kernel (MergeComp-style [69]): a single launch regardless of
  // fan-in; the data term still reads every payload and writes the output once.
  return s.launch_overhead_s +
         algorithm_weight(device) *
             (original_bytes + static_cast<double>(fan_in) * payload_bytes) /
             s.decompress_bytes_per_s;
}

const DeviceCostSpec& CompressionCostModel::spec(Device device) const {
  return specs_[static_cast<int>(device)];
}

double AlgorithmCostWeight(std::string_view algorithm, Device device) {
  const bool cpu = device == Device::kCpu;
  if (algorithm == "dgc" || algorithm == "topk") {
    // Magnitude selection dominates; CPU top-k over large tensors is dramatically
    // slower than the GPU radix-select kernels GC frameworks use.
    return cpu ? 3.5 : 1.6;
  }
  if (algorithm == "randomk") {
    return cpu ? 1.2 : 1.0;
  }
  if (algorithm == "efsignsgd") {
    return cpu ? 0.8 : 0.7;  // sign extraction + one reduction
  }
  if (algorithm == "terngrad") {
    return cpu ? 0.9 : 0.8;
  }
  if (algorithm == "qsgd") {
    return cpu ? 1.0 : 0.9;
  }
  if (algorithm == "fp16") {
    return 0.4;
  }
  return 1.0;
}

}  // namespace espresso

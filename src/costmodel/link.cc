#include "src/costmodel/link.h"

#include "src/util/logging.h"

namespace espresso {

LinkSpec LinkSpec::Degraded(double bandwidth_factor, double extra_latency_s) const {
  ESP_CHECK_GT(bandwidth_factor, 0.0) << "degraded link needs positive bandwidth";
  ESP_CHECK_GE(extra_latency_s, 0.0);
  LinkSpec degraded = *this;
  degraded.bytes_per_second *= bandwidth_factor;
  degraded.latency_s += extra_latency_s;
  return degraded;
}

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
}  // namespace

LinkSpec NvLinkIntra() {
  // NVLink 2.0 gives every V100 1.2 Tb/s aggregate GPU-GPU bandwidth (paper footnote 1).
  // Effective per-endpoint collective bandwidth after protocol overheads: ~120 GiB/s.
  return LinkSpec{"nvlink", 4e-6, 120.0 * kGiB};
}

LinkSpec PcieIntra() {
  // PCIe 3.0 x16 provides ~100 Gb/s (paper footnote 1); effective ~11 GiB/s.
  return LinkSpec{"pcie3x16", 5e-6, 6.0 * kGiB};
}

LinkSpec Ethernet100G() {
  // 100 Gbps TCP/IP: ~11 GiB/s effective at the NIC, tens-of-microseconds latency.
  return LinkSpec{"eth100g", 15e-6, 11.0 * kGiB};
}

LinkSpec Ethernet25G() {
  return LinkSpec{"eth25g", 15e-6, 2.75 * kGiB};
}

}  // namespace espresso

// Alpha-beta cost models for the collective routines of Table 2 (Thakur et al. [65],
// the same analysis the paper's communication models follow).
//
// Conventions: `p` is the number of participants on the link; `tensor_bytes` is the size
// of the (possibly already compressed) tensor a routine synchronizes. Each function
// documents its own traffic shape. All results are wall-clock seconds on `link`.
#ifndef SRC_COSTMODEL_COLLECTIVE_COST_H_
#define SRC_COSTMODEL_COLLECTIVE_COST_H_

#include <cstddef>

#include "src/costmodel/link.h"

namespace espresso {

// Ring allreduce of a tensor: 2(p-1) rounds moving tensor/p each.
double AllreduceTime(size_t p, double tensor_bytes, const LinkSpec& link);

// Ring reduce-scatter: (p-1) rounds of tensor/p.
double ReduceScatterTime(size_t p, double tensor_bytes, const LinkSpec& link);

// Ring allgather where each rank contributes `per_rank_bytes`: (p-1) rounds of
// per_rank_bytes. (For uncompressed shard-allgather pass tensor/p; for the compressed
// indivisible scheme pass the compressed payload size.)
double AllgatherTime(size_t p, double per_rank_bytes, const LinkSpec& link);

// Pipelined binomial reduce of a tensor to one root.
double ReduceTime(size_t p, double tensor_bytes, const LinkSpec& link);

// Pipelined binomial broadcast of `bytes` from one root.
double BroadcastTime(size_t p, double bytes, const LinkSpec& link);

// Alltoall where each rank sends `per_pair_bytes` to each of the p-1 others.
double AlltoallTime(size_t p, double per_pair_bytes, const LinkSpec& link);

// Gather to a root where each rank contributes `per_rank_bytes`; the root's ingress
// link is the bottleneck.
double GatherTime(size_t p, double per_rank_bytes, const LinkSpec& link);

}  // namespace espresso

#endif  // SRC_COSTMODEL_COLLECTIVE_COST_H_

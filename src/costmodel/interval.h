// Interval arithmetic over the cost-model parameter space (the symbolic half of
// espresso_check, esc.interval-property).
//
// An Interval is a closed range [lo, hi] of the reals; the arithmetic is outward-
// conservative, so evaluating a cost formula over Intervals bounds every concrete
// evaluation whose parameters lie inside the declared ranges. ParameterRanges declares
// those ranges for one cluster — link bandwidth and latency swept multiplicatively
// around the calibrated values, CPU compression throughput swept down to a single
// worker's share of the host — mirroring exactly how TimelineEvaluator derives its
// links (NIC bandwidth split across the machine's GPUs, flat collectives riding the
// NIC on multi-machine clusters).
//
// The comm formulas are the SAME templates the double cost model compiles
// (src/costmodel/collective_formulas.h), so the audit cannot drift from the model.
#ifndef SRC_COSTMODEL_INTERVAL_H_
#define SRC_COSTMODEL_INTERVAL_H_

#include <cstddef>
#include <string>

#include "src/costmodel/calibration.h"
#include "src/costmodel/compression_cost.h"
#include "src/costmodel/link.h"

namespace espresso {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  Interval() = default;
  // Implicit: lets double constants participate in interval expressions (and lets the
  // shared formula templates promote byte counts to intervals).
  Interval(double v) : lo(v), hi(v) {}  // NOLINT(google-explicit-constructor)
  Interval(double lo_in, double hi_in);

  static Interval Hull(const Interval& a, const Interval& b);

  bool Contains(double v) const { return lo <= v && v <= hi; }
  bool NonNegative() const { return lo >= 0.0; }
  bool StrictlyPositive() const { return lo > 0.0; }
  double width() const { return hi - lo; }
};

Interval operator+(const Interval& a, const Interval& b);
Interval operator-(const Interval& a, const Interval& b);
Interval operator*(const Interval& a, const Interval& b);
// Division requires a strictly positive divisor (all audited parameters are physical
// rates); dividing by a range that touches zero is a checked failure.
Interval operator/(const Interval& a, const Interval& b);

// A network link whose alpha/beta parameters are ranges. Shape-compatible with
// LinkSpec for the shared collective formula templates.
struct IntervalLink {
  std::string name;
  Interval latency_s{0.0};
  Interval bytes_per_second{1.0};

  bool Contains(const LinkSpec& link) const {
    return latency_s.Contains(link.latency_s) &&
           bytes_per_second.Contains(link.bytes_per_second);
  }
};

// Declared parameter ranges for one cluster. Spans are multiplicative: bandwidth in
// [nominal/span, nominal*span], latency likewise; CPU throughput spans down to
// 1/cpu_workers_per_gpu of nominal (a fully contended host) and up to nominal.
struct ParameterRanges {
  IntervalLink intra;
  IntervalLink inter;  // per-GPU NIC share, as TimelineEvaluator prices it
  IntervalLink flat;   // == inter on multi-machine clusters, intra otherwise
  Interval gpu_launch_s{0.0};
  Interval cpu_launch_s{0.0};
  Interval gpu_compress_bps{1.0};
  Interval gpu_decompress_bps{1.0};
  Interval cpu_compress_bps{1.0};
  Interval cpu_decompress_bps{1.0};

  static ParameterRanges ForCluster(const ClusterSpec& cluster, double bandwidth_span = 4.0,
                                    double latency_span = 4.0);
};

// Interval twin of CompressionCostModel + the collective formulas: every method bounds
// the corresponding double computation for all parameters inside `ranges`.
class IntervalCostModel {
 public:
  IntervalCostModel(const ParameterRanges& ranges, double gpu_weight, double cpu_weight);

  Interval CompressTime(Device device, double original_bytes) const;
  Interval AggregateDecompressTime(Device device, double original_bytes,
                                   double payload_bytes, size_t fan_in) const;

  const ParameterRanges& ranges() const { return ranges_; }
  double weight(Device device) const {
    return device == Device::kCpu ? cpu_weight_ : gpu_weight_;
  }

 private:
  ParameterRanges ranges_;
  double gpu_weight_ = 1.0;
  double cpu_weight_ = 1.0;
};

}  // namespace espresso

#endif  // SRC_COSTMODEL_INTERVAL_H_

#include "src/costmodel/interval.h"

#include <algorithm>

#include "src/util/logging.h"

namespace espresso {

Interval::Interval(double lo_in, double hi_in) : lo(lo_in), hi(hi_in) {
  ESP_CHECK_LE(lo, hi) << "inverted interval";
}

Interval Interval::Hull(const Interval& a, const Interval& b) {
  return Interval(std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

Interval operator+(const Interval& a, const Interval& b) {
  return Interval(a.lo + b.lo, a.hi + b.hi);
}

Interval operator-(const Interval& a, const Interval& b) {
  return Interval(a.lo - b.hi, a.hi - b.lo);
}

Interval operator*(const Interval& a, const Interval& b) {
  const double p1 = a.lo * b.lo;
  const double p2 = a.lo * b.hi;
  const double p3 = a.hi * b.lo;
  const double p4 = a.hi * b.hi;
  return Interval(std::min(std::min(p1, p2), std::min(p3, p4)),
                  std::max(std::max(p1, p2), std::max(p3, p4)));
}

Interval operator/(const Interval& a, const Interval& b) {
  ESP_CHECK_GT(b.lo, 0.0) << "interval division by a range touching zero";
  const double p1 = a.lo / b.lo;
  const double p2 = a.lo / b.hi;
  const double p3 = a.hi / b.lo;
  const double p4 = a.hi / b.hi;
  return Interval(std::min(std::min(p1, p2), std::min(p3, p4)),
                  std::max(std::max(p1, p2), std::max(p3, p4)));
}

namespace {

Interval SpanAround(double nominal, double span) {
  ESP_CHECK_GT(nominal, 0.0);
  ESP_CHECK_GE(span, 1.0);
  return Interval(nominal / span, nominal * span);
}

IntervalLink SpanLink(const LinkSpec& link, double bandwidth_span, double latency_span) {
  IntervalLink ranged;
  ranged.name = link.name;
  ranged.latency_s = SpanAround(link.latency_s, latency_span);
  ranged.bytes_per_second = SpanAround(link.bytes_per_second, bandwidth_span);
  return ranged;
}

}  // namespace

ParameterRanges ParameterRanges::ForCluster(const ClusterSpec& cluster,
                                            double bandwidth_span, double latency_span) {
  ParameterRanges ranges;
  ranges.intra = SpanLink(cluster.intra, bandwidth_span, latency_span);
  // Mirror TimelineEvaluator's link derivation: on multi-machine clusters the NIC is
  // shared by the machine's g GPUs and flat collectives ride the same shared NIC; on a
  // single machine inter traffic never happens and flat == intra.
  if (cluster.machines > 1) {
    LinkSpec shared_nic = cluster.inter;
    shared_nic.bytes_per_second /= static_cast<double>(cluster.gpus_per_machine);
    ranges.inter = SpanLink(shared_nic, bandwidth_span, latency_span);
    ranges.flat = ranges.inter;
    ranges.flat.name = "flat";
  } else {
    ranges.inter = SpanLink(cluster.inter, bandwidth_span, latency_span);
    ranges.flat = ranges.intra;
    ranges.flat.name = "flat";
  }

  // Launch overheads are device constants; keep them as points so a non-negative
  // duration failure indicts the throughput/byte terms, not slack in alpha.
  ranges.gpu_launch_s = Interval(cluster.gpu_compression.launch_overhead_s);
  ranges.cpu_launch_s = Interval(cluster.cpu_compression.launch_overhead_s);

  // CPU compression throughput degrades down to one worker's share when the host is
  // fully contended (cpu_workers_per_gpu concurrent tasks); GPUs keep their calibrated
  // throughput (contention with backward compute is a scheduling effect, not a rate
  // change).
  const double cpu_contention =
      std::max<double>(1.0, static_cast<double>(cluster.cpu_workers_per_gpu));
  ranges.gpu_compress_bps = Interval(cluster.gpu_compression.compress_bytes_per_s);
  ranges.gpu_decompress_bps = Interval(cluster.gpu_compression.decompress_bytes_per_s);
  ranges.cpu_compress_bps =
      Interval(cluster.cpu_compression.compress_bytes_per_s / cpu_contention,
               cluster.cpu_compression.compress_bytes_per_s);
  ranges.cpu_decompress_bps =
      Interval(cluster.cpu_compression.decompress_bytes_per_s / cpu_contention,
               cluster.cpu_compression.decompress_bytes_per_s);
  return ranges;
}

IntervalCostModel::IntervalCostModel(const ParameterRanges& ranges, double gpu_weight,
                                     double cpu_weight)
    : ranges_(ranges), gpu_weight_(gpu_weight), cpu_weight_(cpu_weight) {
  ESP_CHECK_GT(gpu_weight, 0.0);
  ESP_CHECK_GT(cpu_weight, 0.0);
}

Interval IntervalCostModel::CompressTime(Device device, double original_bytes) const {
  const bool cpu = device == Device::kCpu;
  const Interval& launch = cpu ? ranges_.cpu_launch_s : ranges_.gpu_launch_s;
  const Interval& bps = cpu ? ranges_.cpu_compress_bps : ranges_.gpu_compress_bps;
  return launch + Interval(weight(device)) * Interval(original_bytes) / bps;
}

Interval IntervalCostModel::AggregateDecompressTime(Device device, double original_bytes,
                                                    double payload_bytes,
                                                    size_t fan_in) const {
  const bool cpu = device == Device::kCpu;
  const Interval& launch = cpu ? ranges_.cpu_launch_s : ranges_.gpu_launch_s;
  const Interval& bps = cpu ? ranges_.cpu_decompress_bps : ranges_.gpu_decompress_bps;
  const double moved_bytes =
      original_bytes + static_cast<double>(fan_in) * payload_bytes;
  return launch + Interval(weight(device)) * Interval(moved_bytes) / bps;
}

}  // namespace espresso

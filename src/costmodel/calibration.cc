#include "src/costmodel/calibration.h"

namespace espresso {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
}  // namespace

DeviceCostSpec V100CompressionSpec() {
  // GPU compression: high throughput, but every invocation pays a kernel-launch cost —
  // the constant overhead behind Figure 10's size-dependent benefit ratio.
  return DeviceCostSpec{
      .launch_overhead_s = 40e-6,
      .compress_bytes_per_s = 32.0 * kGiB,
      .decompress_bytes_per_s = 64.0 * kGiB,
  };
}

DeviceCostSpec XeonCompressionSpec() {
  // CPU compression: low invocation overhead, over an order of magnitude less
  // throughput per worker (HiPress [9] reports GPU compression typically faster than
  // CPU). The throughput also absorbs the PCIe host round-trip the gradient pays to
  // reach the CPU workers.
  return DeviceCostSpec{
      .launch_overhead_s = 8e-6,
      .compress_bytes_per_s = 1.2 * kGiB,
      .decompress_bytes_per_s = 2.4 * kGiB,
  };
}

ClusterSpec NvlinkCluster(size_t machines, size_t gpus_per_machine) {
  ClusterSpec spec;
  spec.machines = machines;
  spec.gpus_per_machine = gpus_per_machine;
  spec.intra = NvLinkIntra();
  spec.inter = Ethernet100G();
  spec.gpu_compression = V100CompressionSpec();
  spec.cpu_compression = XeonCompressionSpec();
  return spec;
}

ClusterSpec PcieCluster(size_t machines, size_t gpus_per_machine) {
  ClusterSpec spec;
  spec.machines = machines;
  spec.gpus_per_machine = gpus_per_machine;
  spec.intra = PcieIntra();
  spec.inter = Ethernet25G();
  spec.gpu_compression = V100CompressionSpec();
  spec.cpu_compression = XeonCompressionSpec();
  spec.host_copy_contends_intra = true;
  return spec;
}

CompressionCostModel MakeCompressionCostModel(const ClusterSpec& cluster,
                                              std::string_view algorithm) {
  return CompressionCostModel(cluster.gpu_compression, cluster.cpu_compression,
                              AlgorithmCostWeight(algorithm, Device::kGpu),
                              AlgorithmCostWeight(algorithm, Device::kCpu));
}

}  // namespace espresso

// Compression/decompression time models (§4.3 "Compression time").
//
// Both operations are modeled as affine in the *original* tensor size: a constant
// per-invocation overhead (GPU kernel launches — the reason Figure 10's benefit ratio
// grows with tensor size; §4.4.2 Property 2) plus a throughput term. GPUs compress
// faster but contend with backward computation; CPUs are slower but run off the GPU's
// critical path (§2.3, Table 1). The per-algorithm weight captures that e.g. top-k
// selection costs more per byte than sign extraction.
#ifndef SRC_COSTMODEL_COMPRESSION_COST_H_
#define SRC_COSTMODEL_COMPRESSION_COST_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace espresso {

enum class Device {
  kGpu = 0,
  kCpu = 1,
};
inline constexpr int kNumDevices = 2;

const char* DeviceName(Device device);

struct DeviceCostSpec {
  double launch_overhead_s = 0.0;     // fixed cost per (de)compression invocation
  double compress_bytes_per_s = 0.0;  // throughput over the original tensor bytes
  double decompress_bytes_per_s = 0.0;
};

class CompressionCostModel {
 public:
  CompressionCostModel() = default;
  // `gpu_weight`/`cpu_weight` scale the throughput term per device: selection-heavy
  // sparsifiers (top-k) pay a much larger penalty on CPUs than bitwise quantizers do.
  CompressionCostModel(DeviceCostSpec gpu, DeviceCostSpec cpu, double gpu_weight = 1.0,
                       double cpu_weight = 1.0);

  // Time to compress a tensor of `original_bytes` on `device`. `invocations` > 1 models
  // the aggregate of several payload (de)compressions fused at a divisible scheme's
  // middle stage (one launch each).
  double CompressTime(Device device, double original_bytes, size_t invocations = 1) const;
  double DecompressTime(Device device, double original_bytes, size_t invocations = 1) const;

  // Decompress-and-aggregate `fan_in` payloads of `payload_bytes` each into one output
  // buffer of `original_bytes`: fan_in kernel launches, fan_in payload reads, one output
  // write. This is what the middle stage of a divisible scheme and the post-allgather
  // aggregation of an indivisible scheme cost (Figures 3-4).
  double AggregateDecompressTime(Device device, double original_bytes, double payload_bytes,
                                 size_t fan_in) const;

  const DeviceCostSpec& spec(Device device) const;
  double algorithm_weight(Device device) const {
    return weights_[static_cast<int>(device)];
  }

 private:
  DeviceCostSpec specs_[kNumDevices];
  double weights_[kNumDevices] = {1.0, 1.0};
};

// Per-algorithm relative cost weight on `device`. Selection-heavy sparsifiers (top-k)
// are pricier per byte than bitwise quantizers, dramatically so on CPUs.
double AlgorithmCostWeight(std::string_view algorithm, Device device);

}  // namespace espresso

#endif  // SRC_COSTMODEL_COMPRESSION_COST_H_

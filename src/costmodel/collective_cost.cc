#include "src/costmodel/collective_cost.h"

#include <cmath>

#include "src/util/logging.h"

namespace espresso {

namespace {

double Log2Ceil(size_t p) { return std::ceil(std::log2(static_cast<double>(p))); }

}  // namespace

double AllreduceTime(size_t p, double tensor_bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  if (p == 1) {
    return 0.0;
  }
  const auto rounds = static_cast<double>(2 * (p - 1));
  return rounds * link.latency_s +
         2.0 * static_cast<double>(p - 1) / static_cast<double>(p) * tensor_bytes /
             link.bytes_per_second;
}

double ReduceScatterTime(size_t p, double tensor_bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  if (p == 1) {
    return 0.0;
  }
  return static_cast<double>(p - 1) * link.latency_s +
         static_cast<double>(p - 1) / static_cast<double>(p) * tensor_bytes /
             link.bytes_per_second;
}

double AllgatherTime(size_t p, double per_rank_bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  if (p == 1) {
    return 0.0;
  }
  return static_cast<double>(p - 1) * link.latency_s +
         static_cast<double>(p - 1) * per_rank_bytes / link.bytes_per_second;
}

double ReduceTime(size_t p, double tensor_bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  if (p == 1) {
    return 0.0;
  }
  return Log2Ceil(p) * link.latency_s + tensor_bytes / link.bytes_per_second;
}

double BroadcastTime(size_t p, double bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  if (p == 1) {
    return 0.0;
  }
  return Log2Ceil(p) * link.latency_s + bytes / link.bytes_per_second;
}

double AlltoallTime(size_t p, double per_pair_bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  if (p == 1) {
    return 0.0;
  }
  return static_cast<double>(p - 1) * link.latency_s +
         static_cast<double>(p - 1) * per_pair_bytes / link.bytes_per_second;
}

double GatherTime(size_t p, double per_rank_bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  if (p == 1) {
    return 0.0;
  }
  return Log2Ceil(p) * link.latency_s +
         static_cast<double>(p - 1) * per_rank_bytes / link.bytes_per_second;
}

}  // namespace espresso

#include "src/costmodel/collective_cost.h"

#include "src/costmodel/collective_formulas.h"
#include "src/util/logging.h"

// Thin double instantiations of the shared templates in collective_formulas.h; the
// interval audit (src/costmodel/interval.h) instantiates the same expressions over
// Interval, so the two evaluations agree by construction.

namespace espresso {

double AllreduceTime(size_t p, double tensor_bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  return formulas::Allreduce(p, tensor_bytes, link);
}

double ReduceScatterTime(size_t p, double tensor_bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  return formulas::ReduceScatter(p, tensor_bytes, link);
}

double AllgatherTime(size_t p, double per_rank_bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  return formulas::Allgather(p, per_rank_bytes, link);
}

double ReduceTime(size_t p, double tensor_bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  return formulas::Reduce(p, tensor_bytes, link);
}

double BroadcastTime(size_t p, double bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  return formulas::Broadcast(p, bytes, link);
}

double AlltoallTime(size_t p, double per_pair_bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  return formulas::Alltoall(p, per_pair_bytes, link);
}

double GatherTime(size_t p, double per_rank_bytes, const LinkSpec& link) {
  ESP_CHECK_GT(p, 0u);
  return formulas::Gather(p, per_rank_bytes, link);
}

}  // namespace espresso

#include "src/sim/engine.h"

#include <algorithm>

#include "src/util/logging.h"

namespace espresso {

ResourceId SimEngine::AddSerialResource(std::string name) {
  return AddPoolResource(std::move(name), 1);
}

ResourceId SimEngine::AddPoolResource(std::string name, size_t lanes) {
  ESP_CHECK(!ran_);
  ESP_CHECK_GT(lanes, 0u);
  Resource res;
  res.name = std::move(name);
  res.lanes = lanes;
  for (size_t i = 0; i < lanes; ++i) {
    res.lane_free.push(0.0);
  }
  resources_.push_back(std::move(res));
  return static_cast<ResourceId>(resources_.size() - 1);
}

void SimEngine::AddDependent(TaskId from, TaskId to) {
  Task& task = tasks_[from];
  if (task.dependent_count < 2) {
    task.dependents[task.dependent_count] = to;
  } else {
    overflow_dependents_.emplace_back(from, to);
  }
  ++task.dependent_count;
  ++tasks_[to].unmet_deps;
}

TaskId SimEngine::AddTask(std::string name, ResourceId resource, double duration,
                          const std::vector<TaskId>& deps, int priority) {
  const TaskId id = AddTaskAfter(std::move(name), resource, duration, kNoDependency, priority);
  for (TaskId dep : deps) {
    ESP_CHECK_GE(dep, 0);
    ESP_CHECK_LT(dep, id);
    AddDependent(dep, id);
  }
  return id;
}

TaskId SimEngine::AddTaskAfter(std::string name, ResourceId resource, double duration,
                               TaskId dep, int priority) {
  ESP_CHECK(!ran_);
  ESP_CHECK_GE(resource, 0);
  ESP_CHECK_LT(static_cast<size_t>(resource), resources_.size());
  ESP_CHECK_GE(duration, 0.0);
  const auto id = static_cast<TaskId>(tasks_.size());
  Task task;
  task.name = std::move(name);
  task.resource = resource;
  task.duration = duration;
  task.priority = priority;
  tasks_.push_back(std::move(task));
  if (dep != kNoDependency) {
    ESP_CHECK_GE(dep, 0);
    ESP_CHECK_LT(dep, id);
    AddDependent(dep, id);
  }
  return id;
}

void SimEngine::SetResourceSpeedFactor(ResourceId id, double factor) {
  ESP_CHECK(!ran_);
  ESP_CHECK_GE(id, 0);
  ESP_CHECK_LT(static_cast<size_t>(id), resources_.size());
  ESP_CHECK_GT(factor, 0.0) << "resource speed factor must be positive";
  resources_[id].speed_factor = factor;
}

void SimEngine::MakeEligible(TaskId id) {
  const Task& task = tasks_[id];
  resources_[task.resource].eligible.push({task.priority, id});
}

void SimEngine::Run() {
  ESP_CHECK(!ran_);
  ran_ = true;

  // Completion events ordered by (time, task id) for determinism.
  using Event = std::pair<double, TaskId>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  auto dispatch = [&](ResourceId rid, double now) {
    Resource& res = resources_[rid];
    while (!res.eligible.empty() && res.lane_free.top() <= now) {
      res.lane_free.pop();
      const TaskId id = res.eligible.top().second;
      res.eligible.pop();
      Task& task = tasks_[id];
      task.start = now;
      task.end = now + task.duration / res.speed_factor;
      res.lane_free.push(task.end);
      events.push({task.end, id});
    }
  };

  for (TaskId id = 0; id < static_cast<TaskId>(tasks_.size()); ++id) {
    if (tasks_[id].unmet_deps == 0) {
      MakeEligible(id);
    }
  }
  for (ResourceId rid = 0; rid < static_cast<ResourceId>(resources_.size()); ++rid) {
    dispatch(rid, 0.0);
  }

  size_t completed = 0;
  ResourceId touched[8];
  while (!events.empty()) {
    const auto [now, id] = events.top();
    events.pop();
    ++completed;
    size_t touched_count = 0;
    bool touched_overflow = false;
    touched[touched_count++] = tasks_[id].resource;
    ForEachDependent(id, [&](TaskId dep) {
      if (--tasks_[dep].unmet_deps == 0) {
        MakeEligible(dep);
        const ResourceId rid = tasks_[dep].resource;
        bool seen = false;
        for (size_t i = 0; i < touched_count; ++i) {
          if (touched[i] == rid) {
            seen = true;
            break;
          }
        }
        if (!seen) {
          if (touched_count < 8) {
            touched[touched_count++] = rid;
          } else {
            touched_overflow = true;
          }
        }
      }
    });
    if (touched_overflow) {
      for (ResourceId rid = 0; rid < static_cast<ResourceId>(resources_.size()); ++rid) {
        dispatch(rid, now);
      }
    } else {
      for (size_t i = 0; i < touched_count; ++i) {
        dispatch(touched[i], now);
      }
    }
  }
  ESP_CHECK_EQ(completed, tasks_.size()) << "dependency cycle or unreachable task";
}

double SimEngine::TaskStart(TaskId id) const {
  ESP_CHECK(ran_);
  ESP_CHECK_GE(id, 0);
  ESP_CHECK_LT(static_cast<size_t>(id), tasks_.size());
  return tasks_[id].start;
}

double SimEngine::TaskEnd(TaskId id) const {
  ESP_CHECK(ran_);
  ESP_CHECK_GE(id, 0);
  ESP_CHECK_LT(static_cast<size_t>(id), tasks_.size());
  return tasks_[id].end;
}

double SimEngine::Makespan() const {
  ESP_CHECK(ran_);
  double makespan = 0.0;
  for (const Task& task : tasks_) {
    makespan = std::max(makespan, task.end);
  }
  return makespan;
}

const std::string& SimEngine::ResourceName(ResourceId id) const {
  ESP_CHECK_GE(id, 0);
  ESP_CHECK_LT(static_cast<size_t>(id), resources_.size());
  return resources_[id].name;
}

std::vector<TaskRecord> SimEngine::Records() const {
  ESP_CHECK(ran_);
  std::vector<TaskRecord> records;
  records.reserve(tasks_.size());
  for (const Task& task : tasks_) {
    records.push_back(
        TaskRecord{task.name, task.resource, task.start, task.end, task.priority});
  }
  return records;
}

}  // namespace espresso

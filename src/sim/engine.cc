#include "src/sim/engine.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace espresso {

namespace {

struct EngineMetrics {
  obs::Counter runs;
  obs::Counter tasks;
};

const EngineMetrics& Metrics() {
  static const EngineMetrics metrics = [] {
    obs::MetricsRegistry& r = obs::GlobalMetrics();
    EngineMetrics m;
    m.runs = r.RegisterCounter("espresso_sim_runs_total",
                               "Discrete-event simulation runs (SimEngine::Run)");
    m.tasks = r.RegisterCounter("espresso_sim_tasks_total",
                                "Tasks dispatched across all simulation runs");
    return m;
  }();
  return metrics;
}

}  // namespace

ResourceId SimEngine::AddSerialResource(std::string name) {
  return AddPoolResource(std::move(name), 1);
}

ResourceId SimEngine::AddPoolResource(std::string name, size_t lanes) {
  ESP_CHECK(!ran_);
  ESP_CHECK_GT(lanes, 0u);
  Resource res;
  res.name = std::move(name);
  res.lane_free.assign(lanes, 0.0);
  resources_.push_back(std::move(res));
  return static_cast<ResourceId>(resources_.size() - 1);
}

TaskId SimEngine::AddTask(std::string name, ResourceId resource, double duration,
                          const std::vector<TaskId>& deps, int priority) {
  const TaskId id = AddTaskAfter(std::move(name), resource, duration, kNoDependency, priority);
  for (TaskId dep : deps) {
    ESP_CHECK_GE(dep, 0);
    ESP_CHECK_LT(dep, id);
    AddDependent(dep, id);
  }
  return id;
}

TaskId SimEngine::AddTaskAfter(std::string name, ResourceId resource, double duration,
                               TaskId dep, int priority) {
  ESP_CHECK(!ran_);
  ESP_CHECK_GE(resource, 0);
  ESP_CHECK_LT(static_cast<size_t>(resource), resources_.size());
  ESP_CHECK_GE(duration, 0.0);
  const auto id = static_cast<TaskId>(tasks_.size());
  Task task;
  task.resource = resource;
  task.duration = duration;
  task.priority = priority;
  tasks_.push_back(task);
  if (!name.empty()) {
    names_.emplace_back(id, std::move(name));
  }
  if (dep != kNoDependency) {
    ESP_CHECK_GE(dep, 0);
    ESP_CHECK_LT(dep, id);
    AddDependent(dep, id);
  }
  return id;
}

void SimEngine::SetResourceSpeedFactor(ResourceId id, double factor) {
  ESP_CHECK(!ran_);
  ESP_CHECK_GE(id, 0);
  ESP_CHECK_LT(static_cast<size_t>(id), resources_.size());
  ESP_CHECK_GT(factor, 0.0) << "resource speed factor must be positive";
  resources_[id].speed_factor = factor;
}

void SimEngine::Reset() {
  tasks_.clear();
  names_.clear();
  overflow_dependents_.clear();
  event_heap_.clear();
  makespan_ = 0.0;
  ran_ = false;
  for (Resource& res : resources_) {
    // After Run() every eligible task has been dispatched; only the lane clocks need
    // rewinding. Speed factors go back to the profiled baseline as well, so a reused
    // engine starts from the same state as a freshly built one.
    ESP_CHECK(res.eligible.empty()) << "Reset() before Run() drained resource " << res.name;
    std::fill(res.lane_free.begin(), res.lane_free.end(), 0.0);
    res.speed_factor = 1.0;
  }
}

void SimEngine::Dispatch(Resource& res, double now) {
  const size_t lanes = res.lane_free.size();
  while (!res.eligible.empty()) {
    // Earliest-free lane by linear scan; lane counts here are 1 (serial resources) or
    // a handful of CPU workers, where the scan beats heap maintenance.
    size_t lane = 0;
    if (lanes > 1) {
      for (size_t l = 1; l < lanes; ++l) {
        if (res.lane_free[l] < res.lane_free[lane]) {
          lane = l;
        }
      }
    }
    if (res.lane_free[lane] > now) {
      break;
    }
    std::pop_heap(res.eligible.begin(), res.eligible.end(), std::greater<>());
    const TaskId id = static_cast<TaskId>(res.eligible.back() & 0xffffffffu);
    res.eligible.pop_back();
    Task& task = tasks_[id];
    task.start = now;
    task.end = now + task.duration / res.speed_factor;
    if (task.end > makespan_) {
      makespan_ = task.end;
    }
    res.lane_free[lane] = task.end;
    // Insertion into the descending-sorted event list; the list length tracks the
    // number of busy lanes (a handful), where a memmove beats heap maintenance.
    const std::pair<double, TaskId> event{task.end, id};
    auto it = std::lower_bound(
        event_heap_.begin(), event_heap_.end(), event,
        [](const std::pair<double, TaskId>& a, const std::pair<double, TaskId>& b) {
          return b < a;
        });
    event_heap_.insert(it, event);
  }
}

void SimEngine::Run() {
  ESP_CHECK(!ran_);
  ran_ = true;
  obs::MetricsRegistry& registry = obs::GlobalMetrics();
  registry.Add(Metrics().runs);
  registry.Add(Metrics().tasks, tasks_.size());

  for (TaskId id = 0; id < static_cast<TaskId>(tasks_.size()); ++id) {
    const Task& task = tasks_[id];
    if (task.unmet_deps == 0) {
      Resource& res = resources_[task.resource];
      res.eligible.push_back(EligibleKey(task.priority, id));
      std::push_heap(res.eligible.begin(), res.eligible.end(), std::greater<>());
    }
  }
  for (Resource& res : resources_) {
    Dispatch(res, 0.0);
  }

  size_t completed = 0;
  ResourceId touched[8];
  while (!event_heap_.empty()) {
    const auto [now, id] = event_heap_.back();
    event_heap_.pop_back();
    ++completed;
    size_t touched_count = 0;
    bool touched_overflow = false;
    touched[touched_count++] = tasks_[id].resource;
    ForEachDependent(id, [&](TaskId dep) {
      if (--tasks_[dep].unmet_deps == 0) {
        const Task& task = tasks_[dep];
        Resource& res = resources_[task.resource];
        res.eligible.push_back(EligibleKey(task.priority, dep));
        std::push_heap(res.eligible.begin(), res.eligible.end(), std::greater<>());
        const ResourceId rid = task.resource;
        bool seen = false;
        for (size_t i = 0; i < touched_count; ++i) {
          if (touched[i] == rid) {
            seen = true;
            break;
          }
        }
        if (!seen) {
          if (touched_count < 8) {
            touched[touched_count++] = rid;
          } else {
            touched_overflow = true;
          }
        }
      }
    });
    if (touched_overflow) {
      for (Resource& res : resources_) {
        Dispatch(res, now);
      }
    } else {
      for (size_t i = 0; i < touched_count; ++i) {
        Dispatch(resources_[touched[i]], now);
      }
    }
  }
  ESP_CHECK_EQ(completed, tasks_.size()) << "dependency cycle or unreachable task";
}

double SimEngine::TaskStart(TaskId id) const {
  ESP_CHECK(ran_);
  ESP_CHECK_GE(id, 0);
  ESP_CHECK_LT(static_cast<size_t>(id), tasks_.size());
  return tasks_[id].start;
}

double SimEngine::TaskEnd(TaskId id) const {
  ESP_CHECK(ran_);
  ESP_CHECK_GE(id, 0);
  ESP_CHECK_LT(static_cast<size_t>(id), tasks_.size());
  return tasks_[id].end;
}

double SimEngine::Makespan() const {
  ESP_CHECK(ran_);
  return makespan_;
}

const std::string& SimEngine::ResourceName(ResourceId id) const {
  ESP_CHECK_GE(id, 0);
  ESP_CHECK_LT(static_cast<size_t>(id), resources_.size());
  return resources_[id].name;
}

std::vector<TaskRecord> SimEngine::Records() const {
  ESP_CHECK(ran_);
  std::vector<TaskRecord> records;
  records.reserve(tasks_.size());
  for (const Task& task : tasks_) {
    records.push_back(TaskRecord{"", task.resource, task.start, task.end, task.priority});
  }
  for (const auto& [id, name] : names_) {
    records[id].name = name;
  }
  return records;
}

}  // namespace espresso

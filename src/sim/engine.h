// Deterministic discrete-event engine for deriving training timelines.
//
// The engine executes a DAG of tasks over contended resources:
//   * SerialResource — runs one task at a time (a GPU stream, the intra-machine fabric,
//     the inter-machine NIC). GPU compression kernels and backward-compute kernels share
//     the GPU stream, which is exactly how compression "competes for GPU resources with
//     tensor computation" (§3.1 Reason #1, Figure 2(c)).
//   * PoolResource — k parallel lanes (the host CPU cores used for CPU compression).
//
// A task becomes eligible when all dependencies complete; a free resource picks the
// eligible task with the smallest (priority, id). Everything is deterministic, so a
// strategy's timeline — and therefore F(S) — is a pure function of the inputs.
//
// This sits on the decision algorithm's innermost loop (thousands of timeline
// evaluations per strategy selection), so the task storage is allocation-light: names
// are optional, single dependencies avoid vectors, and the per-task dependent list is
// inlined for the common fan-outs (<= 2).
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

namespace espresso {

using TaskId = int32_t;
using ResourceId = int32_t;

struct TaskRecord {
  std::string name;
  ResourceId resource = -1;
  double start = 0.0;
  double end = 0.0;
  int priority = 0;
};

class SimEngine {
 public:
  SimEngine() = default;

  ResourceId AddSerialResource(std::string name);
  ResourceId AddPoolResource(std::string name, size_t lanes);

  // Scales a resource's execution speed: tasks on it take duration / factor. Factors
  // below 1 model degraded hardware (a straggler GPU, a contended link); the fault
  // injector drives this. Must be called before Run().
  void SetResourceSpeedFactor(ResourceId id, double factor);

  // Reserves task storage (optional; avoids reallocation in hot loops).
  void ReserveTasks(size_t count) { tasks_.reserve(count); }

  // Adds a task. Dependency ids must be smaller than the new task's id (the DAG is
  // built in topological order). `priority`: lower runs first among eligible tasks.
  TaskId AddTask(std::string name, ResourceId resource, double duration,
                 const std::vector<TaskId>& deps, int priority);
  // Single-dependency fast path; pass kNoDependency for a root task. (Separate name:
  // an overload would make AddTask(..., {}, 0) ambiguous — {} converts to TaskId 0.)
  TaskId AddTaskAfter(std::string name, ResourceId resource, double duration, TaskId dep,
                      int priority);

  static constexpr TaskId kNoDependency = -1;

  // Runs the simulation to completion. May be called once per engine.
  void Run();

  double TaskStart(TaskId id) const;
  double TaskEnd(TaskId id) const;
  // Completion time of the last task (0.0 for an empty DAG).
  double Makespan() const;

  const std::string& ResourceName(ResourceId id) const;
  size_t TaskCount() const { return tasks_.size(); }
  // Finished-task records in id order; valid after Run().
  std::vector<TaskRecord> Records() const;

 private:
  struct Task {
    std::string name;
    ResourceId resource;
    double duration;
    int priority;
    // Dependent edges, inlined for fan-out <= 2 (the common case in tensor pipelines);
    // larger fan-outs spill into overflow_dependents_ keyed by task id.
    TaskId dependents[2] = {kNoDependency, kNoDependency};
    int32_t dependent_count = 0;
    int32_t unmet_deps = 0;
    double start = -1.0;
    double end = -1.0;
  };

  struct Resource {
    std::string name;
    size_t lanes = 1;
    double speed_factor = 1.0;
    // Free time per lane (min-heap).
    std::priority_queue<double, std::vector<double>, std::greater<>> lane_free;
    // Eligible tasks ordered by (priority, id); each task is pushed exactly once.
    std::priority_queue<std::pair<int, TaskId>, std::vector<std::pair<int, TaskId>>,
                        std::greater<>>
        eligible;
  };

  void AddDependent(TaskId from, TaskId to);
  void MakeEligible(TaskId id);
  template <typename Fn>
  void ForEachDependent(TaskId id, Fn&& fn) const;

  std::vector<Task> tasks_;
  std::vector<Resource> resources_;
  // task id -> extra dependents beyond the inline pair (rare).
  std::vector<std::pair<TaskId, TaskId>> overflow_dependents_;
  bool ran_ = false;
};

template <typename Fn>
void SimEngine::ForEachDependent(TaskId id, Fn&& fn) const {
  const Task& task = tasks_[id];
  for (int32_t i = 0; i < task.dependent_count && i < 2; ++i) {
    fn(task.dependents[i]);
  }
  if (task.dependent_count > 2) {
    for (const auto& [from, to] : overflow_dependents_) {
      if (from == id) {
        fn(to);
      }
    }
  }
}

}  // namespace espresso

#endif  // SRC_SIM_ENGINE_H_

// Deterministic discrete-event engine for deriving training timelines.
//
// The engine executes a DAG of tasks over contended resources:
//   * SerialResource — runs one task at a time (a GPU stream, the intra-machine fabric,
//     the inter-machine NIC). GPU compression kernels and backward-compute kernels share
//     the GPU stream, which is exactly how compression "competes for GPU resources with
//     tensor computation" (§3.1 Reason #1, Figure 2(c)).
//   * PoolResource — k parallel lanes (the host CPU cores used for CPU compression).
//
// A task becomes eligible when all dependencies complete; a free resource picks the
// eligible task with the smallest (priority, id). Everything is deterministic, so a
// strategy's timeline — and therefore F(S) — is a pure function of the inputs.
//
// This sits on the decision algorithm's innermost loop (thousands of timeline
// evaluations per strategy selection), so the task storage is tuned for it: Task is a
// small POD (names live in a side table and are stored only when non-empty), single
// dependencies avoid vectors, the per-task dependent list is inlined for the common
// fan-outs (<= 2), eligible tasks order by one packed 64-bit key, and lane clocks are
// flat arrays rather than heaps (lane counts are tiny).
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace espresso {

using TaskId = int32_t;
using ResourceId = int32_t;

struct TaskRecord {
  std::string name;
  ResourceId resource = -1;
  double start = 0.0;
  double end = 0.0;
  int priority = 0;
};

class SimEngine {
 public:
  SimEngine() = default;

  ResourceId AddSerialResource(std::string name);
  ResourceId AddPoolResource(std::string name, size_t lanes);

  // Scales a resource's execution speed: tasks on it take duration / factor. Factors
  // below 1 model degraded hardware (a straggler GPU, a contended link); the fault
  // injector drives this. Must be called before Run().
  void SetResourceSpeedFactor(ResourceId id, double factor);

  // Reserves task storage (optional; avoids reallocation in hot loops).
  void ReserveTasks(size_t count) { tasks_.reserve(count); }

  // Adds a task. Dependency ids must be smaller than the new task's id (the DAG is
  // built in topological order). `priority`: lower runs first among eligible tasks.
  TaskId AddTask(std::string name, ResourceId resource, double duration,
                 const std::vector<TaskId>& deps, int priority);
  // Single-dependency fast path; pass kNoDependency for a root task. (Separate name:
  // an overload would make AddTask(..., {}, 0) ambiguous — {} converts to TaskId 0.)
  TaskId AddTaskAfter(std::string name, ResourceId resource, double duration, TaskId dep,
                      int priority);
  // AddTaskAfter without a name or per-call argument checks: the timeline evaluator's
  // inner loop, which adds tens of millions of tasks per strategy selection.
  TaskId AddChainTask(ResourceId resource, double duration, TaskId dep, int priority) {
    const auto id = static_cast<TaskId>(tasks_.size());
    Task task;
    task.resource = resource;
    task.duration = duration;
    task.priority = priority;
    tasks_.push_back(task);
    if (dep != kNoDependency) {
      AddDependent(dep, id);
    }
    return id;
  }

  static constexpr TaskId kNoDependency = -1;

  // Runs the simulation to completion. May be called once per engine (or once per
  // Reset() cycle).
  void Run();

  // Returns the engine to its pre-Run, no-tasks state while keeping every allocation:
  // task storage, the event heap, and the resources themselves (names, lanes) survive,
  // with lane clocks and speed factors reset. This is the hot-loop reuse path — the
  // decision algorithm's evaluation contexts run thousands of simulations on one
  // engine without reallocating.
  void Reset();

  double TaskStart(TaskId id) const;
  double TaskEnd(TaskId id) const;
  // Completion time of the last task (0.0 for an empty DAG).
  double Makespan() const;

  const std::string& ResourceName(ResourceId id) const;
  size_t TaskCount() const { return tasks_.size(); }
  // Finished-task records in id order; valid after Run().
  std::vector<TaskRecord> Records() const;

 private:
  struct Task {
    ResourceId resource;
    int priority;
    double duration;
    // Dependent edges, inlined for fan-out <= 2 (the common case in tensor pipelines);
    // larger fan-outs spill into overflow_dependents_ keyed by task id.
    TaskId dependents[2] = {kNoDependency, kNoDependency};
    int32_t dependent_count = 0;
    int32_t unmet_deps = 0;
    double start = -1.0;
    double end = -1.0;
  };

  struct Resource {
    std::string name;
    double speed_factor = 1.0;
    // Free time per lane; linear scans beat a heap at the lane counts that occur here
    // (1 for serial resources, a handful of CPU workers for the pool).
    std::vector<double> lane_free;
    // Eligible tasks as a binary min-heap of packed (priority, id) keys; each task is
    // pushed exactly once.
    std::vector<uint64_t> eligible;
  };

  // Packs (priority, id) so one integer comparison reproduces the (priority, id)
  // ordering; the sign-bit flip keeps negative priorities ordered correctly.
  static uint64_t EligibleKey(int priority, TaskId id) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(priority) ^ 0x80000000u) << 32) |
           static_cast<uint32_t>(id);
  }

  void AddDependent(TaskId from, TaskId to) {
    Task& task = tasks_[from];
    if (task.dependent_count < 2) {
      task.dependents[task.dependent_count] = to;
    } else {
      overflow_dependents_.emplace_back(from, to);
    }
    ++task.dependent_count;
    ++tasks_[to].unmet_deps;
  }
  void Dispatch(Resource& res, double now);
  template <typename Fn>
  void ForEachDependent(TaskId id, Fn&& fn) const;

  std::vector<Task> tasks_;
  std::vector<Resource> resources_;
  // task id -> name, only for tasks added with a non-empty name (cold path).
  std::vector<std::pair<TaskId, std::string>> names_;
  // task id -> extra dependents beyond the inline pair (rare).
  std::vector<std::pair<TaskId, TaskId>> overflow_dependents_;
  // Outstanding completion events sorted descending by (time, task id) — back() is the
  // next event. The list stays as short as the number of busy lanes, so sorted
  // insertion beats a binary heap. A member so Reset() keeps capacity.
  std::vector<std::pair<double, TaskId>> event_heap_;
  double makespan_ = 0.0;  // tracked during Run() to avoid a full post-run scan
  bool ran_ = false;
};

template <typename Fn>
void SimEngine::ForEachDependent(TaskId id, Fn&& fn) const {
  const Task& task = tasks_[id];
  for (int32_t i = 0; i < task.dependent_count && i < 2; ++i) {
    fn(task.dependents[i]);
  }
  if (task.dependent_count > 2) {
    for (const auto& [from, to] : overflow_dependents_) {
      if (from == id) {
        fn(to);
      }
    }
  }
}

}  // namespace espresso

#endif  // SRC_SIM_ENGINE_H_

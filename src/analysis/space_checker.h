// Whole-space strategy model checker + symbolic cost-model property auditor — the
// engine behind the espresso_check CLI.
//
// Three passes over one (model, cluster, compressor) configuration triple:
//
//   1. Space check (esc.space-unsound / esc.space-incomplete / esc.fingerprint-collision)
//      Enumerates the FULL decision-tree option space and proves
//        soundness:      every enumerated option (and its all-CPU device variant) passes
//                        the StrategyLinter with zero errors and ValidateOption;
//        completeness:   every one-edit mutant of every enumerated option (shared
//                        mutation engine, src/core/option_mutations.h) either fails the
//                        linter or canonicalizes back into the enumerated set — no
//                        linter-legal option exists one edit outside the space; the
//                        selector's candidate seeds and the default uncompressed option
//                        must canonicalize into the space too;
//        fingerprints:   the splitmix64 option fingerprints of every enumerated option,
//                        every device-choice variant (§4.2's 2^slots), and every legal
//                        mutant's canonical form are collision-free.
//
//   2. Cost audit (esc.interval-property)
//      Evaluates the cost model symbolically over declared parameter ranges
//      (src/costmodel/interval.h) and checks, for every op of every enumerated option at
//      the model's smallest/median/largest tensors on both devices:
//        non-negativity: the duration interval has lo >= 0;
//        containment:    the concrete TimelineEvaluator duration lies inside the
//                        interval (the symbolic model bounds the priced one);
//        conservation:   compressed payload bytes never exceed the raw domain bytes and
//                        CompressedBytes is monotone in the input size;
//      plus two whole-strategy properties per option (uniform strategy):
//        monotonicity:   F(S) is non-increasing as link bandwidth scales up (x0.5 -> x1
//                        -> x2), within a relative scheduling tolerance;
//        ub-dominance:   the Upper Bound configuration (zero compression cost, §5.1)
//                        never prices the same strategy above the real configuration.
//
//   3. Differential validation (esc.validator-split)
//      Builds a corpus of valid strategies (default, candidate seeds, seeded random
//      mixes of enumerated options), one-edit-corrupted variants, and byte-tampered IR
//      documents; compiles each through the strategy IR writer and requires that the
//      StrategyLinter verdict and the ValidateStrategyIR admission verdict agree on
//      every round-tripped document, and that tampered documents fail to parse. The
//      corpus can be emitted to disk (MANIFEST.tsv + .esp files) for the committed
//      regression corpus under tests/analysis/corpus/.
//
// `inject` plants one known violation per mode so CI can prove each pass actually
// fails: kMissingOption deletes the default option's enumerated twin (space pass),
// kCostNegative corrupts a parameter range to touch negative launch time (cost pass),
// kValidatorSplit flips one recorded lint verdict (differential pass).
#ifndef SRC_ANALYSIS_SPACE_CHECKER_H_
#define SRC_ANALYSIS_SPACE_CHECKER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/analysis/diagnostics.h"
#include "src/compress/compressor.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_profile.h"

namespace espresso {

namespace rules {
// espresso_check rule ids (docs/ANALYSIS.md).
inline constexpr const char* kEscSpaceUnsound = "esc.space-unsound";
inline constexpr const char* kEscSpaceIncomplete = "esc.space-incomplete";
inline constexpr const char* kEscFingerprintCollision = "esc.fingerprint-collision";
inline constexpr const char* kEscIntervalProperty = "esc.interval-property";
inline constexpr const char* kEscValidatorSplit = "esc.validator-split";
}  // namespace rules

enum class SpaceCheckInject {
  kNone = 0,
  kMissingOption,   // space pass must report esc.space-incomplete
  kCostNegative,    // cost pass must report esc.interval-property
  kValidatorSplit,  // differential pass must report esc.validator-split
};

struct SpaceCheckOptions {
  bool check_space = true;
  bool check_cost = true;
  bool check_differential = true;

  // Parameter spans for the symbolic audit: bandwidth in [nominal/span, nominal*span],
  // latency likewise (src/costmodel/interval.h).
  double bandwidth_span = 4.0;
  double latency_span = 4.0;

  // Relative tolerance for the whole-strategy F(S) properties (monotonicity,
  // ub-dominance). The timeline engine is a greedy list scheduler, so Graham-style
  // anomalies are expected: removing cost (or raising bandwidth) can reorder the
  // schedule and lengthen the makespan slightly. Observed anomalies reach ~0.7%
  // across the config sweep; violations beyond this slack are real.
  double fs_tolerance = 0.02;

  // Differential pass: number of seeded random mixed strategies, and the seed stream.
  size_t corpus_strategies = 4;
  uint64_t corpus_seed = 0x5ca1ab1eULL;

  // When non-empty, the differential pass writes the corpus (MANIFEST.tsv + .esp files)
  // into this directory (created if missing).
  std::string emit_corpus_dir;

  SpaceCheckInject inject = SpaceCheckInject::kNone;
};

struct SpaceCheckStats {
  size_t options = 0;                 // enumerated structural options
  size_t device_choices = 0;          // with 2^slots device assignments
  size_t mutants_total = 0;
  size_t mutants_rejected = 0;        // failed the linter (as they must)
  size_t mutants_reenumerated = 0;    // legal and canonicalized into the space
  size_t fingerprints_audited = 0;
  size_t fingerprint_collisions = 0;
  size_t interval_checks = 0;
  size_t monotonicity_checks = 0;
  size_t differential_valid = 0;
  size_t differential_corrupted = 0;
  size_t differential_tampered = 0;
  size_t corpus_files_written = 0;
};

struct SpaceCheckResult {
  DiagnosticReport report;
  SpaceCheckStats stats;

  bool ok() const { return !report.HasErrors(); }
};

// Runs the requested passes over one configuration triple. `compressor_config` must be
// the configuration `compressor` was created from (the IR compiler digests it).
SpaceCheckResult CheckStrategySpace(const ModelProfile& model, const ClusterSpec& cluster,
                                    const Compressor& compressor,
                                    const CompressorConfig& compressor_config,
                                    size_t max_compress_ops,
                                    const SpaceCheckOptions& options = {});

}  // namespace espresso

#endif  // SRC_ANALYSIS_SPACE_CHECKER_H_

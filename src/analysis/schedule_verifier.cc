#include "src/analysis/schedule_verifier.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <string>

namespace espresso {

namespace {

WitnessInterval Witness(const TimelineEntry& e) {
  return WitnessInterval{e.tensor, e.kind, e.resource, e.start, e.end};
}

std::string Describe(const TimelineEntry& e) {
  std::ostringstream os;
  os << "tensor " << e.tensor << " " << e.kind << " on " << e.resource << " ["
     << e.start << ", " << e.end << ")";
  return os.str();
}

void AddWitnessed(DiagnosticReport* report, const char* rule, size_t tensor,
                  const std::string& message, const std::string& hint,
                  const TimelineEntry& a, const TimelineEntry* b = nullptr) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.rule = rule;
  d.tensor = tensor;
  d.message = message;
  d.fix_hint = hint;
  d.witnesses.push_back(Witness(a));
  if (b != nullptr) {
    d.witnesses.push_back(Witness(*b));
  }
  report->Add(std::move(d));
}

// Prefix-minimum Fenwick tree over compressed coordinates, used by the WFBP priority
// audit to answer "among ops that start later, what is the smallest tensor id whose
// ready time is <= t" in O(log n).
class PrefixMinTree {
 public:
  explicit PrefixMinTree(size_t size)
      : tree_(size + 1, std::numeric_limits<size_t>::max()) {}

  void Update(size_t index, size_t value) {
    for (size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] = std::min(tree_[i], value);
    }
  }

  // Minimum value over indices [0, index].
  size_t Query(size_t index) const {
    size_t best = std::numeric_limits<size_t>::max();
    for (size_t i = index + 1; i > 0; i -= i & (~i + 1)) {
      best = std::min(best, tree_[i]);
    }
    return best;
  }

 private:
  std::vector<size_t> tree_;
};

struct ScheduledOp {
  size_t entry_index;
  double start;
  double ready;   // chain predecessor's end (backward compute for the first op)
  size_t tensor;  // WFBP priority: lower tensor index runs first
};

class ScheduleChecker {
 public:
  ScheduleChecker(const std::vector<TimelineEntry>& entries, const VerifierConfig& config,
                  DiagnosticReport* report)
      : entries_(entries), config_(config), report_(report) {}

  void Run() {
    CheckSanity();
    BuildChains();
    CheckCausality();
    CheckSerialResources();
    CheckPoolOccupancy();
  }

 private:
  void CheckSanity() {
    for (const TimelineEntry& e : entries_) {
      if (!std::isfinite(e.start) || !std::isfinite(e.end)) {
        AddWitnessed(report_, rules::kNonFiniteTime, e.tensor,
                     "non-finite interval endpoint: " + Describe(e),
                     "cost models must return finite durations", e);
        continue;
      }
      if (e.end < e.start - config_.epsilon) {
        AddWitnessed(report_, rules::kNegativeDuration, e.tensor,
                     "interval ends before it starts: " + Describe(e),
                     "durations must be non-negative", e);
      }
      if (e.start < -config_.epsilon) {
        AddWitnessed(report_, rules::kNegativeDuration, e.tensor,
                     "interval starts before t=0: " + Describe(e),
                     "the iteration clock starts at backward-compute time zero", e);
      }
    }
  }

  // Entries of one tensor arrive in pipeline (dependency-chain) order; record each
  // op's chain predecessor and its readiness time.
  void BuildChains() {
    std::map<size_t, size_t> last_of_tensor;  // tensor -> entry index of chain tail
    size_t last_compute = SIZE_MAX;
    chain_pred_.assign(entries_.size(), SIZE_MAX);
    ready_.assign(entries_.size(), 0.0);
    for (size_t i = 0; i < entries_.size(); ++i) {
      const TimelineEntry& e = entries_[i];
      const auto it = last_of_tensor.find(e.tensor);
      if (it != last_of_tensor.end()) {
        chain_pred_[i] = it->second;
        ready_[i] = entries_[it->second].end;
        it->second = i;
      } else {
        // Chain head. Backward compute itself chains behind the previous tensor's
        // compute (WFBP produces gradients in tensor order).
        if (e.kind == "compute" && last_compute != SIZE_MAX) {
          chain_pred_[i] = last_compute;
          ready_[i] = entries_[last_compute].end;
        }
        last_of_tensor.emplace(e.tensor, i);
      }
      if (e.kind == "compute") {
        last_compute = i;
      }
    }
  }

  void CheckCausality() {
    for (size_t i = 0; i < entries_.size(); ++i) {
      const size_t pred = chain_pred_[i];
      if (pred == SIZE_MAX) {
        continue;
      }
      if (entries_[i].start < entries_[pred].end - config_.epsilon) {
        AddWitnessed(report_, rules::kCausality, entries_[i].tensor,
                     Describe(entries_[i]) + " starts before its chain predecessor " +
                         Describe(entries_[pred]) + " ends",
                     "an op cannot run before the payload it consumes exists",
                     entries_[pred], &entries_[i]);
      }
    }
  }

  void CheckSerialResources() {
    // Group entry indices per resource; every resource except the cpu pool is serial.
    std::map<std::string, std::vector<size_t>> per_resource;
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].resource != "cpu") {
        per_resource[entries_[i].resource].push_back(i);
      }
    }
    for (auto& [resource, indices] : per_resource) {
      std::sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
        return entries_[a].start < entries_[b].start;
      });
      // Zero-duration intervals occupy no time and may legally coincide with any
      // boundary instant, so only positive-length intervals can double-book.
      std::vector<size_t> timed;
      timed.reserve(indices.size());
      for (size_t idx : indices) {
        if (entries_[idx].end > entries_[idx].start + config_.epsilon) {
          timed.push_back(idx);
        }
      }
      // Compare each interval against the latest-ending predecessor, not just the
      // adjacent one, so an interval nested inside a long one is still caught.
      for (size_t k = 1, latest = 0; k < timed.size(); ++k) {
        const TimelineEntry& prev = entries_[timed[latest]];
        const TimelineEntry& cur = entries_[timed[k]];
        if (cur.start < prev.end - config_.epsilon) {
          AddWitnessed(report_, rules::kSerialOverlap, cur.tensor,
                       "double-booked serial resource '" + resource + "': " +
                           Describe(prev) + " overlaps " + Describe(cur),
                       "serial resources run one task at a time", prev, &cur);
        }
        if (cur.end > prev.end) {
          latest = k;
        }
      }
      if (config_.check_priority) {
        CheckPriority(resource, indices);
      }
    }
  }

  // WFBP/FIFO priority: when the resource started op A, no op B of a
  // closer-to-the-output tensor (smaller index) that was already ready may still be
  // waiting. Answered with a sweep from the latest start backwards, inserting each
  // later-starting op into a prefix-min tree keyed by its ready time.
  void CheckPriority(const std::string& resource, const std::vector<size_t>& sorted) {
    std::vector<ScheduledOp> ops;
    ops.reserve(sorted.size());
    for (size_t idx : sorted) {
      ops.push_back(ScheduledOp{idx, entries_[idx].start, ready_[idx],
                                entries_[idx].tensor});
    }
    // Coordinate-compress ready times.
    std::vector<double> ready_times;
    ready_times.reserve(ops.size());
    for (const ScheduledOp& op : ops) {
      ready_times.push_back(op.ready);
    }
    std::sort(ready_times.begin(), ready_times.end());
    ready_times.erase(std::unique(ready_times.begin(), ready_times.end()),
                      ready_times.end());
    auto ready_rank = [&](double t) {
      return static_cast<size_t>(
          std::lower_bound(ready_times.begin(), ready_times.end(), t) -
          ready_times.begin());
    };
    // tensor -> min-ready op inserted so far, for witness reconstruction.
    std::map<size_t, const ScheduledOp*> by_tensor;
    PrefixMinTree tree(ready_times.size());
    // Sweep queries from the latest start backwards; `inserted` walks down behind the
    // query so only ops starting strictly later than the queried op are in the tree
    // (simultaneous starts are not "waiting", they are zero-duration ties).
    size_t inserted = ops.size();
    for (size_t k = ops.size(); k-- > 0;) {
      const ScheduledOp& a = ops[k];
      while (inserted > 0 && ops[inserted - 1].start > a.start + config_.epsilon) {
        --inserted;
        const ScheduledOp& b = ops[inserted];
        tree.Update(ready_rank(b.ready), b.tensor);
        const auto it = by_tensor.find(b.tensor);
        if (it == by_tensor.end() || it->second->ready > b.ready) {
          by_tensor[b.tensor] = &b;
        }
      }
      // Smallest tensor among later-starting ops ready strictly before a started.
      const double cutoff = a.start - config_.epsilon;
      const auto upper = std::upper_bound(ready_times.begin(), ready_times.end(), cutoff);
      if (upper != ready_times.begin()) {
        const size_t best = tree.Query(static_cast<size_t>(upper - ready_times.begin()) - 1);
        if (best < a.tensor) {
          const ScheduledOp* b = by_tensor[best];
          AddWitnessed(report_, rules::kPriorityInversion, a.tensor,
                       "WFBP priority inversion on '" + resource + "': " +
                           Describe(entries_[a.entry_index]) + " ran while ready op " +
                           Describe(entries_[b->entry_index]) + " of tensor " +
                           std::to_string(b->tensor) +
                           " (closer to the output layer) waited",
                       "serial resources must pick the smallest ready tensor index "
                       "(FIFO within the WFBP order)",
                       entries_[a.entry_index], &entries_[b->entry_index]);
        }
      }
    }
  }

  void CheckPoolOccupancy() {
    struct Event {
      double time;
      int delta;  // +1 start, -1 end
      size_t entry_index;
    };
    std::vector<Event> events;
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].resource != "cpu" || entries_[i].end <= entries_[i].start) {
        continue;
      }
      events.push_back(Event{entries_[i].start, +1, i});
      events.push_back(Event{entries_[i].end, -1, i});
    }
    std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
      if (a.time != b.time) {
        return a.time < b.time;
      }
      return a.delta < b.delta;  // ends release lanes before starts claim them
    });
    size_t occupancy = 0;
    size_t reported = 0;
    for (const Event& ev : events) {
      if (ev.delta > 0) {
        ++occupancy;
        if (occupancy > config_.cpu_workers && reported < 3) {
          ++reported;
          AddWitnessed(report_, rules::kPoolOvercommit, entries_[ev.entry_index].tensor,
                       "cpu pool holds " + std::to_string(occupancy) +
                           " concurrent tasks but has " +
                           std::to_string(config_.cpu_workers) + " workers; " +
                           Describe(entries_[ev.entry_index]) + " exceeded the pool",
                       "pool occupancy may never exceed cpu_workers_per_gpu",
                       entries_[ev.entry_index]);
        }
      } else {
        --occupancy;
      }
    }
  }

  const std::vector<TimelineEntry>& entries_;
  const VerifierConfig& config_;
  DiagnosticReport* report_;
  std::vector<size_t> chain_pred_;
  std::vector<double> ready_;
};

const char* ExpectedKind(const Op& op) {
  switch (op.task) {
    case ActionTask::kCompress:
      return "compress";
    case ActionTask::kDecompress:
      return "decompress";
    case ActionTask::kComm:
      return RoutineName(op.routine);
  }
  return "?";
}

// Option-level payload-flow conservation: a compress op's payload covers exactly its
// domain, a comm op never sends more than its domain, and a decompress op's fan_in
// payloads cover the domain it reconstructs. Together with the one-to-one entry/op
// correspondence this pins byte conservation across compress -> comm -> decompress.
void CheckPayloadFlow(const CompressionOption& option, size_t tensor,
                      DiagnosticReport* report) {
  constexpr double kEps = 1e-9;
  for (size_t k = 0; k < option.ops.size(); ++k) {
    const Op& op = option.ops[k];
    std::string where = "op " + std::to_string(k) + " (" + ExpectedKind(op) + ")";
    switch (op.task) {
      case ActionTask::kCompress:
        if (std::abs(op.payload_fraction - op.domain_fraction) > kEps) {
          report->AddError(rules::kBytesNotConserved, tensor,
                           where + " compresses domain " +
                               std::to_string(op.domain_fraction) + " into coverage " +
                               std::to_string(op.payload_fraction),
                           "compression output must cover the compressed domain");
        }
        break;
      case ActionTask::kDecompress:
        if (static_cast<double>(op.fan_in) * op.payload_fraction <
            op.domain_fraction - kEps) {
          report->AddError(rules::kBytesNotConserved, tensor,
                           where + ": " + std::to_string(op.fan_in) +
                               " payload(s) of coverage " +
                               std::to_string(op.payload_fraction) +
                               " cannot reconstruct domain " +
                               std::to_string(op.domain_fraction),
                           "fan_in * payload_fraction must cover the domain");
        }
        break;
      case ActionTask::kComm:
        if (op.payload_fraction > op.domain_fraction + kEps) {
          report->AddError(rules::kBytesNotConserved, tensor,
                           where + " sends payload " +
                               std::to_string(op.payload_fraction) +
                               " exceeding its domain " +
                               std::to_string(op.domain_fraction),
                           "a rank cannot contribute more data than it holds");
        }
        break;
    }
  }
}

}  // namespace

DiagnosticReport VerifySchedule(const std::vector<TimelineEntry>& entries,
                                const VerifierConfig& config) {
  DiagnosticReport report;
  ScheduleChecker(entries, config, &report).Run();
  return report;
}

DiagnosticReport VerifySimulatedTimeline(const Strategy& strategy,
                                         const std::vector<TimelineEntry>& entries,
                                         const VerifierConfig& config) {
  DiagnosticReport report = VerifySchedule(entries, config);

  // Strategy correspondence: per tensor, the non-hostcopy entries must be the backward
  // compute followed by the option's ops, one entry per op, in order.
  std::map<size_t, std::vector<const TimelineEntry*>> per_tensor;
  for (const TimelineEntry& e : entries) {
    if (e.kind != "hostcopy") {
      per_tensor[e.tensor].push_back(&e);
    }
  }
  for (size_t i = 0; i < strategy.options.size(); ++i) {
    const CompressionOption& option = strategy.options[i];
    CheckPayloadFlow(option, i, &report);
    const auto it = per_tensor.find(i);
    if (it == per_tensor.end()) {
      report.AddError(rules::kOpCountMismatch, i,
                      "tensor has no timeline entries but its option has " +
                          std::to_string(option.ops.size()) + " ops",
                      "every tensor's pipeline must be scheduled");
      continue;
    }
    const std::vector<const TimelineEntry*>& seq = it->second;
    if (seq.size() != option.ops.size() + 1 || seq[0]->kind != "compute") {
      report.AddError(rules::kOpCountMismatch, i,
                      "expected compute + " + std::to_string(option.ops.size()) +
                          " op entries, found " + std::to_string(seq.size()),
                      "the schedule must contain exactly one interval per pipeline op");
      continue;
    }
    for (size_t k = 0; k < option.ops.size(); ++k) {
      const char* expected = ExpectedKind(option.ops[k]);
      if (seq[k + 1]->kind != expected) {
        AddWitnessed(&report, rules::kOpCountMismatch, i,
                     "pipeline op " + std::to_string(k) + " should schedule as '" +
                         expected + "' but the timeline shows '" + seq[k + 1]->kind + "'",
                     "entries must mirror the option's op sequence", *seq[k + 1]);
      }
    }
  }
  for (const auto& [tensor, seq] : per_tensor) {
    if (tensor >= strategy.options.size()) {
      report.AddError(rules::kOpCountMismatch, tensor,
                      "timeline references tensor " + std::to_string(tensor) +
                          " beyond the strategy's " +
                          std::to_string(strategy.options.size()) + " tensors",
                      "strategies are index-aligned with the model's tensors");
    }
  }
  return report;
}

}  // namespace espresso

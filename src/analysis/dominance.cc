#include "src/analysis/dominance.h"

#include <cmath>
#include <string>

#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/core/timeline.h"
#include "src/core/upper_bound.h"

namespace espresso {

namespace {

void CheckLink(const LinkSpec& link, const std::string& which, DiagnosticReport* report) {
  if (!(link.latency_s >= 0.0) || !std::isfinite(link.latency_s)) {
    report->AddError(rules::kAlphaRange, Diagnostic::kStrategyScope,
                     which + " link '" + link.name + "' has alpha (latency) " +
                         std::to_string(link.latency_s),
                     "per-message startup cost must be finite and non-negative");
  }
  if (!(link.bytes_per_second > 0.0) || !std::isfinite(link.bytes_per_second)) {
    report->AddError(rules::kBetaRange, Diagnostic::kStrategyScope,
                     which + " link '" + link.name + "' has bandwidth " +
                         std::to_string(link.bytes_per_second) + " bytes/s",
                     "1/beta must be finite and strictly positive");
  }
}

void CheckDeviceSpec(const DeviceCostSpec& spec, const std::string& which,
                     DiagnosticReport* report) {
  if (!(spec.launch_overhead_s >= 0.0) || !(spec.compress_bytes_per_s > 0.0) ||
      !(spec.decompress_bytes_per_s > 0.0)) {
    report->AddError(rules::kNegativeDurationModel, Diagnostic::kStrategyScope,
                     which + " compression cost spec is out of range (overhead=" +
                         std::to_string(spec.launch_overhead_s) + ", compress=" +
                         std::to_string(spec.compress_bytes_per_s) + " B/s, decompress=" +
                         std::to_string(spec.decompress_bytes_per_s) + " B/s)",
                     "launch overhead must be >= 0 and throughputs > 0");
  }
}

}  // namespace

DiagnosticReport CheckCostModelSanity(const ModelProfile& model, const ClusterSpec& cluster,
                                      const Compressor& compressor) {
  DiagnosticReport report;
  CheckLink(cluster.intra, "intra", &report);
  CheckLink(cluster.inter, "inter", &report);
  CheckDeviceSpec(cluster.gpu_compression, "gpu", &report);
  CheckDeviceSpec(cluster.cpu_compression, "cpu", &report);
  if (report.HasErrors()) {
    return report;  // op durations would just repeat the same root causes
  }

  // Sweep every candidate op over a spread of tensor sizes; durations must come back
  // finite and non-negative (monotonicity of the alpha-beta model in the op size).
  TimelineEvaluator evaluator(model, cluster, compressor);
  const TreeConfig tree{cluster.machines, cluster.gpus_per_machine,
                        compressor.SupportsCompressedAggregation()};
  for (const CompressionOption& option : CandidateOptions(tree)) {
    for (const size_t elements : {size_t{1} << 10, size_t{1} << 20, size_t{1} << 26}) {
      for (const Op& op : option.ops) {
        const double duration = evaluator.OpDuration(op, elements);
        if (!std::isfinite(duration) || duration < 0.0) {
          report.AddError(rules::kNegativeDurationModel, Diagnostic::kStrategyScope,
                          "option [" + option.label + "] prices an op at " +
                              std::to_string(duration) + "s for " +
                              std::to_string(elements) + " elements",
                          "cost models must return finite, non-negative durations");
        }
      }
    }
  }
  return report;
}

DominanceResult CheckDominance(const ModelProfile& model, const ClusterSpec& cluster,
                               const Compressor& compressor, const Strategy& strategy,
                               const DominanceOptions& options) {
  DominanceResult result;
  result.report = CheckCostModelSanity(model, cluster, compressor);

  TimelineEvaluator evaluator(model, cluster, compressor);
  result.checked_iteration_time = evaluator.IterationTime(strategy);

  result.baselines.emplace_back("fp32", evaluator.IterationTime(Fp32Strategy(model, cluster)));
  result.baselines.emplace_back(
      "hipress", evaluator.IterationTime(HiPressStrategy(model, cluster, compressor)));
  result.baselines.emplace_back(
      "hitopkcomm", evaluator.IterationTime(HiTopKCommStrategy(model, cluster, compressor)));
  result.baselines.emplace_back(
      "bytepscompress",
      evaluator.IterationTime(BytePSCompressStrategy(model, cluster, compressor)));

  for (const auto& [name, baseline_time] : result.baselines) {
    if (result.checked_iteration_time > baseline_time * (1.0 + options.tolerance)) {
      result.report.AddError(
          rules::kWorseThanBaseline, Diagnostic::kStrategyScope,
          "strategy F(S) = " + std::to_string(result.checked_iteration_time) +
              "s is dominated by baseline '" + name + "' at " +
              std::to_string(baseline_time) + "s",
          "Espresso's search space contains every baseline; losing to one means the "
          "selector or cost model regressed");
    } else if (result.checked_iteration_time > baseline_time) {
      result.report.AddNote(rules::kWorseThanBaseline, Diagnostic::kStrategyScope,
                            "strategy ties baseline '" + name + "' within tolerance (" +
                                std::to_string(result.checked_iteration_time) + "s vs " +
                                std::to_string(baseline_time) + "s)");
    }
  }

  const UpperBoundResult bound = ComputeUpperBound(model, cluster, compressor);
  result.upper_bound_iteration_time = bound.iteration_time;
  if (result.checked_iteration_time < bound.iteration_time * (1.0 - options.tolerance)) {
    result.report.AddError(
        rules::kBeatsUpperBound, Diagnostic::kStrategyScope,
        "strategy F(S) = " + std::to_string(result.checked_iteration_time) +
            "s beats the zero-compression-cost Upper Bound " +
            std::to_string(bound.iteration_time) + "s",
        "nothing may beat free compression; the bound or the evaluator is broken");
  }
  return result;
}

}  // namespace espresso

// espresso_check: whole-space model checker + symbolic cost-model auditor.
//
// Proves, for one (model, gc, system) configuration triple, that
//   * the enumerated decision-tree option space is sound (every option lints clean) and
//     one-edit complete (no linter-legal option exists outside it), with collision-free
//     option fingerprints (pass 1);
//   * the cost model satisfies its interval properties over declared parameter ranges —
//     non-negative durations, symbolic bounds containing the concrete evaluation, byte
//     conservation, F(S) monotone in bandwidth, Upper-Bound dominance (pass 2);
//   * the StrategyLinter and the IR admission pipeline agree on a corpus of valid,
//     corrupted, and byte-tampered strategy documents (pass 3).
//
// Exit status: 0 all properties hold, 1 findings, 2 usage or input failure.
//
// Usage:
//   espresso_check <model.ini> <gc.ini> <system.ini>
//                  [--json <path>] [--emit-corpus <dir>]
//                  [--skip-space] [--skip-cost] [--skip-differential]
//                  [--inject missing-option|cost-negative|validator-split]
//
// --inject plants one known violation per pass (a deleted enumerated option, a negative
// launch-time range, a flipped lint verdict); CI runs all three modes and requires a
// non-zero exit, proving each pass can actually fail.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/analysis/space_checker.h"
#include "src/ddl/job_config.h"

namespace {

using namespace espresso;

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <model.ini> <gc.ini> <system.ini>\n"
               "         [--json <path>] [--emit-corpus <dir>]\n"
               "         [--skip-space] [--skip-cost] [--skip-differential]\n"
               "         [--inject missing-option|cost-negative|validator-split]\n";
  return 2;
}

void WriteStats(std::ostream& os, const SpaceCheckStats& stats) {
  os << "{\"options\": " << stats.options
     << ", \"device_choices\": " << stats.device_choices
     << ", \"mutants_total\": " << stats.mutants_total
     << ", \"mutants_rejected\": " << stats.mutants_rejected
     << ", \"mutants_reenumerated\": " << stats.mutants_reenumerated
     << ", \"fingerprints_audited\": " << stats.fingerprints_audited
     << ", \"fingerprint_collisions\": " << stats.fingerprint_collisions
     << ", \"interval_checks\": " << stats.interval_checks
     << ", \"monotonicity_checks\": " << stats.monotonicity_checks
     << ", \"differential_valid\": " << stats.differential_valid
     << ", \"differential_corrupted\": " << stats.differential_corrupted
     << ", \"differential_tampered\": " << stats.differential_tampered
     << ", \"corpus_files_written\": " << stats.corpus_files_written << "}";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string json_path;
  std::string inject;
  SpaceCheckOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (++i >= argc) return Usage(argv[0]);
      json_path = argv[i];
    } else if (arg == "--emit-corpus") {
      if (++i >= argc) return Usage(argv[0]);
      options.emit_corpus_dir = argv[i];
    } else if (arg == "--inject") {
      if (++i >= argc) return Usage(argv[0]);
      inject = argv[i];
    } else if (arg == "--skip-space") {
      options.check_space = false;
    } else if (arg == "--skip-cost") {
      options.check_cost = false;
    } else if (arg == "--skip-differential") {
      options.check_differential = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return Usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 3) {
    return Usage(argv[0]);
  }
  if (inject == "missing-option") {
    options.inject = SpaceCheckInject::kMissingOption;
  } else if (inject == "cost-negative") {
    options.inject = SpaceCheckInject::kCostNegative;
  } else if (inject == "validator-split") {
    options.inject = SpaceCheckInject::kValidatorSplit;
  } else if (!inject.empty()) {
    std::cerr << "unknown --inject mode: " << inject << "\n";
    return Usage(argv[0]);
  }

  const JobConfigResult loaded =
      LoadJobConfigFromFiles(positional[0], positional[1], positional[2]);
  if (!loaded.ok) {
    std::cerr << "error: " << loaded.error << "\n";
    return 2;
  }
  const JobConfig& job = loaded.job;
  const auto compressor = job.MakeCompressor();

  const SpaceCheckResult result = CheckStrategySpace(
      job.model, job.cluster, *compressor, job.compressor, job.max_compress_ops, options);

  std::cout << "espresso_check: " << result.stats.options << " options ("
            << result.stats.device_choices << " with device choices), "
            << result.stats.mutants_total << " mutants ("
            << result.stats.mutants_rejected << " rejected, "
            << result.stats.mutants_reenumerated << " re-enumerated), "
            << result.stats.fingerprints_audited << " fingerprints, "
            << result.stats.interval_checks << " interval checks, "
            << result.stats.monotonicity_checks << " F(S) property checks, "
            << result.stats.differential_valid + result.stats.differential_corrupted +
                   result.stats.differential_tampered
            << " differential documents\n";
  result.report.PrintTable(std::cout);
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
    json << "{\"stats\": ";
    WriteStats(json, result.stats);
    json << ", \"report\": ";
    result.report.WriteJson(json);
    json << "}\n";
  }
  return result.ok() ? 0 : 1;
}

// strategy_lint: command-line front end for the static-analysis passes.
//
// Runs the StrategyLinter, the ScheduleVerifier (over a recorded simulated timeline),
// and the DominanceChecker on a job, then prints a diagnostics table and optionally a
// JSON report. Exit status: 0 clean, 1 diagnostics with severity error, 2 usage or
// input failure.
//
// Usage:
//   strategy_lint <model.ini> <gc.ini> <system.ini> [strategy.esp]
//                 [--json <path>] [--no-schedule] [--no-dominance]
//                 [--ir <path>] [--force-digest]
//                 [--inject overlap|illegal-option|dominated|stale-digest]
//
// With no strategy file, the Espresso selector chooses one (the common CI mode: lint
// what the selector would actually ship). --ir validates a versioned strategy IR
// document (docs/DEPLOYMENT.md) against the three configs instead: the full fail-closed
// admission pipeline — digest comparison, lint, schedule verification — with
// --force-digest downgrading digest mismatches to warnings. --inject plants one known
// violation before checking; the mutation tests assert each mode trips its pass with
// the expected rule id and a non-zero exit (stale-digest compiles a fresh IR, corrupts
// its model digest, and must be caught by ir.digest-mismatch).
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/dominance.h"
#include "src/analysis/ir_validator.h"
#include "src/analysis/schedule_verifier.h"
#include "src/analysis/strategy_linter.h"
#include "src/core/baselines.h"
#include "src/core/decision_tree.h"
#include "src/core/espresso.h"
#include "src/core/strategy_io.h"
#include "src/core/strategy_ir.h"
#include "src/core/timeline.h"
#include "src/ddl/job_config.h"

namespace {

using namespace espresso;

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <model.ini> <gc.ini> <system.ini> [strategy.esp]\n"
               "         [--json <path>] [--no-schedule] [--no-dominance]\n"
               "         [--ir <path>] [--force-digest]\n"
               "         [--inject overlap|illegal-option|dominated|stale-digest]\n";
  return 2;
}

// Plants a Rule-1 violation: a second compress op directly after the first, which the
// payload state machine must reject (strategy.double-compress).
void InjectIllegalOption(Strategy* strategy) {
  CompressionOption& option = strategy->options.front();
  Op compress;
  compress.task = ActionTask::kCompress;
  compress.phase = option.flat ? CommPhase::kFlat : CommPhase::kIntraFirst;
  compress.domain_fraction = 1.0;
  compress.payload_fraction = 0.1;
  option.ops.insert(option.ops.begin(), 2, compress);
  option.label += "+inject:double-compress";
}

// Plants a schedule violation: drags the second interval on the serial gpu stream back
// over the first one (schedule.serial-overlap).
void InjectOverlap(std::vector<TimelineEntry>* entries) {
  TimelineEntry& first = (*entries)[0];
  TimelineEntry& second = (*entries)[1];
  second.start = first.start;
  if (second.end <= second.start) {
    second.end = first.end;
  }
}

// Plants a dominance violation: FP32 communication plus a full-size compress/decompress
// round trip per tensor — pure GPU cost with zero wire savings, so the result must lose
// to the FP32 baseline (dominance.worse-than-baseline).
Strategy InjectDominated(const ModelProfile& model, const ClusterSpec& cluster) {
  Strategy strategy = Fp32Strategy(model, cluster);
  for (CompressionOption& option : strategy.options) {
    const CommPhase phase = option.flat ? CommPhase::kFlat : CommPhase::kIntraFirst;
    Op compress;
    compress.task = ActionTask::kCompress;
    compress.phase = phase;
    Op decompress;
    decompress.task = ActionTask::kDecompress;
    decompress.phase = phase;
    option.ops.insert(option.ops.begin(), {compress, decompress});
    option.label += "+inject:dominated";
  }
  return strategy;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string json_path;
  std::string inject;
  std::string ir_path;
  bool run_schedule = true;
  bool run_dominance = true;
  bool force_digest = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (++i >= argc) return Usage(argv[0]);
      json_path = argv[i];
    } else if (arg == "--inject") {
      if (++i >= argc) return Usage(argv[0]);
      inject = argv[i];
    } else if (arg == "--ir") {
      if (++i >= argc) return Usage(argv[0]);
      ir_path = argv[i];
    } else if (arg == "--force-digest") {
      force_digest = true;
    } else if (arg == "--no-schedule") {
      run_schedule = false;
    } else if (arg == "--no-dominance") {
      run_dominance = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return Usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 3 || positional.size() > 4) {
    return Usage(argv[0]);
  }
  if (!inject.empty() && inject != "overlap" && inject != "illegal-option" &&
      inject != "dominated" && inject != "stale-digest") {
    std::cerr << "unknown --inject mode: " << inject << "\n";
    return Usage(argv[0]);
  }
  if (!ir_path.empty() && positional.size() == 4) {
    std::cerr << "error: --ir and a strategy.esp file are mutually exclusive\n";
    return Usage(argv[0]);
  }
  if (inject == "stale-digest" && !ir_path.empty()) {
    std::cerr << "error: --inject stale-digest compiles its own IR; drop --ir\n";
    return Usage(argv[0]);
  }

  const JobConfigResult loaded =
      LoadJobConfigFromFiles(positional[0], positional[1], positional[2]);
  if (!loaded.ok) {
    std::cerr << "error: " << loaded.error << "\n";
    return 2;
  }
  const JobConfig& job = loaded.job;
  const auto compressor = job.MakeCompressor();
  const TreeConfig tree{job.cluster.machines, job.cluster.gpus_per_machine,
                        compressor->SupportsCompressedAggregation(), job.max_compress_ops};

  // IR mode: run the fail-closed admission pipeline over a strategy IR document (or,
  // for the stale-digest mutation, over a freshly compiled IR whose model digest has
  // been corrupted — the pipeline must refuse it with ir.digest-mismatch).
  if (!ir_path.empty() || inject == "stale-digest") {
    StrategyIR ir;
    if (inject == "stale-digest") {
      SelectorOptions options;
      if (job.max_compress_ops > 0) {
        options.candidates = CandidateOptions(tree);
      }
      const SelectionResult result =
          EspressoSelector(job.model, job.cluster, *compressor, options).Select();
      StrategyProvenance provenance;
      provenance.origin = "inject:stale-digest";
      provenance.selector = "espresso";
      ir = CompileStrategyIR(result.strategy, result.iteration_time, job.model,
                             job.cluster, job.compressor, std::move(provenance));
      ir.model_digest ^= 1;
    } else {
      StrategyIRParseOptions parse_options;
      parse_options.verify_payload_digest = !force_digest;
      StrategyIRParseResult parsed = ReadStrategyIRFile(ir_path, parse_options);
      if (!parsed.ok) {
        std::cerr << "error: " << parsed.error << "\n";
        return 2;
      }
      ir = std::move(parsed.ir);
    }
    IRValidationOptions validate;
    validate.force_digest = force_digest;
    validate.verify_schedule = run_schedule;
    validate.max_compress_ops = job.max_compress_ops;
    IRValidationResult admitted = ValidateStrategyIR(ir, job.model, job.cluster,
                                                     *compressor, job.compressor, validate);
    if (run_dominance && admitted.ok) {
      DominanceResult dominance =
          CheckDominance(job.model, job.cluster, *compressor, ir.strategy);
      admitted.report.Merge(std::move(dominance.report));
    }
    admitted.report.PrintTable(std::cout);
    if (!json_path.empty()) {
      std::ofstream json(json_path);
      if (!json) {
        std::cerr << "error: cannot write " << json_path << "\n";
        return 2;
      }
      admitted.report.WriteJson(json);
      json << "\n";
    }
    return admitted.report.HasErrors() ? 1 : 0;
  }

  Strategy strategy;
  if (positional.size() == 4) {
    StrategyParseResult parsed = ReadStrategyFile(positional[3]);
    if (!parsed.ok) {
      std::cerr << "error: " << parsed.error << "\n";
      return 2;
    }
    strategy = std::move(parsed.strategy);
  } else if (inject == "dominated") {
    strategy = InjectDominated(job.model, job.cluster);
  } else {
    SelectorOptions options;
    if (job.max_compress_ops > 0) {
      options.candidates = CandidateOptions(tree);
    }
    strategy = EspressoSelector(job.model, job.cluster, *compressor, options)
                   .Select()
                   .strategy;
  }
  if (inject == "illegal-option") {
    if (strategy.options.empty()) {
      std::cerr << "error: cannot inject into an empty strategy\n";
      return 2;
    }
    InjectIllegalOption(&strategy);
  }

  DiagnosticReport report;
  LintOptions lint_options;
  lint_options.expected_tensors = job.model.tensors.size();
  report.Merge(LintStrategy(tree, strategy, lint_options));

  // An illegal option prices as garbage; only simulate/compare when the shape is sound.
  const bool simulatable = !report.HasErrors() || inject == "overlap";
  TimelineEvaluator evaluator(job.model, job.cluster, *compressor);
  if (run_schedule && simulatable) {
    const TimelineResult timeline = evaluator.Evaluate(strategy, /*record_entries=*/true);
    VerifierConfig verifier_config;
    verifier_config.cpu_workers = job.cluster.cpu_workers_per_gpu;
    if (inject == "overlap") {
      std::vector<TimelineEntry> entries = timeline.entries;
      if (entries.size() < 2) {
        std::cerr << "error: timeline too small to inject an overlap\n";
        return 2;
      }
      InjectOverlap(&entries);
      report.Merge(VerifySchedule(entries, verifier_config));
    } else {
      report.Merge(VerifySimulatedTimeline(strategy, timeline.entries, verifier_config));
    }
  }
  if (run_dominance && simulatable && inject != "overlap") {
    DominanceResult dominance =
        CheckDominance(job.model, job.cluster, *compressor, strategy);
    report.Merge(std::move(dominance.report));
  }

  report.PrintTable(std::cout);
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
    report.WriteJson(json);
    json << "\n";
  }
  return report.HasErrors() ? 1 : 0;
}

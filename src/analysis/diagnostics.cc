#include "src/analysis/diagnostics.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/util/json_writer.h"

namespace espresso {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

void DiagnosticReport::Add(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticReport::AddError(const std::string& rule, size_t tensor,
                                const std::string& message, const std::string& fix_hint) {
  Add(Diagnostic{Severity::kError, rule, message, fix_hint, tensor, {}});
}

void DiagnosticReport::AddWarning(const std::string& rule, size_t tensor,
                                  const std::string& message, const std::string& fix_hint) {
  Add(Diagnostic{Severity::kWarning, rule, message, fix_hint, tensor, {}});
}

void DiagnosticReport::AddNote(const std::string& rule, size_t tensor,
                               const std::string& message) {
  Add(Diagnostic{Severity::kNote, rule, message, "", tensor, {}});
}

void DiagnosticReport::Merge(DiagnosticReport other) {
  for (auto& d : other.diagnostics_) {
    diagnostics_.push_back(std::move(d));
  }
}

size_t DiagnosticReport::ErrorCount() const {
  return static_cast<size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

size_t DiagnosticReport::WarningCount() const {
  return static_cast<size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::kWarning; }));
}

bool DiagnosticReport::HasRule(const std::string& rule) const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

namespace {

std::string TensorLabel(size_t tensor) {
  return tensor == Diagnostic::kStrategyScope ? std::string("-") : std::to_string(tensor);
}

void PrintWitness(std::ostream& os, const WitnessInterval& w) {
  os << "      witness: tensor " << w.tensor << " " << w.kind << " on " << w.resource
     << " [" << std::setprecision(9) << w.start << ", " << w.end << ")\n";
}

}  // namespace

void DiagnosticReport::PrintTable(std::ostream& os) const {
  if (diagnostics_.empty()) {
    os << "no diagnostics\n";
    return;
  }
  for (const Diagnostic& d : diagnostics_) {
    os << std::left << std::setw(7) << SeverityName(d.severity) << " " << std::setw(36)
       << d.rule << " tensor " << std::setw(5) << TensorLabel(d.tensor) << " "
       << d.message << "\n";
    if (!d.fix_hint.empty()) {
      os << "      fix: " << d.fix_hint << "\n";
    }
    for (const WitnessInterval& w : d.witnesses) {
      PrintWitness(os, w);
    }
  }
  os << ErrorCount() << " error(s), " << WarningCount() << " warning(s), "
     << diagnostics_.size() - ErrorCount() - WarningCount() << " note(s)\n";
}

std::string DiagnosticReport::ToString() const {
  std::ostringstream os;
  PrintTable(os);
  return os.str();
}

void DiagnosticReport::WriteJson(std::ostream& os) const {
  JsonWriter json(os);
  json.BeginObject();
  json.Field("errors", static_cast<uint64_t>(ErrorCount()));
  json.Field("warnings", static_cast<uint64_t>(WarningCount()));
  json.Key("diagnostics");
  json.BeginArray();
  for (const Diagnostic& d : diagnostics_) {
    json.BeginObject();
    json.Field("severity", SeverityName(d.severity));
    json.Field("rule", d.rule);
    if (d.tensor != Diagnostic::kStrategyScope) {
      json.Field("tensor", static_cast<uint64_t>(d.tensor));
    }
    json.Field("message", d.message);
    if (!d.fix_hint.empty()) {
      json.Field("fix_hint", d.fix_hint);
    }
    if (!d.witnesses.empty()) {
      json.Key("witnesses");
      json.BeginArray();
      for (const WitnessInterval& w : d.witnesses) {
        json.BeginObject();
        json.Field("tensor", static_cast<uint64_t>(w.tensor));
        json.Field("kind", w.kind);
        json.Field("resource", w.resource);
        json.Field("start", w.start);
        json.Field("end", w.end);
        json.EndObject();
      }
      json.EndArray();
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  os << "\n";
}

}  // namespace espresso

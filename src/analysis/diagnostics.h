// Structured diagnostics for the static-analysis passes (StrategyLinter,
// ScheduleVerifier, DominanceChecker). A Diagnostic pins one invariant violation to a
// rule id, the tensor (or strategy-level scope) it concerns, and — for schedule
// violations — a minimal witness: the one or two timeline intervals that prove the
// violation. Reports render as a diff-friendly text table or as a JSON object for CI.
//
// Rule ids are stable, dot-separated strings grouped by pass:
//   strategy.*   — decision-tree legality (StrategyLinter)
//   schedule.*   — timeline race/causality invariants (ScheduleVerifier)
//   dominance.*  — F(S) ordering against baselines and the Upper Bound
//   costmodel.*  — cost-model sanity (alpha/beta ranges, negative durations)
// The catalog lives in docs/ANALYSIS.md; tests assert on ids, so renaming one is a
// breaking change.
#ifndef SRC_ANALYSIS_DIAGNOSTICS_H_
#define SRC_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace espresso {

enum class Severity {
  kNote = 0,
  kWarning = 1,
  kError = 2,
};

const char* SeverityName(Severity severity);

// One interval cited as evidence for a schedule violation (mirrors TimelineEntry, kept
// dependency-free so diagnostics stay usable from every layer).
struct WitnessInterval {
  size_t tensor = 0;
  std::string kind;
  std::string resource;
  double start = 0.0;
  double end = 0.0;
};

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;      // stable rule id, e.g. "strategy.double-compress"
  std::string message;   // what is wrong, with concrete values
  std::string fix_hint;  // how to repair it (may be empty for notes)
  // Scope: tensor index the violation concerns, or kStrategyScope for whole-strategy /
  // whole-schedule findings.
  size_t tensor = kStrategyScope;
  std::vector<WitnessInterval> witnesses;  // at most 2: the conflicting intervals

  static constexpr size_t kStrategyScope = static_cast<size_t>(-1);
};

class DiagnosticReport {
 public:
  void Add(Diagnostic diagnostic);

  // Convenience builders used by the passes.
  void AddError(const std::string& rule, size_t tensor, const std::string& message,
                const std::string& fix_hint = "");
  void AddWarning(const std::string& rule, size_t tensor, const std::string& message,
                  const std::string& fix_hint = "");
  void AddNote(const std::string& rule, size_t tensor, const std::string& message);

  // Merges another report's diagnostics into this one (pass composition).
  void Merge(DiagnosticReport other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  size_t ErrorCount() const;
  size_t WarningCount() const;
  bool HasErrors() const { return ErrorCount() > 0; }
  bool empty() const { return diagnostics_.empty(); }

  // True if any diagnostic carries `rule`. Mutation tests key off this.
  bool HasRule(const std::string& rule) const;

  // Renders a fixed-width table (severity | rule | tensor | message | fix hint) plus a
  // one-line summary. Witnesses print as indented follow-up lines.
  void PrintTable(std::ostream& os) const;
  std::string ToString() const;

  // Emits {"errors": N, "warnings": N, "diagnostics": [...]} for CI consumption.
  void WriteJson(std::ostream& os) const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace espresso

#endif  // SRC_ANALYSIS_DIAGNOSTICS_H_

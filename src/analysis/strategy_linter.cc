#include "src/analysis/strategy_linter.h"

#include <cmath>
#include <sstream>
#include <string>

namespace espresso {

namespace {

constexpr double kFractionEps = 1e-9;

// Data topology of one communication level (flat, intra-machine, inter-machine) as the
// option's ops transform it. Every level starts replicated (each participant holds the
// full, unaggregated tensor domain relevant to it) and must end replicated.
enum class LevelState { kReplicated, kSharded, kRooted };

const char* LevelStateName(LevelState state) {
  switch (state) {
    case LevelState::kReplicated:
      return "replicated";
    case LevelState::kSharded:
      return "sharded";
    case LevelState::kRooted:
      return "rooted";
  }
  return "?";
}

// Communication levels the three phases act on. Flat options use only kFlatLevel;
// hierarchical options use the intra and inter levels.
enum Level { kFlatLevel = 0, kIntraLevel = 1, kInterLevel = 2, kLevelCount = 3 };

Level LevelOf(CommPhase phase) {
  switch (phase) {
    case CommPhase::kFlat:
      return kFlatLevel;
    case CommPhase::kIntraFirst:
    case CommPhase::kIntraSecond:
      return kIntraLevel;
    case CommPhase::kInter:
      return kInterLevel;
  }
  return kFlatLevel;
}

size_t GroupSize(const TreeConfig& config, Level level) {
  switch (level) {
    case kFlatLevel:
      return config.machines * config.gpus_per_machine;
    case kIntraLevel:
      return config.gpus_per_machine;
    case kInterLevel:
      return config.machines;
    default:
      return 1;
  }
}

std::string OpLabel(const CompressionOption& option, size_t op_index) {
  const Op& op = option.ops[op_index];
  std::ostringstream os;
  os << "op " << op_index << " (";
  switch (op.task) {
    case ActionTask::kCompress:
      os << "compress";
      break;
    case ActionTask::kDecompress:
      os << "decompress";
      break;
    case ActionTask::kComm:
      os << RoutineName(op.routine);
      break;
  }
  os << " @" << CommPhaseName(op.phase) << ")";
  return os.str();
}

// The linter's walk state: payload compression, outstanding unmerged payload count, and
// the per-level topology.
struct WalkState {
  bool compressed = false;
  // Number of separate compressed payloads currently held for the tensor's domain that
  // still need aggregation. 0 when raw; 1 after a compress; multiplied by the group
  // size when a collect-type routine gathers everyone's (unaggregated) payloads.
  size_t pending_payloads = 0;
  // Byte-conservation state, meaningful only while `compressed`: each rank holds
  // `bundles` payload bundles of `slice` tensor-fraction each (held = slice * bundles),
  // which decompress into `union_domain`. A compress op seeds one bundle; an alltoall
  // slices the holding `group` ways; collect routines multiply bundles; a closing
  // allgather coalesces each peer's holding into one bundle of the full held size; a
  // compressed-domain merge divides the overlap back out.
  double slice = 1.0;
  double bundles = 1.0;
  double union_domain = 1.0;
  LevelState level[kLevelCount] = {LevelState::kReplicated, LevelState::kReplicated,
                                   LevelState::kReplicated};
};

class OptionLinter {
 public:
  OptionLinter(const TreeConfig& config, const CompressionOption& option,
               size_t tensor_index, DiagnosticReport* report)
      : config_(config), option_(option), tensor_(tensor_index), report_(report) {}

  void Run() {
    if (option_.ops.empty()) {
      Error(rules::kEmptyOption, "option has no ops",
            "every tensor needs at least one communication op; use "
            "DefaultUncompressedOption for the no-compression path");
      return;
    }
    CheckPhases();
    CheckUserConstraints();
    WalkOps();
  }

 private:
  void Error(const char* rule, const std::string& message, const std::string& hint = "") {
    report_->AddError(rule, tensor_, Prefix() + message, hint);
  }
  void Warning(const char* rule, const std::string& message, const std::string& hint = "") {
    report_->AddWarning(rule, tensor_, Prefix() + message, hint);
  }
  std::string Prefix() const {
    return option_.label.empty() ? std::string() : "[" + option_.label + "] ";
  }

  // Rule 2: phases must be flat-only for flat options, or run intra1 -> inter -> intra2
  // without going backwards; hierarchical options need a hierarchical cluster.
  void CheckPhases() {
    int max_rank = -1;
    for (size_t k = 0; k < option_.ops.size(); ++k) {
      const Op& op = option_.ops[k];
      if (option_.flat) {
        if (op.phase != CommPhase::kFlat) {
          Error(rules::kFlatPhaseMix,
                OpLabel(option_, k) + " uses a hierarchical phase in a flat option",
                "flat options may only contain flat-phase ops; clear the flat flag to "
                "use intra/inter phases");
        }
        continue;
      }
      if (op.phase == CommPhase::kFlat) {
        Error(rules::kFlatPhaseMix,
              OpLabel(option_, k) + " uses the flat phase in a hierarchical option",
              "set the option's flat flag or move the op to intra1/inter/intra2");
        continue;
      }
      const int rank = op.phase == CommPhase::kIntraFirst ? 0
                       : op.phase == CommPhase::kInter    ? 1
                                                          : 2;
      if (rank < max_rank) {
        Error(rules::kPhaseOrder,
              OpLabel(option_, k) + " runs after a later phase already started",
              "order ops intra1 -> inter -> intra2 (Figure 1's three-step pipeline)");
      }
      max_rank = rank > max_rank ? rank : max_rank;
    }
    if (!option_.flat && !config_.Hierarchical()) {
      Error(rules::kHierarchicalOnFlatCluster,
            "hierarchical option on a single-level cluster (machines=" +
                std::to_string(config_.machines) +
                ", gpus/machine=" + std::to_string(config_.gpus_per_machine) + ")",
            "single-level clusters only support flat options");
    }
  }

  void CheckUserConstraints() {
    if (config_.max_compress_ops > 0 &&
        option_.CompressOpCount() > config_.max_compress_ops) {
      Error(rules::kMaxCompressOps,
            "option uses " + std::to_string(option_.CompressOpCount()) +
                " compression ops; the user constraint allows at most " +
                std::to_string(config_.max_compress_ops),
            "pick a path with fewer re-compressions (e.g. the indivisible scheme) or "
            "raise max_compress_ops");
    }
  }

  void CheckFractions(size_t k) {
    const Op& op = option_.ops[k];
    if (op.domain_fraction <= 0.0 || op.domain_fraction > 1.0 + kFractionEps ||
        op.payload_fraction <= 0.0 || op.payload_fraction > 1.0 + kFractionEps) {
      Error(rules::kOpFractionRange,
            OpLabel(option_, k) + " has domain/payload fractions outside (0, 1]: domain=" +
                std::to_string(op.domain_fraction) +
                " payload=" + std::to_string(op.payload_fraction),
            "fractions are tensor-relative shares and must be positive and at most 1");
    }
    if (op.fan_in == 0) {
      Error(rules::kOpFractionRange, OpLabel(option_, k) + " has fan_in == 0",
            "fan_in counts aggregated payloads and must be at least 1");
    }
    if (op.task == ActionTask::kComm &&
        op.payload_fraction > op.domain_fraction + kFractionEps) {
      Error(rules::kPayloadExceedsDomain,
            OpLabel(option_, k) + " sends a payload (" +
                std::to_string(op.payload_fraction) + ") larger than its domain (" +
                std::to_string(op.domain_fraction) + ")",
            "a rank cannot contribute more data than the domain it holds");
    }
    if (op.task == ActionTask::kCompress &&
        std::abs(op.payload_fraction - op.domain_fraction) > kFractionEps) {
      Error(rules::kCompressPayloadMismatch,
            OpLabel(option_, k) + " compresses domain " +
                std::to_string(op.domain_fraction) + " into payload coverage " +
                std::to_string(op.payload_fraction),
            "a compress op's payload must cover exactly the domain it compressed");
    }
    if (op.task == ActionTask::kDecompress &&
        static_cast<double>(op.fan_in) * op.payload_fraction <
            op.domain_fraction - kFractionEps) {
      Error(rules::kDecompressCoverage,
            OpLabel(option_, k) + " decompresses " + std::to_string(op.fan_in) +
                " payload(s) of coverage " + std::to_string(op.payload_fraction) +
                " but must reconstruct domain " + std::to_string(op.domain_fraction),
            "fan_in * payload_fraction must cover the domain; bytes would be created "
            "from nothing otherwise");
    }
  }

  // Requires the level topology to be `want` before a routine runs; reports Rule-3
  // violations otherwise.
  bool RequireTopology(size_t k, Level level, LevelState want, const char* why) {
    if (state_.level[level] == want) {
      return true;
    }
    Error(rules::kTopologyPairing,
          OpLabel(option_, k) + " requires " + LevelStateName(want) + " data but the " +
              (level == kFlatLevel  ? "flat"
               : level == kIntraLevel ? "intra"
                                      : "inter") +
              " level is " + LevelStateName(state_.level[level]),
          why);
    return false;
  }

  // Every communication step on a payload set that still needs aggregation forces the
  // aggregation into the compressed domain first (the skip-stage of §4.2.2); gate it on
  // the GC algorithm's capability.
  void ConsumePendingBeforeComm(size_t k) {
    if (state_.pending_payloads > 1) {
      if (!config_.supports_compressed_aggregation) {
        Error(rules::kCompressedAggUnsupported,
              OpLabel(option_, k) + " communicates " +
                  std::to_string(state_.pending_payloads) +
                  " unmerged compressed payloads, which requires compressed-domain "
                  "aggregation the GC algorithm does not support",
              "insert a decompress(fan_in=" + std::to_string(state_.pending_payloads) +
                  ") + compress stage, or use a shared-seed algorithm that supports "
                  "compressed aggregation");
      }
      // Merged (in the compressed domain): the overlapping copies collapse into one
      // bundle of the same slice size.
      state_.bundles /= static_cast<double>(state_.pending_payloads);
      state_.pending_payloads = 1;
    }
  }

  double Held() const { return state_.slice * state_.bundles; }

  // Conservation of the wire payload: a comm op's payload_fraction is fully determined
  // by the routine, its domain, and the in-flight payload coverage; a disagreement
  // means the option prices a different number of bytes than the pipeline moves.
  void CheckWirePayload(size_t k, double expected, const char* what) {
    const Op& op = option_.ops[k];
    if (std::abs(op.payload_fraction - expected) > kFractionEps) {
      Error(rules::kPayloadCoverage,
            OpLabel(option_, k) + " puts payload fraction " +
                std::to_string(op.payload_fraction) + " on the wire but " + what +
                " fixes the per-rank contribution at " + std::to_string(expected),
            "set payload_fraction to the in-flight payload coverage this routine moves");
    }
  }

  void WalkComm(size_t k) {
    const Op& op = option_.ops[k];
    if (op.routine == Routine::kNone) {
      Error(rules::kCommMissingRoutine, OpLabel(option_, k) + " has no routine",
            "comm ops must name a collective routine");
      return;
    }
    // Rule 1: the wire flag must match the payload state, and compressed payloads may
    // not ride reduction routines (their aggregation is not associative, §4.2.1).
    if (op.compressed != state_.compressed) {
      Error(rules::kCommStateMismatch,
            OpLabel(option_, k) + std::string(" is marked ") +
                (op.compressed ? "compressed" : "raw") + " but the payload is " +
                (state_.compressed ? "compressed" : "raw"),
            state_.compressed ? "insert a decompress before this op or mark it compressed"
                              : "insert a compress before this op or mark it raw");
      return;  // downstream state tracking would be noise
    }
    const bool reduction = op.routine == Routine::kAllreduce ||
                           op.routine == Routine::kReduceScatter ||
                           op.routine == Routine::kReduce;
    if (op.compressed && reduction) {
      Error(rules::kCompressedReduction,
            OpLabel(option_, k) + " reduces compressed payloads",
            "compressed payloads can only be collected (allgather/alltoall/gather) and "
            "aggregated after decompression");
      return;
    }
    // Collect-type routines move opaque payloads and never sum element-wise, so raw
    // gradients riding them would end up holding unaggregated shards with no op able to
    // reduce them (only decompress ops aggregate payload sets).
    if (!op.compressed &&
        (op.routine == Routine::kAlltoall || op.routine == Routine::kGather)) {
      Error(rules::kUncompressedCollect,
            OpLabel(option_, k) + " applies a collect routine to raw gradients",
            "raw data aggregates via reduce-scatter/reduce; alltoall/gather carry "
            "compressed payloads whose decompress step aggregates");
      return;
    }
    if (state_.compressed) {
      ConsumePendingBeforeComm(k);
    }

    const Level level = LevelOf(op.phase);
    const size_t group = GroupSize(config_, level);
    LevelState& topo = state_.level[level];

    // Rule 2 (divisible-only intra steps): indivisible allreduce may not appear on the
    // intra level of a hierarchical option (§4.2.1, Dimension 4).
    if (op.routine == Routine::kAllreduce && level == kIntraLevel) {
      Error(rules::kIntraDivisibleOnly,
            OpLabel(option_, k) + " uses indivisible allreduce on the intra level",
            "intra-machine steps use divisible schemes only: reduce-scatter/alltoall "
            "with a closing allgather, or reduce/gather with a closing broadcast");
      return;
    }

    const auto group_d = static_cast<double>(group);
    switch (op.routine) {
      case Routine::kAllreduce:
        if (RequireTopology(k, level, LevelState::kReplicated,
                            "allreduce starts from every participant's full-domain copy")) {
          CheckWirePayload(k, op.domain_fraction, "a raw allreduce");
        }
        break;
      case Routine::kReduceScatter:
        if (RequireTopology(k, level, LevelState::kReplicated,
                            "reduce-scatter shards replicated data; its second step "
                            "must be an allgather")) {
          CheckWirePayload(k, op.domain_fraction, "a raw reduce-scatter");
          topo = LevelState::kSharded;
        }
        break;
      case Routine::kReduce:
        if (RequireTopology(k, level, LevelState::kReplicated,
                            "reduce roots replicated data; its second step must be a "
                            "broadcast")) {
          CheckWirePayload(k, op.domain_fraction, "a raw reduce");
          topo = LevelState::kRooted;
        }
        break;
      case Routine::kAlltoall:
        if (RequireTopology(k, level, LevelState::kReplicated,
                            "alltoall shuffles each participant's full-domain copy; "
                            "its second step must be an allgather")) {
          // Each participant sends a 1/group slice of its holding to every peer...
          CheckWirePayload(k, Held() / group_d, "an alltoall of payload slices");
          topo = LevelState::kSharded;
          // ...and now holds `group` payload shards of its sub-domain that still need
          // aggregation.
          state_.slice = Held() / group_d;
          state_.bundles = group_d;
          state_.pending_payloads *= group;
          state_.union_domain /= group_d;
        }
        break;
      case Routine::kGather:
        if (RequireTopology(k, level, LevelState::kReplicated,
                            "gather roots each participant's payload; its second step "
                            "must be a broadcast")) {
          CheckWirePayload(k, Held(), "a gather of whole payloads");
          topo = LevelState::kRooted;
          state_.bundles *= group_d;
          state_.pending_payloads *= group;
        }
        break;
      case Routine::kAllgather:
        if (topo == LevelState::kSharded) {
          // Closing a sharding first step: each peer's whole holding arrives as one
          // disjoint tile, so no aggregation is owed.
          CheckWirePayload(k,
                           state_.compressed ? Held() : op.domain_fraction / group_d,
                           "an allgather closing a sharded first step");
          topo = LevelState::kReplicated;
          if (state_.compressed) {
            state_.slice = Held();
            state_.bundles = group_d;
            state_.union_domain *= group_d;
          }
        } else if (topo == LevelState::kReplicated && state_.compressed) {
          // Collect of everyone's compressed payload (indivisible compressed scheme);
          // the payloads overlap and must be aggregated downstream.
          CheckWirePayload(k, Held(), "an allgather of whole payloads");
          state_.bundles *= group_d;
          state_.pending_payloads *= group;
        } else {
          Error(rules::kTopologyPairing,
                OpLabel(option_, k) + " allgathers " + LevelStateName(topo) +
                    " raw data",
                "allgather closes a reduce-scatter/alltoall first step, or collects "
                "compressed payloads from replicated data");
        }
        break;
      case Routine::kBroadcast:
        if (RequireTopology(k, level, LevelState::kRooted,
                            "broadcast closes a reduce/gather first step")) {
          CheckWirePayload(k, state_.compressed ? Held() : op.domain_fraction,
                           "a broadcast of the rooted result");
          topo = LevelState::kReplicated;
        }
        break;
      case Routine::kNone:
        break;
    }
  }

  void WalkOps() {
    bool has_comm = false;
    bool has_inter_comm = false;
    for (size_t k = 0; k < option_.ops.size(); ++k) {
      const Op& op = option_.ops[k];
      if (op.task == ActionTask::kComm && op.phase == CommPhase::kInter) {
        has_inter_comm = true;
      }
      CheckFractions(k);
      if (op.task != ActionTask::kComm && op.routine != Routine::kNone) {
        Error(rules::kRoutineOnNonComm,
              OpLabel(option_, k) + " is a compression op but names routine '" +
                  RoutineName(op.routine) + "'",
              "only comm ops carry routines");
      }
      switch (op.task) {
        case ActionTask::kCompress:
          if (state_.compressed) {
            Error(rules::kDoubleCompress,
                  OpLabel(option_, k) + " compresses an already-compressed payload",
                  "decompress (and aggregate) before re-compressing");
          }
          state_.compressed = true;
          state_.pending_payloads = 1;
          state_.slice = op.payload_fraction;
          state_.bundles = 1.0;
          state_.union_domain = op.domain_fraction;
          break;
        case ActionTask::kDecompress:
          if (!state_.compressed) {
            Error(rules::kDecompressRaw,
                  OpLabel(option_, k) + " decompresses a raw payload",
                  "remove the decompress or insert the matching compress upstream");
          } else {
            if (op.fan_in < state_.pending_payloads &&
                !config_.supports_compressed_aggregation) {
              Error(rules::kCompressedAggUnsupported,
                    OpLabel(option_, k) + " decompresses " + std::to_string(op.fan_in) +
                        " payload(s) but " + std::to_string(state_.pending_payloads) +
                        " unmerged payloads are outstanding; merging them first requires "
                        "compressed-domain aggregation",
                    "decompress with fan_in=" + std::to_string(state_.pending_payloads) +
                        " or use a GC algorithm with compressed aggregation");
            }
            // Conservation: the decompress must consume exactly the bytes in flight
            // (fan_in payloads of payload_fraction each equal the rank's holding, after
            // any compressed-domain merge) and reconstruct exactly the domain those
            // payloads cover.
            double bundles = state_.bundles;
            if (state_.pending_payloads > 1 && op.fan_in < state_.pending_payloads) {
              // Merged before decompressing (fan_in < pending was gated on compressed
              // aggregation above): the overlap collapses out of the holding.
              bundles /= static_cast<double>(state_.pending_payloads);
            }
            const double held = state_.slice * bundles;
            if (std::abs(static_cast<double>(op.fan_in) * op.payload_fraction - held) >
                    kFractionEps ||
                std::abs(op.domain_fraction - state_.union_domain) > kFractionEps) {
              Error(rules::kPayloadCoverage,
                    OpLabel(option_, k) + " decompresses " + std::to_string(op.fan_in) +
                        " payload(s) of " + std::to_string(op.payload_fraction) +
                        " into domain " + std::to_string(op.domain_fraction) +
                        " but the rank holds payload fraction " + std::to_string(held) +
                        " covering domain " + std::to_string(state_.union_domain),
                    "a decompress consumes the payloads the pipeline actually holds; fix "
                    "the upstream compress/comm fractions or this op's coverage");
            }
          }
          state_.compressed = false;
          state_.pending_payloads = 0;
          break;
        case ActionTask::kComm:
          has_comm = true;
          WalkComm(k);
          break;
      }
    }
    if (!has_comm) {
      Error(rules::kNoComm, "option never communicates",
            "a synchronization pipeline needs at least one collective routine");
    } else if (!option_.flat && config_.machines > 1 && !has_inter_comm) {
      // Hierarchical pipelines synchronize across machines only through their inter
      // phase; without one, each machine reduces locally and the gradients diverge
      // (flat options cover every GPU with a single collective instead).
      Error(rules::kMissingInterSync,
            "hierarchical option never crosses machines: no inter-phase collective",
            "add the inter step (the intra phases only synchronize within one machine)");
    }
    if (state_.compressed) {
      Error(rules::kEndsCompressed, "option leaves the payload compressed",
            "append a decompress so the optimizer sees raw gradients");
    }
    for (int level = 0; level < kLevelCount; ++level) {
      if (state_.level[level] != LevelState::kReplicated) {
        Error(rules::kUnresolvedTopology,
              std::string("option ends with ") + LevelStateName(state_.level[level]) +
                  " data on the " +
                  (level == kFlatLevel  ? "flat"
                   : level == kIntraLevel ? "intra"
                                          : "inter") +
                  " level",
              state_.level[level] == LevelState::kSharded
                  ? "close the sharding first step with an allgather"
                  : "close the rooting first step with a broadcast");
      }
    }
  }

  const TreeConfig& config_;
  const CompressionOption& option_;
  size_t tensor_;
  DiagnosticReport* report_;
  WalkState state_;
};

}  // namespace

DiagnosticReport LintOption(const TreeConfig& config, const CompressionOption& option,
                            size_t tensor_index) {
  DiagnosticReport report;
  OptionLinter(config, option, tensor_index, &report).Run();
  return report;
}

DiagnosticReport LintStrategy(const TreeConfig& config, const Strategy& strategy,
                              const LintOptions& options) {
  DiagnosticReport report;
  if (options.expected_tensors > 0 && strategy.size() != options.expected_tensors) {
    report.AddError(rules::kSizeMismatch, Diagnostic::kStrategyScope,
                    "strategy assigns " + std::to_string(strategy.size()) +
                        " tensors but the model has " +
                        std::to_string(options.expected_tensors),
                    "strategies are index-aligned with ModelProfile::tensors");
  }
  for (size_t i = 0; i < strategy.options.size(); ++i) {
    report.Merge(LintOption(config, strategy.options[i], i));
  }
  return report;
}

}  // namespace espresso

// DominanceChecker: asserts the F(S) ordering Espresso's evaluation (§5) claims —
// the selected strategy is no slower than each baseline's restricted search space
// (FP32/BytePS, HiPress, HiTopKComm, BytePS-Compress), and no faster than the analytic
// Upper Bound (zero-cost compression, §5.1). A violation means either the cost model
// went non-monotonic or the selector regressed; both are silent-wrongness bugs a
// benchmark table will happily print.
//
// CheckCostModelSanity audits the inputs the ordering rests on: alpha (latency) and
// beta (bandwidth) ranges of both links, non-negative compression costs, and
// non-negative op durations over a sweep of tensor sizes.
#ifndef SRC_ANALYSIS_DOMINANCE_H_
#define SRC_ANALYSIS_DOMINANCE_H_

#include <string>

#include "src/analysis/diagnostics.h"
#include "src/compress/compressor.h"
#include "src/core/strategy.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_profile.h"

namespace espresso {

namespace rules {
inline constexpr const char* kWorseThanBaseline = "dominance.worse-than-baseline";
inline constexpr const char* kBeatsUpperBound = "dominance.beats-upper-bound";
inline constexpr const char* kAlphaRange = "costmodel.alpha-range";
inline constexpr const char* kBetaRange = "costmodel.beta-range";
inline constexpr const char* kNegativeDurationModel = "costmodel.negative-duration";
}  // namespace rules

struct DominanceOptions {
  // Relative slack for the F(S) comparisons. Baselines within (1 + tolerance) of the
  // checked strategy produce notes, beyond it errors; beating the Upper Bound by more
  // than the tolerance is always an error.
  double tolerance = 0.005;
};

struct DominanceResult {
  DiagnosticReport report;
  double checked_iteration_time = 0.0;
  double upper_bound_iteration_time = 0.0;
  // name -> iteration time of every baseline compared against.
  std::vector<std::pair<std::string, double>> baselines;
};

// Compares `strategy` (normally the selector's output) against the four baselines and
// the Upper Bound on (model, cluster, compressor).
DominanceResult CheckDominance(const ModelProfile& model, const ClusterSpec& cluster,
                               const Compressor& compressor, const Strategy& strategy,
                               const DominanceOptions& options = {});

// Cost-model sanity only (also run by CheckDominance first).
DiagnosticReport CheckCostModelSanity(const ModelProfile& model, const ClusterSpec& cluster,
                                      const Compressor& compressor);

}  // namespace espresso

#endif  // SRC_ANALYSIS_DOMINANCE_H_

// StrategyLinter: re-derives the legality of every per-tensor compression option
// against the decision-tree pruning rules (§4.2), emitting structured diagnostics
// instead of crashing or silently simulating an impossible pipeline.
//
// The linter is deliberately independent of the enumeration code in
// src/core/decision_tree.cc: it walks each option with two state machines —
//   * payload state (raw/compressed, plus outstanding unaggregated payload sets), which
//     encodes Rule 1 (valid connections) and the compressed-aggregation gating of
//     §4.2.2's footnote;
//   * per-level data topology (replicated/sharded/rooted for the flat, intra, and inter
//     communication levels), which encodes Rule 2 (step matching) and Rule 3 (topology
//     pairing: Reduce-scatter/Alltoall shard, so their second step is an Allgather;
//     Reduce/Gather root, so their second step is a Broadcast).
// A property test asserts the linter accepts exactly what EnumerateOptions emits and
// rejects one-edit mutations of it.
#ifndef SRC_ANALYSIS_STRATEGY_LINTER_H_
#define SRC_ANALYSIS_STRATEGY_LINTER_H_

#include <cstddef>

#include "src/analysis/diagnostics.h"
#include "src/core/decision_tree.h"
#include "src/core/strategy.h"

namespace espresso {

// Stable rule ids (see docs/ANALYSIS.md for the catalog).
namespace rules {
// Rule 1 — valid connections (payload state machine).
inline constexpr const char* kDoubleCompress = "strategy.double-compress";
inline constexpr const char* kDecompressRaw = "strategy.decompress-raw";
inline constexpr const char* kEndsCompressed = "strategy.ends-compressed";
inline constexpr const char* kCommStateMismatch = "strategy.comm-state-mismatch";
inline constexpr const char* kCompressedReduction = "strategy.compressed-reduction";
inline constexpr const char* kCompressedAggUnsupported = "strategy.compressed-agg-unsupported";
// Rule 2 — step/phase matching.
inline constexpr const char* kPhaseOrder = "strategy.phase-order";
inline constexpr const char* kFlatPhaseMix = "strategy.flat-phase-mix";
inline constexpr const char* kHierarchicalOnFlatCluster = "strategy.hier-on-flat-cluster";
inline constexpr const char* kIntraDivisibleOnly = "strategy.intra-divisible-only";
// Rule 3 — topology pairing.
inline constexpr const char* kTopologyPairing = "strategy.topology-pairing";
inline constexpr const char* kUnresolvedTopology = "strategy.unresolved-topology";
// Structural / user-constraint rules.
inline constexpr const char* kEmptyOption = "strategy.empty-option";
inline constexpr const char* kNoComm = "strategy.no-comm";
inline constexpr const char* kMissingInterSync = "strategy.missing-inter-sync";
inline constexpr const char* kCommMissingRoutine = "strategy.comm-missing-routine";
inline constexpr const char* kRoutineOnNonComm = "strategy.routine-on-noncomm";
inline constexpr const char* kOpFractionRange = "strategy.op-fraction-range";
inline constexpr const char* kMaxCompressOps = "strategy.max-compress-ops";
// Byte/payload conservation across compress -> comm -> decompress.
inline constexpr const char* kPayloadExceedsDomain = "strategy.payload-exceeds-domain";
inline constexpr const char* kCompressPayloadMismatch = "strategy.compress-payload-mismatch";
inline constexpr const char* kDecompressCoverage = "strategy.decompress-coverage";
inline constexpr const char* kUncompressedCollect = "strategy.uncompressed-collect";
inline constexpr const char* kPayloadCoverage = "strategy.payload-coverage";
// Strategy-level rules.
inline constexpr const char* kSizeMismatch = "strategy.size-mismatch";
}  // namespace rules

struct LintOptions {
  // When non-zero, the strategy must assign exactly this many tensors (the model's
  // tensor count); mismatches are errors.
  size_t expected_tensors = 0;
};

// Lints a single option as tensor `tensor_index` (used for diagnostics scoping).
DiagnosticReport LintOption(const TreeConfig& config, const CompressionOption& option,
                            size_t tensor_index);

// Lints every option of the strategy plus strategy-level invariants.
DiagnosticReport LintStrategy(const TreeConfig& config, const Strategy& strategy,
                              const LintOptions& options = {});

}  // namespace espresso

#endif  // SRC_ANALYSIS_STRATEGY_LINTER_H_

#include "src/analysis/space_checker.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/analysis/ir_validator.h"
#include "src/analysis/strategy_linter.h"
#include "src/core/decision_tree.h"
#include "src/core/eval_cache.h"
#include "src/core/option_mutations.h"
#include "src/core/strategy.h"
#include "src/core/strategy_ir.h"
#include "src/core/timeline.h"
#include "src/costmodel/collective_formulas.h"
#include "src/costmodel/interval.h"
#include "src/util/rng.h"

namespace espresso {

namespace {

// Relative slack for point comparisons that should agree to rounding error
// (containment of a concrete evaluation in its own interval, payload <= domain).
constexpr double kPointEps = 1e-9;

// Completeness violations can be systematic (one bad edit class fires once per option);
// past this many the report stops itemizing and summarizes.
constexpr size_t kMaxIncompleteErrors = 20;

// Exhaustive device-choice fingerprinting is exponential in the option's non-comm slot
// count; options are tiny (<= ~6 slots) but guard anyway.
constexpr size_t kMaxExhaustiveSlots = 12;

std::string FirstErrorMessage(const DiagnosticReport& report) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.severity == Severity::kError) {
      return std::string(d.rule) + ": " + d.message;
    }
  }
  return "(no error recorded)";
}

// Indices of the ops carrying a §4.2 device choice (compress/decompress).
std::vector<size_t> NonCommSlots(const CompressionOption& option) {
  std::vector<size_t> slots;
  for (size_t i = 0; i < option.ops.size(); ++i) {
    if (option.ops[i].task != ActionTask::kComm) {
      slots.push_back(i);
    }
  }
  return slots;
}

// Registry for the splitmix64 collision audit: same fingerprint + different ops is a
// collision (labels are excluded from both the fingerprint and operator==).
class FingerprintRegistry {
 public:
  explicit FingerprintRegistry(SpaceCheckResult* out) : out_(out) {}

  void Add(const CompressionOption& option) {
    ++out_->stats.fingerprints_audited;
    const uint64_t fp = OptionFingerprint(option);
    auto [it, inserted] = seen_.emplace(fp, option);
    if (!inserted && !(it->second == option)) {
      ++out_->stats.fingerprint_collisions;
      out_->report.AddError(
          rules::kEscFingerprintCollision, Diagnostic::kStrategyScope,
          "fingerprint collision at " + DigestHex(fp) + ": '" + option.Describe() +
              "' vs '" + it->second.Describe() + "'",
          "strengthen OptionFingerprint's mixing in src/core/eval_cache.cc");
    }
  }

 private:
  SpaceCheckResult* out_;
  std::unordered_map<uint64_t, CompressionOption> seen_;
};

// ---------------------------------------------------------------------------
// Pass 1: space soundness / completeness / fingerprints.
// ---------------------------------------------------------------------------

void RunSpacePass(const TreeConfig& tree, const SpaceCheckOptions& options,
                  SpaceCheckResult* out) {
  OptionSpace space = EnumerateOptions(tree);
  out->stats.device_choices = space.TotalWithDeviceChoices();

  if (options.inject == SpaceCheckInject::kMissingOption) {
    // Delete the default option's enumerated twin: the membership check below must
    // notice the hole and report esc.space-incomplete.
    const CompressionOption target = CanonicalOption(DefaultUncompressedOption(tree));
    auto it = std::find_if(space.options.begin(), space.options.end(),
                           [&](const CompressionOption& o) {
                             return CanonicalOption(o) == target;
                           });
    if (it != space.options.end()) {
      space.options.erase(it);
    } else if (!space.options.empty()) {
      space.options.pop_back();
    }
  }
  out->stats.options = space.options.size();

  FingerprintRegistry registry(out);

  // Soundness + canonical membership index + device-variant fingerprints.
  std::unordered_map<uint64_t, size_t> canonical_index;  // canonical fp -> option index
  std::vector<CompressionOption> canonical;
  canonical.reserve(space.options.size());
  for (size_t i = 0; i < space.options.size(); ++i) {
    const CompressionOption& option = space.options[i];

    DiagnosticReport lint = LintOption(tree, option, i);
    if (lint.HasErrors()) {
      out->report.AddError(
          rules::kEscSpaceUnsound, i,
          "enumerated option '" + option.label +
              "' fails the linter: " + FirstErrorMessage(lint),
          "the decision tree (src/core/decision_tree.cc) and the linter "
          "(src/analysis/strategy_linter.cc) disagree about §4.2 legality");
    }
    if (!ValidateOption(tree, option)) {
      out->report.AddError(rules::kEscSpaceUnsound, i,
                           "enumerated option '" + option.label +
                               "' fails ValidateOption against its own tree config");
    }
    const CompressionOption cpu_variant = option.WithDevice(Device::kCpu);
    if (LintOption(tree, cpu_variant, i).HasErrors()) {
      out->report.AddError(rules::kEscSpaceUnsound, i,
                           "all-CPU device variant of '" + option.label +
                               "' fails the linter (device choices must be "
                               "legality-neutral, §4.2)");
    }

    CompressionOption canon = CanonicalOption(option);
    if (LintOption(tree, canon, i).HasErrors()) {
      out->report.AddError(rules::kEscSpaceUnsound, i,
                           "canonical form of '" + option.label +
                               "' fails the linter (the membership projection must "
                               "preserve legality)");
    }
    const uint64_t canon_fp = OptionFingerprint(canon);
    auto [it, inserted] = canonical_index.emplace(canon_fp, i);
    if (!inserted && !(canonical[it->second] == canon)) {
      ++out->stats.fingerprint_collisions;
      out->report.AddError(rules::kEscFingerprintCollision, i,
                           "canonical fingerprint collision at " + DigestHex(canon_fp) +
                               ": '" + option.label + "' vs '" +
                               space.options[it->second].label + "'");
    }
    canonical.push_back(std::move(canon));

    // Fingerprint audit over the option's full 2^slots device-choice family.
    const std::vector<size_t> slots = NonCommSlots(option);
    if (slots.size() <= kMaxExhaustiveSlots) {
      for (size_t mask = 0; mask < (size_t{1} << slots.size()); ++mask) {
        CompressionOption variant = option;
        for (size_t bit = 0; bit < slots.size(); ++bit) {
          if (mask & (size_t{1} << bit)) {
            variant.ops[slots[bit]].device = Device::kCpu;
          }
        }
        registry.Add(variant);
      }
    } else {
      registry.Add(option);
      registry.Add(cpu_variant);
      out->report.AddNote(rules::kEscFingerprintCollision, i,
                          "option '" + option.label + "' has " +
                              std::to_string(slots.size()) +
                              " device slots; audited only the all-GPU and all-CPU "
                              "corners of its 2^slots family");
    }
  }

  // Membership of an option in the enumerated set, modulo canonicalization.
  auto in_space = [&](const CompressionOption& option) {
    const CompressionOption canon = CanonicalOption(option);
    const auto it = canonical_index.find(OptionFingerprint(canon));
    return it != canonical_index.end() && canonical[it->second] == canon;
  };

  // Completeness: every legal one-edit mutant must already be in the space.
  size_t incomplete_errors = 0;
  for (size_t i = 0; i < space.options.size(); ++i) {
    const CompressionOption& option = space.options[i];
    const std::vector<OptionMutation> mutants = OneEditMutations(option);
    out->stats.mutants_total += mutants.size();
    for (const OptionMutation& m : mutants) {
      if (LintOption(tree, m.option, i).HasErrors()) {
        ++out->stats.mutants_rejected;
        continue;
      }
      if (in_space(m.option)) {
        ++out->stats.mutants_reenumerated;
        // A legal mutant's canonical form participates in the collision audit too.
        registry.Add(CanonicalOption(m.option));
        continue;
      }
      if (++incomplete_errors <= kMaxIncompleteErrors) {
        out->report.AddError(
            rules::kEscSpaceIncomplete, i,
            "linter-legal option one edit outside the enumerated space: '" +
                option.label + "' with " + m.edit,
            "either EnumerateOptions misses a legal path or the linter under-rejects");
      }
    }
  }
  if (incomplete_errors > kMaxIncompleteErrors) {
    out->report.AddNote(rules::kEscSpaceIncomplete, Diagnostic::kStrategyScope,
                        std::to_string(incomplete_errors - kMaxIncompleteErrors) +
                            " further esc.space-incomplete findings suppressed");
  }

  // The selector's inputs must live inside the space it was proved over.
  auto check_membership = [&](const CompressionOption& option, const std::string& what) {
    if (!in_space(option)) {
      out->report.AddError(rules::kEscSpaceIncomplete, Diagnostic::kStrategyScope,
                           what + " '" + option.label +
                               "' does not canonicalize into the enumerated space",
                           "EnumerateOptions disagrees with the selector's seed set");
    }
  };
  check_membership(DefaultUncompressedOption(tree), "default uncompressed option");
  for (const CompressionOption& candidate : CandidateOptions(tree)) {
    check_membership(candidate, "selector candidate");
  }
}

// ---------------------------------------------------------------------------
// Pass 2: symbolic cost audit.
// ---------------------------------------------------------------------------

// Interval twin of TimelineEvaluator::OpDuration: the same formulas over the declared
// parameter ranges instead of the calibrated points.
Interval IntervalOpDuration(const IntervalCostModel& cost, const ClusterSpec& cluster,
                            const Compressor& compressor, const Op& op, size_t elements) {
  const double domain_elements = op.domain_fraction * static_cast<double>(elements);
  const double domain_bytes = domain_elements * sizeof(float);
  const double payload_elements = op.payload_fraction * static_cast<double>(elements);
  const double machine_boost = (op.machine_level && op.device == Device::kCpu)
                                   ? static_cast<double>(cluster.gpus_per_machine)
                                   : 1.0;
  switch (op.task) {
    case ActionTask::kCompress:
      return cost.CompressTime(op.device, domain_bytes) / Interval(machine_boost);
    case ActionTask::kDecompress: {
      const double payload_bytes = static_cast<double>(compressor.CompressedBytes(
          static_cast<size_t>(std::llround(payload_elements))));
      return cost.AggregateDecompressTime(op.device, domain_bytes, payload_bytes,
                                          op.fan_in) /
             Interval(machine_boost);
    }
    case ActionTask::kComm: {
      const IntervalLink* link = nullptr;
      size_t p = 1;
      switch (op.phase) {
        case CommPhase::kFlat:
          link = &cost.ranges().flat;
          p = cluster.total_gpus();
          break;
        case CommPhase::kIntraFirst:
        case CommPhase::kIntraSecond:
          link = &cost.ranges().intra;
          p = cluster.gpus_per_machine;
          break;
        case CommPhase::kInter:
          link = &cost.ranges().inter;
          p = cluster.machines;
          break;
      }
      const Interval payload_bytes =
          op.compressed ? Interval(static_cast<double>(compressor.CompressedBytes(
                              static_cast<size_t>(std::llround(payload_elements)))))
                        : Interval(payload_elements * sizeof(float));
      switch (op.routine) {
        case Routine::kAllreduce:
          return formulas::Allreduce<Interval>(p, Interval(domain_bytes), *link);
        case Routine::kReduceScatter:
          return formulas::ReduceScatter<Interval>(p, Interval(domain_bytes), *link);
        case Routine::kAllgather:
          return formulas::Allgather<Interval>(p, payload_bytes, *link);
        case Routine::kReduce:
          return formulas::Reduce<Interval>(p, Interval(domain_bytes), *link);
        case Routine::kBroadcast:
          return formulas::Broadcast<Interval>(p, payload_bytes, *link);
        case Routine::kAlltoall:
          return formulas::Alltoall<Interval>(p, payload_bytes, *link);
        case Routine::kGather:
          return formulas::Gather<Interval>(p, payload_bytes, *link);
        case Routine::kNone:
          return Interval(0.0);
      }
      return Interval(0.0);
    }
  }
  return Interval(0.0);
}

// Smallest / median / largest distinct tensor sizes: the interval properties are
// affine-ish in size, so the extremes plus one interior point cover the family.
std::vector<size_t> SampleSizes(const ModelProfile& model) {
  std::vector<size_t> sizes;
  sizes.reserve(model.tensors.size());
  for (const TensorSpec& tensor : model.tensors) {
    sizes.push_back(tensor.elements);
  }
  std::sort(sizes.begin(), sizes.end());
  std::vector<size_t> picked = {sizes.front(), sizes[sizes.size() / 2], sizes.back()};
  picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
  return picked;
}

void RunCostPass(const TreeConfig& tree, const ModelProfile& model,
                 const ClusterSpec& cluster, const Compressor& compressor,
                 const SpaceCheckOptions& options, SpaceCheckResult* out) {
  const OptionSpace space = EnumerateOptions(tree);
  ParameterRanges ranges =
      ParameterRanges::ForCluster(cluster, options.bandwidth_span, options.latency_span);
  if (options.inject == SpaceCheckInject::kCostNegative) {
    // A physically impossible declaration: launch overhead dipping below zero. The
    // non-negativity property must notice.
    ranges.gpu_launch_s = Interval(-1e-3, ranges.gpu_launch_s.hi);
  }
  const CompressionCostModel concrete_cost =
      MakeCompressionCostModel(cluster, compressor.name());
  const IntervalCostModel cost(ranges, concrete_cost.algorithm_weight(Device::kGpu),
                               concrete_cost.algorithm_weight(Device::kCpu));
  const TimelineEvaluator nominal(model, cluster, compressor);
  const std::vector<size_t> sizes = SampleSizes(model);

  // Per-op properties: non-negativity, containment of the concrete evaluation, payload
  // conservation — for every op of every option at every sampled size, on both devices.
  for (size_t i = 0; i < space.options.size(); ++i) {
    const CompressionOption& option = space.options[i];
    for (size_t oi = 0; oi < option.ops.size(); ++oi) {
      const Op& base_op = option.ops[oi];
      if (base_op.payload_fraction >
          base_op.domain_fraction * (1.0 + kPointEps) + kPointEps) {
        out->report.AddError(rules::kEscIntervalProperty, i,
                             "op " + std::to_string(oi) + " of '" + option.label +
                                 "' moves a payload fraction larger than its domain "
                                 "fraction (bytes conservation)");
      }
      std::vector<Op> op_variants = {base_op};
      if (base_op.task != ActionTask::kComm) {
        Op cpu_op = base_op;
        cpu_op.device = Device::kCpu;
        op_variants.push_back(cpu_op);
      }
      for (const Op& op : op_variants) {
        for (size_t elements : sizes) {
          ++out->stats.interval_checks;
          const Interval bound = IntervalOpDuration(cost, cluster, compressor, op, elements);
          if (!bound.NonNegative()) {
            out->report.AddError(
                rules::kEscIntervalProperty, i,
                "op " + std::to_string(oi) + " of '" + option.label + "' at " +
                    std::to_string(elements) + " elements admits a negative duration [" +
                    std::to_string(bound.lo) + ", " + std::to_string(bound.hi) +
                    "]s over the declared parameter ranges",
                "a cost formula subtracts or a declared range is unphysical");
            continue;
          }
          const double concrete = nominal.OpDuration(op, elements);
          const double slack = kPointEps * std::max(1.0, std::abs(concrete));
          if (concrete < bound.lo - slack || concrete > bound.hi + slack) {
            out->report.AddError(
                rules::kEscIntervalProperty, i,
                "op " + std::to_string(oi) + " of '" + option.label + "' at " +
                    std::to_string(elements) + " elements prices to " +
                    std::to_string(concrete) + "s outside its symbolic bound [" +
                    std::to_string(bound.lo) + ", " + std::to_string(bound.hi) + "]s",
                "the interval twin drifted from TimelineEvaluator::OpDuration");
          }
        }
      }
    }
  }

  // Compressor byte-conservation: compressed payloads are monotone in input size and
  // never exceed the raw encoding at the model's tensor sizes.
  size_t prev_bytes = 0;
  for (size_t k = 0; k < sizes.size(); ++k) {
    ++out->stats.interval_checks;
    const size_t bytes = compressor.CompressedBytes(sizes[k]);
    if (k > 0 && bytes < prev_bytes) {
      out->report.AddError(rules::kEscIntervalProperty, Diagnostic::kStrategyScope,
                           "CompressedBytes is not monotone: " +
                               std::to_string(sizes[k - 1]) + " -> " +
                               std::to_string(prev_bytes) + "B but " +
                               std::to_string(sizes[k]) + " -> " +
                               std::to_string(bytes) + "B");
    }
    if (bytes > sizes[k] * sizeof(float)) {
      out->report.AddError(rules::kEscIntervalProperty, Diagnostic::kStrategyScope,
                           "CompressedBytes inflates a tensor: " + std::to_string(sizes[k]) +
                               " elements (" + std::to_string(sizes[k] * sizeof(float)) +
                               "B raw) compress to " + std::to_string(bytes) + "B");
    }
    prev_bytes = bytes;
  }

  // Whole-strategy properties per option: F(S) finite and positive, non-increasing in
  // link bandwidth, and never beaten by its own Upper Bound pricing (§5.1).
  const TimelineEvaluator ub(model, cluster, compressor, /*zero_compression_cost=*/true);
  ClusterSpec slow = cluster;
  slow.intra.bytes_per_second *= 0.5;
  slow.inter.bytes_per_second *= 0.5;
  ClusterSpec fast = cluster;
  fast.intra.bytes_per_second *= 2.0;
  fast.inter.bytes_per_second *= 2.0;
  const TimelineEvaluator slow_eval(model, slow, compressor);
  const TimelineEvaluator fast_eval(model, fast, compressor);
  const size_t n = model.tensors.size();
  for (size_t i = 0; i < space.options.size(); ++i) {
    const CompressionOption& option = space.options[i];
    const Strategy strategy = UniformStrategy(n, option);
    const double fs = nominal.IterationTime(strategy);
    ++out->stats.monotonicity_checks;
    if (!std::isfinite(fs) || fs <= 0.0) {
      out->report.AddError(rules::kEscIntervalProperty, i,
                           "F(S) of uniform '" + option.label + "' is " +
                               std::to_string(fs) + "s (must be finite and positive)");
      continue;
    }
    const double fs_slow = slow_eval.IterationTime(strategy);
    const double fs_fast = fast_eval.IterationTime(strategy);
    const double tol = options.fs_tolerance;
    if (fs > fs_slow * (1.0 + tol) || fs_fast > fs * (1.0 + tol)) {
      out->report.AddError(
          rules::kEscIntervalProperty, i,
          "F(S) of uniform '" + option.label +
              "' is not monotone in link bandwidth: x0.5 -> " + std::to_string(fs_slow) +
              "s, x1 -> " + std::to_string(fs) + "s, x2 -> " + std::to_string(fs_fast) +
              "s",
          "faster links must never lengthen the simulated iteration");
    }
    const double fs_ub = ub.IterationTime(strategy);
    if (fs_ub > fs * (1.0 + tol)) {
      out->report.AddError(rules::kEscIntervalProperty, i,
                           "Upper Bound dominance violated for uniform '" + option.label +
                               "': free compression prices to " + std::to_string(fs_ub) +
                               "s vs " + std::to_string(fs) + "s with real costs");
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 3: differential validation (linter vs IR admission pipeline).
// ---------------------------------------------------------------------------

struct CorpusEntry {
  std::string name;
  std::string text;
  const char* expect;  // "accept" | "reject" | "parse-error"
};

void RunDifferentialPass(const TreeConfig& tree, const ModelProfile& model,
                         const ClusterSpec& cluster, const Compressor& compressor,
                         const CompressorConfig& compressor_config,
                         size_t max_compress_ops, const SpaceCheckOptions& options,
                         SpaceCheckResult* out) {
  const OptionSpace space = EnumerateOptions(tree);
  if (space.options.empty()) {
    return;
  }
  const size_t n = model.tensors.size();
  const TimelineEvaluator evaluator(model, cluster, compressor);
  LintOptions lint_options;
  lint_options.expected_tensors = n;
  std::vector<CorpusEntry> corpus;

  // Round-trips one strategy through the IR writer and compares the two admission
  // paths' verdicts. `flip_lint` is the validator-split self-test injection.
  auto differential = [&](const std::string& name, const Strategy& strategy,
                          bool flip_lint) {
    const bool lint_accepts = !LintStrategy(tree, strategy, lint_options).HasErrors();
    // Illegal strategies price as garbage; compile those with a zero score (score
    // drift is a warning by design, so the verdict comparison is unaffected).
    const double fs = lint_accepts ? evaluator.IterationTime(strategy) : 0.0;
    StrategyProvenance provenance;
    provenance.origin = "espresso_check";
    provenance.selector = "space-checker";
    const StrategyIR ir = CompileStrategyIR(strategy, fs, model, cluster,
                                            compressor_config, std::move(provenance));
    const std::string text = StrategyIRToString(ir);
    const bool lint_verdict = flip_lint ? !lint_accepts : lint_accepts;
    const StrategyIRParseResult parsed = ParseStrategyIR(text);
    if (!parsed.ok) {
      // A corrupted strategy may already be unserializable (the strict grammar refuses
      // zeroed fractions, and non-canonical fields break the strategy fingerprint).
      // Parse-time refusal is the admission pipeline rejecting even earlier than the
      // linter — agreement, as long as the linter rejects too.
      if (lint_verdict) {
        out->report.AddError(rules::kEscValidatorSplit, Diagnostic::kStrategyScope,
                             "linter-clean strategy '" + name +
                                 "' fails the IR parser: " + parsed.error,
                             "the writer must round-trip every legal strategy");
      }
      corpus.push_back({name, text, "parse-error"});
      return;
    }
    IRValidationOptions validate;
    validate.max_compress_ops = max_compress_ops;
    const bool validator_admits =
        ValidateStrategyIR(parsed.ir, model, cluster, compressor, compressor_config,
                           validate)
            .ok;
    if (lint_verdict != validator_admits) {
      out->report.AddError(
          rules::kEscValidatorSplit, Diagnostic::kStrategyScope,
          "admission verdicts diverge on '" + name + "': StrategyLinter says " +
              (lint_verdict ? "accept" : "reject") + ", ValidateStrategyIR says " +
              (validator_admits ? "accept" : "reject"),
          "the two validators must agree on every document "
          "(docs/DEPLOYMENT.md fail-closed contract)");
    }
    corpus.push_back({name, text, validator_admits ? "accept" : "reject"});
  };

  // Valid corpus: the selector's seeds plus seeded random mixes of enumerated options.
  std::vector<std::pair<std::string, Strategy>> valids;
  valids.emplace_back("uniform-default",
                      UniformStrategy(n, DefaultUncompressedOption(tree)));
  const std::vector<CompressionOption> candidates = CandidateOptions(tree);
  for (size_t c = 0; c < candidates.size() && c < 3; ++c) {
    valids.emplace_back("uniform-candidate-" + std::to_string(c),
                        UniformStrategy(n, candidates[c]));
  }
  for (size_t k = 0; k < options.corpus_strategies; ++k) {
    Rng rng(DeriveSeed(options.corpus_seed, k));
    Strategy mixed;
    mixed.options.reserve(n);
    for (size_t t = 0; t < n; ++t) {
      mixed.options.push_back(space.options[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(space.options.size()) - 1))]);
    }
    valids.emplace_back("mixed-" + std::to_string(k), std::move(mixed));
  }
  for (size_t v = 0; v < valids.size(); ++v) {
    ++out->stats.differential_valid;
    differential(valids[v].first, valids[v].second,
                 v == 0 && options.inject == SpaceCheckInject::kValidatorSplit);
  }

  // Corrupted corpus: one-edit mutations of random tensors of each valid strategy.
  constexpr size_t kCorruptionsPerValid = 2;
  for (size_t v = 0; v < valids.size(); ++v) {
    Rng rng(DeriveSeed(options.corpus_seed, 1000 + v));
    for (size_t j = 0; j < kCorruptionsPerValid; ++j) {
      const size_t tensor =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      const std::vector<OptionMutation> mutants =
          OneEditMutations(valids[v].second.options[tensor]);
      if (mutants.empty()) {
        continue;
      }
      const OptionMutation& mutation = mutants[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutants.size()) - 1))];
      Strategy corrupted = valids[v].second;
      corrupted.options[tensor] = mutation.option;
      ++out->stats.differential_corrupted;
      differential(valids[v].first + "-corrupt-" + std::to_string(j), corrupted,
                   /*flip_lint=*/false);
    }
  }

  // Byte-tampered corpus: semantic-field or structural damage to a valid document must
  // be caught at parse time (the payload digest / strict grammar), never admitted.
  if (!corpus.empty()) {
    const std::string& base = corpus.front().text;
    std::vector<std::pair<std::string, std::string>> tampered;
    const size_t digest_pos = base.find("\"payload_digest\"");
    if (digest_pos != std::string::npos) {
      std::string flipped = base;
      const size_t value_pos = flipped.find('"', digest_pos + 16);
      if (value_pos != std::string::npos && value_pos + 1 < flipped.size()) {
        char& c = flipped[value_pos + 1];
        c = (c == '0') ? '1' : '0';
        tampered.emplace_back("tamper-digest", std::move(flipped));
      }
    }
    tampered.emplace_back("tamper-truncate", base.substr(0, base.size() / 2));
    std::string renamed = base;
    const size_t fs_pos = renamed.find("\"fs_score\"");
    if (fs_pos != std::string::npos) {
      renamed.replace(fs_pos, 10, "\"fs_scorz\"");
      tampered.emplace_back("tamper-field", std::move(renamed));
    }
    for (auto& [name, text] : tampered) {
      ++out->stats.differential_tampered;
      const StrategyIRParseResult parsed = ParseStrategyIR(text);
      if (parsed.ok) {
        out->report.AddError(rules::kEscValidatorSplit, Diagnostic::kStrategyScope,
                             "tampered document '" + name +
                                 "' parses cleanly (digest/grammar failed to catch it)");
        corpus.push_back({name, text, "accept"});
      } else {
        corpus.push_back({name, std::move(text), "parse-error"});
      }
    }
  }

  if (!options.emit_corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.emit_corpus_dir, ec);
    if (ec) {
      out->report.AddError(rules::kEscValidatorSplit, Diagnostic::kStrategyScope,
                           "cannot create corpus directory " + options.emit_corpus_dir +
                               ": " + ec.message());
      return;
    }
    std::ofstream manifest(options.emit_corpus_dir + "/MANIFEST.tsv");
    manifest << "file\texpect\n";
    for (const CorpusEntry& entry : corpus) {
      const std::string filename = entry.name + ".esp";
      std::ofstream file(options.emit_corpus_dir + "/" + filename);
      file << entry.text;
      manifest << filename << '\t' << entry.expect << '\n';
      ++out->stats.corpus_files_written;
    }
    ++out->stats.corpus_files_written;  // the manifest itself
  }
}

}  // namespace

SpaceCheckResult CheckStrategySpace(const ModelProfile& model, const ClusterSpec& cluster,
                                    const Compressor& compressor,
                                    const CompressorConfig& compressor_config,
                                    size_t max_compress_ops,
                                    const SpaceCheckOptions& options) {
  SpaceCheckResult result;
  const TreeConfig tree{cluster.machines, cluster.gpus_per_machine,
                        compressor.SupportsCompressedAggregation(), max_compress_ops};
  if (options.check_space) {
    RunSpacePass(tree, options, &result);
  }
  if (options.check_cost) {
    RunCostPass(tree, model, cluster, compressor, options, &result);
  }
  if (options.check_differential) {
    RunDifferentialPass(tree, model, cluster, compressor, compressor_config,
                        max_compress_ops, options, &result);
  }
  return result;
}

}  // namespace espresso

// Fail-closed admission control for strategy IR documents (the load half of the
// deployment pipeline; src/ddl/strategy_deployment.h is the swap half).
//
// A parsed StrategyIR is *syntactically* sound — the parser already enforced the
// schema and the payload digest. This pass decides whether it may EXECUTE on a given
// job configuration:
//   1. config digests: the IR's model/cluster/compression digests are recomputed from
//      the loader's own configuration; any mismatch is an error (the strategy was
//      selected for a different job) unless `force_digest` downgrades it to a warning;
//   2. legality: the full StrategyLinter pass, with the model's tensor count enforced;
//   3. schedule: the strategy is simulated on this configuration and the recorded
//      timeline re-checked by the ScheduleVerifier.
// The default posture is fail-closed: any error in the report means "do not run this
// strategy" — executors keep their last-known-good deployment instead.
#ifndef SRC_ANALYSIS_IR_VALIDATOR_H_
#define SRC_ANALYSIS_IR_VALIDATOR_H_

#include "src/analysis/diagnostics.h"
#include "src/analysis/schedule_verifier.h"
#include "src/compress/compressor.h"
#include "src/core/strategy_ir.h"
#include "src/costmodel/calibration.h"
#include "src/models/model_profile.h"

namespace espresso {

namespace rules {
// IR admission rules (docs/ANALYSIS.md has the catalog).
inline constexpr const char* kIrSchemaVersion = "ir.schema-version";
inline constexpr const char* kIrDigestMismatch = "ir.digest-mismatch";
inline constexpr const char* kIrScoreDrift = "ir.score-drift";
}  // namespace rules

struct IRValidationOptions {
  // Downgrades config-digest mismatches from error to warning. The escape hatch for
  // deliberate cross-config deploys (e.g. a recalibrated cluster file); legality and
  // schedule checks still run at full strictness.
  bool force_digest = false;
  // Re-simulate the strategy on this configuration and run the ScheduleVerifier over
  // the recorded timeline. Skipped automatically when the linter already found errors
  // (an illegal option prices as garbage).
  bool verify_schedule = true;
  // User constraint forwarded to the decision-tree config (JobConfig::max_compress_ops).
  size_t max_compress_ops = 0;
  // Verifier tuning. `cpu_workers` is overridden from the cluster spec; epsilon and
  // check_priority are honored as given.
  VerifierConfig verifier;
};

struct IRValidationResult {
  // Fail-closed gate: true iff the report has no errors. Warnings do not block.
  bool ok = false;
  // True when any config digest differed — even under force_digest (callers audit it).
  bool digest_mismatch = false;
  // F(S) re-evaluated on THIS configuration (0 when the simulation was skipped).
  // Differs from ir.fs_score when the configs differ or the cost model changed.
  double evaluated_fs = 0.0;
  DiagnosticReport report;
};

// Validates `ir` for execution against the loader's own job configuration.
// `compressor` must be the one built from `compressor_config`.
IRValidationResult ValidateStrategyIR(const StrategyIR& ir, const ModelProfile& model,
                                      const ClusterSpec& cluster,
                                      const Compressor& compressor,
                                      const CompressorConfig& compressor_config,
                                      const IRValidationOptions& options = {});

}  // namespace espresso

#endif  // SRC_ANALYSIS_IR_VALIDATOR_H_

// ScheduleVerifier: a race/causality detector over TimelineEntry streams.
//
// The timeline engine is trusted by every layer above it — the decision algorithm ranks
// strategies by the makespans it produces, the benches regenerate paper figures from
// its entries, and the fault layer perturbs its resource speeds. The verifier re-checks
// the invariants a legal schedule must satisfy, from the entries alone:
//   * serial resources (gpu, intra, inter) never run two intervals at once;
//   * the cpu pool's instantaneous occupancy never exceeds its worker count;
//   * every op starts at or after its chain predecessor's end (WFBP causality: entries
//     of one tensor form a dependency chain behind its backward compute);
//   * FIFO/WFBP priority holds on serial resources: a ready op of a
//     closer-to-the-output tensor is never passed over in favor of a later tensor;
//   * durations are finite and non-negative, and nothing starts before t = 0.
// Violations carry a minimal witness — the one or two intervals that prove them.
//
// Entries must arrive grouped per tensor in pipeline order (TimelineEvaluator::Evaluate
// emits exactly this: n "compute" entries, then each tensor's ops in option order).
// Built into espresso_core under -DESPRESSO_VERIFY_SCHEDULES so every simulated
// timeline in the test and bench suites is verified as a side effect.
#ifndef SRC_ANALYSIS_SCHEDULE_VERIFIER_H_
#define SRC_ANALYSIS_SCHEDULE_VERIFIER_H_

#include <cstddef>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/strategy.h"
#include "src/core/timeline.h"

namespace espresso {

namespace rules {
inline constexpr const char* kSerialOverlap = "schedule.serial-overlap";
inline constexpr const char* kPoolOvercommit = "schedule.pool-overcommit";
inline constexpr const char* kCausality = "schedule.causality";
inline constexpr const char* kPriorityInversion = "schedule.priority-inversion";
inline constexpr const char* kNegativeDuration = "schedule.negative-duration";
inline constexpr const char* kNonFiniteTime = "schedule.non-finite-time";
inline constexpr const char* kOpCountMismatch = "schedule.op-count-mismatch";
inline constexpr const char* kBytesNotConserved = "schedule.bytes-not-conserved";
}  // namespace rules

struct VerifierConfig {
  // Capacity of the "cpu" pool resource (ClusterSpec::cpu_workers_per_gpu).
  size_t cpu_workers = 1;
  // Absolute slack (seconds) for float comparisons between interval endpoints.
  double epsilon = 1e-9;
  // WFBP priority auditing can be disabled for hand-built entry streams that carry no
  // meaningful tensor ordering.
  bool check_priority = true;
};

// Verifies the scheduling invariants of an entry stream.
DiagnosticReport VerifySchedule(const std::vector<TimelineEntry>& entries,
                                const VerifierConfig& config);

// VerifySchedule plus strategy correspondence: each tensor's entries must match its
// option's ops one-to-one (compress/decompress/comm counts and kinds), which — together
// with the linter's payload-flow rules — is how byte conservation across
// compress -> comm -> decompress is enforced end to end.
DiagnosticReport VerifySimulatedTimeline(const Strategy& strategy,
                                         const std::vector<TimelineEntry>& entries,
                                         const VerifierConfig& config);

}  // namespace espresso

#endif  // SRC_ANALYSIS_SCHEDULE_VERIFIER_H_

#include "src/analysis/ir_validator.h"

#include <cmath>
#include <string>

#include "src/analysis/strategy_linter.h"
#include "src/core/decision_tree.h"
#include "src/core/timeline.h"

namespace espresso {

namespace {

// Relative slack for comparing the IR's recorded F(S) against a fresh evaluation on an
// identical configuration. The evaluator is deterministic, so any drift beyond noise
// means the cost model changed since selection — worth a warning, not a refusal.
constexpr double kScoreRelTolerance = 1e-9;

void CheckDigest(DiagnosticReport* report, bool force, const char* which,
                 uint64_t expected, uint64_t actual, bool* mismatch) {
  if (expected == actual) {
    return;
  }
  *mismatch = true;
  const std::string message = std::string(which) + " digest mismatch: IR was selected for " +
                              DigestHex(expected) + ", this job hashes to " +
                              DigestHex(actual);
  if (force) {
    report->AddWarning(rules::kIrDigestMismatch, Diagnostic::kStrategyScope,
                       message + " (forced past by --force-digest)");
  } else {
    report->AddError(rules::kIrDigestMismatch, Diagnostic::kStrategyScope, message,
                     "re-select for this configuration, or pass --force-digest to "
                     "accept the mismatch deliberately");
  }
}

}  // namespace

IRValidationResult ValidateStrategyIR(const StrategyIR& ir, const ModelProfile& model,
                                      const ClusterSpec& cluster,
                                      const Compressor& compressor,
                                      const CompressorConfig& compressor_config,
                                      const IRValidationOptions& options) {
  IRValidationResult result;

  // 0. Schema version — the parser enforces this for file loads, but IRs can also be
  // built in memory (and a future loader may hand over a migrated document).
  if (ir.schema_version != kStrategyIrSchemaVersion) {
    result.report.AddError(rules::kIrSchemaVersion, Diagnostic::kStrategyScope,
                           "unsupported schema version " +
                               std::to_string(ir.schema_version) + " (this build runs " +
                               std::to_string(kStrategyIrSchemaVersion) + ")");
  }

  // 1. Config digests (fail-closed, force downgrades to warning).
  CheckDigest(&result.report, options.force_digest, "model", ir.model_digest,
              ModelDigest(model), &result.digest_mismatch);
  CheckDigest(&result.report, options.force_digest, "cluster", ir.cluster_digest,
              ClusterDigest(cluster), &result.digest_mismatch);
  CheckDigest(&result.report, options.force_digest, "compression", ir.compression_digest,
              CompressionDigest(compressor_config), &result.digest_mismatch);

  // 2. Legality: the full linter pass against this cluster's decision tree.
  const TreeConfig tree{cluster.machines, cluster.gpus_per_machine,
                        compressor.SupportsCompressedAggregation(),
                        options.max_compress_ops};
  LintOptions lint_options;
  lint_options.expected_tensors = model.tensors.size();
  result.report.Merge(LintStrategy(tree, ir.strategy, lint_options));

  // 3. Schedule: simulate on THIS configuration and re-verify the recorded timeline.
  // Skipped once anything above erred — an illegal option prices as garbage, and a
  // wrong-sized strategy cannot be simulated against this model at all.
  if (options.verify_schedule && !result.report.HasErrors()) {
    TimelineEvaluator evaluator(model, cluster, compressor);
    const TimelineResult timeline = evaluator.Evaluate(ir.strategy, /*record_entries=*/true);
    VerifierConfig verifier = options.verifier;
    verifier.cpu_workers = cluster.cpu_workers_per_gpu;
    result.report.Merge(VerifySimulatedTimeline(ir.strategy, timeline.entries, verifier));
    result.evaluated_fs = timeline.iteration_time;
    const double reference = std::max(std::abs(ir.fs_score), std::abs(timeline.iteration_time));
    if (!result.digest_mismatch &&
        std::abs(timeline.iteration_time - ir.fs_score) > kScoreRelTolerance * reference) {
      result.report.AddWarning(
          rules::kIrScoreDrift, Diagnostic::kStrategyScope,
          "recorded F(S) " + std::to_string(ir.fs_score) + "s re-evaluates to " +
              std::to_string(timeline.iteration_time) +
              "s on an identical configuration (cost model changed since selection?)");
    }
  }

  result.ok = !result.report.HasErrors();
  return result;
}

}  // namespace espresso

#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "src/util/json_writer.h"

namespace espresso::server {

namespace {

// Transport-level refusal for frames the service never sees (oversized, so the
// stream is desynchronised and the connection must close after this reply).
std::string FrameErrorResponse(const char* code, const std::string& message) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.BeginObject();
    json.Field("ok", false);
    json.Field("type", "error");
    json.Key("error");
    json.BeginObject();
    json.Field("code", code);
    json.Field("message", message);
    json.EndObject();
    json.EndObject();
  }
  return out.str();
}

}  // namespace

ServeServer::ServeServer(SelectionService* service, ServerOptions options)
    : service_(service), options_(options) {}

ServeServer::~ServeServer() { Stop(); }

bool ServeServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) {
      *error = "bind 127.0.0.1:" + std::to_string(options_.port) + ": " +
               std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) < 0) {
    if (error != nullptr) {
      *error = std::string("listen: ") + std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void ServeServer::Stop() {
  if (!running_.exchange(false)) {
    // Never started, or already stopped — but the join/drain below is still
    // needed when Stop() runs again via the destructor, which is serialized.
    if (!accept_thread_.joinable()) {
      return;
    }
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Unblock connection threads stuck in read(), then wait for every detached
  // connection thread to finish (each one's final act is the decrement+notify).
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (int fd : open_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
    conn_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  pool_.reset();
}

void ServeServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      // Listener closed by Stop(), or a transient accept failure while shutting
      // down — either way the loop is done once running_ drops.
      if (!running_.load()) {
        break;
      }
      // Persistent failures (EMFILE under fd exhaustion, ENOBUFS) would
      // otherwise spin this thread at 100% CPU — back off before retrying.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    open_fds_.push_back(fd);
    ++active_connections_;
    std::thread([this, fd] { ServeConnection(fd); }).detach();
  }
}

void ServeServer::ServeConnection(int fd) {
  // One TaskGroup per connection: the frame loop waits for ITS request only, so a
  // long selection on another connection never gates this one's reply.
  TaskGroup group;
  while (running_.load()) {
    FrameResult request = ReadFrame(fd, options_.max_frame_bytes);
    if (request.status == FrameStatus::kTooLarge) {
      // Refused before the body was read: the stream is desynchronised, so reply
      // with a typed error and close.
      WriteFrame(fd, FrameErrorResponse("payload-too-large", request.error));
      break;
    }
    if (!request.ok()) {
      break;  // clean close, torn frame, or I/O error — nothing to reply to
    }
    std::string response;
    pool_->Submit(group, [this, &request, &response] {
      response = service_->HandleRequest(request.payload);
    });
    group.Wait();
    if (!WriteFrame(fd, response)) {
      break;
    }
  }
  // Deregister BEFORE closing: once the fd number is closed the kernel may hand
  // it to a new accept, and Stop() must never shut down a stranger's fd.
  {
    std::lock_guard<std::mutex> lock(mu_);
    open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                    open_fds_.end());
  }
  ::close(fd);
  // Last act of the detached thread: nothing may touch `this` after the notify
  // releases mu_, because Stop() (and then ~ServeServer) is free to proceed the
  // moment the count hits zero. Notifying under the lock keeps that ordering.
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_connections_;
    if (active_connections_ == 0) {
      conn_cv_.notify_all();
    }
  }
}

}  // namespace espresso::server

#include "src/server/frame.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <limits>

namespace espresso::server {

namespace {

// read() until `len` bytes or EOF/error. Returns bytes read (< len only on EOF),
// or -1 with errno set.
ssize_t ReadFull(int fd, char* buf, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, buf + done, len - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -1;
    }
    if (n == 0) {
      break;  // EOF
    }
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

// MSG_NOSIGNAL: a peer that resets mid-write must surface as EPIPE, not as a
// process-fatal SIGPIPE — one dead client must never take down the daemon.
bool WriteFull(int fd, const char* buf, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::send(fd, buf + done, len - done, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, buf + done, len - done);  // non-socket fd (pipe, file)
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

std::string ErrnoString() {
  return std::strerror(errno) + std::string(" (errno ") + std::to_string(errno) + ")";
}

}  // namespace

const char* FrameStatusName(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kClosed:
      return "closed";
    case FrameStatus::kTooLarge:
      return "too-large";
    case FrameStatus::kTruncated:
      return "truncated";
    case FrameStatus::kIoError:
      return "io-error";
  }
  return "unknown";
}

FrameResult ReadFrame(int fd, size_t max_bytes) {
  FrameResult result;
  char prefix[4];
  const ssize_t got = ReadFull(fd, prefix, sizeof(prefix));
  if (got < 0) {
    result.status = FrameStatus::kIoError;
    result.error = "frame prefix read failed: " + ErrnoString();
    return result;
  }
  if (got == 0) {
    result.status = FrameStatus::kClosed;
    result.error = "peer closed the connection";
    return result;
  }
  if (got < static_cast<ssize_t>(sizeof(prefix))) {
    result.status = FrameStatus::kTruncated;
    result.error = "EOF inside the 4-byte length prefix";
    return result;
  }
  const uint32_t length = (static_cast<uint32_t>(static_cast<unsigned char>(prefix[0])) << 24) |
                          (static_cast<uint32_t>(static_cast<unsigned char>(prefix[1])) << 16) |
                          (static_cast<uint32_t>(static_cast<unsigned char>(prefix[2])) << 8) |
                          static_cast<uint32_t>(static_cast<unsigned char>(prefix[3]));
  if (length > max_bytes) {
    // Refuse before allocating or reading the body. The connection is now
    // desynchronised (the body is still in flight), so callers should close it.
    result.status = FrameStatus::kTooLarge;
    result.error = "frame of " + std::to_string(length) + " bytes exceeds the " +
                   std::to_string(max_bytes) + "-byte limit";
    return result;
  }
  result.payload.resize(length);
  if (length > 0) {
    const ssize_t body = ReadFull(fd, result.payload.data(), length);
    if (body < 0) {
      result.payload.clear();
      result.status = FrameStatus::kIoError;
      result.error = "frame body read failed: " + ErrnoString();
      return result;
    }
    if (body < static_cast<ssize_t>(length)) {
      result.payload.clear();
      result.status = FrameStatus::kTruncated;
      result.error = "EOF after " + std::to_string(body) + " of " +
                     std::to_string(length) + " body bytes";
      return result;
    }
  }
  result.status = FrameStatus::kOk;
  return result;
}

bool WriteFrame(int fd, std::string_view payload, std::string* error) {
  if (payload.size() > std::numeric_limits<uint32_t>::max()) {
    if (error != nullptr) {
      *error = "payload of " + std::to_string(payload.size()) +
               " bytes does not fit a 32-bit length prefix";
    }
    return false;
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>((length >> 24) & 0xff),
                    static_cast<char>((length >> 16) & 0xff),
                    static_cast<char>((length >> 8) & 0xff),
                    static_cast<char>(length & 0xff)};
  if (!WriteFull(fd, prefix, sizeof(prefix)) ||
      !WriteFull(fd, payload.data(), payload.size())) {
    if (error != nullptr) {
      *error = "frame write failed: " + ErrnoString();
    }
    return false;
  }
  return true;
}

}  // namespace espresso::server

// SelectionService: the transport-independent core of `espresso_serve` (the
// strategy-selection-as-a-service frontend, docs/SERVICE.md).
//
// One request = one JSON document carrying the same three configuration payloads
// `espresso_cli` takes as files (model / GC / system INI text). The service runs the
// exact CLI selection flow — identical SelectorOptions, identical CompileStrategyIR
// provenance — so a served IR document is byte-identical to `espresso_cli --ir-out`
// on the same committed configs. Every response that carries an IR has already passed
// the fail-closed admission pipeline (ValidateStrategyIR: digests, linter, schedule
// re-simulation); a strategy that cannot be validated is never serialized out.
//
// Long-lived-process behavior:
//   * F(S) memoization is shared ACROSS requests through a bounded pool of
//     EvaluationCaches keyed by the (model, cluster, compression) digest triple —
//     fingerprints are only meaningful for one evaluator configuration, so the pool
//     key is exactly the validity domain of the cache. A repeat selection against
//     the same configs is a warm-cache hit, observable in the response telemetry.
//   * Admission control: at most `max_inflight` selections run at once (excess is
//     refused with `over-capacity`, never queued invisibly); per-request budgets
//     (threads, offload search budget, deadline) map onto SelectorOptions; an
//     expired deadline is a typed `deadline-expired` error, including when it
//     expires mid-selection (a late result is not served).
//   * Per-tenant quota accounting: each tenant's timeline evaluations accumulate
//     against its quota; an exhausted tenant gets `quota-exhausted` while other
//     tenants keep being served.
//   * Every request — served or rejected — lands in the AuditLog with its typed
//     outcome, and in the espresso_serve_* metrics.
#ifndef SRC_SERVER_SERVICE_H_
#define SRC_SERVER_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "src/obs/audit_log.h"
#include "src/server/frame.h"

namespace espresso {
class EvaluationCache;
}  // namespace espresso

namespace espresso::server {

// Typed request outcomes. The wire form (ServeErrorCode) is part of the protocol:
// clients dispatch on the code string, not the human-readable message.
enum class ServeError {
  kNone,
  kMalformedRequest,  // unparseable JSON, missing/mistyped fields
  kUnsupportedType,   // "type" is not select | metrics | health
  kPayloadTooLarge,   // request body over the service's byte limit
  kBadConfig,         // the three INI payloads do not load into a JobConfig
  kOverCapacity,      // admission control: max_inflight selections already running
  kQuotaExhausted,    // tenant's evaluation quota is spent
  kDeadlineExpired,   // request deadline passed before or during selection
  kValidationFailed,  // selected IR failed the fail-closed admission pipeline
};

// Stable wire identifier, e.g. "quota-exhausted".
const char* ServeErrorCode(ServeError error);

struct ServiceConfig {
  // Concurrent select requests admitted at once; further ones get `over-capacity`.
  size_t max_inflight = 8;
  // Capacity of each per-config-triple F(S) cache.
  size_t cache_capacity = 1 << 16;
  // Distinct config triples kept warm; least-recently-used entries are dropped.
  size_t max_cached_configs = 8;
  // Evaluation quota for tenants without an explicit entry (0 = unlimited).
  uint64_t default_quota = 0;
  // Per-tenant evaluation quotas (0 = unlimited).
  std::map<std::string, uint64_t> tenant_quotas;
  // Requests larger than this are refused with `payload-too-large` (the framing
  // layer enforces the same bound on the wire; this guards other transports).
  size_t max_request_bytes = kDefaultMaxFrameBytes;
};

// Point-in-time service counters (for tests, the health endpoint, and operators).
struct ServiceStats {
  uint64_t requests = 0;  // every request seen, any type
  uint64_t served = 0;    // select requests that returned an IR
  uint64_t rejected = 0;  // select requests refused with a typed error
  size_t inflight = 0;    // selections currently running
  size_t cached_configs = 0;
};

class SelectionService {
 public:
  // `audit` may be null (no auditing); otherwise it must outlive the service.
  SelectionService(ServiceConfig config, obs::AuditLog* audit);

  SelectionService(const SelectionService&) = delete;
  SelectionService& operator=(const SelectionService&) = delete;

  // Handles one request payload (JSON text) and returns the response payload
  // (JSON text). Never throws; every failure mode is a well-formed error response.
  // Thread-safe: connection handlers call this concurrently.
  std::string HandleRequest(std::string_view payload);

  ServiceStats stats() const;
  // Evaluations charged against `tenant` so far.
  uint64_t TenantUsed(const std::string& tenant) const;
  const ServiceConfig& config() const { return config_; }

 private:
  std::string HandleSelect(const struct SelectRequest& request);
  std::string HandleMetrics(const std::string& id, const std::string& format);
  std::string HandleHealth(const std::string& id);

  // Typed error response; audits the rejection and bumps the reject counter.
  std::string ErrorResponse(const std::string& id, const std::string& tenant,
                            ServeError error, const std::string& message);

  // Returns the shared F(S) cache for a config-digest triple, creating it (and
  // evicting the least-recently-used entry past max_cached_configs) as needed.
  std::shared_ptr<EvaluationCache> CacheFor(const std::string& digest_key);

  const ServiceConfig config_;
  obs::AuditLog* const audit_;  // not owned; may be null

  mutable std::mutex mu_;
  // Digest-triple key -> (shared cache, last-use tick). The tick implements LRU
  // eviction without timestamps.
  std::map<std::string, std::pair<std::shared_ptr<EvaluationCache>, uint64_t>> cache_pool_;
  std::map<std::string, uint64_t> tenant_used_;
  uint64_t pool_clock_ = 0;
  size_t inflight_ = 0;
  uint64_t requests_ = 0;
  uint64_t served_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace espresso::server

#endif  // SRC_SERVER_SERVICE_H_

// ServeClient: a minimal blocking client for the espresso_serve framed-RPC
// protocol, plus request builders producing the wire JSON. Used by the serve_demo
// example, the CI smoke harness, and the server integration tests — one
// implementation of the protocol on each side, tested against itself.
#ifndef SRC_SERVER_CLIENT_H_
#define SRC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/server/frame.h"

namespace espresso::server {

// Budget knobs for BuildSelectRequest; default-constructed = no budget object.
struct RequestBudget {
  int64_t deadline_ms = -1;          // < 0 = omit
  int64_t threads = -1;              // < 0 = omit
  int64_t offload_search_budget = -1;  // < 0 = omit
  bool any() const { return deadline_ms >= 0 || threads >= 0 || offload_search_budget >= 0; }
};

// Wire JSON for a select request carrying the three INI payloads verbatim.
std::string BuildSelectRequest(std::string_view id, std::string_view tenant,
                               std::string_view model_ini, std::string_view gc_ini,
                               std::string_view system_ini,
                               const RequestBudget& budget = {});
// `format` is "prometheus" or "json".
std::string BuildMetricsRequest(std::string_view id, std::string_view format);
std::string BuildHealthRequest(std::string_view id);

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Connects to 127.0.0.1:<port>. Returns false with *error set on failure.
  bool Connect(uint16_t port, std::string* error = nullptr);

  // One round trip: writes `request` as a frame, reads one response frame into
  // *response. Returns false with *error set on any transport failure.
  bool Call(std::string_view request, std::string* response,
            std::string* error = nullptr,
            size_t max_frame_bytes = kDefaultMaxFrameBytes);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace espresso::server

#endif  // SRC_SERVER_CLIENT_H_

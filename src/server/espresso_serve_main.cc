// espresso_serve: the strategy-selection service daemon (docs/SERVICE.md).
//
// Usage:
//   espresso_serve [--port=N] [--port-file=<path>] [--threads=N]
//                  [--max-inflight=N] [--cache-capacity=N] [--max-cached-configs=N]
//                  [--default-quota=N] [--tenant-quota=<name>=<N>]...
//                  [--audit-log=<path>] [--audit-retention=N]
//                  [--max-frame-bytes=N]
//
// Binds 127.0.0.1 only. --port=0 (the default) picks an ephemeral port;
// --port-file writes the bound port as a decimal line so harnesses can discover
// it without racing the log output. Runs until SIGINT/SIGTERM, then drains and
// exits 0. Exits 2 on flag errors, 1 when the listener cannot start.
#include <signal.h>

#include <csignal>
#include <cstdint>
#include <iostream>
#include <string>

#include "src/obs/audit_log.h"
#include "src/server/server.h"
#include "src/server/service.h"
#include "src/util/atomic_file.h"
#include "src/util/parse_number.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

bool ParseFlagUint(const std::string& arg, const std::string& flag, uint64_t* out,
                   bool* matched) {
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) != 0) {
    *matched = false;
    return true;
  }
  *matched = true;
  const std::string value = arg.substr(prefix.size());
  const espresso::NumberParse status = espresso::ParseUint64(value, out);
  if (status != espresso::NumberParse::kOk) {
    std::cerr << "error: " << flag << " value '" << value << "' "
              << espresso::NumberParseMessage(status) << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace espresso;

  // Belt and braces alongside MSG_NOSIGNAL in the frame writer: a client that
  // resets its connection must never kill the multi-tenant daemon with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  server::ServiceConfig service_config;
  server::ServerOptions server_options;
  std::string port_file;
  std::string audit_path;
  uint64_t audit_retention = obs::kDefaultAuditRetention;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool matched = false;
    uint64_t value = 0;
    if (!ParseFlagUint(arg, "--port", &value, &matched)) return 2;
    if (matched) {
      if (value > 65535) {
        std::cerr << "error: --port value " << value << " is not a TCP port\n";
        return 2;
      }
      server_options.port = static_cast<uint16_t>(value);
      continue;
    }
    if (arg.rfind("--port-file=", 0) == 0) {
      port_file = arg.substr(12);
      continue;
    }
    if (!ParseFlagUint(arg, "--threads", &value, &matched)) return 2;
    if (matched) {
      server_options.worker_threads = static_cast<size_t>(value);
      continue;
    }
    if (!ParseFlagUint(arg, "--max-inflight", &value, &matched)) return 2;
    if (matched) {
      if (value == 0) {
        std::cerr << "error: --max-inflight must be at least 1\n";
        return 2;
      }
      service_config.max_inflight = static_cast<size_t>(value);
      continue;
    }
    if (!ParseFlagUint(arg, "--cache-capacity", &value, &matched)) return 2;
    if (matched) {
      service_config.cache_capacity = static_cast<size_t>(value);
      continue;
    }
    if (!ParseFlagUint(arg, "--max-cached-configs", &value, &matched)) return 2;
    if (matched) {
      service_config.max_cached_configs = static_cast<size_t>(value);
      continue;
    }
    if (!ParseFlagUint(arg, "--default-quota", &value, &matched)) return 2;
    if (matched) {
      service_config.default_quota = value;
      continue;
    }
    if (arg.rfind("--tenant-quota=", 0) == 0) {
      const std::string spec = arg.substr(15);
      const size_t eq = spec.rfind('=');
      uint64_t quota = 0;
      if (eq == std::string::npos || eq == 0 ||
          ParseUint64(spec.substr(eq + 1), &quota) != NumberParse::kOk) {
        std::cerr << "error: --tenant-quota expects <name>=<evaluations>, got '"
                  << spec << "'\n";
        return 2;
      }
      service_config.tenant_quotas[spec.substr(0, eq)] = quota;
      continue;
    }
    if (arg.rfind("--audit-log=", 0) == 0) {
      audit_path = arg.substr(12);
      continue;
    }
    if (!ParseFlagUint(arg, "--audit-retention", &value, &matched)) return 2;
    if (matched) {
      audit_retention = value;
      continue;
    }
    if (!ParseFlagUint(arg, "--max-frame-bytes", &value, &matched)) return 2;
    if (matched) {
      server_options.max_frame_bytes = static_cast<size_t>(value);
      service_config.max_request_bytes = static_cast<size_t>(value);
      continue;
    }
    std::cerr << "error: unknown flag " << arg << "\n"
              << "usage: " << argv[0]
              << " [--port=N] [--port-file=<path>] [--threads=N] [--max-inflight=N]"
              << " [--cache-capacity=N] [--max-cached-configs=N] [--default-quota=N]"
              << " [--tenant-quota=<name>=<N>]... [--audit-log=<path>]"
              << " [--audit-retention=N] [--max-frame-bytes=N]\n";
    return 2;
  }

  obs::AuditLog audit(static_cast<size_t>(audit_retention));
  if (!audit_path.empty()) {
    std::string error;
    if (!audit.Open(audit_path, &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
  }

  server::SelectionService service(service_config, &audit);
  server::ServeServer server(&service, server_options);
  std::string error;
  if (!server.Start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (!port_file.empty()) {
    if (!WriteFileAtomic(port_file, std::to_string(server.port()) + "\n", &error)) {
      std::cerr << "error: " << error << "\n";
      server.Stop();
      return 1;
    }
  }
  std::cout << "espresso_serve listening on 127.0.0.1:" << server.port()
            << " (threads=" << server_options.worker_threads
            << ", max-inflight=" << service_config.max_inflight
            << ", cache-capacity=" << service_config.cache_capacity
            << (audit_path.empty() ? "" : ", audit=" + audit_path) << ")\n"
            << std::flush;

  // Block the shutdown signals BEFORE the g_stop check: a signal delivered
  // between the test and the wait stays pending instead of being consumed, and
  // sigsuspend atomically unblocks it while waiting — no missed-wakeup window.
  sigset_t shutdown_set;
  sigemptyset(&shutdown_set);
  sigaddset(&shutdown_set, SIGINT);
  sigaddset(&shutdown_set, SIGTERM);
  sigset_t wait_mask;
  ::sigprocmask(SIG_BLOCK, &shutdown_set, &wait_mask);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // Wait with the pre-block mask minus the shutdown signals, in case the parent
  // launched us with either already blocked.
  sigdelset(&wait_mask, SIGINT);
  sigdelset(&wait_mask, SIGTERM);
  while (g_stop == 0) {
    sigsuspend(&wait_mask);
  }
  ::sigprocmask(SIG_SETMASK, &wait_mask, nullptr);
  server.Stop();

  const server::ServiceStats stats = service.stats();
  std::cout << "espresso_serve drained: " << stats.requests << " requests, "
            << stats.served << " served, " << stats.rejected << " rejected"
            << (audit.write_failed()
                    ? " [AUDIT DEGRADED: " + audit.last_write_error() + "]"
                    : "")
            << "\n";
  return 0;
}

// ServeServer: the TCP transport wrapped around SelectionService.
//
// Loopback-only by design (the service has no authentication; tenancy is a quota
// boundary, not a security boundary — front it with a real proxy for anything
// else). One OS thread per connection does the blocking frame I/O; the CPU-bound
// request handling itself runs on a SHARED ThreadPool, with each connection
// waiting only on its own TaskGroup — two tenants' selections proceed through the
// same pool without either's completion gating the other's (the reason
// ThreadPool::Wait()'s global-idle semantics were not enough).
//
// Port 0 binds an ephemeral port (the bound port is readable via port(), and
// espresso_serve can write it to a file for harnesses to discover).
#ifndef SRC_SERVER_SERVER_H_
#define SRC_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/server/frame.h"
#include "src/server/service.h"
#include "src/util/thread_pool.h"

namespace espresso::server {

struct ServerOptions {
  uint16_t port = 0;            // 0 = ephemeral
  size_t worker_threads = 2;    // shared pool executing request handling
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class ServeServer {
 public:
  // `service` must outlive the server.
  ServeServer(SelectionService* service, ServerOptions options);
  ~ServeServer();  // calls Stop()

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  // Binds 127.0.0.1:<port>, starts listening and accepting. Returns false with
  // *error set on failure (port in use, out of fds).
  bool Start(std::string* error);

  // Shuts the listener and every open connection down and joins all threads.
  // Idempotent; safe to call from a signal-driven main loop.
  void Stop();

  // The bound port (meaningful after Start() succeeds).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  SelectionService* const service_;
  const ServerOptions options_;

  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  // Connection threads run detached so a long-lived daemon never accumulates
  // finished-but-unjoined handles; Stop() instead waits on active_connections_
  // dropping to zero (each thread's last act is the decrement + notify).
  std::mutex mu_;
  std::condition_variable conn_cv_;
  size_t active_connections_ = 0;
  std::vector<int> open_fds_;  // shut down on Stop() to unblock reads
};

}  // namespace espresso::server

#endif  // SRC_SERVER_SERVER_H_

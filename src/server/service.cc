#include "src/server/service.h"

#include <chrono>
#include <sstream>

#include "src/analysis/ir_validator.h"
#include "src/core/espresso.h"
#include "src/core/eval_cache.h"
#include "src/core/strategy_ir.h"
#include "src/ddl/job_config.h"
#include "src/obs/exporters.h"
#include "src/obs/metrics.h"
#include "src/util/json_reader.h"
#include "src/util/json_writer.h"

namespace espresso::server {

namespace {

using Clock = std::chrono::steady_clock;

// Lazily registered service metrics (idempotent against the global registry).
struct ServeMetrics {
  obs::Counter requests;
  obs::Counter served;
  obs::Counter rejected;
  obs::Counter cache_hits;
  obs::Counter cache_misses;
  obs::Gauge inflight;
  obs::Histogram selection_seconds;
};

const ServeMetrics& Metrics() {
  static const ServeMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::GlobalMetrics();
    ServeMetrics m;
    m.requests = registry.RegisterCounter("espresso_serve_requests_total",
                                          "Requests received by the selection service");
    m.served = registry.RegisterCounter("espresso_serve_served_total",
                                        "Select requests answered with a validated IR");
    m.rejected = registry.RegisterCounter(
        "espresso_serve_rejected_total",
        "Select requests refused with a typed error (see the audit log for codes)");
    m.cache_hits = registry.RegisterCounter(
        "espresso_serve_cache_hits_total",
        "F(S) cache hits across served selections (shared per config triple)");
    m.cache_misses = registry.RegisterCounter(
        "espresso_serve_cache_misses_total",
        "F(S) cache misses across served selections");
    m.inflight = registry.RegisterGauge("espresso_serve_inflight",
                                        "Selections currently running");
    m.selection_seconds = registry.RegisterHistogram(
        "espresso_serve_selection_seconds", "Wall-clock time of served selections",
        obs::DefaultTimeBuckets());
    return m;
  }();
  return metrics;
}

std::string JsonString(const JsonValue* value) {
  return value != nullptr && value->IsString() ? value->text : std::string();
}

}  // namespace

// A parsed select request. Kept in the .cc: the wire schema is the contract,
// not this struct.
struct SelectRequest {
  std::string id;
  std::string tenant;
  std::string model_text;
  std::string gc_text;
  std::string system_text;
  // Budget knobs, all optional on the wire.
  int64_t deadline_ms = -1;  // < 0 = no deadline; 0 = already expired (for tests)
  bool has_deadline = false;
  size_t threads = 0;
  size_t offload_search_budget = 0;  // 0 = selector default
};

const char* ServeErrorCode(ServeError error) {
  switch (error) {
    case ServeError::kNone:
      return "none";
    case ServeError::kMalformedRequest:
      return "malformed-request";
    case ServeError::kUnsupportedType:
      return "unsupported-type";
    case ServeError::kPayloadTooLarge:
      return "payload-too-large";
    case ServeError::kBadConfig:
      return "bad-config";
    case ServeError::kOverCapacity:
      return "over-capacity";
    case ServeError::kQuotaExhausted:
      return "quota-exhausted";
    case ServeError::kDeadlineExpired:
      return "deadline-expired";
    case ServeError::kValidationFailed:
      return "validation-failed";
  }
  return "unknown";
}

SelectionService::SelectionService(ServiceConfig config, obs::AuditLog* audit)
    : config_(std::move(config)), audit_(audit) {}

std::string SelectionService::HandleRequest(std::string_view payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
  }
  obs::GlobalMetrics().Add(Metrics().requests);

  if (payload.size() > config_.max_request_bytes) {
    return ErrorResponse("", "", ServeError::kPayloadTooLarge,
                         "request of " + std::to_string(payload.size()) +
                             " bytes exceeds the " +
                             std::to_string(config_.max_request_bytes) + "-byte limit");
  }
  const JsonParseResult parsed = ParseJson(payload);
  if (!parsed.ok) {
    return ErrorResponse("", "", ServeError::kMalformedRequest,
                         "request is not valid JSON: " + parsed.error);
  }
  if (!parsed.value.IsObject()) {
    return ErrorResponse("", "", ServeError::kMalformedRequest,
                         "request must be a JSON object");
  }
  const std::string id = JsonString(parsed.value.Find("id"));
  const std::string type = JsonString(parsed.value.Find("type"));
  if (type == "health") {
    return HandleHealth(id);
  }
  if (type == "metrics") {
    std::string format = JsonString(parsed.value.Find("format"));
    if (format.empty()) {
      format = "prometheus";
    }
    if (format != "prometheus" && format != "json") {
      return ErrorResponse(id, "", ServeError::kMalformedRequest,
                           "metrics format must be \"prometheus\" or \"json\"");
    }
    return HandleMetrics(id, format);
  }
  if (type != "select") {
    return ErrorResponse(id, JsonString(parsed.value.Find("tenant")),
                         ServeError::kUnsupportedType,
                         type.empty() ? "request has no \"type\" field"
                                      : "unsupported request type \"" + type + "\"");
  }

  SelectRequest request;
  request.id = id;
  request.tenant = JsonString(parsed.value.Find("tenant"));
  if (request.tenant.empty()) {
    return ErrorResponse(id, "", ServeError::kMalformedRequest,
                         "select request has no \"tenant\" field");
  }
  const JsonValue* config = parsed.value.Find("config");
  if (config == nullptr || !config->IsObject()) {
    return ErrorResponse(id, request.tenant, ServeError::kMalformedRequest,
                         "select request has no \"config\" object");
  }
  request.model_text = JsonString(config->Find("model"));
  request.gc_text = JsonString(config->Find("gc"));
  request.system_text = JsonString(config->Find("system"));
  if (request.model_text.empty() || request.gc_text.empty() ||
      request.system_text.empty()) {
    return ErrorResponse(id, request.tenant, ServeError::kMalformedRequest,
                         "\"config\" must carry non-empty \"model\", \"gc\", and "
                         "\"system\" INI payloads");
  }
  if (const JsonValue* budget = parsed.value.Find("budget");
      budget != nullptr && budget->IsObject()) {
    if (const JsonValue* deadline = budget->Find("deadline_ms"); deadline != nullptr) {
      if (!deadline->AsInt64(&request.deadline_ms)) {
        return ErrorResponse(id, request.tenant, ServeError::kMalformedRequest,
                             "\"budget.deadline_ms\" must be an integer");
      }
      request.has_deadline = request.deadline_ms >= 0;
    }
    if (const JsonValue* threads = budget->Find("threads"); threads != nullptr) {
      uint64_t value = 0;
      if (!threads->AsUint64(&value)) {
        return ErrorResponse(id, request.tenant, ServeError::kMalformedRequest,
                             "\"budget.threads\" must be a non-negative integer");
      }
      request.threads = static_cast<size_t>(value);
    }
    if (const JsonValue* budget_ops = budget->Find("offload_search_budget");
        budget_ops != nullptr) {
      uint64_t value = 0;
      if (!budget_ops->AsUint64(&value)) {
        return ErrorResponse(id, request.tenant, ServeError::kMalformedRequest,
                             "\"budget.offload_search_budget\" must be a non-negative "
                             "integer");
      }
      request.offload_search_budget = static_cast<size_t>(value);
    }
  }
  return HandleSelect(request);
}

std::string SelectionService::HandleSelect(const SelectRequest& request) {
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::milliseconds(request.has_deadline ? request.deadline_ms : 0);

  // Admission control: bounded concurrency, refused loudly rather than queued
  // invisibly (the client can retry with backoff; a hidden queue would make every
  // deadline meaningless under load).
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_ < config_.max_inflight) {
      ++inflight_;
      obs::GlobalMetrics().Set(Metrics().inflight, static_cast<double>(inflight_));
      admitted = true;
    }
  }
  if (!admitted) {
    return ErrorResponse(request.id, request.tenant, ServeError::kOverCapacity,
                         "all " + std::to_string(config_.max_inflight) +
                             " selection slots are busy; retry with backoff");
  }

  // Everything below must release the in-flight slot on every path.
  struct SlotRelease {
    SelectionService* service;
    ~SlotRelease() {
      std::lock_guard<std::mutex> lock(service->mu_);
      --service->inflight_;
      obs::GlobalMetrics().Set(Metrics().inflight,
                               static_cast<double>(service->inflight_));
    }
  } release{this};

  // Quota check before any work: a spent tenant must not consume a slot's worth
  // of CPU just to be refused afterwards.
  uint64_t quota = config_.default_quota;
  if (const auto it = config_.tenant_quotas.find(request.tenant);
      it != config_.tenant_quotas.end()) {
    quota = it->second;
  }
  if (quota > 0) {
    uint64_t used = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = tenant_used_.find(request.tenant);
      if (it != tenant_used_.end()) {
        used = it->second;
      }
    }
    // mu_ must be released before ErrorResponse (which re-locks to count).
    if (used >= quota) {
      return ErrorResponse(request.id, request.tenant, ServeError::kQuotaExhausted,
                           "tenant \"" + request.tenant + "\" has used " +
                               std::to_string(used) + " of " + std::to_string(quota) +
                               " evaluation quota");
    }
  }

  const ConfigFile model_file = ConfigFile::ParseString(request.model_text);
  const ConfigFile gc_file = ConfigFile::ParseString(request.gc_text);
  const ConfigFile system_file = ConfigFile::ParseString(request.system_text);
  const JobConfigResult loaded = LoadJobConfig(model_file, gc_file, system_file);
  if (!loaded.ok) {
    return ErrorResponse(request.id, request.tenant, ServeError::kBadConfig,
                         loaded.error);
  }
  const JobConfig& job = loaded.job;
  const auto compressor = job.MakeCompressor();
  // The selector CHECK-aborts on compressors without a deterministic compressed
  // size (§4.3's applicability requirement). A CLI abort is an error message; a
  // server abort is an outage every tenant shares — refuse the config instead.
  if (!compressor->HasDeterministicSize()) {
    return ErrorResponse(request.id, request.tenant, ServeError::kBadConfig,
                         "compressor '" + job.compressor.algorithm +
                             "' has a content-dependent compressed size and cannot "
                             "drive strategy selection");
  }

  if (request.has_deadline && Clock::now() >= deadline) {
    return ErrorResponse(request.id, request.tenant, ServeError::kDeadlineExpired,
                         "deadline of " + std::to_string(request.deadline_ms) +
                             " ms expired before selection started");
  }

  // Identical selection setup to espresso_cli: default SelectorOptions, candidate
  // pruning only under a user max_compress_ops constraint. Thread count and the
  // offload budget are bit-exact knobs (docs/PERFORMANCE.md), so per-request
  // budgets cannot change WHICH strategy a config triple gets — only how fast.
  SelectorOptions options;
  if (job.max_compress_ops > 0) {
    TreeConfig tree{job.cluster.machines, job.cluster.gpus_per_machine,
                    compressor->SupportsCompressedAggregation(), job.max_compress_ops};
    options.candidates = CandidateOptions(tree);
  }
  options.threads = request.threads;
  if (request.offload_search_budget > 0) {
    options.offload_search_budget = request.offload_search_budget;
  }
  options.cache_capacity = config_.cache_capacity;

  // The shared F(S) cache for this evaluator configuration. Keying by the digest
  // triple is what makes cross-request sharing sound: a fingerprint means nothing
  // outside its (model, cluster, compressor) domain.
  const uint64_t model_digest = ModelDigest(job.model);
  const uint64_t cluster_digest = ClusterDigest(job.cluster);
  const uint64_t compression_digest = CompressionDigest(job.compressor);
  const std::string digest_key = DigestHex(model_digest) + ":" +
                                 DigestHex(cluster_digest) + ":" +
                                 DigestHex(compression_digest);
  std::shared_ptr<EvaluationCache> cache = CacheFor(digest_key);

  EspressoSelector selector(job.model, job.cluster, *compressor, options, cache);
  const SelectionResult result = selector.Select();
  const double selection_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  obs::GlobalMetrics().Observe(Metrics().selection_seconds, selection_seconds);
  obs::GlobalMetrics().Add(Metrics().cache_hits, result.telemetry.cache_hits);
  obs::GlobalMetrics().Add(Metrics().cache_misses, result.telemetry.cache_misses);

  // Charge the tenant for the work actually done — including work whose result is
  // about to be discarded for a blown deadline; the CPU was spent either way.
  uint64_t tenant_total = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tenant_total = tenant_used_[request.tenant] += result.telemetry.evaluations;
  }

  if (request.has_deadline && Clock::now() >= deadline) {
    return ErrorResponse(request.id, request.tenant, ServeError::kDeadlineExpired,
                         "deadline of " + std::to_string(request.deadline_ms) +
                             " ms expired during selection (result discarded)");
  }

  // Same provenance as espresso_cli --ir-out, so the document is byte-identical.
  StrategyProvenance provenance;
  provenance.origin = "selector";
  provenance.selector = "espresso";
  const StrategyIR ir = CompileStrategyIR(result.strategy, result.iteration_time,
                                          job.model, job.cluster, job.compressor,
                                          provenance);

  // Fail-closed: the IR leaves this process only after the full admission pipeline
  // (digest comparison, strategy lint, schedule re-verification) passes against the
  // very configuration it was selected for.
  IRValidationOptions validate;
  validate.max_compress_ops = job.max_compress_ops;
  const IRValidationResult admitted_ir = ValidateStrategyIR(
      ir, job.model, job.cluster, *compressor, job.compressor, validate);
  if (!admitted_ir.ok) {
    std::ostringstream detail;
    admitted_ir.report.PrintTable(detail);
    return ErrorResponse(request.id, request.tenant, ServeError::kValidationFailed,
                         "selected strategy refused by the fail-closed admission "
                         "pipeline:\n" +
                             detail.str());
  }

  const std::string ir_text = StrategyIRToString(ir);
  const std::string payload_digest = DigestHex(ir.ContentDigest());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++served_;
  }
  obs::GlobalMetrics().Add(Metrics().served);
  if (audit_ != nullptr) {
    audit_->Append("serve", [&](JsonWriter& json) {
      json.Field("id", request.id);
      json.Field("tenant", request.tenant);
      json.Field("payload_digest", payload_digest);
      json.Field("model_digest", DigestHex(model_digest));
      json.Field("cluster_digest", DigestHex(cluster_digest));
      json.Field("compression_digest", DigestHex(compression_digest));
      json.Field("fs_ms", result.iteration_time * 1e3);
      json.Field("evaluations", result.telemetry.evaluations);
      json.Field("cache_hits", result.telemetry.cache_hits);
      json.Field("tenant_used", tenant_total);
    });
  }

  std::ostringstream out;
  {
    JsonWriter json(out);
    json.BeginObject();
    json.Field("ok", true);
    json.Field("type", "select");
    json.Field("id", request.id);
    json.Field("tenant", request.tenant);
    json.Field("ir", ir_text);
    json.Field("payload_digest", payload_digest);
    json.Field("fs_score", result.iteration_time);
    json.Field("validated", true);
    json.Key("telemetry");
    json.BeginObject();
    json.Field("evaluations", result.telemetry.evaluations);
    json.Field("simulations", result.telemetry.simulations);
    json.Field("cache_hits", result.telemetry.cache_hits);
    json.Field("cache_misses", result.telemetry.cache_misses);
    json.Field("selection_seconds", selection_seconds);
    json.Field("tenant_used", tenant_total);
    json.EndObject();
    json.EndObject();
  }
  return out.str();
}

std::string SelectionService::HandleMetrics(const std::string& id,
                                            const std::string& format) {
  std::ostringstream body;
  const obs::MetricsSnapshot snapshot = obs::GlobalMetrics().Scrape();
  if (format == "json") {
    obs::WriteMetricsJson(snapshot, body);
  } else {
    obs::WritePrometheus(snapshot, body);
  }
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.BeginObject();
    json.Field("ok", true);
    json.Field("type", "metrics");
    json.Field("id", id);
    json.Field("format", format);
    json.Field("body", body.str());
    json.EndObject();
  }
  return out.str();
}

std::string SelectionService::HandleHealth(const std::string& id) {
  ServiceStats current = stats();
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.BeginObject();
    json.Field("ok", true);
    json.Field("type", "health");
    json.Field("id", id);
    json.Field("status", "ok");
    json.Field("inflight", static_cast<uint64_t>(current.inflight));
    json.Field("served", current.served);
    json.Field("rejected", current.rejected);
    json.Field("cached_configs", static_cast<uint64_t>(current.cached_configs));
    json.Field("audit_write_failed", audit_ != nullptr && audit_->write_failed());
    json.Field("audit_write_failures",
               audit_ != nullptr ? audit_->write_failures() : 0);
    json.EndObject();
  }
  return out.str();
}

std::string SelectionService::ErrorResponse(const std::string& id,
                                            const std::string& tenant,
                                            ServeError error,
                                            const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_;
  }
  obs::GlobalMetrics().Add(Metrics().rejected);
  if (audit_ != nullptr) {
    audit_->Append("reject", [&](JsonWriter& json) {
      json.Field("id", id);
      json.Field("tenant", tenant);
      json.Field("code", ServeErrorCode(error));
      json.Field("message", message);
    });
  }
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.BeginObject();
    json.Field("ok", false);
    json.Field("type", "error");
    json.Field("id", id);
    json.Field("tenant", tenant);
    json.Key("error");
    json.BeginObject();
    json.Field("code", ServeErrorCode(error));
    json.Field("message", message);
    json.EndObject();
    json.EndObject();
  }
  return out.str();
}

std::shared_ptr<EvaluationCache> SelectionService::CacheFor(
    const std::string& digest_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_pool_.find(digest_key);
  if (it == cache_pool_.end()) {
    while (cache_pool_.size() >= config_.max_cached_configs && !cache_pool_.empty()) {
      auto oldest = cache_pool_.begin();
      for (auto candidate = cache_pool_.begin(); candidate != cache_pool_.end();
           ++candidate) {
        if (candidate->second.second < oldest->second.second) {
          oldest = candidate;
        }
      }
      cache_pool_.erase(oldest);
    }
    it = cache_pool_
             .emplace(digest_key,
                      std::make_pair(
                          std::make_shared<EvaluationCache>(config_.cache_capacity),
                          pool_clock_))
             .first;
  }
  it->second.second = ++pool_clock_;
  return it->second.first;
}

ServiceStats SelectionService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats stats;
  stats.requests = requests_;
  stats.served = served_;
  stats.rejected = rejected_;
  stats.inflight = inflight_;
  stats.cached_configs = cache_pool_.size();
  return stats;
}

uint64_t SelectionService::TenantUsed(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenant_used_.find(tenant);
  return it != tenant_used_.end() ? it->second : 0;
}

}  // namespace espresso::server

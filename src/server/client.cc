#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "src/util/json_writer.h"

namespace espresso::server {

std::string BuildSelectRequest(std::string_view id, std::string_view tenant,
                               std::string_view model_ini, std::string_view gc_ini,
                               std::string_view system_ini,
                               const RequestBudget& budget) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.BeginObject();
    json.Field("type", "select");
    json.Field("id", id);
    json.Field("tenant", tenant);
    json.Key("config");
    json.BeginObject();
    json.Field("model", model_ini);
    json.Field("gc", gc_ini);
    json.Field("system", system_ini);
    json.EndObject();
    if (budget.any()) {
      json.Key("budget");
      json.BeginObject();
      if (budget.deadline_ms >= 0) {
        json.Field("deadline_ms", budget.deadline_ms);
      }
      if (budget.threads >= 0) {
        json.Field("threads", budget.threads);
      }
      if (budget.offload_search_budget >= 0) {
        json.Field("offload_search_budget", budget.offload_search_budget);
      }
      json.EndObject();
    }
    json.EndObject();
  }
  return out.str();
}

std::string BuildMetricsRequest(std::string_view id, std::string_view format) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.BeginObject();
    json.Field("type", "metrics");
    json.Field("id", id);
    json.Field("format", format);
    json.EndObject();
  }
  return out.str();
}

std::string BuildHealthRequest(std::string_view id) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.BeginObject();
    json.Field("type", "health");
    json.Field("id", id);
    json.EndObject();
  }
  return out.str();
}

ServeClient::~ServeClient() { Close(); }

bool ServeClient::Connect(uint16_t port, std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) {
      *error = "connect 127.0.0.1:" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    Close();
    return false;
  }
  return true;
}

bool ServeClient::Call(std::string_view request, std::string* response,
                       std::string* error, size_t max_frame_bytes) {
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = "not connected";
    }
    return false;
  }
  if (!WriteFrame(fd_, request, error)) {
    return false;
  }
  FrameResult reply = ReadFrame(fd_, max_frame_bytes);
  if (!reply.ok()) {
    if (error != nullptr) {
      *error = std::string(FrameStatusName(reply.status)) + ": " + reply.error;
    }
    return false;
  }
  *response = std::move(reply.payload);
  return true;
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace espresso::server

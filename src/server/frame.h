// Length-prefixed framing for the strategy-selection service (docs/SERVICE.md).
//
// Wire format: a 4-byte big-endian unsigned payload length, then exactly that many
// payload bytes (UTF-8 JSON). The prefix makes message boundaries explicit on a
// byte stream — no sentinel scanning, no ambiguity about embedded newlines — and
// lets the receiver refuse an oversized frame BEFORE reading (or allocating) its
// body: a hostile 4 GB length prefix costs four bytes of read, not an allocation.
//
// These helpers speak raw POSIX file descriptors so the same code serves the TCP
// server, the client library, and socketpair()-based tests. All reads/writes retry
// on EINTR and handle short transfers; none of them throw.
#ifndef SRC_SERVER_FRAME_H_
#define SRC_SERVER_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace espresso::server {

// Frames larger than this are refused by default (requests carry three INI files
// and responses one IR document — megabytes, never gigabytes).
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;  // 4 MiB

enum class FrameStatus {
  kOk,
  kClosed,     // clean EOF before any prefix byte (peer finished)
  kTooLarge,   // length prefix exceeds the caller's limit; body NOT consumed
  kTruncated,  // EOF mid-prefix or mid-body (torn frame)
  kIoError,    // read/write failed (errno in the message)
};

const char* FrameStatusName(FrameStatus status);

struct FrameResult {
  FrameStatus status = FrameStatus::kIoError;
  std::string payload;  // valid only when status == kOk
  std::string error;    // human-readable cause for non-kOk
  bool ok() const { return status == FrameStatus::kOk; }
};

// Reads one frame from `fd`. Blocks until a full frame, EOF, or an error.
FrameResult ReadFrame(int fd, size_t max_bytes = kDefaultMaxFrameBytes);

// Writes one frame (prefix + payload) to `fd`. Returns false with *error set on
// failure. Payloads larger than 2^32 - 1 bytes are refused.
bool WriteFrame(int fd, std::string_view payload, std::string* error = nullptr);

}  // namespace espresso::server

#endif  // SRC_SERVER_FRAME_H_

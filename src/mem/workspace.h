// CollectiveWorkspace: the per-thread bundle of pools and named scratch that the
// collective call tree (primitives, schemes, hierarchical sync) draws from.
//
// Three tiers (docs/MEMORY.md):
//   - `arena`:  ephemeral per-call spans (ring chunks, delivery flags), rewound by
//               ArenaScope as each call unwinds;
//   - `pool`:   variable-size float/byte buffers leased for the duration of a call;
//   - named members: fixed-shape persistent scratch resized in place by the single
//               call site that owns each member (resize keeps surviving elements'
//               capacities, so steady-state reuse is allocation-free).
//
// Every public collective entry point takes an optional `CollectiveWorkspace*`;
// passing nullptr resolves to this thread's ThreadDefault() instance, so existing
// call sites get pooling without API churn. A workspace must only ever be used from
// one thread at a time; ownership of each named member is strictly one call site,
// and the call tree (hierarchical -> scheme -> primitive) never reenters an owner.
#ifndef SRC_MEM_WORKSPACE_H_
#define SRC_MEM_WORKSPACE_H_

#include <vector>

#include "src/compress/compressed_tensor.h"
#include "src/mem/arena.h"
#include "src/mem/buffer_pool.h"
#include "src/mem/compressed_tensor_pool.h"

namespace espresso::mem {

struct CollectiveWorkspace {
  BufferPool pool{"collective"};
  Arena arena;
  CompressedTensorPool tensors{"collective"};

  // Named persistent scratch. Each member is owned by exactly one function (noted
  // below); owners resize in place and fully overwrite live elements each call.
  std::vector<std::vector<float>> ring_work;                // AllReduce
  std::vector<CompressedTensor> indiv_payloads;             // CompressedIndivisibleAllgather
  std::vector<std::vector<CompressedTensor>> div_payloads;  // DivisibleScheme stage 1
  std::vector<CompressedTensor> div_aggregated;             // DivisibleScheme stage 2
  std::vector<std::vector<float>> hier_local;               // HierarchicalSync phases 1+3
  std::vector<std::vector<std::vector<float>>> hier_machine_shards;  // HierarchicalSync
  std::vector<std::vector<float>> hier_across;              // HierarchicalSync phase 2

  // The calling thread's shared workspace (created on first use, lives for the
  // thread). Pools converge after the first step at a given problem shape, so
  // long-lived worker threads reach the zero-allocation steady state.
  static CollectiveWorkspace& ThreadDefault();
};

// nullptr -> this thread's default workspace.
inline CollectiveWorkspace& Resolve(CollectiveWorkspace* ws) {
  return ws != nullptr ? *ws : CollectiveWorkspace::ThreadDefault();
}

}  // namespace espresso::mem

#endif  // SRC_MEM_WORKSPACE_H_

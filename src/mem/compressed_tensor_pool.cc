#include "src/mem/compressed_tensor_pool.h"

#include <algorithm>
#include <string>

namespace espresso::mem {

namespace {

std::string MetricName(std::string_view pool, std::string_view which) {
  std::string name = "espresso_tensorpool_";
  name.append(pool);
  name.push_back('_');
  name.append(which);
  return name;
}

obs::Counter MaybeCounter(std::string_view pool, std::string_view which,
                          std::string_view help) {
  if (pool.empty()) {
    return obs::Counter{};
  }
  return obs::GlobalMetrics().RegisterCounter(MetricName(pool, which), help);
}

obs::Gauge MaybeGauge(std::string_view pool, std::string_view which,
                      std::string_view help) {
  if (pool.empty()) {
    return obs::Gauge{};
  }
  return obs::GlobalMetrics().RegisterGauge(MetricName(pool, which), help);
}

}  // namespace

PooledTensor& PooledTensor::operator=(PooledTensor&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) {
      pool_->Release(std::move(t_));
    }
    pool_ = std::exchange(other.pool_, nullptr);
    t_ = std::move(other.t_);
  }
  return *this;
}

PooledTensor::~PooledTensor() {
  if (pool_ != nullptr) {
    pool_->Release(std::move(t_));
  }
}

CompressedTensorPool::CompressedTensorPool(std::string_view name)
    : hits_metric_(MaybeCounter(name, "hits_total",
                                "Tensor acquisitions served from the free list")),
      misses_metric_(MaybeCounter(name, "misses_total",
                                  "Tensor acquisitions that constructed fresh")),
      bytes_resident_metric_(MaybeGauge(name, "bytes_resident",
                                        "Capacity bytes parked in the free list")),
      high_water_metric_(MaybeGauge(name, "bytes_high_water",
                                    "Max capacity bytes ever parked at once")) {}

PooledTensor CompressedTensorPool::Acquire() {
  std::unique_ptr<CompressedTensor> t;
  if (!free_.empty()) {
    t = std::move(free_.back());
    free_.pop_back();
    stats_.hits += 1;
    stats_.tensors_resident -= 1;
    stats_.bytes_resident -= std::min(stats_.bytes_resident, CapacityBytes(*t));
    obs::GlobalMetrics().Add(hits_metric_, 1);
    t->Clear();  // capacities survive; contents do not
  } else {
    t = std::make_unique<CompressedTensor>();
    stats_.misses += 1;
    obs::GlobalMetrics().Add(misses_metric_, 1);
  }
  PublishGauges();
  return PooledTensor(this, std::move(t));
}

void CompressedTensorPool::Release(std::unique_ptr<CompressedTensor> t) {
  stats_.releases += 1;
  if (t == nullptr) {
    return;
  }
  stats_.bytes_resident += CapacityBytes(*t);
  stats_.tensors_resident += 1;
  stats_.bytes_high_water = std::max(stats_.bytes_high_water, stats_.bytes_resident);
  free_.push_back(std::move(t));
  PublishGauges();
}

size_t CompressedTensorPool::CapacityBytes(const CompressedTensor& t) {
  return t.indices.capacity() * sizeof(uint32_t) +
         t.values.capacity() * sizeof(float) + t.scales.capacity() * sizeof(float) +
         t.bytes.capacity();
}

void CompressedTensorPool::Trim() {
  free_.clear();
  // conventions:allow(shrink-to-fit) Trim() is the explicit cold-path release API
  free_.shrink_to_fit();
  stats_.tensors_resident = 0;
  stats_.bytes_resident = 0;
  PublishGauges();
}

void CompressedTensorPool::PublishGauges() {
  obs::GlobalMetrics().Set(bytes_resident_metric_,
                           static_cast<double>(stats_.bytes_resident));
  obs::GlobalMetrics().Set(high_water_metric_,
                           static_cast<double>(stats_.bytes_high_water));
}

}  // namespace espresso::mem

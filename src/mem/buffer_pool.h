// BufferPool: size-bucketed free lists of float/byte buffers with RAII handles.
//
// The recyclable tier of the zero-allocation dataplane (docs/MEMORY.md): call sites
// that need a scratch buffer whose size varies call Acquire*, use the buffer for the
// duration of the call, and let the PooledVec handle return it on destruction. Buckets
// are powers of two and every pooled buffer's capacity is rounded up to its bucket
// ceiling, so an acquisition that finds a buffer in its bucket NEVER reallocates —
// after one warm-up pass at peak sizes the pool serves the steady state entirely from
// free lists.
//
// Not thread-safe: a BufferPool belongs to exactly one thread (workspaces are
// per-thread; see CollectiveWorkspace::ThreadDefault). Metrics: pools constructed with
// a name record hits/misses/bytes-resident/high-water into the global obs registry
// under espresso_mempool_<name>_*; instances sharing a name aggregate their counters,
// and gauges reflect the most recently active instance.
#ifndef SRC_MEM_BUFFER_POOL_H_
#define SRC_MEM_BUFFER_POOL_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace espresso::mem {

struct PoolStats {
  uint64_t hits = 0;        // acquisitions served from a free list
  uint64_t misses = 0;      // acquisitions that had to allocate fresh storage
  uint64_t releases = 0;    // handles returned to the free lists
  size_t buffers_resident = 0;   // buffers currently parked in free lists
  size_t bytes_resident = 0;     // sum of parked buffer capacities, in bytes
  size_t bytes_outstanding = 0;  // capacities currently lent out to live handles
  size_t bytes_high_water = 0;   // max of resident + outstanding ever observed
};

class BufferPool;

// Move-only RAII lease of a std::vector<T> drawn from a BufferPool. A
// default-constructed handle is inert. The vector may be used freely (including
// growth); its capacity, whatever it ends up being, returns to the pool.
template <typename T>
class PooledVec {
 public:
  PooledVec() = default;
  PooledVec(PooledVec&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)), v_(std::move(other.v_)) {}
  PooledVec& operator=(PooledVec&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = std::exchange(other.pool_, nullptr);
      v_ = std::move(other.v_);
    }
    return *this;
  }
  PooledVec(const PooledVec&) = delete;
  PooledVec& operator=(const PooledVec&) = delete;
  ~PooledVec() { Release(); }

  std::vector<T>& operator*() { return v_; }
  std::vector<T>* operator->() { return &v_; }
  const std::vector<T>& operator*() const { return v_; }
  const std::vector<T>* operator->() const { return &v_; }
  std::span<T> span() { return v_; }
  std::span<const T> span() const { return v_; }

 private:
  friend class BufferPool;
  PooledVec(BufferPool* pool, std::vector<T>&& v) : pool_(pool), v_(std::move(v)) {}
  void Release();

  BufferPool* pool_ = nullptr;
  std::vector<T> v_;
};

using PooledFloats = PooledVec<float>;
using PooledBytes = PooledVec<uint8_t>;

class BufferPool {
 public:
  // `name` keys the obs metrics; empty disables metric recording.
  explicit BufferPool(std::string_view name = "");

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // size() == `size`; contents unspecified (recycled buffers carry stale values).
  PooledFloats AcquireFloats(size_t size);
  // size() == `size`, every element 0.0f.
  PooledFloats AcquireZeroedFloats(size_t size);
  // size() == `size`; contents unspecified.
  PooledBytes AcquireBytes(size_t size);

  const PoolStats& stats() const { return stats_; }

  // Drops every parked buffer (frees their storage). Live handles are unaffected.
  void Trim();

 private:
  template <typename U>
  friend class PooledVec;

  static constexpr size_t kBuckets = 40;  // capacities up to 2^39 elements

  template <typename T>
  struct Shelf {
    std::array<std::vector<std::vector<T>>, kBuckets> buckets;
  };

  // Smallest b with 2^b >= n.
  static size_t BucketFor(size_t n);

  template <typename T>
  std::vector<T> AcquireRaw(Shelf<T>& shelf, size_t size);
  template <typename T>
  void ReleaseRaw(Shelf<T>& shelf, std::vector<T>&& v);

  void RecordAcquire(bool hit, size_t capacity_bytes);
  void RecordRelease(size_t capacity_bytes);
  void PublishGauges();

  Shelf<float> floats_;
  Shelf<uint8_t> bytes_;
  PoolStats stats_;

  obs::Counter hits_metric_;
  obs::Counter misses_metric_;
  obs::Gauge bytes_resident_metric_;
  obs::Gauge high_water_metric_;
};

template <typename T>
void PooledVec<T>::Release() {
  if (pool_ != nullptr) {
    if constexpr (std::is_same_v<T, float>) {
      pool_->ReleaseRaw(pool_->floats_, std::move(v_));
    } else {
      static_assert(std::is_same_v<T, uint8_t>, "unsupported pooled element type");
      pool_->ReleaseRaw(pool_->bytes_, std::move(v_));
    }
    pool_ = nullptr;
  }
}

}  // namespace espresso::mem

#endif  // SRC_MEM_BUFFER_POOL_H_

#include "src/mem/batch_plan.h"

#include "src/compress/kernels/kernels.h"
#include "src/util/logging.h"

namespace espresso::mem {

static_assert(BatchedCompressPlan::kSlotElements * sizeof(float) ==
                  espresso::kernels::kColumnAlignment,
              "slot padding must match the kernel column alignment");

void BatchedCompressPlan::Begin(Arena& arena, size_t total_padded_elements) {
  column_ = arena.AllocAligned<float>(total_padded_elements, kernels::kColumnAlignment);
  ESP_CHECK(kernels::IsColumnAligned(column_.data()) || column_.empty());
  used_ = 0;
  items_.clear();
}

std::span<float> BatchedCompressPlan::Stage(size_t elements, uint64_t seed,
                                            CompressedTensor* out) {
  ESP_CHECK(out != nullptr);
  ESP_CHECK_LE(used_ + Padded(elements), column_.size());
  std::span<float> slot = column_.subspan(used_, elements);
  items_.push_back(BatchCompressItem{slot.data(), elements, seed, out});
  used_ += Padded(elements);
  return slot;
}

void BatchedCompressPlan::Execute(const Compressor& compressor) const {
  if (!items_.empty()) {
    compressor.CompressBatch(items_);
  }
}

}  // namespace espresso::mem

// StableVec<T>: a growable sequence whose clear() is logical, not destructive.
//
// std::vector<T>::clear() destroys its elements, so a T that owns heap storage
// (CompressedTensor, std::vector) loses its capacity on every clear/refill cycle —
// exactly the thrash the zero-allocation dataplane forbids. StableVec keeps every
// element it has ever constructed alive and recycles them in place: clear() resets the
// logical size to zero, and push() hands back a previously-constructed element whose
// internal buffers are still warm. After one warm-up pass at peak size, a
// clear()/push() cycle performs no heap allocation (beyond what the caller does to the
// recycled element itself).
//
// Ownership convention (docs/MEMORY.md): a StableVec lives in a workspace that outlives
// the call; references returned by push()/operator[] are invalidated by the next push()
// (the backing vector may grow), so take them fresh after structural changes.
#ifndef SRC_MEM_STABLE_VEC_H_
#define SRC_MEM_STABLE_VEC_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace espresso::mem {

template <typename T>
class StableVec {
 public:
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // Elements constructed so far (live + retained-for-reuse).
  size_t retained() const { return items_.size(); }

  // Logical clear: retained elements stay constructed, capacities intact.
  void clear() { size_ = 0; }

  // Logical shrink to `n` elements (n <= size()); dropped elements are retained.
  void truncate(size_t n) {
    if (n < size_) {
      size_ = n;
    }
  }

  // Appends one element, recycling a retained one when available. The element is
  // returned AS-IS (stale contents included): callers must fully overwrite it.
  T& push() {
    if (size_ == items_.size()) {
      items_.emplace_back();
    }
    return items_[size_++];
  }

  T& operator[](size_t i) { return items_[i]; }
  const T& operator[](size_t i) const { return items_[i]; }
  T& front() { return items_.front(); }
  const T& front() const { return items_.front(); }
  T& back() { return items_[size_ - 1]; }

  T* begin() { return items_.data(); }
  T* end() { return items_.data() + size_; }
  const T* begin() const { return items_.data(); }
  const T* end() const { return items_.data() + size_; }

  // Element-wise copy-assignment from `other` (copy-assign reuses destination
  // capacity), recycling retained elements; never destroys elements.
  void CopyFrom(const StableVec& other) {
    while (items_.size() < other.size_) {
      items_.emplace_back();
    }
    for (size_t i = 0; i < other.size_; ++i) {
      items_[i] = other.items_[i];
    }
    size_ = other.size_;
  }

  // Appends copies of other's live elements.
  void AppendFrom(const StableVec& other) {
    for (size_t i = 0; i < other.size_; ++i) {
      push() = other.items_[i];
    }
  }

  // Constant-time exchange of the full backing stores (live and retained elements).
  void Swap(StableVec& other) noexcept {
    items_.swap(other.items_);
    std::swap(size_, other.size_);
  }

 private:
  std::vector<T> items_;
  size_t size_ = 0;
};

}  // namespace espresso::mem

#endif  // SRC_MEM_STABLE_VEC_H_

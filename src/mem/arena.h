// Arena: a monotonic scratch allocator for call-scoped, trivially-destructible data.
//
// The execution dataplane needs many tiny ephemeral buffers per collective call —
// in-flight ring chunks, delivery flags, group index lists. Individually pooling them
// would drown the pool in bucket churn; instead they come from an arena that is bumped
// during the call and rewound afterwards. Blocks are never freed by a rewind, so after
// one warm-up pass the arena serves every subsequent call without touching the heap.
//
// Ownership convention (docs/MEMORY.md): spans returned by Alloc are valid until the
// enclosing ArenaScope (or ResetTo on an earlier mark) rewinds past them. Nested scopes
// are the intended pattern for nested calls (hierarchical sync -> scheme -> primitive).
#ifndef SRC_MEM_ARENA_H_
#define SRC_MEM_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace espresso::mem {

class Arena {
 public:
  // Position mark for scoped rewind: (block index, bytes used in that block).
  struct Mark {
    size_t block = 0;
    size_t used = 0;
  };

  explicit Arena(size_t initial_block_bytes = 4096)
      : min_block_bytes_(initial_block_bytes == 0 ? 4096 : initial_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Uninitialized storage for `count` objects of T. T must be trivially destructible
  // (nothing runs destructors) and trivially copyable (nothing runs constructors).
  template <typename T>
  std::span<T> Alloc(size_t count) {
    static_assert(std::is_trivially_destructible_v<T> && std::is_trivially_copyable_v<T>,
                  "Arena only holds trivial types");
    void* p = AllocBytes(count * sizeof(T), alignof(T));
    return {static_cast<T*>(p), count};
  }

  // Zero-filled variant.
  template <typename T>
  std::span<T> AllocZeroed(size_t count) {
    std::span<T> s = Alloc<T>(count);
    std::memset(static_cast<void*>(s.data()), 0, s.size_bytes());
    return s;
  }

  // Over-aligned variant for layouts with requirements beyond alignof(T), such as the
  // 64-byte SIMD columns of the batched compression plan. `align` must be a power of
  // two and a multiple of alignof(T).
  template <typename T>
  std::span<T> AllocAligned(size_t count, size_t align) {
    static_assert(std::is_trivially_destructible_v<T> && std::is_trivially_copyable_v<T>,
                  "Arena only holds trivial types");
    void* p = AllocBytes(count * sizeof(T), align);
    return {static_cast<T*>(p), count};
  }

  Mark CurrentMark() const { return Mark{current_, CurrentUsed()}; }

  // Rewinds to `mark`; every block keeps its storage. Spans handed out after the mark
  // are invalidated.
  void ResetTo(const Mark& mark);

  // Rewinds everything (equivalent to ResetTo of a fresh arena's mark).
  void Reset() { ResetTo(Mark{0, 0}); }

  size_t bytes_capacity() const;
  size_t bytes_high_water() const { return high_water_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  void* AllocBytes(size_t bytes, size_t align);
  size_t CurrentUsed() const {
    return blocks_.empty() ? 0 : blocks_[current_].used;
  }

  std::vector<Block> blocks_;
  size_t current_ = 0;  // block currently being bumped
  size_t min_block_bytes_;
  size_t high_water_ = 0;  // max total bytes in use at any point
};

// RAII rewind to the arena position captured at construction.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.CurrentMark()) {}
  ~ArenaScope() { arena_.ResetTo(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace espresso::mem

#endif  // SRC_MEM_ARENA_H_

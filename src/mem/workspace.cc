#include "src/mem/workspace.h"

namespace espresso::mem {

CollectiveWorkspace& CollectiveWorkspace::ThreadDefault() {
  thread_local CollectiveWorkspace workspace;
  return workspace;
}

}  // namespace espresso::mem

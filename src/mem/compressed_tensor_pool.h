// CompressedTensorPool: recycles CompressedTensor objects across calls.
//
// CompressedTensor::Clear() empties the payload vectors but keeps their capacity —
// that is the recycling primitive this pool is built on. Acquire() hands out a
// Clear()ed tensor whose internal vectors are still warm from its previous life, so
// compressors that fill via resize/assign/push_back run allocation-free once the pool
// has seen the working-set payload shapes. The RAII handle returns the tensor (and its
// capacities) on destruction.
//
// Single-threaded, like BufferPool. Metrics (when constructed with a name):
// espresso_tensorpool_<name>_{hits_total,misses_total,bytes_resident,bytes_high_water}.
#ifndef SRC_MEM_COMPRESSED_TENSOR_POOL_H_
#define SRC_MEM_COMPRESSED_TENSOR_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "src/compress/compressed_tensor.h"
#include "src/obs/metrics.h"

namespace espresso::mem {

struct TensorPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t releases = 0;
  size_t tensors_resident = 0;
  size_t bytes_resident = 0;    // capacity bytes parked in the free list
  size_t bytes_high_water = 0;  // max resident bytes ever observed
};

class CompressedTensorPool;

// Move-only lease of a pooled CompressedTensor. Default-constructed handles are
// inert. The tensor is Clear()ed (capacities kept) when acquired.
class PooledTensor {
 public:
  PooledTensor() = default;
  PooledTensor(PooledTensor&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)), t_(std::move(other.t_)) {}
  PooledTensor& operator=(PooledTensor&& other) noexcept;
  PooledTensor(const PooledTensor&) = delete;
  PooledTensor& operator=(const PooledTensor&) = delete;
  ~PooledTensor();

  CompressedTensor& operator*() { return *t_; }
  CompressedTensor* operator->() { return t_.get(); }
  const CompressedTensor& operator*() const { return *t_; }
  const CompressedTensor* operator->() const { return t_.get(); }
  CompressedTensor* get() { return t_.get(); }

 private:
  friend class CompressedTensorPool;
  PooledTensor(CompressedTensorPool* pool,
               std::unique_ptr<CompressedTensor> t)
      : pool_(pool), t_(std::move(t)) {}

  CompressedTensorPool* pool_ = nullptr;
  std::unique_ptr<CompressedTensor> t_;
};

class CompressedTensorPool {
 public:
  explicit CompressedTensorPool(std::string_view name = "");

  CompressedTensorPool(const CompressedTensorPool&) = delete;
  CompressedTensorPool& operator=(const CompressedTensorPool&) = delete;

  // A Clear()ed tensor; recycled when the free list is non-empty.
  PooledTensor Acquire();

  const TensorPoolStats& stats() const { return stats_; }

  // Frees every parked tensor. Live handles are unaffected.
  void Trim();

 private:
  friend class PooledTensor;

  void Release(std::unique_ptr<CompressedTensor> t);
  static size_t CapacityBytes(const CompressedTensor& t);
  void PublishGauges();

  std::vector<std::unique_ptr<CompressedTensor>> free_;
  TensorPoolStats stats_;

  obs::Counter hits_metric_;
  obs::Counter misses_metric_;
  obs::Gauge bytes_resident_metric_;
  obs::Gauge high_water_metric_;
};

}  // namespace espresso::mem

#endif  // SRC_MEM_COMPRESSED_TENSOR_POOL_H_

#include "src/mem/arena.h"

#include <algorithm>
#include <bit>

#include "src/util/logging.h"

namespace espresso::mem {

void* Arena::AllocBytes(size_t bytes, size_t align) {
  if (bytes == 0) {
    bytes = 1;  // keep spans distinct and the bump pointer monotone
  }
  // Try the current block, then any later (already-allocated) block, then grow.
  for (;;) {
    if (current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      // Align the absolute address, not the block offset: make_unique only promises
      // malloc alignment for the block base, so offset-relative rounding would hand
      // out pointers that miss over-aligned (e.g. 64-byte) requests.
      const uintptr_t base = reinterpret_cast<uintptr_t>(b.data.get());
      const size_t aligned =
          ((base + b.used + align - 1) & ~(uintptr_t{align} - 1)) - base;
      if (aligned + bytes <= b.capacity) {
        b.used = aligned + bytes;
        size_t total = 0;
        for (size_t i = 0; i <= current_; ++i) {
          total += blocks_[i].used;
        }
        high_water_ = std::max(high_water_, total);
        return b.data.get() + aligned;
      }
      if (current_ + 1 < blocks_.size()) {
        ++current_;
        blocks_[current_].used = 0;
        continue;
      }
    }
    // Grow: new blocks double so steady state converges to very few blocks.
    const size_t want = std::max({min_block_bytes_, bytes + align,
                                  bytes_capacity() == 0 ? 0 : bytes_capacity()});
    Block block;
    block.capacity = std::bit_ceil(want);
    block.data = std::make_unique<std::byte[]>(block.capacity);
    block.used = 0;
    blocks_.push_back(std::move(block));
    current_ = blocks_.size() - 1;
  }
}

void Arena::ResetTo(const Mark& mark) {
  if (blocks_.empty()) {
    return;
  }
  ESP_CHECK_LE(mark.block, blocks_.size() - 1);
  for (size_t i = mark.block + 1; i < blocks_.size(); ++i) {
    blocks_[i].used = 0;
  }
  blocks_[mark.block].used = mark.used;
  current_ = mark.block;
}

size_t Arena::bytes_capacity() const {
  size_t total = 0;
  for (const Block& b : blocks_) {
    total += b.capacity;
  }
  return total;
}

}  // namespace espresso::mem

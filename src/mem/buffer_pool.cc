#include "src/mem/buffer_pool.h"

#include <algorithm>
#include <bit>
#include <string>

#include "src/util/logging.h"

namespace espresso::mem {

namespace {

std::string MetricName(std::string_view pool, std::string_view which) {
  std::string name = "espresso_mempool_";
  name.append(pool);
  name.push_back('_');
  name.append(which);
  return name;
}

obs::Counter MaybeCounter(std::string_view pool, std::string_view which,
                          std::string_view help) {
  if (pool.empty()) {
    return obs::Counter{};
  }
  return obs::GlobalMetrics().RegisterCounter(MetricName(pool, which), help);
}

obs::Gauge MaybeGauge(std::string_view pool, std::string_view which,
                      std::string_view help) {
  if (pool.empty()) {
    return obs::Gauge{};
  }
  return obs::GlobalMetrics().RegisterGauge(MetricName(pool, which), help);
}

}  // namespace

BufferPool::BufferPool(std::string_view name)
    : hits_metric_(MaybeCounter(name, "hits_total",
                                "Pool acquisitions served from a free list")),
      misses_metric_(MaybeCounter(name, "misses_total",
                                  "Pool acquisitions that allocated fresh storage")),
      bytes_resident_metric_(MaybeGauge(name, "bytes_resident",
                                        "Bytes parked in the pool's free lists")),
      high_water_metric_(MaybeGauge(
          name, "bytes_high_water",
          "Max bytes (resident + outstanding) the pool has ever governed")) {}

size_t BufferPool::BucketFor(size_t n) {
  if (n <= 1) {
    return 0;
  }
  const size_t b = static_cast<size_t>(std::bit_width(n - 1));
  ESP_CHECK_LT(b, kBuckets);
  return b;
}

template <typename T>
std::vector<T> BufferPool::AcquireRaw(Shelf<T>& shelf, size_t size) {
  const size_t b = BucketFor(size);
  auto& bucket = shelf.buckets[b];
  std::vector<T> v;
  if (!bucket.empty()) {
    v = std::move(bucket.back());
    bucket.pop_back();
    stats_.buffers_resident -= 1;
    stats_.bytes_resident -= v.capacity() * sizeof(T);
    RecordAcquire(/*hit=*/true, v.capacity() * sizeof(T));
  } else {
    // Round the fresh buffer up to the bucket ceiling so that when it comes back
    // it lands in bucket b and serves any future size in (2^(b-1), 2^b] without
    // reallocating — the pool converges after a single warm-up pass.
    v.reserve(std::bit_ceil(std::max<size_t>(size, 1)));
    RecordAcquire(/*hit=*/false, v.capacity() * sizeof(T));
  }
  v.resize(size);  // never reallocates: capacity >= 2^b >= size
  return v;
}

template <typename T>
void BufferPool::ReleaseRaw(Shelf<T>& shelf, std::vector<T>&& v) {
  const size_t cap_bytes = v.capacity() * sizeof(T);
  if (v.capacity() == 0) {
    RecordRelease(0);
    return;
  }
  // File under the largest bucket the capacity fully covers, so Acquire's
  // "capacity >= size" guarantee holds for everything served from that bucket.
  const size_t b = static_cast<size_t>(std::bit_width(v.capacity())) - 1;
  shelf.buckets[b].push_back(std::move(v));
  stats_.buffers_resident += 1;
  stats_.bytes_resident += cap_bytes;
  RecordRelease(cap_bytes);
}

PooledFloats BufferPool::AcquireFloats(size_t size) {
  return PooledFloats(this, AcquireRaw(floats_, size));
}

PooledFloats BufferPool::AcquireZeroedFloats(size_t size) {
  PooledFloats f = AcquireFloats(size);
  std::fill(f->begin(), f->end(), 0.0f);
  return f;
}

PooledBytes BufferPool::AcquireBytes(size_t size) {
  return PooledBytes(this, AcquireRaw(bytes_, size));
}

void BufferPool::Trim() {
  auto drop = [&](auto& shelf) {
    for (auto& bucket : shelf.buckets) {
      bucket.clear();
      // conventions:allow(shrink-to-fit) Trim() is the explicit cold-path release API
      bucket.shrink_to_fit();
    }
  };
  drop(floats_);
  drop(bytes_);
  stats_.buffers_resident = 0;
  stats_.bytes_resident = 0;
  PublishGauges();
}

void BufferPool::RecordAcquire(bool hit, size_t capacity_bytes) {
  if (hit) {
    stats_.hits += 1;
    obs::GlobalMetrics().Add(hits_metric_, 1);
  } else {
    stats_.misses += 1;
    obs::GlobalMetrics().Add(misses_metric_, 1);
  }
  stats_.bytes_outstanding += capacity_bytes;
  stats_.bytes_high_water =
      std::max(stats_.bytes_high_water, stats_.bytes_resident + stats_.bytes_outstanding);
  PublishGauges();
}

void BufferPool::RecordRelease(size_t capacity_bytes) {
  stats_.releases += 1;
  stats_.bytes_outstanding -= std::min(stats_.bytes_outstanding, capacity_bytes);
  stats_.bytes_high_water =
      std::max(stats_.bytes_high_water, stats_.bytes_resident + stats_.bytes_outstanding);
  PublishGauges();
}

void BufferPool::PublishGauges() {
  obs::GlobalMetrics().Set(bytes_resident_metric_,
                           static_cast<double>(stats_.bytes_resident));
  obs::GlobalMetrics().Set(high_water_metric_,
                           static_cast<double>(stats_.bytes_high_water));
}

template std::vector<float> BufferPool::AcquireRaw<float>(Shelf<float>&, size_t);
template std::vector<uint8_t> BufferPool::AcquireRaw<uint8_t>(Shelf<uint8_t>&, size_t);
template void BufferPool::ReleaseRaw<float>(Shelf<float>&, std::vector<float>&&);
template void BufferPool::ReleaseRaw<uint8_t>(Shelf<uint8_t>&, std::vector<uint8_t>&&);

}  // namespace espresso::mem

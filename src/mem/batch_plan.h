// BatchedCompressPlan: SoA staging layout for compressing many small tensors at once.
//
// Per-tensor compression of tiny tensors (a bias here, a layernorm gain there) spends
// more time in virtual dispatch, seed derivation, and loop prologues than in the
// kernels themselves. The plan packs the corrected gradients of all below-cutoff
// tensors into ONE arena-backed column — each slot padded to the 64-byte kernel
// alignment — and hands the whole batch to Compressor::CompressBatch, which phases the
// work (all reductions, then all quantization sweeps) over the contiguous column.
//
// Payloads are guaranteed byte-identical to per-tensor Compress calls: each staged slot
// carries its own (seed, elements), and CompressBatch is contractually a reordering of
// the same kernel invocations. Column storage comes from the caller's Arena, so the
// usual ArenaScope discipline applies: the plan is valid until the scope rewinds.
#ifndef SRC_MEM_BATCH_PLAN_H_
#define SRC_MEM_BATCH_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/compress/compressor.h"
#include "src/mem/arena.h"

namespace espresso::mem {

class BatchedCompressPlan {
 public:
  // Elements per slot boundary: kernels::kColumnAlignment / sizeof(float), kept as a
  // literal here so the header stays free of the kernel layer (asserted in the .cc).
  static constexpr size_t kSlotElements = 16;

  // Column footprint of one staged tensor: its element count rounded up to a slot
  // boundary. Callers sum this over the tensors they are about to stage.
  static constexpr size_t Padded(size_t elements) {
    return (elements + kSlotElements - 1) / kSlotElements * kSlotElements;
  }

  // Starts a new batch backed by `arena`. `total_padded_elements` is the sum of
  // Padded(elements) over the tensors about to be staged; the column is reserved up
  // front in one AllocAligned, so Stage never touches the arena again.
  void Begin(Arena& arena, size_t total_padded_elements);

  // Reserves the next slot of the column for a tensor of `elements` floats and records
  // the batch item. The caller fills the returned span (EF-corrected gradient, or a
  // plain copy) before Execute. Slots start at 64-byte boundaries.
  std::span<float> Stage(size_t elements, uint64_t seed, CompressedTensor* out);

  // Runs the compressor over every staged item (one CompressBatch call).
  void Execute(const Compressor& compressor) const;

  std::span<const BatchCompressItem> items() const { return items_; }
  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }

 private:
  std::span<float> column_;
  size_t used_ = 0;                       // elements of column_ handed out, padded
  std::vector<BatchCompressItem> items_;  // grow-only; logically reset by Begin
};

}  // namespace espresso::mem

#endif  // SRC_MEM_BATCH_PLAN_H_

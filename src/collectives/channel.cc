#include "src/collectives/channel.h"

namespace espresso {

const char* PayloadFateName(PayloadFate fate) {
  switch (fate) {
    case PayloadFate::kDelivered:
      return "delivered";
    case PayloadFate::kDropped:
      return "dropped";
    case PayloadFate::kCorrupted:
      return "corrupted";
  }
  return "?";
}

}  // namespace espresso

#include "src/collectives/hierarchical.h"

#include <algorithm>

#include "src/collectives/primitives.h"
#include "src/util/logging.h"

namespace espresso {

HierarchicalResult HierarchicalSync(const HierarchicalOptions& options, RankBuffers& buffers) {
  const size_t m = options.machines;
  const size_t g = options.gpus_per_machine;
  ESP_CHECK_EQ(buffers.size(), m * g);
  const size_t n = CheckUniformSize(buffers);
  HierarchicalResult result;

  const bool inter_compressed = options.inter != InterScheme::kUncompressedAllreduce;
  if (inter_compressed || options.compress_intra) {
    ESP_CHECK(options.compressor != nullptr);
  }

  // Phase 1: intra-machine reduce-scatter. GPU l of machine mi ends with the reduced
  // shard l of that machine. (Compressed intra-first-step would compress the shuffled
  // parts; we account for its traffic but aggregate exactly, matching the timeline
  // engine's sizing.)
  const Partition shard(n, g);
  // Scratch comes from the workspace: machine_shards/local/across persist across
  // calls, so steady-state syncs at a stable shape reuse every buffer in place.
  mem::CollectiveWorkspace& ws = mem::Resolve(options.workspace);
  // machine_shards[mi][l] = reduced shard l on machine mi.
  std::vector<std::vector<std::vector<float>>>& machine_shards = ws.hier_machine_shards;
  machine_shards.resize(m);
  RankBuffers& local = ws.hier_local;
  for (size_t mi = 0; mi < m; ++mi) {
    local.resize(g);
    for (size_t l = 0; l < g; ++l) {
      local[l] = buffers[mi * g + l];
    }
    CollectiveTraffic t = ReduceScatter(local, &machine_shards[mi]);
    if (options.compress_intra) {
      // Compressed shuffle: parts travel compressed instead of raw.
      size_t compressed_bytes = 0;
      for (size_t l = 0; l < g; ++l) {
        compressed_bytes =
            std::max(compressed_bytes,
                     options.compressor->CompressedBytes(shard.Length(l)) * (g - 1));
      }
      t.bytes_sent_per_rank = compressed_bytes;
    }
    result.intra_traffic.bytes_sent_per_rank =
        std::max(result.intra_traffic.bytes_sent_per_rank, t.bytes_sent_per_rank);
    result.intra_traffic.communication_steps = t.communication_steps;
  }

  // Phase 2: inter-machine aggregation of each shard l across machines, performed by
  // the l-th GPU of every machine.
  RankBuffers& across = ws.hier_across;
  for (size_t l = 0; l < g; ++l) {
    across.resize(m);
    for (size_t mi = 0; mi < m; ++mi) {
      across[mi] = machine_shards[mi][l];
    }
    CollectiveTraffic t;
    switch (options.inter) {
      case InterScheme::kUncompressedAllreduce: {
        t = AllReduce(across, &ws);
        break;
      }
      case InterScheme::kCompressedIndivisible: {
        SchemeContext ctx{options.feedback, options.channel, options.tensor_id * 131 + l,
                          options.seed, &ws};
        SchemeResult r = CompressedIndivisibleAllgather(*options.compressor, ctx, across);
        t = r.traffic;
        result.payloads_dropped += r.payloads_dropped;
        result.payloads_corrupted += r.payloads_corrupted;
        break;
      }
      case InterScheme::kCompressedDivisible: {
        SchemeContext ctx{options.feedback, options.channel, options.tensor_id * 131 + l,
                          options.seed, &ws};
        SchemeResult r = CompressedDivisibleAlltoall(*options.compressor, ctx, across);
        t = r.traffic;
        result.payloads_dropped += r.payloads_dropped;
        result.payloads_corrupted += r.payloads_corrupted;
        break;
      }
    }
    for (size_t mi = 0; mi < m; ++mi) {
      machine_shards[mi][l] = across[mi];
    }
    result.inter_traffic.bytes_sent_per_rank += t.bytes_sent_per_rank;
    result.inter_traffic.communication_steps =
        std::max(result.inter_traffic.communication_steps, t.communication_steps);
  }

  // Phase 3: intra-machine allgather of the aggregated shards (reusing `local`).
  for (size_t mi = 0; mi < m; ++mi) {
    CollectiveTraffic t = AllGather(machine_shards[mi], &local);
    if (options.compress_intra) {
      size_t compressed_bytes = 0;
      for (size_t l = 0; l < g; ++l) {
        compressed_bytes += options.compressor->CompressedBytes(shard.Length(l));
      }
      t.bytes_sent_per_rank = compressed_bytes * (g - 1) / g;
    }
    for (size_t l = 0; l < g; ++l) {
      buffers[mi * g + l] = local[l];
    }
    result.intra_traffic.bytes_sent_per_rank += t.bytes_sent_per_rank;
    result.intra_traffic.communication_steps += t.communication_steps;
  }
  return result;
}

}  // namespace espresso

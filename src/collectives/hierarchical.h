// Hierarchical gradient synchronization (Figure 1): intra-machine reduce-scatter,
// inter-machine aggregation over each shard, intra-machine allgather.
//
// The inter-machine stage can run uncompressed (allreduce) or compressed with either
// scheme from src/collectives/schemes.h; the intra stages can additionally compress
// (the "both intra- and inter-machine" choice of Dimension 4). Functional counterpart of
// the pipelines the timeline engine prices.
#ifndef SRC_COLLECTIVES_HIERARCHICAL_H_
#define SRC_COLLECTIVES_HIERARCHICAL_H_

#include <cstdint>

#include "src/collectives/rank_group.h"
#include "src/collectives/schemes.h"
#include "src/compress/compressor.h"

namespace espresso {

enum class InterScheme {
  kUncompressedAllreduce,
  kCompressedIndivisible,  // allgather of compressed payloads
  kCompressedDivisible,    // alltoall + allgather
};

struct HierarchicalOptions {
  size_t machines = 1;
  size_t gpus_per_machine = 1;
  InterScheme inter = InterScheme::kUncompressedAllreduce;
  // Compress the intra-machine steps too (first step alltoall-compressed, second step
  // allgather-compressed). Requires `compressor`.
  bool compress_intra = false;
  const Compressor* compressor = nullptr;    // required for any compressed stage
  std::vector<ErrorFeedback>* feedback = nullptr;  // one per global rank, optional
  PayloadChannel* channel = nullptr;         // inter-machine payload transport, optional
  uint64_t tensor_id = 0;
  uint64_t seed = 0;
  // Scratch source for all three phases (threaded through to the primitives and
  // schemes). nullptr resolves to the calling thread's default workspace.
  mem::CollectiveWorkspace* workspace = nullptr;
};

struct HierarchicalResult {
  CollectiveTraffic intra_traffic;  // per-GPU bytes on the intra-machine fabric
  CollectiveTraffic inter_traffic;  // per-machine bytes on the inter-machine network
  size_t payloads_dropped = 0;      // inter-machine payloads lost in transit
  size_t payloads_corrupted = 0;    // inter-machine payloads delivered corrupted
};

// Synchronizes `buffers` (one per global rank, machine-major order: rank = m * g + l).
// On return every rank holds the same aggregated tensor (exact for the uncompressed
// path; compression error applies otherwise).
HierarchicalResult HierarchicalSync(const HierarchicalOptions& options, RankBuffers& buffers);

}  // namespace espresso

#endif  // SRC_COLLECTIVES_HIERARCHICAL_H_

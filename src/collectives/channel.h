// Transport abstraction for compressed payloads crossing the (functional) network.
//
// The collectives normally move payloads between in-process rank buffers perfectly;
// a PayloadChannel models an imperfect transport: a transmission can be delivered,
// dropped outright, or delivered with corrupted contents. The fault subsystem
// (src/fault) provides implementations — a raw chaos transport and a reliable wrapper
// that adds checksums plus retry/backoff — while the schemes stay transport-agnostic.
#ifndef SRC_COLLECTIVES_CHANNEL_H_
#define SRC_COLLECTIVES_CHANNEL_H_

#include <cstddef>
#include <cstdint>

#include "src/compress/compressed_tensor.h"

namespace espresso {

// Final outcome of transmitting one payload (after whatever retries the channel
// implementation performs internally).
enum class PayloadFate {
  kDelivered,  // payload arrives intact
  kDropped,    // payload lost; the sender's update must be preserved elsewhere (EF)
  kCorrupted,  // payload arrives with mutated contents (undetected corruption)
};

const char* PayloadFateName(PayloadFate fate);

class PayloadChannel {
 public:
  virtual ~PayloadChannel() = default;

  // Called once per training step before any Transmit, so deterministic fault
  // schedules can key their draws on the iteration index.
  virtual void BeginIteration(uint64_t iteration) { (void)iteration; }

  // Transmits `payload` from `rank`. May mutate the payload in place (corruption).
  // Returns the final fate; kDropped payloads must be excluded from aggregation.
  virtual PayloadFate Transmit(size_t rank, uint64_t tensor_id,
                               CompressedTensor* payload) = 0;
};

}  // namespace espresso

#endif  // SRC_COLLECTIVES_CHANNEL_H_

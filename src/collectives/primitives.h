// Uncompressed collective primitives (Table 2, "Uncompressed tensors" column).
//
// Semantics follow MPI; traffic accounting follows the ring/recursive algorithms whose
// costs the Thakur models in src/costmodel describe, so tests can check that the bytes a
// functional call moves equal the bytes the cost model charges for.
#ifndef SRC_COLLECTIVES_PRIMITIVES_H_
#define SRC_COLLECTIVES_PRIMITIVES_H_

#include "src/collectives/rank_group.h"
#include "src/mem/workspace.h"

namespace espresso {

// Ring allreduce: every rank ends with the elementwise sum across ranks. Scratch
// (working copies, in-flight ring chunks) comes from `workspace`; nullptr resolves to
// the calling thread's default workspace, so steady-state calls are allocation-free.
CollectiveTraffic AllReduce(RankBuffers& buffers,
                            mem::CollectiveWorkspace* workspace = nullptr);

// Reduce-scatter: rank r ends with the sum of partition range r (other ranges of its
// buffer are left untouched); `out_shards[r]` receives rank r's reduced shard.
CollectiveTraffic ReduceScatter(const RankBuffers& buffers,
                                std::vector<std::vector<float>>* out_shards);

// Allgather of per-rank shards (shard r from rank r) into every rank's full buffer.
// Shard sizes must follow Partition(total, ranks).
CollectiveTraffic AllGather(const std::vector<std::vector<float>>& shards,
                            RankBuffers* buffers);

// Reduce to `root`: out receives the elementwise sum.
CollectiveTraffic Reduce(const RankBuffers& buffers, size_t root, std::vector<float>* out);

// Broadcast `value` from root to all ranks.
CollectiveTraffic Broadcast(const std::vector<float>& value, RankBuffers* buffers);

// Reference implementation used by property tests: the sum of all rank buffers.
std::vector<float> NaiveSum(const RankBuffers& buffers);

}  // namespace espresso

#endif  // SRC_COLLECTIVES_PRIMITIVES_H_

#include "src/collectives/schemes.h"

#include <algorithm>
#include <span>

#include "src/util/logging.h"

namespace espresso {

namespace {

// Compresses rank r's full buffer, routing through its ErrorFeedback when present.
void CompressRank(const Compressor& compressor, const SchemeContext& ctx, size_t rank,
                  std::span<const float> input, CompressedTensor* out) {
  if (ctx.feedback != nullptr) {
    ESP_CHECK_LT(rank, ctx.feedback->size());
    (*ctx.feedback)[rank].CompressWithFeedback(compressor, ctx.tensor_id, input, ctx.seed, out);
  } else {
    compressor.Compress(input, ctx.seed, out);
  }
}

// Routes rank r's uplink payload through the context's channel (if any). Returns false
// when the payload is dropped: the caller must exclude it from aggregation. A drop is
// total — no rank (including the sender) aggregates it, which keeps the synchronous
// replicas bit-identical; with EF on, the dropped update is folded back into the
// sender's residual and re-emitted on the next step. Corrupted payloads are delivered
// as-is (a channel that wants reliability adds checksums + retries internally).
bool TransmitRank(const Compressor& compressor, const SchemeContext& ctx, size_t rank,
                  uint64_t tensor_id, CompressedTensor* payload, SchemeResult* result) {
  if (ctx.channel == nullptr) {
    return true;
  }
  switch (ctx.channel->Transmit(rank, tensor_id, payload)) {
    case PayloadFate::kDelivered:
      return true;
    case PayloadFate::kCorrupted:
      ++result->payloads_corrupted;
      return true;
    case PayloadFate::kDropped:
      ++result->payloads_dropped;
      if (ctx.feedback != nullptr) {
        (*ctx.feedback)[rank].AbsorbLostPayload(compressor, tensor_id, *payload);
      }
      return false;
  }
  return true;
}

}  // namespace

SchemeResult CompressedIndivisibleAllgather(const Compressor& compressor,
                                            const SchemeContext& ctx, RankBuffers& buffers) {
  const size_t n = CheckUniformSize(buffers);
  const size_t p = buffers.size();
  SchemeResult result;

  // Each rank compresses its full tensor; the allgathered payload set keeps only the
  // payloads the channel delivered. Payload tensors persist in the workspace (Compress
  // Clear()s them, keeping capacity); delivery flags live on the arena.
  mem::CollectiveWorkspace& ws = mem::Resolve(ctx.workspace);
  mem::ArenaScope scope(ws.arena);
  std::vector<CompressedTensor>& payloads = ws.indiv_payloads;
  // Grow-only: shrinking would destroy warm tensors (and their capacities) when calls
  // with different rank counts alternate on one workspace. Slots past p sit unused.
  if (payloads.size() < p) {
    payloads.resize(p);
  }
  std::span<uint8_t> delivered = ws.arena.Alloc<uint8_t>(p);
  std::fill(delivered.begin(), delivered.end(), uint8_t{1});
  // Batched pre-pass payloads replace the per-rank CompressRank calls (the compression
  // itself already happened in one CompressBatch); the swap keeps both stores' tensor
  // capacities warm, and TransmitRank order — hence any stateful channel's fault
  // schedule — is identical either way.
  const bool pre = !ctx.precompressed.empty();
  ESP_CHECK(!pre || ctx.precompressed.size() == p);
  for (size_t r = 0; r < p; ++r) {
    if (pre) {
      std::swap(payloads[r], ctx.precompressed[r]);
    } else {
      CompressRank(compressor, ctx, r, buffers[r], &payloads[r]);
    }
    delivered[r] = TransmitRank(compressor, ctx, r, ctx.tensor_id, &payloads[r], &result)
                       ? uint8_t{1}
                       : uint8_t{0};
  }
  result.compress_calls = p;

  // Allgather of payloads: every rank receives all p compressed tensors.
  size_t bytes = 0;
  for (const auto& payload : payloads) {
    bytes += payload.ByteSize();
  }
  result.traffic.bytes_sent_per_rank = bytes * (p - 1) / p;  // ring allgather average
  result.traffic.communication_steps = p - 1;

  // Decompress + aggregate on every rank.
  for (size_t r = 0; r < p; ++r) {
    std::fill(buffers[r].begin(), buffers[r].end(), 0.0f);
    for (size_t s = 0; s < p; ++s) {
      if (delivered[s] != 0) {
        compressor.DecompressAdd(payloads[s], buffers[r]);
        ++result.decompress_calls;
      }
    }
  }
  (void)n;
  return result;
}

namespace {

// Shared implementation of the divisible scheme. `rooted` selects Gather/Broadcast
// (single aggregator rank) instead of Alltoall/Allgather (every rank aggregates a part).
SchemeResult DivisibleScheme(const Compressor& compressor, const SchemeContext& ctx,
                             RankBuffers& buffers, bool rooted) {
  const size_t n = CheckUniformSize(buffers);
  const size_t p = buffers.size();
  SchemeResult result;
  const size_t parts = rooted ? 1 : p;
  const Partition part(n, parts);

  // Step 0: every rank compresses each index-range part of its tensor.
  // payloads[r][j] = rank r's compressed part j. Parts whose aggregator is another rank
  // cross the wire and may be dropped by the channel; a rank's own part stays local.
  // The payload matrix persists in the workspace; delivery flags live on the arena
  // (row r starts at delivered[r * parts]).
  mem::CollectiveWorkspace& ws = mem::Resolve(ctx.workspace);
  mem::ArenaScope scope(ws.arena);
  // Grow-only (see the indivisible scheme): the rooted and alltoall variants share
  // this matrix with different `parts`, and shrinking a row would destroy its warm
  // tensors. Rows and slots past the live [0, p) x [0, parts) range sit unused.
  std::vector<std::vector<CompressedTensor>>& payloads = ws.div_payloads;
  if (payloads.size() < p) {
    payloads.resize(p);
  }
  for (size_t r = 0; r < p; ++r) {
    if (payloads[r].size() < parts) {
      payloads[r].resize(parts);
    }
  }
  std::span<uint8_t> delivered = ws.arena.Alloc<uint8_t>(p * parts);
  std::fill(delivered.begin(), delivered.end(), uint8_t{1});
  for (size_t r = 0; r < p; ++r) {
    for (size_t j = 0; j < parts; ++j) {
      const std::span<const float> full(buffers[r]);
      // Error feedback applies to the full tensor once, not per part; run it before
      // partitioning by compressing part views of the corrected tensor. To keep residual
      // bookkeeping simple and exact we apply EF per (tensor, part) with distinct ids.
      const auto view = full.subspan(part.Offset(j), part.Length(j));
      SchemeContext part_ctx = ctx;
      part_ctx.tensor_id = ctx.tensor_id * 1315423911ULL + j;
      CompressRank(compressor, part_ctx, r, view, &payloads[r][j]);
      const size_t aggregator = rooted ? 0 : j;
      if (aggregator != r) {
        delivered[r * parts + j] =
            TransmitRank(compressor, part_ctx, r, part_ctx.tensor_id, &payloads[r][j],
                         &result)
                ? uint8_t{1}
                : uint8_t{0};
      }
    }
  }
  result.compress_calls = p * parts;

  // First communication op: shuffle. Aggregator of part j receives part j from every
  // other rank. (For the rooted variant there is a single part and rank 0 aggregates.)
  size_t first_op_bytes_per_rank = 0;
  for (size_t r = 0; r < p; ++r) {
    size_t sent = 0;
    for (size_t j = 0; j < parts; ++j) {
      const size_t aggregator = rooted ? 0 : j;
      if (aggregator != r) {
        sent += payloads[r][j].ByteSize();
      }
    }
    first_op_bytes_per_rank = std::max(first_op_bytes_per_rank, sent);
  }
  result.traffic.bytes_sent_per_rank += first_op_bytes_per_rank;
  result.traffic.communication_steps += 1;

  // Middle stage: each aggregator decompresses its received parts, aggregates, and
  // re-compresses — unless the compressor supports compressed-domain aggregation.
  // Aggregation tensors persist in the workspace; the zero/aggregation float scratch
  // is a pool lease (capacity-reusing) instead of a fresh vector per part.
  std::vector<CompressedTensor>& aggregated = ws.div_aggregated;
  if (aggregated.size() < parts) {
    aggregated.resize(parts);
  }
  if (compressor.SupportsCompressedAggregation()) {
    for (size_t j = 0; j < parts; ++j) {
      bool seeded = false;
      for (size_t r = 0; r < p; ++r) {
        if (delivered[r * parts + j] == 0) {
          continue;
        }
        if (!seeded) {
          aggregated[j] = payloads[r][j];
          seeded = true;
        } else {
          compressor.AggregateCompressed(payloads[r][j], &aggregated[j]);
        }
      }
      // Every payload of part j dropped: aggregate the part as all-zeros.
      if (!seeded) {
        mem::PooledFloats zeros = ws.pool.AcquireZeroedFloats(part.Length(j));
        compressor.Compress(*zeros, ctx.seed, &aggregated[j]);
      }
    }
  } else {
    for (size_t j = 0; j < parts; ++j) {
      mem::PooledFloats scratch = ws.pool.AcquireZeroedFloats(part.Length(j));
      for (size_t r = 0; r < p; ++r) {
        if (delivered[r * parts + j] != 0) {
          compressor.DecompressAdd(payloads[r][j], *scratch);
          ++result.decompress_calls;
        }
      }
      compressor.Compress(*scratch, ctx.seed, &aggregated[j]);
      ++result.compress_calls;
    }
  }

  // Second communication op: allgather (or broadcast) of the aggregated payloads.
  size_t aggregated_bytes = 0;
  for (const auto& payload : aggregated) {
    aggregated_bytes += payload.ByteSize();
  }
  if (rooted) {
    result.traffic.bytes_sent_per_rank += aggregated_bytes;  // root sends to everyone
  } else {
    result.traffic.bytes_sent_per_rank += aggregated_bytes * (p - 1) / p;
  }
  result.traffic.communication_steps += 1;

  // Final decompression on every rank.
  for (size_t r = 0; r < p; ++r) {
    std::fill(buffers[r].begin(), buffers[r].end(), 0.0f);
    for (size_t j = 0; j < parts; ++j) {
      auto range = std::span<float>(buffers[r]).subspan(part.Offset(j), part.Length(j));
      compressor.DecompressAdd(aggregated[j], range);
    }
    result.decompress_calls += parts;
  }
  return result;
}

}  // namespace

SchemeResult CompressedDivisibleAlltoall(const Compressor& compressor,
                                         const SchemeContext& ctx, RankBuffers& buffers) {
  return DivisibleScheme(compressor, ctx, buffers, /*rooted=*/false);
}

SchemeResult CompressedDivisibleGather(const Compressor& compressor, const SchemeContext& ctx,
                                       RankBuffers& buffers) {
  return DivisibleScheme(compressor, ctx, buffers, /*rooted=*/true);
}

}  // namespace espresso

#include "src/collectives/schemes.h"

#include <algorithm>
#include <span>

#include "src/util/logging.h"

namespace espresso {

namespace {

// Compresses rank r's full buffer, routing through its ErrorFeedback when present.
void CompressRank(const Compressor& compressor, const SchemeContext& ctx, size_t rank,
                  std::span<const float> input, CompressedTensor* out) {
  if (ctx.feedback != nullptr) {
    ESP_CHECK_LT(rank, ctx.feedback->size());
    (*ctx.feedback)[rank].CompressWithFeedback(compressor, ctx.tensor_id, input, ctx.seed, out);
  } else {
    compressor.Compress(input, ctx.seed, out);
  }
}

// Routes rank r's uplink payload through the context's channel (if any). Returns false
// when the payload is dropped: the caller must exclude it from aggregation. A drop is
// total — no rank (including the sender) aggregates it, which keeps the synchronous
// replicas bit-identical; with EF on, the dropped update is folded back into the
// sender's residual and re-emitted on the next step. Corrupted payloads are delivered
// as-is (a channel that wants reliability adds checksums + retries internally).
bool TransmitRank(const Compressor& compressor, const SchemeContext& ctx, size_t rank,
                  uint64_t tensor_id, CompressedTensor* payload, SchemeResult* result) {
  if (ctx.channel == nullptr) {
    return true;
  }
  switch (ctx.channel->Transmit(rank, tensor_id, payload)) {
    case PayloadFate::kDelivered:
      return true;
    case PayloadFate::kCorrupted:
      ++result->payloads_corrupted;
      return true;
    case PayloadFate::kDropped:
      ++result->payloads_dropped;
      if (ctx.feedback != nullptr) {
        (*ctx.feedback)[rank].AbsorbLostPayload(compressor, tensor_id, *payload);
      }
      return false;
  }
  return true;
}

}  // namespace

SchemeResult CompressedIndivisibleAllgather(const Compressor& compressor,
                                            const SchemeContext& ctx, RankBuffers& buffers) {
  const size_t n = CheckUniformSize(buffers);
  const size_t p = buffers.size();
  SchemeResult result;

  // Each rank compresses its full tensor; the allgathered payload set keeps only the
  // payloads the channel delivered.
  std::vector<CompressedTensor> payloads(p);
  std::vector<bool> delivered(p, true);
  for (size_t r = 0; r < p; ++r) {
    CompressRank(compressor, ctx, r, buffers[r], &payloads[r]);
    delivered[r] = TransmitRank(compressor, ctx, r, ctx.tensor_id, &payloads[r], &result);
  }
  result.compress_calls = p;

  // Allgather of payloads: every rank receives all p compressed tensors.
  size_t bytes = 0;
  for (const auto& payload : payloads) {
    bytes += payload.ByteSize();
  }
  result.traffic.bytes_sent_per_rank = bytes * (p - 1) / p;  // ring allgather average
  result.traffic.communication_steps = p - 1;

  // Decompress + aggregate on every rank.
  for (size_t r = 0; r < p; ++r) {
    std::fill(buffers[r].begin(), buffers[r].end(), 0.0f);
    for (size_t s = 0; s < p; ++s) {
      if (delivered[s]) {
        compressor.DecompressAdd(payloads[s], buffers[r]);
        ++result.decompress_calls;
      }
    }
  }
  (void)n;
  return result;
}

namespace {

// Shared implementation of the divisible scheme. `rooted` selects Gather/Broadcast
// (single aggregator rank) instead of Alltoall/Allgather (every rank aggregates a part).
SchemeResult DivisibleScheme(const Compressor& compressor, const SchemeContext& ctx,
                             RankBuffers& buffers, bool rooted) {
  const size_t n = CheckUniformSize(buffers);
  const size_t p = buffers.size();
  SchemeResult result;
  const size_t parts = rooted ? 1 : p;
  const Partition part(n, parts);

  // Step 0: every rank compresses each index-range part of its tensor.
  // payloads[r][j] = rank r's compressed part j. Parts whose aggregator is another rank
  // cross the wire and may be dropped by the channel; a rank's own part stays local.
  std::vector<std::vector<CompressedTensor>> payloads(p, std::vector<CompressedTensor>(parts));
  std::vector<std::vector<bool>> delivered(p, std::vector<bool>(parts, true));
  for (size_t r = 0; r < p; ++r) {
    for (size_t j = 0; j < parts; ++j) {
      const std::span<const float> full(buffers[r]);
      // Error feedback applies to the full tensor once, not per part; run it before
      // partitioning by compressing part views of the corrected tensor. To keep residual
      // bookkeeping simple and exact we apply EF per (tensor, part) with distinct ids.
      const auto view = full.subspan(part.Offset(j), part.Length(j));
      SchemeContext part_ctx = ctx;
      part_ctx.tensor_id = ctx.tensor_id * 1315423911ULL + j;
      CompressRank(compressor, part_ctx, r, view, &payloads[r][j]);
      const size_t aggregator = rooted ? 0 : j;
      if (aggregator != r) {
        delivered[r][j] = TransmitRank(compressor, part_ctx, r, part_ctx.tensor_id,
                                       &payloads[r][j], &result);
      }
    }
  }
  result.compress_calls = p * parts;

  // First communication op: shuffle. Aggregator of part j receives part j from every
  // other rank. (For the rooted variant there is a single part and rank 0 aggregates.)
  size_t first_op_bytes_per_rank = 0;
  for (size_t r = 0; r < p; ++r) {
    size_t sent = 0;
    for (size_t j = 0; j < parts; ++j) {
      const size_t aggregator = rooted ? 0 : j;
      if (aggregator != r) {
        sent += payloads[r][j].ByteSize();
      }
    }
    first_op_bytes_per_rank = std::max(first_op_bytes_per_rank, sent);
  }
  result.traffic.bytes_sent_per_rank += first_op_bytes_per_rank;
  result.traffic.communication_steps += 1;

  // Middle stage: each aggregator decompresses its received parts, aggregates, and
  // re-compresses — unless the compressor supports compressed-domain aggregation.
  std::vector<CompressedTensor> aggregated(parts);
  if (compressor.SupportsCompressedAggregation()) {
    for (size_t j = 0; j < parts; ++j) {
      bool seeded = false;
      for (size_t r = 0; r < p; ++r) {
        if (!delivered[r][j]) {
          continue;
        }
        if (!seeded) {
          aggregated[j] = payloads[r][j];
          seeded = true;
        } else {
          compressor.AggregateCompressed(payloads[r][j], &aggregated[j]);
        }
      }
      // Every payload of part j dropped: aggregate the part as all-zeros.
      if (!seeded) {
        std::vector<float> zeros(part.Length(j), 0.0f);
        compressor.Compress(zeros, ctx.seed, &aggregated[j]);
      }
    }
  } else {
    for (size_t j = 0; j < parts; ++j) {
      std::vector<float> scratch(part.Length(j), 0.0f);
      for (size_t r = 0; r < p; ++r) {
        if (delivered[r][j]) {
          compressor.DecompressAdd(payloads[r][j], scratch);
          ++result.decompress_calls;
        }
      }
      compressor.Compress(scratch, ctx.seed, &aggregated[j]);
      ++result.compress_calls;
    }
  }

  // Second communication op: allgather (or broadcast) of the aggregated payloads.
  size_t aggregated_bytes = 0;
  for (const auto& payload : aggregated) {
    aggregated_bytes += payload.ByteSize();
  }
  if (rooted) {
    result.traffic.bytes_sent_per_rank += aggregated_bytes;  // root sends to everyone
  } else {
    result.traffic.bytes_sent_per_rank += aggregated_bytes * (p - 1) / p;
  }
  result.traffic.communication_steps += 1;

  // Final decompression on every rank.
  for (size_t r = 0; r < p; ++r) {
    std::fill(buffers[r].begin(), buffers[r].end(), 0.0f);
    for (size_t j = 0; j < parts; ++j) {
      auto range = std::span<float>(buffers[r]).subspan(part.Offset(j), part.Length(j));
      compressor.DecompressAdd(aggregated[j], range);
    }
    result.decompress_calls += parts;
  }
  return result;
}

}  // namespace

SchemeResult CompressedDivisibleAlltoall(const Compressor& compressor,
                                         const SchemeContext& ctx, RankBuffers& buffers) {
  return DivisibleScheme(compressor, ctx, buffers, /*rooted=*/false);
}

SchemeResult CompressedDivisibleGather(const Compressor& compressor, const SchemeContext& ctx,
                                       RankBuffers& buffers) {
  return DivisibleScheme(compressor, ctx, buffers, /*rooted=*/true);
}

}  // namespace espresso

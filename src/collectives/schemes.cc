#include "src/collectives/schemes.h"

#include <algorithm>
#include <span>

#include "src/util/logging.h"

namespace espresso {

namespace {

// Compresses rank r's full buffer, routing through its ErrorFeedback when present.
void CompressRank(const Compressor& compressor, const SchemeContext& ctx, size_t rank,
                  std::span<const float> input, CompressedTensor* out) {
  if (ctx.feedback != nullptr) {
    ESP_CHECK_LT(rank, ctx.feedback->size());
    (*ctx.feedback)[rank].CompressWithFeedback(compressor, ctx.tensor_id, input, ctx.seed, out);
  } else {
    compressor.Compress(input, ctx.seed, out);
  }
}

}  // namespace

SchemeResult CompressedIndivisibleAllgather(const Compressor& compressor,
                                            const SchemeContext& ctx, RankBuffers& buffers) {
  const size_t n = CheckUniformSize(buffers);
  const size_t p = buffers.size();
  SchemeResult result;

  // Each rank compresses its full tensor.
  std::vector<CompressedTensor> payloads(p);
  for (size_t r = 0; r < p; ++r) {
    CompressRank(compressor, ctx, r, buffers[r], &payloads[r]);
  }
  result.compress_calls = p;

  // Allgather of payloads: every rank receives all p compressed tensors.
  size_t bytes = 0;
  for (const auto& payload : payloads) {
    bytes += payload.ByteSize();
  }
  result.traffic.bytes_sent_per_rank = bytes * (p - 1) / p;  // ring allgather average
  result.traffic.communication_steps = p - 1;

  // Decompress + aggregate on every rank.
  for (size_t r = 0; r < p; ++r) {
    std::fill(buffers[r].begin(), buffers[r].end(), 0.0f);
    for (const auto& payload : payloads) {
      compressor.DecompressAdd(payload, buffers[r]);
    }
  }
  result.decompress_calls = p * p;
  (void)n;
  return result;
}

namespace {

// Shared implementation of the divisible scheme. `rooted` selects Gather/Broadcast
// (single aggregator rank) instead of Alltoall/Allgather (every rank aggregates a part).
SchemeResult DivisibleScheme(const Compressor& compressor, const SchemeContext& ctx,
                             RankBuffers& buffers, bool rooted) {
  const size_t n = CheckUniformSize(buffers);
  const size_t p = buffers.size();
  SchemeResult result;
  const size_t parts = rooted ? 1 : p;
  const Partition part(n, parts);

  // Step 0: every rank compresses each index-range part of its tensor.
  // payloads[r][j] = rank r's compressed part j.
  std::vector<std::vector<CompressedTensor>> payloads(p, std::vector<CompressedTensor>(parts));
  for (size_t r = 0; r < p; ++r) {
    for (size_t j = 0; j < parts; ++j) {
      const std::span<const float> full(buffers[r]);
      // Error feedback applies to the full tensor once, not per part; run it before
      // partitioning by compressing part views of the corrected tensor. To keep residual
      // bookkeeping simple and exact we apply EF per (tensor, part) with distinct ids.
      const auto view = full.subspan(part.Offset(j), part.Length(j));
      SchemeContext part_ctx = ctx;
      part_ctx.tensor_id = ctx.tensor_id * 1315423911ULL + j;
      CompressRank(compressor, part_ctx, r, view, &payloads[r][j]);
    }
  }
  result.compress_calls = p * parts;

  // First communication op: shuffle. Aggregator of part j receives part j from every
  // other rank. (For the rooted variant there is a single part and rank 0 aggregates.)
  size_t first_op_bytes_per_rank = 0;
  for (size_t r = 0; r < p; ++r) {
    size_t sent = 0;
    for (size_t j = 0; j < parts; ++j) {
      const size_t aggregator = rooted ? 0 : j;
      if (aggregator != r) {
        sent += payloads[r][j].ByteSize();
      }
    }
    first_op_bytes_per_rank = std::max(first_op_bytes_per_rank, sent);
  }
  result.traffic.bytes_sent_per_rank += first_op_bytes_per_rank;
  result.traffic.communication_steps += 1;

  // Middle stage: each aggregator decompresses its received parts, aggregates, and
  // re-compresses — unless the compressor supports compressed-domain aggregation.
  std::vector<CompressedTensor> aggregated(parts);
  if (compressor.SupportsCompressedAggregation()) {
    for (size_t j = 0; j < parts; ++j) {
      aggregated[j] = payloads[0][j];
      for (size_t r = 1; r < p; ++r) {
        compressor.AggregateCompressed(payloads[r][j], &aggregated[j]);
      }
    }
  } else {
    for (size_t j = 0; j < parts; ++j) {
      std::vector<float> scratch(part.Length(j), 0.0f);
      for (size_t r = 0; r < p; ++r) {
        compressor.DecompressAdd(payloads[r][j], scratch);
      }
      result.decompress_calls += p;
      compressor.Compress(scratch, ctx.seed, &aggregated[j]);
      ++result.compress_calls;
    }
  }

  // Second communication op: allgather (or broadcast) of the aggregated payloads.
  size_t aggregated_bytes = 0;
  for (const auto& payload : aggregated) {
    aggregated_bytes += payload.ByteSize();
  }
  if (rooted) {
    result.traffic.bytes_sent_per_rank += aggregated_bytes;  // root sends to everyone
  } else {
    result.traffic.bytes_sent_per_rank += aggregated_bytes * (p - 1) / p;
  }
  result.traffic.communication_steps += 1;

  // Final decompression on every rank.
  for (size_t r = 0; r < p; ++r) {
    std::fill(buffers[r].begin(), buffers[r].end(), 0.0f);
    for (size_t j = 0; j < parts; ++j) {
      auto range = std::span<float>(buffers[r]).subspan(part.Offset(j), part.Length(j));
      compressor.DecompressAdd(aggregated[j], range);
    }
    result.decompress_calls += parts;
  }
  return result;
}

}  // namespace

SchemeResult CompressedDivisibleAlltoall(const Compressor& compressor,
                                         const SchemeContext& ctx, RankBuffers& buffers) {
  return DivisibleScheme(compressor, ctx, buffers, /*rooted=*/false);
}

SchemeResult CompressedDivisibleGather(const Compressor& compressor, const SchemeContext& ctx,
                                       RankBuffers& buffers) {
  return DivisibleScheme(compressor, ctx, buffers, /*rooted=*/true);
}

}  // namespace espresso

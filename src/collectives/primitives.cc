#include "src/collectives/primitives.h"

#include <algorithm>

#include "src/util/logging.h"

namespace espresso {

std::vector<float> NaiveSum(const RankBuffers& buffers) {
  const size_t n = CheckUniformSize(buffers);
  std::vector<float> sum(n, 0.0f);
  for (const auto& b : buffers) {
    for (size_t i = 0; i < n; ++i) {
      sum[i] += b[i];
    }
  }
  return sum;
}

CollectiveTraffic AllReduce(RankBuffers& buffers) {
  const size_t n = CheckUniformSize(buffers);
  const size_t p = buffers.size();
  CollectiveTraffic traffic;
  if (p == 1) {
    return traffic;
  }
  // Ring allreduce: p-1 reduce-scatter rounds followed by p-1 allgather rounds.
  // Each rank sends one partition per round.
  const Partition part(n, p);

  // Reduce-scatter phase: after round s, rank r has accumulated (s+1) contributions in
  // the chunk it will own. We simulate the rounds explicitly for faithful traffic
  // accounting, accumulating into working copies.
  RankBuffers work = buffers;
  for (size_t step = 0; step + 1 < p; ++step) {
    // In round `step`, rank r sends chunk (r - step) mod p to rank (r + 1) mod p.
    std::vector<std::vector<float>> in_flight(p);
    for (size_t r = 0; r < p; ++r) {
      const size_t chunk = (r + p - step) % p;
      const size_t off = part.Offset(chunk);
      const size_t len = part.Length(chunk);
      in_flight[r].assign(work[r].begin() + static_cast<ptrdiff_t>(off),
                          work[r].begin() + static_cast<ptrdiff_t>(off + len));
    }
    for (size_t r = 0; r < p; ++r) {
      const size_t dst = (r + 1) % p;
      const size_t chunk = (r + p - step) % p;
      const size_t off = part.Offset(chunk);
      for (size_t i = 0; i < in_flight[r].size(); ++i) {
        work[dst][off + i] += in_flight[r][i];
      }
    }
  }
  // After p-1 rounds, rank r owns the fully reduced chunk (r + 1) mod p.
  // Allgather phase: circulate owned chunks for p-1 rounds.
  for (size_t step = 0; step + 1 < p; ++step) {
    std::vector<std::vector<float>> in_flight(p);
    std::vector<size_t> chunk_of(p);
    for (size_t r = 0; r < p; ++r) {
      const size_t chunk = (r + 1 + p - step) % p;
      chunk_of[r] = chunk;
      const size_t off = part.Offset(chunk);
      const size_t len = part.Length(chunk);
      in_flight[r].assign(work[r].begin() + static_cast<ptrdiff_t>(off),
                          work[r].begin() + static_cast<ptrdiff_t>(off + len));
    }
    for (size_t r = 0; r < p; ++r) {
      const size_t dst = (r + 1) % p;
      const size_t off = part.Offset(chunk_of[r]);
      std::copy(in_flight[r].begin(), in_flight[r].end(),
                work[dst].begin() + static_cast<ptrdiff_t>(off));
    }
  }
  buffers = std::move(work);
  // Per-rank traffic: 2(p-1)/p * n floats.
  traffic.bytes_sent_per_rank = 2 * (p - 1) * (n / p + (n % p != 0 ? 1 : 0)) * sizeof(float);
  traffic.communication_steps = 2 * (p - 1);
  return traffic;
}

CollectiveTraffic ReduceScatter(const RankBuffers& buffers,
                                std::vector<std::vector<float>>* out_shards) {
  ESP_CHECK(out_shards != nullptr);
  const size_t n = CheckUniformSize(buffers);
  const size_t p = buffers.size();
  const Partition part(n, p);
  out_shards->assign(p, {});
  for (size_t r = 0; r < p; ++r) {
    const size_t off = part.Offset(r);
    const size_t len = part.Length(r);
    auto& shard = (*out_shards)[r];
    shard.assign(len, 0.0f);
    for (const auto& b : buffers) {
      for (size_t i = 0; i < len; ++i) {
        shard[i] += b[off + i];
      }
    }
  }
  CollectiveTraffic traffic;
  traffic.bytes_sent_per_rank =
      (p - 1) * (n / p + (n % p != 0 ? 1 : 0)) * sizeof(float);
  traffic.communication_steps = p - 1;
  return traffic;
}

CollectiveTraffic AllGather(const std::vector<std::vector<float>>& shards,
                            RankBuffers* buffers) {
  ESP_CHECK(buffers != nullptr);
  const size_t p = shards.size();
  ESP_CHECK_GT(p, 0u);
  size_t n = 0;
  for (const auto& s : shards) {
    n += s.size();
  }
  const Partition part(n, p);
  for (size_t r = 0; r < p; ++r) {
    ESP_CHECK_EQ(shards[r].size(), part.Length(r));
  }
  buffers->assign(p, std::vector<float>(n));
  for (size_t dst = 0; dst < p; ++dst) {
    for (size_t src = 0; src < p; ++src) {
      std::copy(shards[src].begin(), shards[src].end(),
                (*buffers)[dst].begin() + static_cast<ptrdiff_t>(part.Offset(src)));
    }
  }
  CollectiveTraffic traffic;
  traffic.bytes_sent_per_rank =
      (p - 1) * (n / p + (n % p != 0 ? 1 : 0)) * sizeof(float);
  traffic.communication_steps = p - 1;
  return traffic;
}

CollectiveTraffic Reduce(const RankBuffers& buffers, size_t root, std::vector<float>* out) {
  ESP_CHECK(out != nullptr);
  const size_t n = CheckUniformSize(buffers);
  const size_t p = buffers.size();
  ESP_CHECK_LT(root, p);
  *out = NaiveSum(buffers);
  (void)n;
  CollectiveTraffic traffic;
  traffic.bytes_sent_per_rank = (p - 1) * n * sizeof(float) / p;  // pipelined tree average
  traffic.communication_steps = p - 1;
  return traffic;
}

CollectiveTraffic Broadcast(const std::vector<float>& value, RankBuffers* buffers) {
  ESP_CHECK(buffers != nullptr);
  ESP_CHECK(!buffers->empty());
  for (auto& b : *buffers) {
    b = value;
  }
  CollectiveTraffic traffic;
  traffic.bytes_sent_per_rank = value.size() * sizeof(float);
  traffic.communication_steps = buffers->size() - 1;
  return traffic;
}

}  // namespace espresso

#include "src/collectives/primitives.h"

#include <algorithm>

#include "src/util/logging.h"

namespace espresso {

std::vector<float> NaiveSum(const RankBuffers& buffers) {
  const size_t n = CheckUniformSize(buffers);
  std::vector<float> sum(n, 0.0f);
  for (const auto& b : buffers) {
    for (size_t i = 0; i < n; ++i) {
      sum[i] += b[i];
    }
  }
  return sum;
}

CollectiveTraffic AllReduce(RankBuffers& buffers, mem::CollectiveWorkspace* workspace) {
  const size_t n = CheckUniformSize(buffers);
  const size_t p = buffers.size();
  CollectiveTraffic traffic;
  if (p == 1) {
    return traffic;
  }
  // Ring allreduce: p-1 reduce-scatter rounds followed by p-1 allgather rounds.
  // Each rank sends one partition per round.
  const Partition part(n, p);

  // Reduce-scatter phase: after round s, rank r has accumulated (s+1) contributions in
  // the chunk it will own. We simulate the rounds explicitly for faithful traffic
  // accounting, accumulating into working copies drawn from the workspace (persistent
  // `ring_work` for the copies, arena spans for the in-flight chunks).
  mem::CollectiveWorkspace& ws = mem::Resolve(workspace);
  mem::ArenaScope scope(ws.arena);
  RankBuffers& work = ws.ring_work;
  // Grow-only: shrinking would destroy warm per-rank copies when calls with different
  // rank counts share one workspace. Entries past p sit unused.
  if (work.size() < p) {
    work.resize(p);
  }
  for (size_t r = 0; r < p; ++r) {
    work[r].assign(buffers[r].begin(), buffers[r].end());
  }
  const size_t max_len = part.Length(0);  // partition lengths are non-increasing
  std::span<float> flight = ws.arena.Alloc<float>(p * max_len);
  std::span<size_t> flight_len = ws.arena.Alloc<size_t>(p);
  std::span<size_t> chunk_of = ws.arena.Alloc<size_t>(p);
  for (size_t step = 0; step + 1 < p; ++step) {
    // In round `step`, rank r sends chunk (r - step) mod p to rank (r + 1) mod p.
    for (size_t r = 0; r < p; ++r) {
      const size_t chunk = (r + p - step) % p;
      const size_t off = part.Offset(chunk);
      const size_t len = part.Length(chunk);
      flight_len[r] = len;
      std::copy(work[r].begin() + static_cast<ptrdiff_t>(off),
                work[r].begin() + static_cast<ptrdiff_t>(off + len),
                flight.begin() + static_cast<ptrdiff_t>(r * max_len));
    }
    for (size_t r = 0; r < p; ++r) {
      const size_t dst = (r + 1) % p;
      const size_t chunk = (r + p - step) % p;
      const size_t off = part.Offset(chunk);
      for (size_t i = 0; i < flight_len[r]; ++i) {
        work[dst][off + i] += flight[r * max_len + i];
      }
    }
  }
  // After p-1 rounds, rank r owns the fully reduced chunk (r + 1) mod p.
  // Allgather phase: circulate owned chunks for p-1 rounds.
  for (size_t step = 0; step + 1 < p; ++step) {
    for (size_t r = 0; r < p; ++r) {
      const size_t chunk = (r + 1 + p - step) % p;
      chunk_of[r] = chunk;
      const size_t off = part.Offset(chunk);
      const size_t len = part.Length(chunk);
      flight_len[r] = len;
      std::copy(work[r].begin() + static_cast<ptrdiff_t>(off),
                work[r].begin() + static_cast<ptrdiff_t>(off + len),
                flight.begin() + static_cast<ptrdiff_t>(r * max_len));
    }
    for (size_t r = 0; r < p; ++r) {
      const size_t dst = (r + 1) % p;
      const size_t off = part.Offset(chunk_of[r]);
      std::copy(flight.begin() + static_cast<ptrdiff_t>(r * max_len),
                flight.begin() + static_cast<ptrdiff_t>(r * max_len + flight_len[r]),
                work[dst].begin() + static_cast<ptrdiff_t>(off));
    }
  }
  for (size_t r = 0; r < p; ++r) {
    std::copy(work[r].begin(), work[r].end(), buffers[r].begin());
  }
  // Per-rank traffic: 2(p-1)/p * n floats.
  traffic.bytes_sent_per_rank = 2 * (p - 1) * (n / p + (n % p != 0 ? 1 : 0)) * sizeof(float);
  traffic.communication_steps = 2 * (p - 1);
  return traffic;
}

CollectiveTraffic ReduceScatter(const RankBuffers& buffers,
                                std::vector<std::vector<float>>* out_shards) {
  ESP_CHECK(out_shards != nullptr);
  const size_t n = CheckUniformSize(buffers);
  const size_t p = buffers.size();
  const Partition part(n, p);
  // resize + per-shard assign (not assign(p, {})) so shard capacities survive
  // repeated calls on stable shapes.
  out_shards->resize(p);
  for (size_t r = 0; r < p; ++r) {
    const size_t off = part.Offset(r);
    const size_t len = part.Length(r);
    auto& shard = (*out_shards)[r];
    shard.assign(len, 0.0f);
    for (const auto& b : buffers) {
      for (size_t i = 0; i < len; ++i) {
        shard[i] += b[off + i];
      }
    }
  }
  CollectiveTraffic traffic;
  traffic.bytes_sent_per_rank =
      (p - 1) * (n / p + (n % p != 0 ? 1 : 0)) * sizeof(float);
  traffic.communication_steps = p - 1;
  return traffic;
}

CollectiveTraffic AllGather(const std::vector<std::vector<float>>& shards,
                            RankBuffers* buffers) {
  ESP_CHECK(buffers != nullptr);
  const size_t p = shards.size();
  ESP_CHECK_GT(p, 0u);
  size_t n = 0;
  for (const auto& s : shards) {
    n += s.size();
  }
  const Partition part(n, p);
  for (size_t r = 0; r < p; ++r) {
    ESP_CHECK_EQ(shards[r].size(), part.Length(r));
  }
  // resize (not assign of fresh vectors) keeps each destination buffer's capacity;
  // the shard copies below tile [0, n) exactly, so no zero-fill is needed.
  buffers->resize(p);
  for (auto& b : *buffers) {
    b.resize(n);
  }
  for (size_t dst = 0; dst < p; ++dst) {
    for (size_t src = 0; src < p; ++src) {
      std::copy(shards[src].begin(), shards[src].end(),
                (*buffers)[dst].begin() + static_cast<ptrdiff_t>(part.Offset(src)));
    }
  }
  CollectiveTraffic traffic;
  traffic.bytes_sent_per_rank =
      (p - 1) * (n / p + (n % p != 0 ? 1 : 0)) * sizeof(float);
  traffic.communication_steps = p - 1;
  return traffic;
}

CollectiveTraffic Reduce(const RankBuffers& buffers, size_t root, std::vector<float>* out) {
  ESP_CHECK(out != nullptr);
  const size_t n = CheckUniformSize(buffers);
  const size_t p = buffers.size();
  ESP_CHECK_LT(root, p);
  // In-place NaiveSum (same accumulation order) so `out` keeps its capacity.
  out->assign(n, 0.0f);
  for (const auto& b : buffers) {
    for (size_t i = 0; i < n; ++i) {
      (*out)[i] += b[i];
    }
  }
  CollectiveTraffic traffic;
  traffic.bytes_sent_per_rank = (p - 1) * n * sizeof(float) / p;  // pipelined tree average
  traffic.communication_steps = p - 1;
  return traffic;
}

CollectiveTraffic Broadcast(const std::vector<float>& value, RankBuffers* buffers) {
  ESP_CHECK(buffers != nullptr);
  ESP_CHECK(!buffers->empty());
  for (auto& b : *buffers) {
    b = value;
  }
  CollectiveTraffic traffic;
  traffic.bytes_sent_per_rank = value.size() * sizeof(float);
  traffic.communication_steps = buffers->size() - 1;
  return traffic;
}

}  // namespace espresso

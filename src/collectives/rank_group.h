// In-process model of a group of data-parallel ranks.
//
// Collectives in this library are *functional*: the N ranks live in one process as N
// buffers, and each collective performs exactly the data movement its MPI/NCCL
// counterpart would, returning byte counts so tests can cross-check the analytic cost
// model's traffic arithmetic. Timing is supplied separately by src/costmodel.
#ifndef SRC_COLLECTIVES_RANK_GROUP_H_
#define SRC_COLLECTIVES_RANK_GROUP_H_

#include <cstddef>
#include <vector>

namespace espresso {

// One float buffer per rank. All collectives require equal sizes across ranks.
using RankBuffers = std::vector<std::vector<float>>;

// Traffic accounting for one collective call.
struct CollectiveTraffic {
  size_t bytes_sent_per_rank = 0;  // bytes each rank puts on the wire
  size_t communication_steps = 0;  // number of sequential transfer rounds
};

// Splits [0, elements) into `parts` near-equal contiguous ranges; range p is
// [Offset(p), Offset(p) + Length(p)). Used by divisible schemes and reduce-scatter.
struct Partition {
  Partition(size_t elements, size_t parts);

  size_t Offset(size_t part) const;
  size_t Length(size_t part) const;

  size_t elements;
  size_t parts;
};

// Verifies all rank buffers have identical size and returns it.
size_t CheckUniformSize(const RankBuffers& buffers);

}  // namespace espresso

#endif  // SRC_COLLECTIVES_RANK_GROUP_H_

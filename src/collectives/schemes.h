// Communication schemes for compressed tensors (Table 2, Figures 3-4).
//
// Indivisible scheme (Figure 3): one communication op. Each rank compresses its tensor
// and allgathers the payloads; every rank then decompresses and aggregates all of them.
//
// Divisible scheme (Figure 4): two communication ops. Each rank compresses each of the
// N index-range parts of its tensor and alltoall-shuffles them; rank j decompresses and
// aggregates the j-th parts, re-compresses the aggregate, and the second op allgathers
// those payloads; finally every rank decompresses all parts. When the compressor
// supports compressed-domain aggregation (shared-seed Random-k), the middle
// decompress-aggregate-recompress stage can be skipped (§4.2.2 footnote).
//
// Every rank keeps its own ErrorFeedback so convergence tests exercise the real
// error-compensated pipeline.
#ifndef SRC_COLLECTIVES_SCHEMES_H_
#define SRC_COLLECTIVES_SCHEMES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/collectives/channel.h"
#include "src/collectives/rank_group.h"
#include "src/compress/compressor.h"
#include "src/compress/error_feedback.h"
#include "src/mem/workspace.h"

namespace espresso {

struct SchemeResult {
  CollectiveTraffic traffic;
  size_t compress_calls = 0;
  size_t decompress_calls = 0;
  // Fault accounting (zero on a perfect channel). A dropped payload is excluded from
  // aggregation; when error feedback is on, its content is folded back into the
  // sender's residual so the update is delayed rather than lost.
  size_t payloads_dropped = 0;
  size_t payloads_corrupted = 0;
};

// Per-call context: one ErrorFeedback per rank (may be null to disable EF), a tensor id
// for the residual store, and the compression seed shared by all ranks this step.
// `channel` (optional) routes each rank's uplink payload through an imperfect
// transport; the second-stage (already aggregated) payloads are considered local.
struct SchemeContext {
  std::vector<ErrorFeedback>* feedback = nullptr;  // size == ranks, or nullptr
  PayloadChannel* channel = nullptr;               // nullptr = perfect network
  uint64_t tensor_id = 0;
  uint64_t seed = 0;
  // Scratch source (payload sets, delivery flags, aggregation buffers). nullptr
  // resolves to the calling thread's default workspace.
  mem::CollectiveWorkspace* workspace = nullptr;
  // Pre-compressed per-rank payloads from a BatchedCompressPlan pre-pass (size ==
  // ranks, or empty). When set, the indivisible scheme swaps these in instead of
  // calling CompressRank — error feedback must already have been applied/committed by
  // the producer. Transmit order and all downstream accounting are unchanged.
  std::span<CompressedTensor> precompressed;
};

// Figure 3. On return every rank buffer holds the aggregated (decompressed) result.
SchemeResult CompressedIndivisibleAllgather(const Compressor& compressor,
                                            const SchemeContext& ctx, RankBuffers& buffers);

// Figure 4 with Alltoall as the first op and Allgather as the second.
SchemeResult CompressedDivisibleAlltoall(const Compressor& compressor,
                                         const SchemeContext& ctx, RankBuffers& buffers);

// Figure 4 variant rooted at rank 0: Gather as the first op, Broadcast as the second.
SchemeResult CompressedDivisibleGather(const Compressor& compressor, const SchemeContext& ctx,
                                       RankBuffers& buffers);

}  // namespace espresso

#endif  // SRC_COLLECTIVES_SCHEMES_H_

#include "src/collectives/rank_group.h"

#include "src/util/logging.h"

namespace espresso {

Partition::Partition(size_t elements_in, size_t parts_in)
    : elements(elements_in), parts(parts_in) {
  ESP_CHECK_GT(parts, 0u);
}

size_t Partition::Offset(size_t part) const {
  ESP_CHECK_LT(part, parts);
  const size_t base = elements / parts;
  const size_t remainder = elements % parts;
  // The first `remainder` parts get one extra element.
  return part * base + std::min(part, remainder);
}

size_t Partition::Length(size_t part) const {
  ESP_CHECK_LT(part, parts);
  const size_t base = elements / parts;
  const size_t remainder = elements % parts;
  return base + (part < remainder ? 1 : 0);
}

size_t CheckUniformSize(const RankBuffers& buffers) {
  ESP_CHECK(!buffers.empty());
  const size_t n = buffers.front().size();
  for (const auto& b : buffers) {
    ESP_CHECK_EQ(b.size(), n);
  }
  return n;
}

}  // namespace espresso

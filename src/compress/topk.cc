#include "src/compress/topk.h"

#include <algorithm>
#include <cmath>

#include "src/compress/kernels/kernels.h"
#include "src/util/logging.h"

namespace espresso {

TopKCompressor::TopKCompressor(double ratio) : ratio_(ratio) {
  ESP_CHECK_GT(ratio, 0.0);
  ESP_CHECK_LE(ratio, 1.0);
}

size_t TopKCompressor::KeptElements(size_t elements) const {
  if (elements == 0) {
    return 0;
  }
  const auto k = static_cast<size_t>(std::llround(ratio_ * static_cast<double>(elements)));
  return std::clamp<size_t>(k, 1, elements);
}

size_t TopKCompressor::CompressedBytes(size_t elements) const {
  return KeptElements(elements) * (sizeof(uint32_t) + sizeof(float));
}

// Selection runs in the integer magnitude domain (kernels.h): quickselect over abs
// bits finds the k-th threshold without materializing an index permutation, then one
// ascending scan emits exactly the elements the old nth_element(magnitude desc, index
// asc) + sort pipeline kept — strictly-above-threshold elements plus the lowest-index
// ties — already in index order, so the final sort is gone structurally, not skipped.
void TopKCompressor::Compress(std::span<const float> input, uint64_t /*seed*/,
                              CompressedTensor* out) const {
  ESP_CHECK(out != nullptr);
  out->Clear();
  out->kind = PayloadKind::kSparse;
  out->original_elements = input.size();
  const size_t k = KeptElements(input.size());
  if (k == 0) {
    return;
  }
  const kernels::KernelOps& ops = kernels::Active();
  std::vector<uint32_t>& scratch = kernels::ThreadScratchU32();
  const uint32_t t = kernels::SelectKthMagnitude(ops, input.data(), input.size(), k, &scratch);
  // SelectKthMagnitude leaves the abs bits of the full input in scratch[0..n).
  const size_t n_gt = ops.count_gt_bits(scratch.data(), input.size(), t);
  ESP_CHECK_LT(n_gt, k + 1);
  const size_t n_fill = k - n_gt;
  out->indices.resize(k);
  out->values.resize(k);
  const size_t emitted =
      ops.select_topk(input.data(), input.size(), t, n_fill, out->indices.data(),
                      out->values.data());
  ESP_CHECK_EQ(emitted, k);
}

void TopKCompressor::CompressBatch(std::span<const BatchCompressItem> items) const {
  for (const BatchCompressItem& item : items) {
    ESP_CHECK_EQ(reinterpret_cast<uintptr_t>(item.data) & (kernels::kColumnAlignment - 1), 0u);
    Compress({item.data, item.elements}, item.seed, item.out);
  }
}

void TopKCompressor::DecompressAdd(const CompressedTensor& in, std::span<float> out) const {
  ESP_CHECK_EQ(in.original_elements, out.size());
  ESP_CHECK_EQ(in.indices.size(), in.values.size());
  for (size_t i = 0; i < in.indices.size(); ++i) {
    out[in.indices[i]] += in.values[i];
  }
}

}  // namespace espresso

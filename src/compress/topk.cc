#include "src/compress/topk.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/logging.h"

namespace espresso {

TopKCompressor::TopKCompressor(double ratio) : ratio_(ratio) {
  ESP_CHECK_GT(ratio, 0.0);
  ESP_CHECK_LE(ratio, 1.0);
}

size_t TopKCompressor::KeptElements(size_t elements) const {
  if (elements == 0) {
    return 0;
  }
  const auto k = static_cast<size_t>(std::llround(ratio_ * static_cast<double>(elements)));
  return std::clamp<size_t>(k, 1, elements);
}

size_t TopKCompressor::CompressedBytes(size_t elements) const {
  return KeptElements(elements) * (sizeof(uint32_t) + sizeof(float));
}

void TopKCompressor::Compress(std::span<const float> input, uint64_t /*seed*/,
                              CompressedTensor* out) const {
  ESP_CHECK(out != nullptr);
  out->Clear();
  out->kind = PayloadKind::kSparse;
  out->original_elements = input.size();
  const size_t k = KeptElements(input.size());
  if (k == 0) {
    return;
  }
  // Select in place inside out->indices (cleared above, capacity warm): the full
  // index range is the selection scratch, then shrinks to the kept top-k.
  std::vector<uint32_t>& order = out->indices;
  order.resize(input.size());
  std::iota(order.begin(), order.end(), 0u);
  // Partial selection by magnitude; ties broken by index so output is deterministic.
  std::nth_element(order.begin(), order.begin() + static_cast<ptrdiff_t>(k - 1), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     const float ma = std::fabs(input[a]);
                     const float mb = std::fabs(input[b]);
                     if (ma != mb) {
                       return ma > mb;
                     }
                     return a < b;
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());
  out->values.resize(k);
  for (size_t i = 0; i < k; ++i) {
    out->values[i] = input[out->indices[i]];
  }
}

void TopKCompressor::DecompressAdd(const CompressedTensor& in, std::span<float> out) const {
  ESP_CHECK_EQ(in.original_elements, out.size());
  ESP_CHECK_EQ(in.indices.size(), in.values.size());
  for (size_t i = 0; i < in.indices.size(); ++i) {
    out[in.indices[i]] += in.values[i];
  }
}

}  // namespace espresso

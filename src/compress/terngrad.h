// TernGrad ternary quantization (Wen et al. [71]).
//
// Maps each gradient to {-1, 0, +1} * max|v| with stochastic rounding, packing four
// 2-bit codes per byte plus the scale.
#ifndef SRC_COMPRESS_TERNGRAD_H_
#define SRC_COMPRESS_TERNGRAD_H_

#include "src/compress/compressor.h"

namespace espresso {

class TernGradCompressor final : public Compressor {
 public:
  std::string_view name() const override { return "terngrad"; }
  size_t CompressedBytes(size_t elements) const override;
  void Compress(std::span<const float> input, uint64_t seed,
                CompressedTensor* out) const override;
  void CompressBatch(std::span<const BatchCompressItem> items) const override;
  void DecompressAdd(const CompressedTensor& in, std::span<float> out) const override;
};

}  // namespace espresso

#endif  // SRC_COMPRESS_TERNGRAD_H_

// Random-k sparsification (Stich et al. [62]).
//
// Keeps k = max(1, round(ratio * n)) elements chosen uniformly at random by a
// seed-derived sampler. Because the sample depends only on (seed, n), every rank using
// the same seed selects the same coordinates, which makes compressed-domain aggregation
// (value-wise addition) exact — the property Espresso's divisible-scheme shortcut needs.
#ifndef SRC_COMPRESS_RANDOMK_H_
#define SRC_COMPRESS_RANDOMK_H_

#include "src/compress/compressor.h"

namespace espresso {

class RandomKCompressor final : public Compressor {
 public:
  explicit RandomKCompressor(double ratio);

  std::string_view name() const override { return "randomk"; }
  size_t CompressedBytes(size_t elements) const override;
  void Compress(std::span<const float> input, uint64_t seed,
                CompressedTensor* out) const override;
  void DecompressAdd(const CompressedTensor& in, std::span<float> out) const override;
  bool SupportsCompressedAggregation() const override { return true; }
  void AggregateCompressed(const CompressedTensor& in, CompressedTensor* accum) const override;

  size_t KeptElements(size_t elements) const;

 private:
  double ratio_;
};

}  // namespace espresso

#endif  // SRC_COMPRESS_RANDOMK_H_

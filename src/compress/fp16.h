// FP16 truncation: each float32 is converted to IEEE 754 binary16 (round-to-nearest-even)
// giving a fixed 2x traffic reduction. Included as the simplest quantizer and as the
// baseline "cheap" compressor in ablation benches.
#ifndef SRC_COMPRESS_FP16_H_
#define SRC_COMPRESS_FP16_H_

#include <cstdint>

#include "src/compress/compressor.h"

namespace espresso {

// Scalar conversions, exposed for tests.
uint16_t FloatToHalf(float value);
float HalfToFloat(uint16_t half);

class Fp16Compressor final : public Compressor {
 public:
  std::string_view name() const override { return "fp16"; }
  size_t CompressedBytes(size_t elements) const override { return elements * 2; }
  void Compress(std::span<const float> input, uint64_t seed,
                CompressedTensor* out) const override;
  void CompressBatch(std::span<const BatchCompressItem> items) const override;
  void DecompressAdd(const CompressedTensor& in, std::span<float> out) const override;
};

}  // namespace espresso

#endif  // SRC_COMPRESS_FP16_H_

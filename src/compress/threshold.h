// Hard-threshold sparsification (Aji & Heafield [5]): keep every gradient with
// |v| >= threshold.
//
// Unlike Random-k/Top-k, the output size is CONTENT-DEPENDENT, so this algorithm
// violates the applicability requirement of §4.3 ("Espresso requires the applied GC
// algorithm to have deterministic compression time given a tensor size and
// deterministic compression ratio"). It is provided for the training path (error
// feedback makes it convergent) and as the concrete example of that requirement:
// HasDeterministicSize() returns false and the strategy selector refuses it.
#ifndef SRC_COMPRESS_THRESHOLD_H_
#define SRC_COMPRESS_THRESHOLD_H_

#include "src/compress/compressor.h"

namespace espresso {

class ThresholdCompressor final : public Compressor {
 public:
  explicit ThresholdCompressor(double threshold);

  std::string_view name() const override { return "threshold"; }
  // Worst-case bound: the raw float payload, since Compress falls back to a dense
  // encoding whenever the sparse one would inflate past it. Actual payloads are
  // content-dependent (and usually far smaller).
  size_t CompressedBytes(size_t elements) const override;
  bool HasDeterministicSize() const override { return false; }
  void Compress(std::span<const float> input, uint64_t seed,
                CompressedTensor* out) const override;
  void DecompressAdd(const CompressedTensor& in, std::span<float> out) const override;

  double threshold() const { return threshold_; }

 private:
  double threshold_;
};

}  // namespace espresso

#endif  // SRC_COMPRESS_THRESHOLD_H_

#include "src/compress/threshold.h"

#include <cmath>

#include "src/util/logging.h"

namespace espresso {

ThresholdCompressor::ThresholdCompressor(double threshold) : threshold_(threshold) {
  ESP_CHECK_GT(threshold, 0.0);
}

size_t ThresholdCompressor::CompressedBytes(size_t elements) const {
  return elements * (sizeof(uint32_t) + sizeof(float));
}

void ThresholdCompressor::Compress(std::span<const float> input, uint64_t /*seed*/,
                                   CompressedTensor* out) const {
  ESP_CHECK(out != nullptr);
  out->Clear();
  out->kind = PayloadKind::kSparse;
  out->original_elements = input.size();
  for (size_t i = 0; i < input.size(); ++i) {
    if (std::fabs(input[i]) >= threshold_) {
      out->indices.push_back(static_cast<uint32_t>(i));
      out->values.push_back(input[i]);
    }
  }
}

void ThresholdCompressor::DecompressAdd(const CompressedTensor& in,
                                        std::span<float> out) const {
  ESP_CHECK_EQ(in.original_elements, out.size());
  for (size_t i = 0; i < in.indices.size(); ++i) {
    out[in.indices[i]] += in.values[i];
  }
}

}  // namespace espresso

#include "src/compress/threshold.h"

#include <cmath>
#include <cstring>

#include "src/util/logging.h"

namespace espresso {

ThresholdCompressor::ThresholdCompressor(double threshold) : threshold_(threshold) {
  ESP_CHECK_GT(threshold, 0.0);
}

size_t ThresholdCompressor::CompressedBytes(size_t elements) const {
  // Worst case with the dense fallback below: the sparse (index, value) encoding is
  // only used while it stays at or below the raw float payload, so the bound is the
  // raw size — never an inflation (the espresso_check byte-conservation property).
  return elements * sizeof(float);
}

void ThresholdCompressor::Compress(std::span<const float> input, uint64_t /*seed*/,
                                   CompressedTensor* out) const {
  ESP_CHECK(out != nullptr);
  out->Clear();
  out->original_elements = input.size();
  out->kind = PayloadKind::kSparse;
  for (size_t i = 0; i < input.size(); ++i) {
    if (std::fabs(input[i]) >= threshold_) {
      out->indices.push_back(static_cast<uint32_t>(i));
      out->values.push_back(input[i]);
    }
  }
  // Dense fallback: once more than half the elements survive the cutoff, the (index,
  // value) pairs cost more wire than the raw floats; ship the tensor uncompressed
  // instead, as a real transport would.
  if (out->indices.size() * (sizeof(uint32_t) + sizeof(float)) >
      input.size() * sizeof(float)) {
    out->indices.clear();
    out->values.clear();
    out->kind = PayloadKind::kRaw;
    out->bytes.resize(input.size() * sizeof(float));
    std::memcpy(out->bytes.data(), input.data(), out->bytes.size());
  }
}

void ThresholdCompressor::DecompressAdd(const CompressedTensor& in,
                                        std::span<float> out) const {
  ESP_CHECK_EQ(in.original_elements, out.size());
  if (in.kind == PayloadKind::kRaw) {
    ESP_CHECK_EQ(in.bytes.size(), out.size() * sizeof(float));
    for (size_t i = 0; i < out.size(); ++i) {
      float v;
      std::memcpy(&v, in.bytes.data() + i * sizeof(float), sizeof(float));
      out[i] += v;
    }
    return;
  }
  for (size_t i = 0; i < in.indices.size(); ++i) {
    out[in.indices[i]] += in.values[i];
  }
}

}  // namespace espresso

// Wire representation of a compressed gradient tensor.
//
// Every compression algorithm in the library lowers to one of three payload layouts:
//   * kSparse     — parallel (index, value) arrays (Random-k, Top-k / DGC)
//   * kPackedBits — bit/byte-packed codes plus one or more float scales
//                   (EFSignSGD, TernGrad, QSGD)
//   * kRaw        — reduced-precision raw payload (FP16)
// ByteSize() is the exact number of bytes that would cross the network; the cost model
// uses the analytic Compressor::CompressedBytes, and tests assert the two agree.
#ifndef SRC_COMPRESS_COMPRESSED_TENSOR_H_
#define SRC_COMPRESS_COMPRESSED_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace espresso {

enum class PayloadKind {
  kSparse,
  kPackedBits,
  kRaw,
};

struct CompressedTensor {
  PayloadKind kind = PayloadKind::kSparse;
  uint64_t original_elements = 0;

  // kSparse: element indices and their float values (same length).
  std::vector<uint32_t> indices;
  std::vector<float> values;

  // kPackedBits / kRaw: packed payload bytes.
  std::vector<uint8_t> bytes;
  // Scales accompanying packed payloads (e.g. the EFSignSGD magnitude, the QSGD norm).
  std::vector<float> scales;

  // Exact on-the-wire size in bytes (indices 4B, values 4B, scales 4B, bytes 1B).
  size_t ByteSize() const {
    return indices.size() * sizeof(uint32_t) + values.size() * sizeof(float) +
           scales.size() * sizeof(float) + bytes.size();
  }

  void Clear() {
    original_elements = 0;
    indices.clear();
    values.clear();
    bytes.clear();
    scales.clear();
  }
};

}  // namespace espresso

#endif  // SRC_COMPRESS_COMPRESSED_TENSOR_H_

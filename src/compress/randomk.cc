#include "src/compress/randomk.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace espresso {

RandomKCompressor::RandomKCompressor(double ratio) : ratio_(ratio) {
  ESP_CHECK_GT(ratio, 0.0);
  ESP_CHECK_LE(ratio, 1.0);
}

size_t RandomKCompressor::KeptElements(size_t elements) const {
  if (elements == 0) {
    return 0;
  }
  const auto k = static_cast<size_t>(std::llround(ratio_ * static_cast<double>(elements)));
  return std::clamp<size_t>(k, 1, elements);
}

size_t RandomKCompressor::CompressedBytes(size_t elements) const {
  return KeptElements(elements) * (sizeof(uint32_t) + sizeof(float));
}

void RandomKCompressor::Compress(std::span<const float> input, uint64_t seed,
                                 CompressedTensor* out) const {
  ESP_CHECK(out != nullptr);
  out->Clear();
  out->kind = PayloadKind::kSparse;
  out->original_elements = input.size();
  const size_t k = KeptElements(input.size());
  if (k == 0) {
    return;
  }
  Rng rng(DeriveSeed(seed, input.size()));
  // The O(n) shuffle pool is thread-local so repeated compressions of same-shaped
  // tensors stay allocation-free; indices are written into out's warm capacity.
  thread_local std::vector<uint32_t> sample_scratch;
  rng.SampleWithoutReplacement(static_cast<uint32_t>(input.size()),
                               static_cast<uint32_t>(k), &out->indices, &sample_scratch);
  // Sorted indices make decompression cache-friendly and make payloads from different
  // ranks (same seed) byte-comparable in index structure.
  std::sort(out->indices.begin(), out->indices.end());
  out->values.resize(k);
  for (size_t i = 0; i < k; ++i) {
    out->values[i] = input[out->indices[i]];
  }
}

void RandomKCompressor::DecompressAdd(const CompressedTensor& in, std::span<float> out) const {
  ESP_CHECK_EQ(in.original_elements, out.size());
  ESP_CHECK_EQ(in.indices.size(), in.values.size());
  for (size_t i = 0; i < in.indices.size(); ++i) {
    out[in.indices[i]] += in.values[i];
  }
}

void RandomKCompressor::AggregateCompressed(const CompressedTensor& in,
                                            CompressedTensor* accum) const {
  ESP_CHECK(accum != nullptr);
  ESP_CHECK_EQ(in.original_elements, accum->original_elements);
  ESP_CHECK_EQ(in.indices.size(), accum->indices.size());
  for (size_t i = 0; i < in.indices.size(); ++i) {
    ESP_CHECK_EQ(in.indices[i], accum->indices[i]);
    accum->values[i] += in.values[i];
  }
}

}  // namespace espresso

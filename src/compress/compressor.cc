#include "src/compress/compressor.h"

#include <algorithm>

#include "src/compress/efsignsgd.h"
#include "src/compress/fp16.h"
#include "src/compress/qsgd.h"
#include "src/compress/randomk.h"
#include "src/compress/terngrad.h"
#include "src/compress/threshold.h"
#include "src/compress/topk.h"
#include "src/util/logging.h"

namespace espresso {

void Compressor::Decompress(const CompressedTensor& in, std::span<float> out) const {
  std::fill(out.begin(), out.end(), 0.0f);
  DecompressAdd(in, out);
}

void Compressor::CompressBatch(std::span<const BatchCompressItem> items) const {
  for (const BatchCompressItem& item : items) {
    Compress({item.data, item.elements}, item.seed, item.out);
  }
}

void Compressor::AggregateCompressed(const CompressedTensor& /*in*/,
                                     CompressedTensor* /*accum*/) const {
  ESP_CHECK(false) << "compressed-domain aggregation is not supported by " << name();
}

std::unique_ptr<Compressor> CreateCompressor(const CompressorConfig& config) {
  const std::string& a = config.algorithm;
  if (a == "randomk") {
    return std::make_unique<RandomKCompressor>(config.ratio);
  }
  if (a == "topk" || a == "dgc") {
    return std::make_unique<TopKCompressor>(config.ratio);
  }
  if (a == "efsignsgd") {
    return std::make_unique<EfSignSgdCompressor>();
  }
  if (a == "qsgd") {
    return std::make_unique<QsgdCompressor>(config.bits);
  }
  if (a == "terngrad") {
    return std::make_unique<TernGradCompressor>();
  }
  if (a == "fp16") {
    return std::make_unique<Fp16Compressor>();
  }
  if (a == "threshold") {
    return std::make_unique<ThresholdCompressor>(config.threshold);
  }
  ESP_CHECK(false) << "unknown compression algorithm: " << a;
  return nullptr;
}

}  // namespace espresso

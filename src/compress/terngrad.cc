#include "src/compress/terngrad.h"

#include <cmath>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace espresso {

namespace {
// 2-bit codes: 0 -> zero, 1 -> +scale, 2 -> -scale.
constexpr uint8_t kZero = 0;
constexpr uint8_t kPlus = 1;
constexpr uint8_t kMinus = 2;
}  // namespace

size_t TernGradCompressor::CompressedBytes(size_t elements) const {
  return (elements + 3) / 4 + sizeof(float);
}

void TernGradCompressor::Compress(std::span<const float> input, uint64_t seed,
                                  CompressedTensor* out) const {
  ESP_CHECK(out != nullptr);
  out->Clear();
  out->kind = PayloadKind::kPackedBits;
  out->original_elements = input.size();
  float max_abs = 0.0f;
  for (float v : input) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  out->scales.push_back(max_abs);
  out->bytes.assign((input.size() + 3) / 4, 0);
  if (max_abs == 0.0f) {
    return;
  }
  Rng rng(DeriveSeed(seed, input.size()));
  for (size_t i = 0; i < input.size(); ++i) {
    const float p = std::fabs(input[i]) / max_abs;  // keep probability, in [0, 1]
    uint8_t code = kZero;
    if (rng.Uniform(0.0, 1.0) < p) {
      code = input[i] >= 0.0f ? kPlus : kMinus;
    }
    out->bytes[i / 4] |= static_cast<uint8_t>(code << (2 * (i % 4)));
  }
}

void TernGradCompressor::DecompressAdd(const CompressedTensor& in, std::span<float> out) const {
  ESP_CHECK_EQ(in.original_elements, out.size());
  ESP_CHECK_EQ(in.scales.size(), 1u);
  const float scale = in.scales[0];
  for (size_t i = 0; i < out.size(); ++i) {
    const uint8_t code = (in.bytes[i / 4] >> (2 * (i % 4))) & 0x3;
    if (code == kPlus) {
      out[i] += scale;
    } else if (code == kMinus) {
      out[i] -= scale;
    }
  }
}

}  // namespace espresso

#include "src/compress/terngrad.h"

#include <cmath>

#include "src/compress/kernels/kernels.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace espresso {

namespace {
// 2-bit codes: 0 -> zero, 1 -> +scale, 2 -> -scale (the kernel layer hard-codes the
// same mapping). Keep probability for element i is |v_i| / max|v| with a counter-RNG
// uniform, so draws are order-independent and SIMD-batchable.
constexpr uint8_t kPlus = 1;
constexpr uint8_t kMinus = 2;

void SplitSeed(uint64_t seed, size_t n, uint32_t* k0, uint32_t* k1) {
  const uint64_t derived = DeriveSeed(seed, n);
  *k0 = static_cast<uint32_t>(derived);
  *k1 = static_cast<uint32_t>(derived >> 32);
}
}  // namespace

size_t TernGradCompressor::CompressedBytes(size_t elements) const {
  return (elements + 3) / 4 + sizeof(float);
}

void TernGradCompressor::Compress(std::span<const float> input, uint64_t seed,
                                  CompressedTensor* out) const {
  ESP_CHECK(out != nullptr);
  out->Clear();
  out->kind = PayloadKind::kPackedBits;
  out->original_elements = input.size();
  const kernels::KernelOps& ops = kernels::Active();
  const float max_abs = ops.max_abs(input.data(), input.size());
  out->scales.push_back(max_abs);
  out->bytes.assign((input.size() + 3) / 4, 0);
  if (max_abs == 0.0f) {
    return;
  }
  uint32_t k0 = 0;
  uint32_t k1 = 0;
  SplitSeed(seed, input.size(), &k0, &k1);
  ops.terngrad_quantize(input.data(), input.size(), max_abs, k0, k1, out->bytes.data());
}

void TernGradCompressor::CompressBatch(std::span<const BatchCompressItem> items) const {
  const kernels::KernelOps& ops = kernels::Active();
  // Phase 1: every max-abs reduction; scales land in the outputs.
  for (const BatchCompressItem& item : items) {
    ESP_CHECK_EQ(reinterpret_cast<uintptr_t>(item.data) & (kernels::kColumnAlignment - 1), 0u);
    item.out->Clear();
    item.out->kind = PayloadKind::kPackedBits;
    item.out->original_elements = item.elements;
    item.out->scales.push_back(ops.max_abs(item.data, item.elements));
    item.out->bytes.assign((item.elements + 3) / 4, 0);
  }
  // Phase 2: every ternarize+pack pass.
  for (const BatchCompressItem& item : items) {
    const float max_abs = item.out->scales[0];
    if (max_abs == 0.0f) {
      continue;
    }
    uint32_t k0 = 0;
    uint32_t k1 = 0;
    SplitSeed(item.seed, item.elements, &k0, &k1);
    ops.terngrad_quantize(item.data, item.elements, max_abs, k0, k1, item.out->bytes.data());
  }
}

void TernGradCompressor::DecompressAdd(const CompressedTensor& in, std::span<float> out) const {
  ESP_CHECK_EQ(in.original_elements, out.size());
  ESP_CHECK_EQ(in.scales.size(), 1u);
  const float scale = in.scales[0];
  for (size_t i = 0; i < out.size(); ++i) {
    const uint8_t code = (in.bytes[i / 4] >> (2 * (i % 4))) & 0x3;
    if (code == kPlus) {
      out[i] += scale;
    } else if (code == kMinus) {
      out[i] -= scale;
    }
  }
}

}  // namespace espresso

// Top-k sparsification — the communication pattern of Deep Gradient Compression
// (Lin et al. [36], "DGC" in the paper's evaluation; 1% compression rate).
//
// Keeps the k elements of largest magnitude. Unlike Random-k, different ranks select
// different coordinates, so compressed-domain aggregation is impossible: divisible
// schemes must decompress-aggregate-recompress at the middle stage.
#ifndef SRC_COMPRESS_TOPK_H_
#define SRC_COMPRESS_TOPK_H_

#include "src/compress/compressor.h"

namespace espresso {

class TopKCompressor final : public Compressor {
 public:
  explicit TopKCompressor(double ratio);

  std::string_view name() const override { return "dgc"; }
  size_t CompressedBytes(size_t elements) const override;
  void Compress(std::span<const float> input, uint64_t seed,
                CompressedTensor* out) const override;
  void CompressBatch(std::span<const BatchCompressItem> items) const override;
  void DecompressAdd(const CompressedTensor& in, std::span<float> out) const override;

  size_t KeptElements(size_t elements) const;

 private:
  double ratio_;
};

}  // namespace espresso

#endif  // SRC_COMPRESS_TOPK_H_

// AVX2 (+F16C) kernel table. Compiled with -mavx2 -mf16c and NOTHING more: no -mfma
// (contraction would break the mul-then-add rounding the reduction contract pins) and
// the kernels directory adds -ffp-contract=off for the same reason. Only the registry
// calls Avx2Table(), and only after __builtin_cpu_supports("avx2") — nothing here may
// leak into TUs compiled for the baseline ISA (every shared helper is always_inline).
#include "src/compress/kernels/tables.h"

#if ESPRESSO_KERNELS_X86

#include <immintrin.h>

#include <cstring>

#include "src/compress/kernels/aligned.h"
#include "src/compress/kernels/scalar_ref.h"

namespace espresso::kernels {

namespace {

constexpr int kSignMask = static_cast<int>(0x80000000u);
constexpr int kAbsMask = 0x7fffffff;

// Vector lanes of CounterMix: identical shift/multiply sequence, 32-bit lanes.
ESPRESSO_KERNEL_INLINE __m256i MixVec(__m256i v) {
  v = _mm256_xor_si256(v, _mm256_srli_epi32(v, 16));
  v = _mm256_mullo_epi32(v, _mm256_set1_epi32(static_cast<int>(0x7feb352dU)));
  v = _mm256_xor_si256(v, _mm256_srli_epi32(v, 15));
  v = _mm256_mullo_epi32(v, _mm256_set1_epi32(static_cast<int>(0x846ca68bU)));
  v = _mm256_xor_si256(v, _mm256_srli_epi32(v, 16));
  return v;
}

// CounterUniform for lanes {i, i+1, ..., i+7}: hash top-24-bits scaled by 2^-24 —
// both steps exact in float, so lanes match the scalar draws bit for bit.
ESPRESSO_KERNEL_INLINE __m256 UniformVec(uint32_t k0, uint32_t k1, size_t i) {
  const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  __m256i idx =
      _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(static_cast<uint32_t>(i))), lane);
  __m256i h = MixVec(_mm256_xor_si256(idx, _mm256_set1_epi32(static_cast<int>(k0))));
  h = MixVec(_mm256_xor_si256(h, _mm256_set1_epi32(static_cast<int>(k1))));
  const __m256 top = _mm256_cvtepi32_ps(_mm256_srli_epi32(h, 8));
  return _mm256_mul_ps(top, _mm256_set1_ps(0x1.0p-24f));
}

// --- reductions ----------------------------------------------------------------------

double Avx2SumSquares(const float* x, size_t n) {
  const size_t n8 = n & ~size_t{7};
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 v = LoadU8f(x + i);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(lo, lo));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(hi, hi));
  }
  alignas(32) double acc[kReductionLanes];
  _mm256_store_pd(acc, a0);
  _mm256_store_pd(acc + 4, a1);
  RefSumSquaresLanes(x, n8, n, acc);
  return RefFoldLanes(acc);
}

double Avx2SumAbs(const float* x, size_t n) {
  const size_t n8 = n & ~size_t{7};
  const __m256 absf = _mm256_castsi256_ps(_mm256_set1_epi32(kAbsMask));
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 v = _mm256_and_ps(LoadU8f(x + i), absf);
    a0 = _mm256_add_pd(a0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    a1 = _mm256_add_pd(a1, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  alignas(32) double acc[kReductionLanes];
  _mm256_store_pd(acc, a0);
  _mm256_store_pd(acc + 4, a1);
  RefSumAbsLanes(x, n8, n, acc);
  return RefFoldLanes(acc);
}

float Avx2MaxAbs(const float* x, size_t n) {
  const size_t n8 = n & ~size_t{7};
  const __m256 absf = _mm256_castsi256_ps(_mm256_set1_epi32(kAbsMask));
  __m256 m = _mm256_setzero_ps();
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 a = _mm256_and_ps(LoadU8f(x + i), absf);
    // Compare+blend, not maxps: `a > m` is false for NaN lanes, exactly the scalar
    // NaN-ignoring contract, where maxps would propagate its second operand.
    const __m256 gt = _mm256_cmp_ps(a, m, _CMP_GT_OQ);
    m = _mm256_blendv_ps(m, a, gt);
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, m);
  float r = 0.0f;
  for (size_t j = 0; j < 8; ++j) {
    if (lanes[j] > r) {
      r = lanes[j];
    }
  }
  return RefMaxAbsRange(x, n8, n, r);
}

// --- magnitude domain ----------------------------------------------------------------

void Avx2AbsBits(const float* x, size_t n, uint32_t* out) {
  const size_t n8 = n & ~size_t{7};
  const __m256i absi = _mm256_set1_epi32(kAbsMask);
  for (size_t i = 0; i < n8; i += 8) {
    const __m256i b = _mm256_and_si256(_mm256_castps_si256(LoadU8f(x + i)), absi);
    StoreU8i(out + i, b);
  }
  RefAbsBitsRange(x, n8, n, out);
}

size_t Avx2CountGtBits(const uint32_t* m, size_t n, uint32_t t) {
  const size_t n8 = n & ~size_t{7};
  const __m256i bias = _mm256_set1_epi32(kSignMask);
  const __m256i tv = _mm256_set1_epi32(static_cast<int>(t ^ 0x80000000u));
  size_t count = 0;
  for (size_t i = 0; i < n8; i += 8) {
    const __m256i b = _mm256_xor_si256(LoadU8i(m + i), bias);
    const __m256i gt = _mm256_cmpgt_epi32(b, tv);  // signed cmp on biased = unsigned
    count += static_cast<size_t>(
        __builtin_popcount(_mm256_movemask_ps(_mm256_castsi256_ps(gt))));
  }
  return count + RefCountGtBitsRange(m, n8, n, t);
}

// Scalar emit over [begin, end) carrying the (emitted, fill) state across blocks.
ESPRESSO_KERNEL_INLINE void EmitRange(const float* x, size_t begin, size_t end,
                                      uint32_t t, size_t n_fill, uint32_t* indices,
                                      float* values, size_t* emitted, size_t* fill) {
  for (size_t i = begin; i < end; ++i) {
    const uint32_t b = MagnitudeBits(x[i]);
    if (b > t || (b == t && *fill < n_fill)) {
      *fill += b == t ? 1u : 0u;
      indices[*emitted] = static_cast<uint32_t>(i);
      values[*emitted] = x[i];
      ++*emitted;
    }
  }
}

size_t Avx2SelectTopK(const float* x, size_t n, uint32_t t, size_t n_fill,
                      uint32_t* indices, float* values) {
  // Top-k keeps a small fraction of the tensor, so most 8-lane blocks contain nothing
  // above the threshold: one compare+movemask skips them wholesale, and only blocks
  // with a candidate fall into the stateful scalar emit (order preserved).
  const size_t n8 = n & ~size_t{7};
  const __m256i absi = _mm256_set1_epi32(kAbsMask);
  const __m256i bias = _mm256_set1_epi32(kSignMask);
  const __m256i tv = _mm256_set1_epi32(static_cast<int>(t ^ 0x80000000u));
  size_t emitted = 0;
  size_t fill = 0;
  for (size_t i = 0; i < n8; i += 8) {
    const __m256i b = _mm256_and_si256(_mm256_castps_si256(LoadU8f(x + i)), absi);
    const __m256i lt = _mm256_cmpgt_epi32(tv, _mm256_xor_si256(b, bias));  // t > b
    const int below = _mm256_movemask_ps(_mm256_castsi256_ps(lt));
    if (below == 0xFF) {
      continue;  // every lane strictly below the threshold
    }
    EmitRange(x, i, i + 8, t, n_fill, indices, values, &emitted, &fill);
  }
  EmitRange(x, n8, n, t, n_fill, indices, values, &emitted, &fill);
  return emitted;
}

// --- quantizers ----------------------------------------------------------------------

void Avx2Qsgd(const float* x, size_t n, float norm, int levels, uint32_t k0, uint32_t k1,
              uint8_t* codes) {
  const size_t n8 = n & ~size_t{7};
  const __m256 absf = _mm256_castsi256_ps(_mm256_set1_epi32(kAbsMask));
  const __m256 normv = _mm256_set1_ps(norm);
  const __m256 levelsf = _mm256_set1_ps(static_cast<float>(levels));
  const __m256i levelsi = _mm256_set1_epi32(levels);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i signbit = _mm256_set1_epi32(0x80);
  // Picks byte 0 of every dword within each 128-bit half.
  const __m256i pick = _mm256_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                                        -1, -1, -1, 0, 4, 8, 12, -1, -1, -1, -1, -1, -1,
                                        -1, -1, -1, -1, -1, -1);
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 v = LoadU8f(x + i);
    // Two roundings, div then mul — the exact scalar expression |x|/norm*levels.
    const __m256 m = _mm256_mul_ps(_mm256_div_ps(_mm256_and_ps(v, absf), normv), levelsf);
    __m256i level = _mm256_cvttps_epi32(m);  // NaN/out-of-range -> INT32_MIN, like Ref
    const __m256 frac = _mm256_sub_ps(m, _mm256_cvtepi32_ps(level));
    const __m256 u = UniformVec(k0, k1, i);
    const __m256i round_up = _mm256_castps_si256(_mm256_cmp_ps(u, frac, _CMP_LT_OQ));
    level = _mm256_sub_epi32(level, round_up);  // mask lanes are -1
    level = _mm256_min_epi32(_mm256_max_epi32(level, zero), levelsi);
    const __m256i neg =
        _mm256_castps_si256(_mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_LT_OQ));
    const __m256i code = _mm256_or_si256(level, _mm256_and_si256(neg, signbit));
    const __m256i packed = _mm256_shuffle_epi8(code, pick);
    const uint32_t lo = static_cast<uint32_t>(_mm256_extract_epi32(packed, 0));
    const uint32_t hi = static_cast<uint32_t>(_mm256_extract_epi32(packed, 4));
    std::memcpy(codes + i, &lo, 4);
    std::memcpy(codes + i + 4, &hi, 4);
  }
  RefQsgdRange(x, n8, n, norm, levels, k0, k1, codes);
}

void Avx2TernGrad(const float* x, size_t n, float max_abs, uint32_t k0, uint32_t k1,
                  uint8_t* packed) {
  const size_t n8 = n & ~size_t{7};
  const __m256 absf = _mm256_castsi256_ps(_mm256_set1_epi32(kAbsMask));
  const __m256 maxv = _mm256_set1_ps(max_abs);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i two = _mm256_set1_epi32(2);
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 v = LoadU8f(x + i);
    const __m256 p = _mm256_div_ps(_mm256_and_ps(v, absf), maxv);
    const __m256 keep = _mm256_cmp_ps(UniformVec(k0, k1, i), p, _CMP_LT_OQ);
    const __m256 ge0 = _mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_GE_OQ);
    const __m256i pm = _mm256_blendv_epi8(two, one, _mm256_castps_si256(ge0));
    const __m256i code = _mm256_and_si256(_mm256_castps_si256(keep), pm);
    alignas(32) uint32_t c[8];
    StoreU8i(c, code);
    // i is a multiple of 8, so the block owns packed bytes i/4 and i/4 + 1 outright.
    packed[i / 4] =
        static_cast<uint8_t>(c[0] | (c[1] << 2) | (c[2] << 4) | (c[3] << 6));
    packed[i / 4 + 1] =
        static_cast<uint8_t>(c[4] | (c[5] << 2) | (c[6] << 4) | (c[7] << 6));
  }
  RefTernGradRange(x, n8, n, max_abs, k0, k1, packed);
}

void Avx2SignPack(const float* x, size_t n, uint8_t* packed) {
  const size_t n32 = n & ~size_t{31};
  const __m256 zero = _mm256_setzero_ps();
  for (size_t i = 0; i < n32; i += 32) {
    // x >= 0 is false for NaN (ordered), matching the scalar branch; four movemasks
    // assemble 32 sign bits per 4-byte store.
    const uint32_t m0 = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(LoadU8f(x + i), zero, _CMP_GE_OQ)));
    const uint32_t m1 = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(LoadU8f(x + i + 8), zero, _CMP_GE_OQ)));
    const uint32_t m2 = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(LoadU8f(x + i + 16), zero, _CMP_GE_OQ)));
    const uint32_t m3 = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(LoadU8f(x + i + 24), zero, _CMP_GE_OQ)));
    const uint32_t m = m0 | (m1 << 8) | (m2 << 16) | (m3 << 24);
    std::memcpy(packed + i / 8, &m, 4);
  }
  RefSignPackRange(x, n32, n, packed);
}

// --- fp16 (F16C) ---------------------------------------------------------------------

void Avx2Fp16Encode(const float* x, size_t n, uint16_t* out) {
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    StoreU8h(out + i, _mm256_cvtps_ph(LoadU8f(x + i), _MM_FROUND_TO_NEAREST_INT));
  }
  RefFp16EncodeRange(x, n8, n, out);
}

void Avx2Fp16DecodeAdd(const uint16_t* in, size_t n, float* out) {
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 v = _mm256_cvtph_ps(LoadU8h(in + i));
    StoreU8f(out + i, _mm256_add_ps(LoadU8f(out + i), v));
  }
  RefFp16DecodeAddRange(in, n8, n, out);
}

}  // namespace

const KernelOps& Avx2Table() {
  static const KernelOps table = [] {
    KernelOps ops = ScalarTable();
    ops.isa = "avx2";
    ops.sum_squares = Avx2SumSquares;
    ops.sum_abs = Avx2SumAbs;
    ops.max_abs = Avx2MaxAbs;
    ops.abs_bits = Avx2AbsBits;
    ops.count_gt_bits = Avx2CountGtBits;
    ops.select_topk = Avx2SelectTopK;
    ops.qsgd_quantize = Avx2Qsgd;
    ops.terngrad_quantize = Avx2TernGrad;
    ops.sign_pack = Avx2SignPack;
    // vcvtps2ph/vcvtph2ps are F16C, a separate CPUID bit from AVX2; keep the scalar
    // entries (inherited above) on the vanishingly rare AVX2-without-F16C part.
    if (__builtin_cpu_supports("f16c")) {
      ops.fp16_encode = Avx2Fp16Encode;
      ops.fp16_decode_add = Avx2Fp16DecodeAdd;
    }
    return ops;
  }();
  return table;
}

}  // namespace espresso::kernels

#endif  // ESPRESSO_KERNELS_X86

// The always-available scalar kernel table: thin wrappers over the scalar_ref.h
// reference implementations. This TU is compiled with the project's baseline flags
// only — it must run on any host the binary reaches.
#include "src/compress/kernels/scalar_ref.h"
#include "src/compress/kernels/tables.h"

namespace espresso::kernels {

namespace {

double ScalarSumSquares(const float* x, size_t n) {
  double acc[kReductionLanes] = {};
  RefSumSquaresLanes(x, 0, n, acc);
  return RefFoldLanes(acc);
}

double ScalarSumAbs(const float* x, size_t n) {
  double acc[kReductionLanes] = {};
  RefSumAbsLanes(x, 0, n, acc);
  return RefFoldLanes(acc);
}

float ScalarMaxAbs(const float* x, size_t n) { return RefMaxAbsRange(x, 0, n, 0.0f); }

void ScalarAbsBits(const float* x, size_t n, uint32_t* out) {
  RefAbsBitsRange(x, 0, n, out);
}

size_t ScalarCountGtBits(const uint32_t* m, size_t n, uint32_t t) {
  return RefCountGtBitsRange(m, 0, n, t);
}

size_t ScalarSelectTopK(const float* x, size_t n, uint32_t t, size_t n_fill,
                        uint32_t* indices, float* values) {
  return RefSelectTopK(x, n, t, n_fill, indices, values);
}

void ScalarQsgd(const float* x, size_t n, float norm, int levels, uint32_t k0,
                uint32_t k1, uint8_t* codes) {
  RefQsgdRange(x, 0, n, norm, levels, k0, k1, codes);
}

void ScalarTernGrad(const float* x, size_t n, float max_abs, uint32_t k0, uint32_t k1,
                    uint8_t* packed) {
  RefTernGradRange(x, 0, n, max_abs, k0, k1, packed);
}

void ScalarSignPack(const float* x, size_t n, uint8_t* packed) {
  RefSignPackRange(x, 0, n, packed);
}

void ScalarFp16Encode(const float* x, size_t n, uint16_t* out) {
  RefFp16EncodeRange(x, 0, n, out);
}

void ScalarFp16DecodeAdd(const uint16_t* in, size_t n, float* out) {
  RefFp16DecodeAddRange(in, 0, n, out);
}

}  // namespace

const KernelOps& ScalarTable() {
  static const KernelOps table = [] {
    KernelOps ops;
    ops.isa = "scalar";
    ops.sum_squares = ScalarSumSquares;
    ops.sum_abs = ScalarSumAbs;
    ops.max_abs = ScalarMaxAbs;
    ops.abs_bits = ScalarAbsBits;
    ops.count_gt_bits = ScalarCountGtBits;
    ops.select_topk = ScalarSelectTopK;
    ops.qsgd_quantize = ScalarQsgd;
    ops.terngrad_quantize = ScalarTernGrad;
    ops.sign_pack = ScalarSignPack;
    ops.fp16_encode = ScalarFp16Encode;
    ops.fp16_decode_add = ScalarFp16DecodeAdd;
    return ops;
  }();
  return table;
}

}  // namespace espresso::kernels

// Checked SIMD memory-access wrappers (internal header).
//
// check_conventions.py forbids raw unaligned load/store intrinsics inside
// src/compress/kernels/ — every access goes through these wrappers. The *A variants
// assert the alignment the instruction assumes (debug builds; sanitizer legs run
// !NDEBUG); the *U variants are the one sanctioned home of the unaligned intrinsics,
// each carrying the conventions:allow marker. Kernel inputs are caller-owned
// std::vector storage with no alignment guarantee, so bodies default to *U — only the
// BatchedCompressPlan column (64B by the Arena contract) and kernel-local stack
// buffers earn *A.
//
// Each ISA's block is gated on the compiler's own target macros, so a TU only sees
// the wrappers its -m flags can actually encode.
#ifndef SRC_COMPRESS_KERNELS_ALIGNED_H_
#define SRC_COMPRESS_KERNELS_ALIGNED_H_

#include <cassert>
#include <cstdint>

#include "src/compress/kernels/kernels.h"

#if defined(__SSE2__) || defined(_M_X64)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace espresso::kernels {

ESPRESSO_KERNEL_INLINE bool IsAligned(const void* p, size_t align) {
  return (reinterpret_cast<uintptr_t>(p) & (align - 1)) == 0;
}

#if defined(__SSE2__) || defined(_M_X64)

ESPRESSO_KERNEL_INLINE __m128 LoadU4f(const float* p) {
  return _mm_loadu_ps(p);  // conventions:allow(unaligned-simd) checked wrapper
}
ESPRESSO_KERNEL_INLINE __m128i LoadU4i(const uint32_t* p) {
  // conventions:allow(unaligned-simd) checked wrapper
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
ESPRESSO_KERNEL_INLINE void StoreU4i(uint32_t* p, __m128i v) {
  // conventions:allow(unaligned-simd) checked wrapper
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}
ESPRESSO_KERNEL_INLINE __m128 LoadA4f(const float* p) {
  assert(IsAligned(p, 16));
  return _mm_load_ps(p);
}
ESPRESSO_KERNEL_INLINE void StoreA4f(float* p, __m128 v) {
  assert(IsAligned(p, 16));
  _mm_store_ps(p, v);
}

#endif  // __SSE2__

#if defined(__AVX2__)

ESPRESSO_KERNEL_INLINE __m256 LoadU8f(const float* p) {
  return _mm256_loadu_ps(p);  // conventions:allow(unaligned-simd) checked wrapper
}
ESPRESSO_KERNEL_INLINE void StoreU8f(float* p, __m256 v) {
  _mm256_storeu_ps(p, v);  // conventions:allow(unaligned-simd) checked wrapper
}
ESPRESSO_KERNEL_INLINE __m256i LoadU8i(const uint32_t* p) {
  // conventions:allow(unaligned-simd) checked wrapper
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
ESPRESSO_KERNEL_INLINE void StoreU8i(uint32_t* p, __m256i v) {
  // conventions:allow(unaligned-simd) checked wrapper
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}
ESPRESSO_KERNEL_INLINE void StoreU8h(uint16_t* p, __m128i v) {
  // conventions:allow(unaligned-simd) checked wrapper
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}
ESPRESSO_KERNEL_INLINE __m128i LoadU8h(const uint16_t* p) {
  // conventions:allow(unaligned-simd) checked wrapper
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
ESPRESSO_KERNEL_INLINE __m256 LoadA8f(const float* p) {
  assert(IsAligned(p, 32));
  return _mm256_load_ps(p);
}

#endif  // __AVX2__

#if defined(__ARM_NEON)

ESPRESSO_KERNEL_INLINE float32x4_t LoadN4f(const float* p) {
  return vld1q_f32(p);  // conventions:allow(unaligned-simd) checked wrapper
}
ESPRESSO_KERNEL_INLINE uint32x4_t LoadN4i(const uint32_t* p) {
  return vld1q_u32(p);  // conventions:allow(unaligned-simd) checked wrapper
}
ESPRESSO_KERNEL_INLINE void StoreN4f(float* p, float32x4_t v) {
  vst1q_f32(p, v);  // conventions:allow(unaligned-simd) checked wrapper
}

#endif  // __ARM_NEON

}  // namespace espresso::kernels

#endif  // SRC_COMPRESS_KERNELS_ALIGNED_H_

// Vectorized compressor kernels with runtime ISA dispatch (ROADMAP item #3).
//
// The five compressor hot loops (Top-k magnitude selection, QSGD normalize+quantize,
// TernGrad ternarize, EFSignSGD sign-pack, FP16 convert) funnel through the function
// table in this header. A table exists per instruction set (scalar always; SSE2/AVX2 on
// x86-64, NEON on aarch64 when ESPRESSO_SIMD is ON) and the registry picks the best one
// the host supports at startup. Every non-scalar entry is BIT-IDENTICAL to the scalar
// reference — payloads memcmp equal — which is what keeps the executor equivalence
// matrix and the espresso_check corpus valid oracles across ISAs. Three contracts make
// that possible (docs/PERFORMANCE.md §Kernel registry):
//
//   1. Lane-order reduction contract: every floating-point reduction (QSGD's L2,
//      EFSignSGD's L1) accumulates into kReductionLanes strided double lanes —
//      lane j sums exactly the elements with index % kReductionLanes == j, in
//      increasing index order — and the lanes are folded in ascending lane order.
//      Scalar and SIMD implementations share this summation tree, so they share its
//      rounding, regardless of the host vector width.
//   2. Counter RNG contract: stochastic rounding draws are a pure hash of
//      (seed, element index) — CounterUniform below — instead of a stateful
//      sequential engine, so any lane can produce any element's draw independently.
//   3. Integer magnitude domain: Top-k ordering compares bits(|x|) as unsigned
//      integers (IEEE monotonicity makes this the float magnitude order for finite
//      values, with NaN sorting above +inf deterministically), so selection never
//      depends on NaN-sensitive float comparisons.
//
// Elementwise float semantics (|x| via sign-bit clear, x/y, trunc-to-int, compares
// false on NaN) are identical per IEEE 754 on every target; kernels never use FMA or
// reassociation, and the SIMD translation units are compiled without -ffast-math.
#ifndef SRC_COMPRESS_KERNELS_KERNELS_H_
#define SRC_COMPRESS_KERNELS_KERNELS_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace espresso::kernels {

// Alignment guaranteed by BatchedCompressPlan columns (mem::Arena::AllocAligned) and
// asserted at batched-kernel entry: one cache line, enough for any current vector ISA.
inline constexpr size_t kColumnAlignment = 64;

// Lane count of the reduction contract (contract 1 above). Eight double lanes map to
// two __m256d on AVX2, four __m128d on SSE2, four float64x2_t on NEON.
inline constexpr size_t kReductionLanes = 8;

inline bool IsColumnAligned(const void* p) {
  return (reinterpret_cast<uintptr_t>(p) & (kColumnAlignment - 1)) == 0;
}

// --- Counter RNG (contract 2) -------------------------------------------------------
//
// Two rounds of the lowbias32 integer finalizer keyed by the two halves of a 64-bit
// derived seed. 32-bit multiplies only, so the hash vectorizes on every target ISA.
// Marked always_inline: these are included into TUs built with different -m flags, and
// an out-of-line copy picked by the linker from the AVX2 TU would crash older hosts.

#define ESPRESSO_KERNEL_INLINE inline __attribute__((always_inline))

ESPRESSO_KERNEL_INLINE uint32_t CounterMix(uint32_t x) {
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return x;
}

ESPRESSO_KERNEL_INLINE uint32_t CounterHash(uint32_t k0, uint32_t k1, uint32_t i) {
  return CounterMix(CounterMix(i ^ k0) ^ k1);
}

// Uniform draw in [0, 1): the hash's top 24 bits scaled by 2^-24. Both steps are exact
// in float, so scalar and SIMD conversions agree bit for bit.
ESPRESSO_KERNEL_INLINE float CounterUniform(uint32_t k0, uint32_t k1, uint32_t i) {
  return static_cast<float>(CounterHash(k0, k1, i) >> 8) * 0x1.0p-24f;
}

// --- Integer magnitude domain (contract 3) ------------------------------------------

ESPRESSO_KERNEL_INLINE uint32_t MagnitudeBits(float x) {
  return std::bit_cast<uint32_t>(x) & 0x7fffffffU;
}

// --- The kernel table ----------------------------------------------------------------
//
// Raw pointers + lengths (not spans) so tables are plain aggregates a per-ISA TU can
// fill without pulling vector-typed signatures across -m boundaries.
struct KernelOps {
  const char* isa = "scalar";

  // Reductions under the lane-order contract.
  double (*sum_squares)(const float* x, size_t n) = nullptr;   // sum of double(x)^2
  double (*sum_abs)(const float* x, size_t n) = nullptr;       // sum of |double(x)|
  // Running max of |x| with NaN-ignoring semantics (m = |x| > m ? |x| : m; m0 = 0).
  float (*max_abs)(const float* x, size_t n) = nullptr;

  // Magnitude scan (Top-k). out[i] = MagnitudeBits(x[i]).
  void (*abs_bits)(const float* x, size_t n, uint32_t* out) = nullptr;
  // #{i : m[i] > t} over magnitude-bits values, unsigned integer compare.
  size_t (*count_gt_bits)(const uint32_t* m, size_t n, uint32_t t) = nullptr;
  // Ascending-index emit: every i with MagnitudeBits(x[i]) > t, plus the first n_fill
  // indices with MagnitudeBits(x[i]) == t. Writes (indices[j], values[j] = x[i]) pairs
  // and returns the emit count. Indices come out ascending by construction — the
  // nth_element + sort double materialization this replaces is gone.
  size_t (*select_topk)(const float* x, size_t n, uint32_t t, size_t n_fill,
                        uint32_t* indices, float* values) = nullptr;

  // QSGD: codes[i] = min(levels, trunc(m) + (u_i < m - trunc(m))) | sign(x[i]) << 7
  // where m = |x[i]| / norm * float(levels) and u_i = CounterUniform(k0, k1, i).
  // Out-of-range m (NaN/inf inputs) truncates to INT_MIN, clamped to [0, levels].
  void (*qsgd_quantize)(const float* x, size_t n, float norm, int levels, uint32_t k0,
                        uint32_t k1, uint8_t* codes) = nullptr;
  // TernGrad 2-bit codes, four per byte (byte i/4, bits 2*(i%4)), into ZEROED packed:
  // code = u_i < |x[i]| / max_abs ? (x[i] >= 0 ? 1 : 2) : 0.
  void (*terngrad_quantize)(const float* x, size_t n, float max_abs, uint32_t k0,
                            uint32_t k1, uint8_t* packed) = nullptr;
  // EFSignSGD: bit i of packed (byte i/8, bit i%8) set iff x[i] >= 0 (false on NaN),
  // into ZEROED packed.
  void (*sign_pack)(const float* x, size_t n, uint8_t* packed) = nullptr;

  // IEEE binary16 convert, round-to-nearest-even, NaNs quieted with the mantissa's top
  // ten bits kept (the F16C/vcvtps2ph behaviour; the scalar reference matches it).
  void (*fp16_encode)(const float* x, size_t n, uint16_t* out) = nullptr;
  void (*fp16_decode_add)(const uint16_t* in, size_t n, float* out) = nullptr;
};

// --- Registry / runtime dispatch -----------------------------------------------------

// The table the process dispatches through: best host-supported ISA, overridable with
// ESPRESSO_KERNELS=scalar|sse2|avx2|neon (unknown or unsupported names fall back to
// scalar with a warning) and with SetActiveForTesting.
const KernelOps& Active();

// The scalar reference table (always available; the equivalence oracle).
const KernelOps& Scalar();

// Every table the host can execute, scalar first. The kernel equivalence test sweeps
// these against Scalar().
const std::vector<const KernelOps*>& SupportedOps();

// Forces Active() to return *ops until called with nullptr (restores the automatic
// choice). Test/bench hook; not thread-safe against concurrent Active() dispatch.
void SetActiveForTesting(const KernelOps* ops);

// Host capability summary for bench reports: ordered feature names, e.g.
// {"sse2", "avx2", "f16c"} on a Haswell-class x86 host, {"neon"} on aarch64.
std::vector<const char*> HostIsaFeatures();

// --- Shared selection driver ---------------------------------------------------------

// Exact k-th-largest magnitude threshold (1 <= k <= n) via sampled-pivot quickselect:
// vectorized count passes through the active table, scalar compaction of the shrinking
// candidate set. Returns t such that #{i : bits > t} < k <= #{i : bits >= t}, in the
// integer magnitude domain. `scratch` is caller-leased (grow-only, reused across
// calls); on return its first n entries still hold MagnitudeBits of the input.
uint32_t SelectKthMagnitude(const KernelOps& ops, const float* x, size_t n, size_t k,
                            std::vector<uint32_t>* scratch);

// Thread-local grow-only scratch backing SelectKthMagnitude calls from stateless
// Compressor::Compress implementations (the pool-leased index workspace of the Top-k
// fix; same idiom as Random-k's shuffle pool).
std::vector<uint32_t>& ThreadScratchU32();

}  // namespace espresso::kernels

#endif  // SRC_COMPRESS_KERNELS_KERNELS_H_

// Scalar reference implementations of every kernel in KernelOps (internal header).
//
// These are the single source of truth for kernel semantics: kernels_scalar.cc wires
// them into the scalar table, the SIMD translation units call them for unaligned heads
// and sub-vector tails, and fp16.cc's public FloatToHalf/HalfToFloat delegate here.
// Everything is ESPRESSO_KERNEL_INLINE (always_inline, internal linkage) because this
// header is included into TUs compiled with different -m flags — an out-of-line copy
// chosen by the linker from the AVX2 TU would execute AVX instructions on hosts that
// dispatched to scalar precisely because they lack them.
//
// Range-based entry points take absolute [begin, end) index ranges over the full
// arrays so that counter-RNG draws and bit-pack positions use global element indices
// no matter which TU handles which slice.
#ifndef SRC_COMPRESS_KERNELS_SCALAR_REF_H_
#define SRC_COMPRESS_KERNELS_SCALAR_REF_H_

#include <cmath>
#include <cstdint>
#include <limits>

#include "src/compress/kernels/kernels.h"

namespace espresso::kernels {

// --- reductions (lane-order contract) ------------------------------------------------

// Accumulates x[i]^2 (in double) into acc[i % kReductionLanes] for i in [begin, end).
ESPRESSO_KERNEL_INLINE void RefSumSquaresLanes(const float* x, size_t begin, size_t end,
                                               double* acc) {
  for (size_t i = begin; i < end; ++i) {
    const double v = static_cast<double>(x[i]);
    acc[i % kReductionLanes] += v * v;
  }
}

ESPRESSO_KERNEL_INLINE void RefSumAbsLanes(const float* x, size_t begin, size_t end,
                                           double* acc) {
  for (size_t i = begin; i < end; ++i) {
    acc[i % kReductionLanes] += std::fabs(static_cast<double>(x[i]));
  }
}

// Ascending-lane fold, the second half of the reduction contract.
ESPRESSO_KERNEL_INLINE double RefFoldLanes(const double* acc) {
  double sum = 0.0;
  for (size_t j = 0; j < kReductionLanes; ++j) {
    sum += acc[j];
  }
  return sum;
}

// Running max of |x| over [begin, end) starting from m0. NaN-ignoring: `a > m` is
// false for NaN, so NaN elements never replace the running max (the SIMD tables use
// compare+blend, NOT maxps, whose NaN operand rules differ).
ESPRESSO_KERNEL_INLINE float RefMaxAbsRange(const float* x, size_t begin, size_t end,
                                            float m0) {
  float m = m0;
  for (size_t i = begin; i < end; ++i) {
    const float a = std::fabs(x[i]);
    if (a > m) {
      m = a;
    }
  }
  return m;
}

// --- magnitude domain ----------------------------------------------------------------

ESPRESSO_KERNEL_INLINE void RefAbsBitsRange(const float* x, size_t begin, size_t end,
                                            uint32_t* out) {
  for (size_t i = begin; i < end; ++i) {
    out[i] = MagnitudeBits(x[i]);
  }
}

ESPRESSO_KERNEL_INLINE size_t RefCountGtBitsRange(const uint32_t* m, size_t begin,
                                                  size_t end, uint32_t t) {
  size_t count = 0;
  for (size_t i = begin; i < end; ++i) {
    count += m[i] > t ? 1u : 0u;
  }
  return count;
}

ESPRESSO_KERNEL_INLINE size_t RefSelectTopK(const float* x, size_t n, uint32_t t,
                                            size_t n_fill, uint32_t* indices,
                                            float* values) {
  size_t emitted = 0;
  size_t fill = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t b = MagnitudeBits(x[i]);
    if (b > t || (b == t && fill < n_fill)) {
      fill += b == t ? 1u : 0u;
      indices[emitted] = static_cast<uint32_t>(i);
      values[emitted] = x[i];
      ++emitted;
    }
  }
  return emitted;
}

// --- quantizers ----------------------------------------------------------------------

// Truncating float->int32 with x86 cvttps2dq semantics: NaN and out-of-range inputs
// produce INT32_MIN (the "integer indefinite" value) instead of the UB a bare cast
// would be. NEON's fcvtzs saturates instead; the NEON table therefore replicates THIS
// branchy contract, not its native instruction.
ESPRESSO_KERNEL_INLINE int32_t RefTruncToInt(float m) {
  if (m >= -2147483648.0f && m < 2147483648.0f) {
    return static_cast<int32_t>(m);
  }
  return std::numeric_limits<int32_t>::min();
}

ESPRESSO_KERNEL_INLINE void RefQsgdRange(const float* x, size_t begin, size_t end,
                                         float norm, int levels, uint32_t k0,
                                         uint32_t k1, uint8_t* codes) {
  const float levels_f = static_cast<float>(levels);
  for (size_t i = begin; i < end; ++i) {
    const float m = std::fabs(x[i]) / norm * levels_f;
    int32_t level = RefTruncToInt(m);
    const float frac = m - static_cast<float>(level);
    if (CounterUniform(k0, k1, static_cast<uint32_t>(i)) < frac) {
      ++level;
    }
    if (level < 0) {
      level = 0;
    }
    if (level > levels) {
      level = levels;
    }
    uint8_t code = static_cast<uint8_t>(level);
    if (x[i] < 0.0f) {
      code |= 0x80u;
    }
    codes[i] = code;
  }
}

ESPRESSO_KERNEL_INLINE void RefTernGradRange(const float* x, size_t begin, size_t end,
                                             float max_abs, uint32_t k0, uint32_t k1,
                                             uint8_t* packed) {
  for (size_t i = begin; i < end; ++i) {
    const float p = std::fabs(x[i]) / max_abs;
    uint8_t code = 0;  // kZero
    if (CounterUniform(k0, k1, static_cast<uint32_t>(i)) < p) {
      code = x[i] >= 0.0f ? uint8_t{1} : uint8_t{2};  // kPlus : kMinus
    }
    packed[i / 4] |= static_cast<uint8_t>(code << (2 * (i % 4)));
  }
}

ESPRESSO_KERNEL_INLINE void RefSignPackRange(const float* x, size_t begin, size_t end,
                                             uint8_t* packed) {
  for (size_t i = begin; i < end; ++i) {
    if (x[i] >= 0.0f) {
      packed[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
    }
  }
}

// --- fp16 ----------------------------------------------------------------------------

// Round-to-nearest-even float->binary16, matching F16C's vcvtps2ph bit for bit
// (verified exhaustively over all 2^32 inputs by kernel_equivalence_test's sweep
// seeds plus a dev-time exhaustive run): overflow to inf, gradual underflow to
// subnormals, and NaNs quieted with the mantissa's top ten bits preserved.
ESPRESSO_KERNEL_INLINE uint16_t RefFloatToHalf(float value) {
  const uint32_t f = std::bit_cast<uint32_t>(value);
  const uint32_t sign = (f >> 16) & 0x8000u;
  const int32_t exponent = static_cast<int32_t>((f >> 23) & 0xFF) - 127 + 15;
  uint32_t mantissa = f & 0x7FFFFFu;

  if (exponent >= 0x1F) {
    // Overflow / inf / nan -> inf (nan is quieted, top mantissa bits kept).
    if ((f & 0x7F800000u) == 0x7F800000u && mantissa != 0) {
      return static_cast<uint16_t>(sign | 0x7E00u | (mantissa >> 13));
    }
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (exponent <= 0) {
    if (exponent < -10) {
      return static_cast<uint16_t>(sign);  // underflow to signed zero
    }
    // Subnormal: shift in the implicit leading bit, then round to nearest even.
    mantissa |= 0x800000u;
    const uint32_t shift = static_cast<uint32_t>(14 - exponent);
    uint32_t half = mantissa >> shift;
    const uint32_t remainder = mantissa & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (remainder > halfway || (remainder == halfway && (half & 1u) != 0)) {
      ++half;
    }
    return static_cast<uint16_t>(sign | half);
  }
  // Normal: round mantissa from 23 to 10 bits, nearest even. The carry from ++half can
  // propagate into the exponent, which is the correct rounding behaviour (and can
  // produce inf on overflow of the largest finite half).
  uint32_t half = sign | (static_cast<uint32_t>(exponent) << 10) | (mantissa >> 13);
  const uint32_t remainder = mantissa & 0x1FFFu;
  if (remainder > 0x1000u || (remainder == 0x1000u && (half & 1u) != 0)) {
    ++half;
  }
  return static_cast<uint16_t>(half);
}

ESPRESSO_KERNEL_INLINE float RefHalfToFloat(uint16_t half) {
  const uint32_t sign = (static_cast<uint32_t>(half) & 0x8000u) << 16;
  const uint32_t exponent = (half >> 10) & 0x1Fu;
  uint32_t mantissa = half & 0x3FFu;

  uint32_t f = 0;
  if (exponent == 0) {
    if (mantissa == 0) {
      f = sign;  // signed zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      do {
        ++e;
        mantissa <<= 1;
      } while ((mantissa & 0x400u) == 0);
      mantissa &= 0x3FFu;
      f = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) | (mantissa << 13);
    }
  } else if (exponent == 0x1F) {
    // Inf / NaN. NaNs come out quiet (quiet bit forced, payload shifted up), which is
    // what vcvtph2ps produces for signaling-NaN halves — required for SIMD identity.
    f = sign | 0x7F800000u | (mantissa != 0 ? 0x00400000u : 0u) | (mantissa << 13);
  } else {
    f = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(f);
}

ESPRESSO_KERNEL_INLINE void RefFp16EncodeRange(const float* x, size_t begin, size_t end,
                                               uint16_t* out) {
  for (size_t i = begin; i < end; ++i) {
    out[i] = RefFloatToHalf(x[i]);
  }
}

ESPRESSO_KERNEL_INLINE void RefFp16DecodeAddRange(const uint16_t* in, size_t begin,
                                                  size_t end, float* out) {
  for (size_t i = begin; i < end; ++i) {
    out[i] += RefHalfToFloat(in[i]);
  }
}

}  // namespace espresso::kernels

#endif  // SRC_COMPRESS_KERNELS_SCALAR_REF_H_

// SSE2 kernel table — partial by design. SSE2 is the x86-64 baseline (no extra -m
// flags), so this table's value is covering pre-AVX2 hosts for the scan/reduction
// kernels; the stochastic quantizers need a 32-bit lane multiply (SSE4.1 pmulld) and
// stay on their inherited scalar entries rather than emulate it.
#include "src/compress/kernels/tables.h"

#if ESPRESSO_KERNELS_X86

#include <emmintrin.h>

#include <cstring>

#include "src/compress/kernels/aligned.h"
#include "src/compress/kernels/scalar_ref.h"

namespace espresso::kernels {

namespace {

constexpr int kSignMask = static_cast<int>(0x80000000u);
constexpr int kAbsMask = 0x7fffffff;

// Accumulates one 8-float block into the four 2-lane double accumulators
// (lane pairs {0,1}, {2,3}, {4,5}, {6,7} of the reduction contract).
ESPRESSO_KERNEL_INLINE void AddBlockSquares(__m128 v0, __m128 v1, __m128d* a) {
  const __m128d d0 = _mm_cvtps_pd(v0);
  const __m128d d1 = _mm_cvtps_pd(_mm_movehl_ps(v0, v0));
  const __m128d d2 = _mm_cvtps_pd(v1);
  const __m128d d3 = _mm_cvtps_pd(_mm_movehl_ps(v1, v1));
  a[0] = _mm_add_pd(a[0], _mm_mul_pd(d0, d0));
  a[1] = _mm_add_pd(a[1], _mm_mul_pd(d1, d1));
  a[2] = _mm_add_pd(a[2], _mm_mul_pd(d2, d2));
  a[3] = _mm_add_pd(a[3], _mm_mul_pd(d3, d3));
}

double Sse2SumSquares(const float* x, size_t n) {
  const size_t n8 = n & ~size_t{7};
  __m128d a[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                  _mm_setzero_pd()};
  for (size_t i = 0; i < n8; i += 8) {
    AddBlockSquares(LoadU4f(x + i), LoadU4f(x + i + 4), a);
  }
  alignas(16) double acc[kReductionLanes];
  for (size_t j = 0; j < 4; ++j) {
    _mm_store_pd(acc + 2 * j, a[j]);
  }
  RefSumSquaresLanes(x, n8, n, acc);
  return RefFoldLanes(acc);
}

double Sse2SumAbs(const float* x, size_t n) {
  const size_t n8 = n & ~size_t{7};
  const __m128 absf = _mm_castsi128_ps(_mm_set1_epi32(kAbsMask));
  __m128d a[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                  _mm_setzero_pd()};
  for (size_t i = 0; i < n8; i += 8) {
    const __m128 v0 = _mm_and_ps(LoadU4f(x + i), absf);
    const __m128 v1 = _mm_and_ps(LoadU4f(x + i + 4), absf);
    a[0] = _mm_add_pd(a[0], _mm_cvtps_pd(v0));
    a[1] = _mm_add_pd(a[1], _mm_cvtps_pd(_mm_movehl_ps(v0, v0)));
    a[2] = _mm_add_pd(a[2], _mm_cvtps_pd(v1));
    a[3] = _mm_add_pd(a[3], _mm_cvtps_pd(_mm_movehl_ps(v1, v1)));
  }
  alignas(16) double acc[kReductionLanes];
  for (size_t j = 0; j < 4; ++j) {
    _mm_store_pd(acc + 2 * j, a[j]);
  }
  RefSumAbsLanes(x, n8, n, acc);
  return RefFoldLanes(acc);
}

float Sse2MaxAbs(const float* x, size_t n) {
  const size_t n4 = n & ~size_t{3};
  const __m128 absf = _mm_castsi128_ps(_mm_set1_epi32(kAbsMask));
  __m128 m = _mm_setzero_ps();
  for (size_t i = 0; i < n4; i += 4) {
    const __m128 a = _mm_and_ps(LoadU4f(x + i), absf);
    const __m128 gt = _mm_cmpgt_ps(a, m);  // false for NaN: the scalar contract
    m = _mm_or_ps(_mm_and_ps(gt, a), _mm_andnot_ps(gt, m));
  }
  alignas(16) float lanes[4];
  StoreA4f(lanes, m);
  float r = 0.0f;
  for (size_t j = 0; j < 4; ++j) {
    if (lanes[j] > r) {
      r = lanes[j];
    }
  }
  return RefMaxAbsRange(x, n4, n, r);
}

void Sse2AbsBits(const float* x, size_t n, uint32_t* out) {
  const size_t n4 = n & ~size_t{3};
  const __m128i absi = _mm_set1_epi32(kAbsMask);
  for (size_t i = 0; i < n4; i += 4) {
    StoreU4i(out + i, _mm_and_si128(_mm_castps_si128(LoadU4f(x + i)), absi));
  }
  RefAbsBitsRange(x, n4, n, out);
}

size_t Sse2CountGtBits(const uint32_t* m, size_t n, uint32_t t) {
  const size_t n4 = n & ~size_t{3};
  const __m128i bias = _mm_set1_epi32(kSignMask);
  const __m128i tv = _mm_set1_epi32(static_cast<int>(t ^ 0x80000000u));
  size_t count = 0;
  for (size_t i = 0; i < n4; i += 4) {
    const __m128i b = _mm_xor_si128(LoadU4i(m + i), bias);
    const __m128i gt = _mm_cmpgt_epi32(b, tv);
    count += static_cast<size_t>(
        __builtin_popcount(_mm_movemask_ps(_mm_castsi128_ps(gt))));
  }
  return count + RefCountGtBitsRange(m, n4, n, t);
}

ESPRESSO_KERNEL_INLINE void EmitRange(const float* x, size_t begin, size_t end,
                                      uint32_t t, size_t n_fill, uint32_t* indices,
                                      float* values, size_t* emitted, size_t* fill) {
  for (size_t i = begin; i < end; ++i) {
    const uint32_t b = MagnitudeBits(x[i]);
    if (b > t || (b == t && *fill < n_fill)) {
      *fill += b == t ? 1u : 0u;
      indices[*emitted] = static_cast<uint32_t>(i);
      values[*emitted] = x[i];
      ++*emitted;
    }
  }
}

size_t Sse2SelectTopK(const float* x, size_t n, uint32_t t, size_t n_fill,
                      uint32_t* indices, float* values) {
  const size_t n4 = n & ~size_t{3};
  const __m128i absi = _mm_set1_epi32(kAbsMask);
  const __m128i bias = _mm_set1_epi32(kSignMask);
  const __m128i tv = _mm_set1_epi32(static_cast<int>(t ^ 0x80000000u));
  size_t emitted = 0;
  size_t fill = 0;
  for (size_t i = 0; i < n4; i += 4) {
    const __m128i b = _mm_and_si128(_mm_castps_si128(LoadU4f(x + i)), absi);
    const __m128i lt = _mm_cmpgt_epi32(tv, _mm_xor_si128(b, bias));  // t > b
    if (_mm_movemask_ps(_mm_castsi128_ps(lt)) == 0xF) {
      continue;
    }
    EmitRange(x, i, i + 4, t, n_fill, indices, values, &emitted, &fill);
  }
  EmitRange(x, n4, n, t, n_fill, indices, values, &emitted, &fill);
  return emitted;
}

void Sse2SignPack(const float* x, size_t n, uint8_t* packed) {
  const size_t n16 = n & ~size_t{15};
  const __m128 zero = _mm_setzero_ps();
  for (size_t i = 0; i < n16; i += 16) {
    const uint32_t m0 =
        static_cast<uint32_t>(_mm_movemask_ps(_mm_cmpge_ps(LoadU4f(x + i), zero)));
    const uint32_t m1 =
        static_cast<uint32_t>(_mm_movemask_ps(_mm_cmpge_ps(LoadU4f(x + i + 4), zero)));
    const uint32_t m2 =
        static_cast<uint32_t>(_mm_movemask_ps(_mm_cmpge_ps(LoadU4f(x + i + 8), zero)));
    const uint32_t m3 =
        static_cast<uint32_t>(_mm_movemask_ps(_mm_cmpge_ps(LoadU4f(x + i + 12), zero)));
    const uint16_t m = static_cast<uint16_t>(m0 | (m1 << 4) | (m2 << 8) | (m3 << 12));
    std::memcpy(packed + i / 8, &m, 2);
  }
  RefSignPackRange(x, n16, n, packed);
}

}  // namespace

const KernelOps& Sse2Table() {
  static const KernelOps table = [] {
    KernelOps ops = ScalarTable();
    ops.isa = "sse2";
    ops.sum_squares = Sse2SumSquares;
    ops.sum_abs = Sse2SumAbs;
    ops.max_abs = Sse2MaxAbs;
    ops.abs_bits = Sse2AbsBits;
    ops.count_gt_bits = Sse2CountGtBits;
    ops.select_topk = Sse2SelectTopK;
    ops.sign_pack = Sse2SignPack;
    return ops;
  }();
  return table;
}

}  // namespace espresso::kernels

#endif  // ESPRESSO_KERNELS_X86

// Exact k-th-largest magnitude selection in the integer magnitude domain.
//
// Replaces Top-k's iota + nth_element(indirect float comparator) + sort: the
// candidate set is a flat uint32 array (bits of |x|), the pivot count runs through
// the vectorized count_gt_bits kernel, and survivors are compacted in place. The
// returned threshold lets select_topk emit the kept (index, value) pairs in one
// ascending scan, so the old O(n) index materialization and final sort disappear
// entirely. Unlike the float comparator, the integer domain gives NaN a defined,
// deterministic place (above +inf) instead of nth_element UB.
#include <algorithm>

#include "src/compress/kernels/kernels.h"
#include "src/util/logging.h"

namespace espresso::kernels {

namespace {

// Deterministic pivot: median of nine evenly spaced samples. No RNG — selection must
// be a pure function of the input for the cross-rank fingerprint contracts.
uint32_t SampleMedian(const uint32_t* c, size_t m) {
  uint32_t s[9];
  for (size_t j = 0; j < 9; ++j) {
    s[j] = c[(j * (m - 1)) / 8];
  }
  std::sort(s, s + 9);
  return s[4];
}

}  // namespace

uint32_t SelectKthMagnitude(const KernelOps& ops, const float* x, size_t n, size_t k,
                            std::vector<uint32_t>* scratch) {
  ESP_CHECK(scratch != nullptr);
  ESP_CHECK_GE(k, 1u);
  ESP_CHECK_LE(k, n);
  if (scratch->size() < 2 * n) {
    scratch->resize(2 * n);
  }
  uint32_t* bits = scratch->data();      // preserved: callers reuse it for counts
  uint32_t* c = scratch->data() + n;     // working candidate set, compacted in place
  ops.abs_bits(x, n, bits);
  std::copy(bits, bits + n, c);

  size_t m = n;
  size_t kk = k;
  for (;;) {
    if (m <= 64) {
      std::sort(c, c + m, std::greater<uint32_t>());
      return c[kk - 1];
    }
    const uint32_t pivot = SampleMedian(c, m);
    const size_t n_gt = ops.count_gt_bits(c, m, pivot);
    // count(>= pivot) = count(> pivot-1); pivot == 0 means every candidate is >= it.
    const size_t n_ge = pivot == 0 ? m : ops.count_gt_bits(c, m, pivot - 1);
    if (kk <= n_gt) {
      size_t w = 0;
      for (size_t i = 0; i < m; ++i) {
        if (c[i] > pivot) {
          c[w++] = c[i];
        }
      }
      m = w;  // == n_gt
    } else if (kk <= n_ge) {
      return pivot;  // the k-th largest equals the pivot
    } else {
      kk -= n_ge;
      size_t w = 0;
      for (size_t i = 0; i < m; ++i) {
        if (c[i] < pivot) {
          c[w++] = c[i];
        }
      }
      m = w;  // == m - n_ge
    }
    // The pivot is a sampled element, so >= 1 candidate equals it and both branches
    // strictly shrink m: termination is unconditional.
  }
}

std::vector<uint32_t>& ThreadScratchU32() {
  thread_local std::vector<uint32_t> scratch;
  return scratch;
}

}  // namespace espresso::kernels

// Internal: per-ISA table getters and the arch gates that decide which SIMD
// translation units have content. ESPRESSO_SIMD_DISABLED comes from CMake's
// -DESPRESSO_SIMD=OFF leg; the SIMD TUs then compile to empty objects and the
// registry never references them.
#ifndef SRC_COMPRESS_KERNELS_TABLES_H_
#define SRC_COMPRESS_KERNELS_TABLES_H_

#include "src/compress/kernels/kernels.h"

#if (defined(__x86_64__) || defined(_M_X64)) && !defined(ESPRESSO_SIMD_DISABLED)
#define ESPRESSO_KERNELS_X86 1
#endif
#if defined(__aarch64__) && !defined(ESPRESSO_SIMD_DISABLED)
#define ESPRESSO_KERNELS_NEON 1
#endif

namespace espresso::kernels {

const KernelOps& ScalarTable();
#if ESPRESSO_KERNELS_X86
const KernelOps& Sse2Table();  // partial: quantizers fall back to scalar entries
const KernelOps& Avx2Table();  // full (fp16 entries additionally gated on F16C)
#endif
#if ESPRESSO_KERNELS_NEON
const KernelOps& NeonTable();  // conservative subset; fp16 stays scalar
#endif

}  // namespace espresso::kernels

#endif  // SRC_COMPRESS_KERNELS_TABLES_H_

// NEON kernel table (aarch64) — a conservative subset: the scan and reduction
// kernels, which translate directly. The stochastic quantizers and fp16 conversions
// keep their inherited scalar entries until an aarch64 host is part of CI — the
// bit-identity contract is only as good as the equivalence test that enforces it,
// and untested SIMD is exactly what this layer exists to avoid.
#include "src/compress/kernels/tables.h"

#if ESPRESSO_KERNELS_NEON

#include <arm_neon.h>

#include "src/compress/kernels/aligned.h"
#include "src/compress/kernels/scalar_ref.h"

namespace espresso::kernels {

namespace {

double NeonSumSquares(const float* x, size_t n) {
  const size_t n8 = n & ~size_t{7};
  float64x2_t a[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                      vdupq_n_f64(0.0)};
  for (size_t i = 0; i < n8; i += 8) {
    const float32x4_t v0 = LoadN4f(x + i);
    const float32x4_t v1 = LoadN4f(x + i + 4);
    const float64x2_t d0 = vcvt_f64_f32(vget_low_f32(v0));
    const float64x2_t d1 = vcvt_high_f64_f32(v0);
    const float64x2_t d2 = vcvt_f64_f32(vget_low_f32(v1));
    const float64x2_t d3 = vcvt_high_f64_f32(v1);
    // Separate mul and add (no vfmaq): the reduction contract pins the scalar
    // mul-then-add rounding, and -ffp-contract=off keeps the compiler honest.
    a[0] = vaddq_f64(a[0], vmulq_f64(d0, d0));
    a[1] = vaddq_f64(a[1], vmulq_f64(d1, d1));
    a[2] = vaddq_f64(a[2], vmulq_f64(d2, d2));
    a[3] = vaddq_f64(a[3], vmulq_f64(d3, d3));
  }
  double acc[kReductionLanes];
  for (size_t j = 0; j < 4; ++j) {
    vst1q_f64(acc + 2 * j, a[j]);  // conventions:allow(unaligned-simd) stack buffer
  }
  RefSumSquaresLanes(x, n8, n, acc);
  return RefFoldLanes(acc);
}

double NeonSumAbs(const float* x, size_t n) {
  const size_t n8 = n & ~size_t{7};
  float64x2_t a[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                      vdupq_n_f64(0.0)};
  for (size_t i = 0; i < n8; i += 8) {
    const float32x4_t v0 = vabsq_f32(LoadN4f(x + i));
    const float32x4_t v1 = vabsq_f32(LoadN4f(x + i + 4));
    a[0] = vaddq_f64(a[0], vcvt_f64_f32(vget_low_f32(v0)));
    a[1] = vaddq_f64(a[1], vcvt_high_f64_f32(v0));
    a[2] = vaddq_f64(a[2], vcvt_f64_f32(vget_low_f32(v1)));
    a[3] = vaddq_f64(a[3], vcvt_high_f64_f32(v1));
  }
  double acc[kReductionLanes];
  for (size_t j = 0; j < 4; ++j) {
    vst1q_f64(acc + 2 * j, a[j]);  // conventions:allow(unaligned-simd) stack buffer
  }
  RefSumAbsLanes(x, n8, n, acc);
  return RefFoldLanes(acc);
}

float NeonMaxAbs(const float* x, size_t n) {
  const size_t n4 = n & ~size_t{3};
  float32x4_t m = vdupq_n_f32(0.0f);
  for (size_t i = 0; i < n4; i += 4) {
    const float32x4_t a = vabsq_f32(LoadN4f(x + i));
    const uint32x4_t gt = vcgtq_f32(a, m);  // false for NaN: the scalar contract
    m = vbslq_f32(gt, a, m);
  }
  float lanes[4];
  vst1q_f32(lanes, m);  // conventions:allow(unaligned-simd) stack buffer
  float r = 0.0f;
  for (size_t j = 0; j < 4; ++j) {
    if (lanes[j] > r) {
      r = lanes[j];
    }
  }
  return RefMaxAbsRange(x, n4, n, r);
}

void NeonAbsBits(const float* x, size_t n, uint32_t* out) {
  const size_t n4 = n & ~size_t{3};
  const uint32x4_t absi = vdupq_n_u32(0x7fffffffU);
  for (size_t i = 0; i < n4; i += 4) {
    const uint32x4_t b = vandq_u32(vreinterpretq_u32_f32(LoadN4f(x + i)), absi);
    vst1q_u32(out + i, b);  // conventions:allow(unaligned-simd) contiguous output
  }
  RefAbsBitsRange(x, n4, n, out);
}

size_t NeonCountGtBits(const uint32_t* m, size_t n, uint32_t t) {
  const size_t n4 = n & ~size_t{3};
  const uint32x4_t tv = vdupq_n_u32(t);
  uint32x4_t count = vdupq_n_u32(0);
  for (size_t i = 0; i < n4; i += 4) {
    // cmhi lanes are all-ones; accumulate and negate at the end.
    count = vsubq_u32(count, vcgtq_u32(LoadN4i(m + i), tv));
  }
  const size_t head = vaddvq_u32(count);
  return head + RefCountGtBitsRange(m, n4, n, t);
}

}  // namespace

const KernelOps& NeonTable() {
  static const KernelOps table = [] {
    KernelOps ops = ScalarTable();
    ops.isa = "neon";
    ops.sum_squares = NeonSumSquares;
    ops.sum_abs = NeonSumAbs;
    ops.max_abs = NeonMaxAbs;
    ops.abs_bits = NeonAbsBits;
    ops.count_gt_bits = NeonCountGtBits;
    return ops;
  }();
  return table;
}

}  // namespace espresso::kernels

#endif  // ESPRESSO_KERNELS_NEON

// Runtime ISA dispatch: detect what the host executes, honor the ESPRESSO_KERNELS
// override, and hand out the table everything compresses through.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/compress/kernels/tables.h"

namespace espresso::kernels {

namespace {

// Test/bench override; read on every Active() call (cheap: one load + branch).
const KernelOps* g_forced = nullptr;

const KernelOps* PickAuto() {
  const std::vector<const KernelOps*>& tables = SupportedOps();
  if (const char* env = std::getenv("ESPRESSO_KERNELS")) {
    for (const KernelOps* t : tables) {
      if (std::strcmp(t->isa, env) == 0) {
        return t;
      }
    }
    std::fprintf(stderr,
                 "espresso: ESPRESSO_KERNELS=%s is unknown or unsupported on this "
                 "host; using scalar kernels\n",
                 env);
    return tables.front();
  }
  return tables.back();  // SupportedOps orders scalar -> best
}

}  // namespace

const KernelOps& Scalar() { return ScalarTable(); }

const std::vector<const KernelOps*>& SupportedOps() {
  static const std::vector<const KernelOps*> tables = [] {
    std::vector<const KernelOps*> t;
    t.push_back(&ScalarTable());
#if ESPRESSO_KERNELS_X86
    if (__builtin_cpu_supports("sse2")) {
      t.push_back(&Sse2Table());
    }
    if (__builtin_cpu_supports("avx2")) {
      t.push_back(&Avx2Table());
    }
#endif
#if ESPRESSO_KERNELS_NEON
    t.push_back(&NeonTable());  // NEON is architectural on aarch64
#endif
    return t;
  }();
  return tables;
}

const KernelOps& Active() {
  if (g_forced != nullptr) {
    return *g_forced;
  }
  static const KernelOps* chosen = PickAuto();
  return *chosen;
}

void SetActiveForTesting(const KernelOps* ops) { g_forced = ops; }

std::vector<const char*> HostIsaFeatures() {
  std::vector<const char*> features;
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("sse2")) {
    features.push_back("sse2");
  }
  if (__builtin_cpu_supports("avx")) {
    features.push_back("avx");
  }
  if (__builtin_cpu_supports("avx2")) {
    features.push_back("avx2");
  }
  if (__builtin_cpu_supports("f16c")) {
    features.push_back("f16c");
  }
  if (__builtin_cpu_supports("fma")) {
    features.push_back("fma");
  }
  if (__builtin_cpu_supports("avx512f")) {
    features.push_back("avx512f");
  }
#elif defined(__aarch64__)
  features.push_back("neon");
#endif
  return features;
}

}  // namespace espresso::kernels

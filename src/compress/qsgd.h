// QSGD stochastic quantization (Alistarh et al. [6]).
//
// Quantizes v_i to level round_stochastic(|v_i| / ||v||_2 * s) out of s = 2^bits - 1
// levels, storing sign+level in one byte per element (bits <= 7) plus the l2 norm.
// Stochastic rounding is driven by the compression seed, so it is reproducible and, with
// a shared seed, identical across ranks.
#ifndef SRC_COMPRESS_QSGD_H_
#define SRC_COMPRESS_QSGD_H_

#include "src/compress/compressor.h"

namespace espresso {

class QsgdCompressor final : public Compressor {
 public:
  explicit QsgdCompressor(int bits);

  std::string_view name() const override { return "qsgd"; }
  size_t CompressedBytes(size_t elements) const override;
  void Compress(std::span<const float> input, uint64_t seed,
                CompressedTensor* out) const override;
  void CompressBatch(std::span<const BatchCompressItem> items) const override;
  void DecompressAdd(const CompressedTensor& in, std::span<float> out) const override;

  int bits() const { return bits_; }

 private:
  int bits_;
  int levels_;
};

}  // namespace espresso

#endif  // SRC_COMPRESS_QSGD_H_

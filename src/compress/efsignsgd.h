// EF-SignSGD 1-bit quantization (Karimireddy et al. [29]).
//
// Encodes each gradient as its sign (1 bit, packed 8 per byte) plus one shared scale
// ||g||_1 / n, so decompress(g) = scale * sign(g). The error-feedback memory that makes
// this convergent lives in ErrorFeedback (src/compress/error_feedback.h), matching the
// paper's setup ("Error-feedback is applied on both GPU and CPU compression").
#ifndef SRC_COMPRESS_EFSIGNSGD_H_
#define SRC_COMPRESS_EFSIGNSGD_H_

#include "src/compress/compressor.h"

namespace espresso {

class EfSignSgdCompressor final : public Compressor {
 public:
  std::string_view name() const override { return "efsignsgd"; }
  size_t CompressedBytes(size_t elements) const override;
  void Compress(std::span<const float> input, uint64_t seed,
                CompressedTensor* out) const override;
  void CompressBatch(std::span<const BatchCompressItem> items) const override;
  void DecompressAdd(const CompressedTensor& in, std::span<float> out) const override;
};

}  // namespace espresso

#endif  // SRC_COMPRESS_EFSIGNSGD_H_

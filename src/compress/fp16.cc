#include "src/compress/fp16.h"

#include <bit>
#include <cstring>

#include "src/util/logging.h"

namespace espresso {

uint16_t FloatToHalf(float value) {
  const uint32_t f = std::bit_cast<uint32_t>(value);
  const uint32_t sign = (f >> 16) & 0x8000u;
  const int32_t exponent = static_cast<int32_t>((f >> 23) & 0xFF) - 127 + 15;
  uint32_t mantissa = f & 0x7FFFFFu;

  if (exponent >= 0x1F) {
    // Overflow / inf / nan -> inf (nan keeps a mantissa bit).
    const uint32_t nan_bit = ((f & 0x7F800000u) == 0x7F800000u && mantissa != 0) ? 0x200u : 0u;
    return static_cast<uint16_t>(sign | 0x7C00u | nan_bit);
  }
  if (exponent <= 0) {
    if (exponent < -10) {
      return static_cast<uint16_t>(sign);  // underflow to signed zero
    }
    // Subnormal: shift in the implicit leading bit, then round to nearest even.
    mantissa |= 0x800000u;
    const uint32_t shift = static_cast<uint32_t>(14 - exponent);
    uint32_t half = mantissa >> shift;
    const uint32_t remainder = mantissa & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (remainder > halfway || (remainder == halfway && (half & 1u) != 0)) {
      ++half;
    }
    return static_cast<uint16_t>(sign | half);
  }
  // Normal: round mantissa from 23 to 10 bits, nearest even. The carry from ++half can
  // propagate into the exponent, which is the correct rounding behaviour (and can
  // produce inf on overflow of the largest finite half).
  uint32_t half = sign | (static_cast<uint32_t>(exponent) << 10) | (mantissa >> 13);
  const uint32_t remainder = mantissa & 0x1FFFu;
  if (remainder > 0x1000u || (remainder == 0x1000u && (half & 1u) != 0)) {
    ++half;
  }
  return static_cast<uint16_t>(half);
}

float HalfToFloat(uint16_t half) {
  const uint32_t sign = (static_cast<uint32_t>(half) & 0x8000u) << 16;
  const uint32_t exponent = (half >> 10) & 0x1Fu;
  uint32_t mantissa = half & 0x3FFu;

  uint32_t f = 0;
  if (exponent == 0) {
    if (mantissa == 0) {
      f = sign;  // signed zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      do {
        ++e;
        mantissa <<= 1;
      } while ((mantissa & 0x400u) == 0);
      mantissa &= 0x3FFu;
      f = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) | (mantissa << 13);
    }
  } else if (exponent == 0x1F) {
    f = sign | 0x7F800000u | (mantissa << 13);  // inf / nan
  } else {
    f = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(f);
}

void Fp16Compressor::Compress(std::span<const float> input, uint64_t /*seed*/,
                              CompressedTensor* out) const {
  ESP_CHECK(out != nullptr);
  out->Clear();
  out->kind = PayloadKind::kRaw;
  out->original_elements = input.size();
  out->bytes.resize(input.size() * 2);
  for (size_t i = 0; i < input.size(); ++i) {
    const uint16_t h = FloatToHalf(input[i]);
    std::memcpy(out->bytes.data() + 2 * i, &h, 2);
  }
}

void Fp16Compressor::DecompressAdd(const CompressedTensor& in, std::span<float> out) const {
  ESP_CHECK_EQ(in.original_elements, out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    uint16_t h = 0;
    std::memcpy(&h, in.bytes.data() + 2 * i, 2);
    out[i] += HalfToFloat(h);
  }
}

}  // namespace espresso

#include "src/compress/fp16.h"

#include <cstring>

#include "src/compress/kernels/kernels.h"
#include "src/compress/kernels/scalar_ref.h"
#include "src/util/logging.h"

namespace espresso {

// The conversion algorithms live in the kernel layer's scalar reference
// (src/compress/kernels/scalar_ref.h), validated exhaustively against hardware F16C
// over all 2^32 encodes and 2^16 decodes, so the vectorized vcvtps2ph/vcvtph2ps path
// is bit-identical by construction. These wrappers keep the public test surface.
uint16_t FloatToHalf(float value) { return kernels::RefFloatToHalf(value); }
float HalfToFloat(uint16_t half) { return kernels::RefHalfToFloat(half); }

void Fp16Compressor::Compress(std::span<const float> input, uint64_t /*seed*/,
                              CompressedTensor* out) const {
  ESP_CHECK(out != nullptr);
  out->Clear();
  out->kind = PayloadKind::kRaw;
  out->original_elements = input.size();
  out->bytes.resize(input.size() * 2);
  kernels::Active().fp16_encode(input.data(), input.size(),
                                reinterpret_cast<uint16_t*>(out->bytes.data()));
}

void Fp16Compressor::CompressBatch(std::span<const BatchCompressItem> items) const {
  for (const BatchCompressItem& item : items) {
    ESP_CHECK_EQ(reinterpret_cast<uintptr_t>(item.data) & (kernels::kColumnAlignment - 1), 0u);
    Compress({item.data, item.elements}, item.seed, item.out);
  }
}

void Fp16Compressor::DecompressAdd(const CompressedTensor& in, std::span<float> out) const {
  ESP_CHECK_EQ(in.original_elements, out.size());
  kernels::Active().fp16_decode_add(reinterpret_cast<const uint16_t*>(in.bytes.data()),
                                    out.size(), out.data());
}

}  // namespace espresso

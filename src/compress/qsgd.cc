#include "src/compress/qsgd.h"

#include <cmath>

#include "src/compress/kernels/kernels.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace espresso {

namespace {

// The counter RNG replaces the old stateful per-element draws: the i-th element's
// rounding uniform is a pure function of (seed, n, i), so lanes can be evaluated in any
// order — and in SIMD batches — without changing a single payload byte. Key derivation
// keeps going through DeriveSeed(seed, n), preserving the shared-seed cross-rank
// property the schemes rely on.
void SplitSeed(uint64_t seed, size_t n, uint32_t* k0, uint32_t* k1) {
  const uint64_t derived = DeriveSeed(seed, n);
  *k0 = static_cast<uint32_t>(derived);
  *k1 = static_cast<uint32_t>(derived >> 32);
}

}  // namespace

QsgdCompressor::QsgdCompressor(int bits) : bits_(bits), levels_((1 << bits) - 1) {
  ESP_CHECK_GE(bits, 1);
  ESP_CHECK_LE(bits, 7);  // sign + level fit one byte
}

size_t QsgdCompressor::CompressedBytes(size_t elements) const {
  return elements + sizeof(float);  // one code byte per element + the norm
}

void QsgdCompressor::Compress(std::span<const float> input, uint64_t seed,
                              CompressedTensor* out) const {
  ESP_CHECK(out != nullptr);
  out->Clear();
  out->kind = PayloadKind::kPackedBits;
  out->original_elements = input.size();
  const kernels::KernelOps& ops = kernels::Active();
  const float norm = static_cast<float>(std::sqrt(ops.sum_squares(input.data(), input.size())));
  out->scales.push_back(norm);
  out->bytes.resize(input.size());
  if (norm == 0.0f) {
    return;
  }
  uint32_t k0 = 0;
  uint32_t k1 = 0;
  SplitSeed(seed, input.size(), &k0, &k1);
  ops.qsgd_quantize(input.data(), input.size(), norm, levels_, k0, k1, out->bytes.data());
}

void QsgdCompressor::CompressBatch(std::span<const BatchCompressItem> items) const {
  const kernels::KernelOps& ops = kernels::Active();
  // Phase 1: every norm reduction over the packed column. Norms land in the outputs,
  // so no side storage is needed between phases.
  for (const BatchCompressItem& item : items) {
    ESP_CHECK_EQ(reinterpret_cast<uintptr_t>(item.data) & (kernels::kColumnAlignment - 1), 0u);
    item.out->Clear();
    item.out->kind = PayloadKind::kPackedBits;
    item.out->original_elements = item.elements;
    const float norm = static_cast<float>(std::sqrt(ops.sum_squares(item.data, item.elements)));
    item.out->scales.push_back(norm);
    item.out->bytes.resize(item.elements);
  }
  // Phase 2: every quantization pass.
  for (const BatchCompressItem& item : items) {
    const float norm = item.out->scales[0];
    if (norm == 0.0f) {
      continue;
    }
    uint32_t k0 = 0;
    uint32_t k1 = 0;
    SplitSeed(item.seed, item.elements, &k0, &k1);
    ops.qsgd_quantize(item.data, item.elements, norm, levels_, k0, k1, item.out->bytes.data());
  }
}

void QsgdCompressor::DecompressAdd(const CompressedTensor& in, std::span<float> out) const {
  ESP_CHECK_EQ(in.original_elements, out.size());
  ESP_CHECK_EQ(in.scales.size(), 1u);
  const float norm = in.scales[0];
  const float unit = norm / static_cast<float>(levels_);
  for (size_t i = 0; i < out.size(); ++i) {
    const uint8_t code = in.bytes[i];
    const float value = static_cast<float>(code & 0x7F) * unit;
    out[i] += (code & 0x80) ? -value : value;
  }
}

}  // namespace espresso

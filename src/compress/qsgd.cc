#include "src/compress/qsgd.h"

#include <cmath>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace espresso {

QsgdCompressor::QsgdCompressor(int bits) : bits_(bits), levels_((1 << bits) - 1) {
  ESP_CHECK_GE(bits, 1);
  ESP_CHECK_LE(bits, 7);  // sign + level fit one byte
}

size_t QsgdCompressor::CompressedBytes(size_t elements) const {
  return elements + sizeof(float);  // one code byte per element + the norm
}

void QsgdCompressor::Compress(std::span<const float> input, uint64_t seed,
                              CompressedTensor* out) const {
  ESP_CHECK(out != nullptr);
  out->Clear();
  out->kind = PayloadKind::kPackedBits;
  out->original_elements = input.size();
  double sq = 0.0;
  for (float v : input) {
    sq += static_cast<double>(v) * static_cast<double>(v);
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  out->scales.push_back(norm);
  out->bytes.resize(input.size());
  if (norm == 0.0f) {
    return;
  }
  Rng rng(DeriveSeed(seed, input.size()));
  for (size_t i = 0; i < input.size(); ++i) {
    const float magnitude = std::fabs(input[i]) / norm * static_cast<float>(levels_);
    auto level = static_cast<int>(magnitude);
    const float frac = magnitude - static_cast<float>(level);
    if (rng.Uniform(0.0, 1.0) < frac) {
      ++level;
    }
    ESP_CHECK_LE(level, levels_);
    uint8_t code = static_cast<uint8_t>(level);
    if (input[i] < 0.0f) {
      code |= 0x80;
    }
    out->bytes[i] = code;
  }
}

void QsgdCompressor::DecompressAdd(const CompressedTensor& in, std::span<float> out) const {
  ESP_CHECK_EQ(in.original_elements, out.size());
  ESP_CHECK_EQ(in.scales.size(), 1u);
  const float norm = in.scales[0];
  const float unit = norm / static_cast<float>(levels_);
  for (size_t i = 0; i < out.size(); ++i) {
    const uint8_t code = in.bytes[i];
    const float value = static_cast<float>(code & 0x7F) * unit;
    out[i] += (code & 0x80) ? -value : value;
  }
}

}  // namespace espresso

// Abstract gradient-compression algorithm (§2.3 of the paper).
//
// Implementations are pure functions of (input, seed): no hidden state, so the same call
// on two data-parallel ranks with the same seed produces structurally identical output.
// That property is what makes shared-seed Random-k aggregatable in the compressed domain
// (the divisible-scheme shortcut of §4.2.2).
#ifndef SRC_COMPRESS_COMPRESSOR_H_
#define SRC_COMPRESS_COMPRESSOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "src/compress/compressed_tensor.h"

namespace espresso {

// One tensor of a batched compression call. `data` points into a staging column (the
// BatchedCompressPlan packs small tensors into one 64-byte-aligned arena run) and must
// stay valid for the duration of CompressBatch.
struct BatchCompressItem {
  const float* data = nullptr;
  size_t elements = 0;
  uint64_t seed = 0;
  CompressedTensor* out = nullptr;
};

class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual std::string_view name() const = 0;

  // Analytic wire size for a tensor of `elements` float32 values. Used by the cost model
  // and by the communication schemes to size buffers; tests assert it matches
  // CompressedTensor::ByteSize() of an actual Compress call.
  virtual size_t CompressedBytes(size_t elements) const = 0;

  // Compresses `input`. `seed` drives any randomness (index sampling, stochastic
  // rounding); deterministic algorithms ignore it.
  virtual void Compress(std::span<const float> input, uint64_t seed,
                        CompressedTensor* out) const = 0;

  // Compresses a batch of staged tensors. Guaranteed payload-identical to calling
  // Compress(item.data[0..elements], item.seed, item.out) per item in order — the
  // default does exactly that; SIMD-aware compressors override it to phase the work
  // (all reductions, then all quantization passes) across the packed column.
  virtual void CompressBatch(std::span<const BatchCompressItem> items) const;

  // Accumulates the decompressed tensor INTO `out` (out += decompress(in)).
  // Aggregation of compressed shards from many ranks is a sequence of DecompressAdd
  // calls into a zeroed buffer, which is exactly what the divisible scheme's middle
  // stage does (Figure 4(b)).
  virtual void DecompressAdd(const CompressedTensor& in, std::span<float> out) const = 0;

  // Overwrite-decompress: zero-fills `out` then DecompressAdd.
  void Decompress(const CompressedTensor& in, std::span<float> out) const;

  // Whether CompressedBytes is exact for every input of the given size. §4.3 requires
  // "deterministic compression time ... and deterministic compression ratio" for the
  // strategy selector; content-dependent algorithms (hard thresholding) return false
  // and are accepted only on the training/execution path.
  virtual bool HasDeterministicSize() const { return true; }

  // True if payloads produced with the same seed can be aggregated without
  // decompression (same index structure). Enables skipping the
  // decompress-aggregate-recompress stage in divisible schemes (§4.2.2 footnote).
  virtual bool SupportsCompressedAggregation() const { return false; }

  // Aggregates `in` into `accum` in the compressed domain. Only valid when
  // SupportsCompressedAggregation() is true and both payloads share a seed.
  virtual void AggregateCompressed(const CompressedTensor& in, CompressedTensor* accum) const;
};

// Factory. Supported names (case-sensitive):
//   "randomk"   — Random-k sparsification [62]; `ratio` = fraction of elements kept.
//   "topk"/"dgc"— Top-k / Deep Gradient Compression [36]; `ratio` as above.
//   "efsignsgd" — 1-bit sign quantization with scale [29]; `ratio` ignored.
//   "qsgd"      — stochastic quantization [6]; `bits` in [1, 8].
//   "terngrad"  — ternary quantization [71].
//   "fp16"      — half-precision truncation.
//   "threshold" — hard-threshold sparsification [5]; `threshold` = magnitude cutoff.
//                 Content-dependent size: usable for training, rejected by the selector.
struct CompressorConfig {
  std::string algorithm = "randomk";
  double ratio = 0.01;     // sparsification compression rate (1% in the paper's evaluation)
  int bits = 8;            // quantization width for qsgd
  double threshold = 0.01; // magnitude cutoff for "threshold"
};

std::unique_ptr<Compressor> CreateCompressor(const CompressorConfig& config);

}  // namespace espresso

#endif  // SRC_COMPRESS_COMPRESSOR_H_

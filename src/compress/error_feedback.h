// Error-feedback memory (Karimireddy et al. [29], Lin et al. [36]).
//
// Each (worker, tensor) pair keeps a residual r. On every step the corrected gradient
// c = g + r is compressed, and the new residual is r' = c - decompress(compress(c)).
// This telescopes the compression error and is what lets sparsifiers/quantizers preserve
// convergence (§2.3, §5.4 of the paper).
#ifndef SRC_COMPRESS_ERROR_FEEDBACK_H_
#define SRC_COMPRESS_ERROR_FEEDBACK_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/compress/compressor.h"

namespace espresso {

class ErrorFeedback {
 public:
  // `momentum` enables DGC's momentum correction [36]: the residual accumulates the
  // momentum-corrected gradient u_t = momentum * u_{t-1} + g_t instead of g_t itself,
  // so coordinates suppressed by sparsification keep their momentum history.
  // momentum = 0 (default) is plain error feedback.
  explicit ErrorFeedback(double momentum = 0.0);

  // Compresses grad for the tensor identified by `tensor_id`, applying and updating the
  // residual. `seed` is forwarded to the compressor.
  void CompressWithFeedback(const Compressor& compressor, uint64_t tensor_id,
                            std::span<const float> grad, uint64_t seed, CompressedTensor* out);

  // Split form for batched compression: BuildCorrected writes the residual- (and
  // momentum-) corrected gradient into `out` (a staging column slot); after the caller
  // has compressed it, CommitPayload folds the payload back into the residual. The pair
  // is exactly CompressWithFeedback with the Compress call lifted out, and the state
  // for distinct tensor_ids is independent, so build-all / compress-all / commit-all
  // ordering across tensors is bit-identical to the interleaved per-tensor loop.
  void BuildCorrected(uint64_t tensor_id, std::span<const float> grad, std::span<float> out);
  void CommitPayload(const Compressor& compressor, uint64_t tensor_id,
                     std::span<const float> corrected, const CompressedTensor& payload);

  // Folds a payload that was LOST on the wire back into the residual. After
  // CompressWithFeedback, the residual is corrected - decompress(payload); if the
  // payload never reaches the aggregation, the whole corrected gradient should carry
  // over, so residual += decompress(payload) restores it. This is how graceful
  // degradation preserves a dropped update instead of silently discarding it.
  void AbsorbLostPayload(const Compressor& compressor, uint64_t tensor_id,
                         const CompressedTensor& payload);

  // Read-only access to the residual (empty span if none yet). Exposed for tests, which
  // verify the telescoping identity residual = corrected - decompressed.
  std::span<const float> residual(uint64_t tensor_id) const;

  void Reset() {
    residuals_.clear();
    velocities_.clear();
  }

  double momentum() const { return momentum_; }

 private:
  double momentum_ = 0.0;
  std::unordered_map<uint64_t, std::vector<float>> residuals_;
  std::unordered_map<uint64_t, std::vector<float>> velocities_;  // momentum-corrected u_t
  std::vector<float> scratch_;
  std::vector<float> decompressed_scratch_;  // DecompressAdd target, reused per call
};

}  // namespace espresso

#endif  // SRC_COMPRESS_ERROR_FEEDBACK_H_

#include "src/compress/error_feedback.h"

#include "src/util/logging.h"

namespace espresso {

ErrorFeedback::ErrorFeedback(double momentum) : momentum_(momentum) {
  ESP_CHECK_GE(momentum, 0.0);
  ESP_CHECK_LT(momentum, 1.0);
}

void ErrorFeedback::BuildCorrected(uint64_t tensor_id, std::span<const float> grad,
                                   std::span<float> out) {
  ESP_CHECK_EQ(grad.size(), out.size());
  auto& residual = residuals_[tensor_id];
  if (residual.size() != grad.size()) {
    residual.assign(grad.size(), 0.0f);
  }
  if (momentum_ > 0.0) {
    // DGC momentum correction: u_t = m * u_{t-1} + g_t; corrected = residual + u_t.
    auto& velocity = velocities_[tensor_id];
    if (velocity.size() != grad.size()) {
      velocity.assign(grad.size(), 0.0f);
    }
    for (size_t i = 0; i < grad.size(); ++i) {
      velocity[i] = static_cast<float>(momentum_) * velocity[i] + grad[i];
      out[i] = velocity[i] + residual[i];
    }
  } else {
    // corrected = grad + residual
    for (size_t i = 0; i < grad.size(); ++i) {
      out[i] = grad[i] + residual[i];
    }
  }
}

void ErrorFeedback::CommitPayload(const Compressor& compressor, uint64_t tensor_id,
                                  std::span<const float> corrected,
                                  const CompressedTensor& payload) {
  auto& residual = residuals_[tensor_id];
  ESP_CHECK_EQ(residual.size(), corrected.size());
  // residual' = corrected - decompress(payload)
  for (size_t i = 0; i < corrected.size(); ++i) {
    residual[i] = corrected[i];
  }
  // Subtract the decompressed payload: DecompressAdd adds, so negate via a scratch
  // pass. The scratch persists across calls (assign reuses capacity), keeping the
  // steady state allocation-free for stable tensor shapes.
  decompressed_scratch_.assign(corrected.size(), 0.0f);
  compressor.DecompressAdd(payload, decompressed_scratch_);
  for (size_t i = 0; i < corrected.size(); ++i) {
    residual[i] -= decompressed_scratch_[i];
  }
}

void ErrorFeedback::CompressWithFeedback(const Compressor& compressor, uint64_t tensor_id,
                                         std::span<const float> grad, uint64_t seed,
                                         CompressedTensor* out) {
  ESP_CHECK(out != nullptr);
  scratch_.resize(grad.size());
  BuildCorrected(tensor_id, grad, scratch_);
  compressor.Compress(scratch_, seed, out);
  CommitPayload(compressor, tensor_id, scratch_, *out);
}

void ErrorFeedback::AbsorbLostPayload(const Compressor& compressor, uint64_t tensor_id,
                                      const CompressedTensor& payload) {
  auto it = residuals_.find(tensor_id);
  ESP_CHECK(it != residuals_.end())
      << "AbsorbLostPayload without a prior CompressWithFeedback for tensor " << tensor_id;
  ESP_CHECK_EQ(it->second.size(), payload.original_elements);
  compressor.DecompressAdd(payload, it->second);
}

std::span<const float> ErrorFeedback::residual(uint64_t tensor_id) const {
  auto it = residuals_.find(tensor_id);
  if (it == residuals_.end()) {
    return {};
  }
  return it->second;
}

}  // namespace espresso

#include "src/compress/efsignsgd.h"

#include <cmath>

#include "src/util/logging.h"

namespace espresso {

size_t EfSignSgdCompressor::CompressedBytes(size_t elements) const {
  return (elements + 7) / 8 + sizeof(float);
}

void EfSignSgdCompressor::Compress(std::span<const float> input, uint64_t /*seed*/,
                                   CompressedTensor* out) const {
  ESP_CHECK(out != nullptr);
  out->Clear();
  out->kind = PayloadKind::kPackedBits;
  out->original_elements = input.size();
  out->bytes.assign((input.size() + 7) / 8, 0);
  double l1 = 0.0;
  for (size_t i = 0; i < input.size(); ++i) {
    l1 += std::fabs(static_cast<double>(input[i]));
    if (input[i] >= 0.0f) {
      out->bytes[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
    }
  }
  const float scale =
      input.empty() ? 0.0f : static_cast<float>(l1 / static_cast<double>(input.size()));
  out->scales.push_back(scale);
}

void EfSignSgdCompressor::DecompressAdd(const CompressedTensor& in, std::span<float> out) const {
  ESP_CHECK_EQ(in.original_elements, out.size());
  ESP_CHECK_EQ(in.scales.size(), 1u);
  const float scale = in.scales[0];
  for (size_t i = 0; i < out.size(); ++i) {
    const bool positive = (in.bytes[i / 8] >> (i % 8)) & 1u;
    out[i] += positive ? scale : -scale;
  }
}

}  // namespace espresso

#include "src/compress/efsignsgd.h"

#include <cmath>

#include "src/compress/kernels/kernels.h"
#include "src/util/logging.h"

namespace espresso {

size_t EfSignSgdCompressor::CompressedBytes(size_t elements) const {
  return (elements + 7) / 8 + sizeof(float);
}

void EfSignSgdCompressor::Compress(std::span<const float> input, uint64_t /*seed*/,
                                   CompressedTensor* out) const {
  ESP_CHECK(out != nullptr);
  out->Clear();
  out->kind = PayloadKind::kPackedBits;
  out->original_elements = input.size();
  out->bytes.assign((input.size() + 7) / 8, 0);
  const kernels::KernelOps& ops = kernels::Active();
  const double l1 = ops.sum_abs(input.data(), input.size());
  ops.sign_pack(input.data(), input.size(), out->bytes.data());
  const float scale =
      input.empty() ? 0.0f : static_cast<float>(l1 / static_cast<double>(input.size()));
  out->scales.push_back(scale);
}

void EfSignSgdCompressor::CompressBatch(std::span<const BatchCompressItem> items) const {
  const kernels::KernelOps& ops = kernels::Active();
  // Phase 1: every l1 reduction; the scale is final immediately, so it lands in the
  // output and phase 2 is purely the packing sweep.
  for (const BatchCompressItem& item : items) {
    ESP_CHECK_EQ(reinterpret_cast<uintptr_t>(item.data) & (kernels::kColumnAlignment - 1), 0u);
    item.out->Clear();
    item.out->kind = PayloadKind::kPackedBits;
    item.out->original_elements = item.elements;
    item.out->bytes.assign((item.elements + 7) / 8, 0);
    const double l1 = ops.sum_abs(item.data, item.elements);
    const float scale =
        item.elements == 0 ? 0.0f : static_cast<float>(l1 / static_cast<double>(item.elements));
    item.out->scales.push_back(scale);
  }
  // Phase 2: every sign-pack pass.
  for (const BatchCompressItem& item : items) {
    ops.sign_pack(item.data, item.elements, item.out->bytes.data());
  }
}

void EfSignSgdCompressor::DecompressAdd(const CompressedTensor& in, std::span<float> out) const {
  ESP_CHECK_EQ(in.original_elements, out.size());
  ESP_CHECK_EQ(in.scales.size(), 1u);
  const float scale = in.scales[0];
  for (size_t i = 0; i < out.size(); ++i) {
    const bool positive = (in.bytes[i / 8] >> (i % 8)) & 1u;
    out[i] += positive ? scale : -scale;
  }
}

}  // namespace espresso

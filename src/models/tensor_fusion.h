// MergeComp-style tensor fusion ([69], the compression scheduler the paper's fused
// aggregation kernels come from): merges consecutive backward-order tensors into
// buckets of at most `bucket_bytes`. Fusion trades per-tensor overheads (collective
// latency terms, kernel launches — the constants behind Figure 10) against pipelining:
// a bucket cannot start communicating until its LAST member's gradient is ready, so the
// fused profile's bucket carries the sum of its members' backward times.
//
// Espresso composes with fusion: selection simply runs on the fused profile
// (bench_ablation section (e) measures the effect on ResNet101's 314 tensors).
#ifndef SRC_MODELS_TENSOR_FUSION_H_
#define SRC_MODELS_TENSOR_FUSION_H_

#include <cstddef>

#include "src/models/model_profile.h"

namespace espresso {

// Greedy bucketing in backward order. Every bucket holds at least one tensor; a tensor
// already larger than `bucket_bytes` forms its own bucket. bucket_bytes == 0 returns
// the profile unchanged.
ModelProfile FuseTensors(const ModelProfile& model, size_t bucket_bytes);

}  // namespace espresso

#endif  // SRC_MODELS_TENSOR_FUSION_H_

#include "src/models/model_stats.h"

#include <algorithm>

namespace espresso {

std::map<size_t, size_t> SizeHistogram(const ModelProfile& model) {
  std::map<size_t, size_t> histogram;
  for (const auto& t : model.tensors) {
    ++histogram[t.elements];
  }
  return histogram;
}

size_t DistinctSizes(const ModelProfile& model) { return SizeHistogram(model).size(); }

std::vector<std::vector<size_t>> GroupBySizeDescending(const ModelProfile& model) {
  // map is ascending by size; walk it in reverse for descending groups.
  std::map<size_t, std::vector<size_t>> by_size;
  for (size_t i = 0; i < model.tensors.size(); ++i) {
    by_size[model.tensors[i].elements].push_back(i);
  }
  std::vector<std::vector<size_t>> groups;
  groups.reserve(by_size.size());
  for (auto it = by_size.rbegin(); it != by_size.rend(); ++it) {
    auto& members = it->second;
    // Ascending distance-to-output == descending backward index.
    std::sort(members.begin(), members.end(), std::greater<>());
    groups.push_back(std::move(members));
  }
  return groups;
}

}  // namespace espresso

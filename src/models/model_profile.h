// DNN model profiles: per-tensor sizes and backward-computation times.
//
// This is exactly the "model information" Espresso consumes (§4.1: "The model
// information contains the tensor sizes and their tensor computation time", gathered by
// tracing 100 iterations, §4.3). Tensors are stored in *backward-completion order*:
// index 0 is the first gradient produced during backprop. Following the paper's
// terminology (§4.4.2 Property 2), the tensor computed last during backward propagation
// is the one "closest to the output layer"; DistanceToOutput converts accordingly.
#ifndef SRC_MODELS_MODEL_PROFILE_H_
#define SRC_MODELS_MODEL_PROFILE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace espresso {

struct TensorSpec {
  std::string name;
  size_t elements = 0;          // float32 element count
  double backward_time_s = 0.0; // time to compute this gradient during backprop

  size_t bytes() const { return elements * sizeof(float); }
};

struct ModelProfile {
  std::string name;
  std::vector<TensorSpec> tensors;  // backward-completion order
  double forward_time_s = 0.0;
  double optimizer_time_s = 0.0;    // parameter update after synchronization
  size_t batch_size = 1;            // per-GPU samples (or tokens) per iteration
  std::string throughput_unit;      // "images/s" or "tokens/s"

  size_t TensorCount() const { return tensors.size(); }
  size_t TotalElements() const;
  size_t TotalBytes() const;
  double BackwardTime() const;
  // Single-GPU iteration time (no communication).
  double SingleGpuIterationTime() const {
    return forward_time_s + BackwardTime() + optimizer_time_s;
  }

  // Paper's "distance to the output layer": 0 for the tensor computed last in backward.
  size_t DistanceToOutput(size_t tensor_index) const {
    return tensors.size() - 1 - tensor_index;
  }
};

}  // namespace espresso

#endif  // SRC_MODELS_MODEL_PROFILE_H_

#include "src/models/tensor_fusion.h"

#include <string>

#include "src/util/logging.h"

namespace espresso {

ModelProfile FuseTensors(const ModelProfile& model, size_t bucket_bytes) {
  if (bucket_bytes == 0 || model.tensors.empty()) {
    return model;
  }
  ModelProfile fused = model;
  fused.tensors.clear();

  TensorSpec bucket;
  size_t members = 0;
  auto flush = [&] {
    if (members == 0) {
      return;
    }
    if (members > 1) {
      bucket.name += "+" + std::to_string(members - 1);
    }
    fused.tensors.push_back(bucket);
    bucket = TensorSpec{};
    members = 0;
  };

  for (const TensorSpec& tensor : model.tensors) {
    if (members > 0 && (bucket.elements + tensor.elements) * sizeof(float) > bucket_bytes) {
      flush();
    }
    if (members == 0) {
      bucket.name = "bucket(" + tensor.name + ")";
      bucket.elements = 0;
      bucket.backward_time_s = 0.0;
    }
    bucket.elements += tensor.elements;
    bucket.backward_time_s += tensor.backward_time_s;
    ++members;
  }
  flush();

  ESP_CHECK_EQ(fused.TotalElements(), model.TotalElements());
  return fused;
}

}  // namespace espresso

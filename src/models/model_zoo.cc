#include "src/models/model_zoo.h"

#include <algorithm>

#include "src/util/logging.h"

namespace espresso {

namespace {

// Collects layers in forward order with relative compute weights, then finalizes into a
// backward-ordered profile with times distributed weight-proportionally.
class ModelBuilder {
 public:
  void Add(std::string name, size_t elements, double compute_weight) {
    ESP_CHECK_GT(elements, 0u);
    ESP_CHECK_GT(compute_weight, 0.0);
    forward_.push_back(TensorSpec{std::move(name), elements, compute_weight});
  }

  ModelProfile Finalize(std::string model_name, double backward_s, double forward_s,
                        double optimizer_s, size_t batch_size, std::string unit) {
    ModelProfile profile;
    profile.name = std::move(model_name);
    profile.forward_time_s = forward_s;
    profile.optimizer_time_s = optimizer_s;
    profile.batch_size = batch_size;
    profile.throughput_unit = std::move(unit);
    double total_weight = 0.0;
    for (const auto& t : forward_) {
      total_weight += t.backward_time_s;  // holds the raw weight until normalization
    }
    profile.tensors.assign(forward_.rbegin(), forward_.rend());  // backward order
    for (auto& t : profile.tensors) {
      t.backward_time_s = backward_s * t.backward_time_s / total_weight;
    }
    return profile;
  }

 private:
  std::vector<TensorSpec> forward_;
};

}  // namespace

ModelProfile Vgg16() {
  ModelBuilder b;
  // (in_channels, out_channels, output spatial side) per conv layer, input 224x224.
  struct Conv {
    size_t in, out, spatial;
  };
  const Conv convs[] = {
      {3, 64, 224},    {64, 64, 224},  {64, 128, 112},  {128, 128, 112}, {128, 256, 56},
      {256, 256, 56},  {256, 256, 56}, {256, 512, 28},  {512, 512, 28},  {512, 512, 28},
      {512, 512, 14},  {512, 512, 14}, {512, 512, 14},
  };
  int index = 0;
  for (const Conv& c : convs) {
    const size_t weight_elems = c.in * c.out * 9;  // 3x3 kernels
    // FLOPs ~ params * spatial^2; normalized to giga-units for readability.
    const double flops = static_cast<double>(weight_elems) *
                         static_cast<double>(c.spatial * c.spatial) / 1e9;
    b.Add("conv" + std::to_string(index) + ".weight", weight_elems, flops);
    b.Add("conv" + std::to_string(index) + ".bias", c.out, 0.001);
    ++index;
  }
  // Fully connected layers: fc6 dominates the model size (the reason VGG16 is the
  // paper's most communication-bound vision model).
  const size_t fc_sizes[][2] = {{25088, 4096}, {4096, 4096}, {4096, 1000}};
  for (int f = 0; f < 3; ++f) {
    const size_t weight_elems = fc_sizes[f][0] * fc_sizes[f][1];
    b.Add("fc" + std::to_string(6 + f) + ".weight", weight_elems,
          static_cast<double>(weight_elems) / 1e9);
    b.Add("fc" + std::to_string(6 + f) + ".bias", fc_sizes[f][1], 0.001);
  }
  return b.Finalize("vgg16", /*backward_s=*/0.110, /*forward_s=*/0.055,
                    /*optimizer_s=*/0.004, /*batch_size=*/32, "images/s");
}

ModelProfile ResNet101() {
  ModelBuilder b;
  // Stem: 7x7 conv 3->64 + BN.
  b.Add("stem.conv.weight", 3 * 64 * 49, 0.7);
  b.Add("stem.bn.weight", 64, 0.001);
  b.Add("stem.bn.bias", 64, 0.001);
  // Bottleneck stages: {blocks, mid_channels, out_channels, output spatial side}.
  struct Stage {
    int blocks;
    size_t mid, out, spatial;
  };
  const Stage stages[] = {{3, 64, 256, 56}, {4, 128, 512, 28}, {23, 256, 1024, 14},
                          {3, 512, 2048, 7}};
  size_t in = 64;
  int stage_index = 0;
  for (const Stage& s : stages) {
    for (int block = 0; block < s.blocks; ++block) {
      const std::string prefix =
          "layer" + std::to_string(stage_index + 1) + "." + std::to_string(block);
      auto add_conv = [&](const std::string& tag, size_t cin, size_t cout, size_t k) {
        const size_t weight_elems = cin * cout * k * k;
        const double flops = static_cast<double>(weight_elems) *
                             static_cast<double>(s.spatial * s.spatial) / 1e9;
        b.Add(prefix + "." + tag + ".weight", weight_elems, std::max(flops, 0.001));
        b.Add(prefix + "." + tag + ".bn.weight", cout, 0.001);
        b.Add(prefix + "." + tag + ".bn.bias", cout, 0.001);
      };
      add_conv("conv1", in, s.mid, 1);
      add_conv("conv2", s.mid, s.mid, 3);
      add_conv("conv3", s.mid, s.out, 1);
      if (block == 0) {
        add_conv("downsample", in, s.out, 1);
      }
      in = s.out;
    }
    ++stage_index;
  }
  b.Add("fc.weight", 2048 * 1000, 0.1);
  b.Add("fc.bias", 1000, 0.001);
  return b.Finalize("resnet101", /*backward_s=*/0.110, /*forward_s=*/0.055,
                    /*optimizer_s=*/0.004, /*batch_size=*/32, "images/s");
}

ModelProfile Ugatit() {
  ModelBuilder b;
  // U-GAT-IT (full variant): two generators + two discriminators; the 2.5 GB size is
  // dominated by the generators' gigantic fully connected layers in the
  // CAM/AdaLIN blocks (256*64*64 -> 256 style MLPs).
  for (int gen = 0; gen < 2; ++gen) {
    const std::string g = "gen" + std::to_string(gen);
    b.Add(g + ".down.conv0.weight", 3ull * 64 * 49, 2.0);
    b.Add(g + ".down.norm0.weight", 64, 0.001);
    b.Add(g + ".down.conv1.weight", 64ull * 128 * 9, 2.0);
    b.Add(g + ".down.norm1.weight", 128, 0.001);
    b.Add(g + ".down.conv2.weight", 128ull * 256 * 9, 2.0);
    b.Add(g + ".down.norm2.weight", 256, 0.001);
    for (int r = 0; r < 6; ++r) {
      const std::string blk = g + ".res" + std::to_string(r);
      b.Add(blk + ".conv1.weight", 256ull * 256 * 9, 1.2);
      b.Add(blk + ".norm1.weight", 256, 0.001);
      b.Add(blk + ".conv2.weight", 256ull * 256 * 9, 1.2);
      b.Add(blk + ".norm2.weight", 256, 0.001);
    }
    // CAM attention + the giant AdaLIN style MLPs (the model-size hot spots: each maps
    // the flattened 64x64x256 feature map to the 256-d style code).
    b.Add(g + ".cam.fc.weight", 256ull * 2, 0.01);
    b.Add(g + ".gamma_fc.weight", 64ull * 64 * 256 * 144, 1.0);  // ~576 MB of params
    b.Add(g + ".beta_fc.weight", 64ull * 64 * 256 * 144, 1.0);
    b.Add(g + ".mlp.fc1.weight", 256ull * 256, 0.01);
    b.Add(g + ".mlp.fc2.weight", 256ull * 256, 0.01);
    b.Add(g + ".up.conv1.weight", 256ull * 128 * 9, 2.0);
    b.Add(g + ".up.norm1.weight", 128, 0.001);
    b.Add(g + ".up.conv2.weight", 128ull * 64 * 9, 2.0);
    b.Add(g + ".up.norm2.weight", 64, 0.001);
    b.Add(g + ".up.conv3.weight", 64ull * 3 * 49, 0.5);
  }
  for (int d = 0; d < 4; ++d) {  // global + local discriminators for both domains
    const std::string disc = "disc" + std::to_string(d);
    size_t in = 3;
    for (int l = 0; l < 5; ++l) {
      const size_t out = std::min<size_t>(64ull << l, 2048);
      b.Add(disc + ".conv" + std::to_string(l) + ".weight", in * out * 16, 0.8);
      b.Add(disc + ".conv" + std::to_string(l) + ".bias", out, 0.001);
      b.Add(disc + ".norm" + std::to_string(l) + ".weight", out, 0.001);
      in = out;
    }
    b.Add(disc + ".cam.fc.weight", in * 2, 0.01);
    b.Add(disc + ".out.weight", in * 16, 0.05);
  }
  return b.Finalize("ugatit", /*backward_s=*/0.370, /*forward_s=*/0.185,
                    /*optimizer_s=*/0.015, /*batch_size=*/2, "images/s");
}

ModelProfile BertBase() {
  ModelBuilder b;
  const size_t h = 768;
  b.Add("embeddings.word.weight", 30522 * h, 0.4);
  b.Add("embeddings.position.weight", 512 * h, 0.02);
  b.Add("embeddings.token_type.weight", 2 * h, 0.001);
  b.Add("embeddings.ln.weight", h, 0.001);
  b.Add("embeddings.ln.bias", h, 0.001);
  for (int l = 0; l < 12; ++l) {
    const std::string p = "encoder.layer" + std::to_string(l);
    auto add_linear = [&](const std::string& tag, size_t rows, size_t cols, double w) {
      b.Add(p + "." + tag + ".weight", rows * cols, w);
      b.Add(p + "." + tag + ".bias", cols, 0.001);
    };
    add_linear("attn.q", h, h, 0.5);
    add_linear("attn.k", h, h, 0.5);
    add_linear("attn.v", h, h, 0.5);
    add_linear("attn.out", h, h, 0.5);
    b.Add(p + ".attn.ln.weight", h, 0.001);
    b.Add(p + ".attn.ln.bias", h, 0.001);
    add_linear("ffn.fc1", h, 4 * h, 2.0);
    add_linear("ffn.fc2", 4 * h, h, 2.0);
    b.Add(p + ".ffn.ln.weight", h, 0.001);
    b.Add(p + ".ffn.ln.bias", h, 0.001);
  }
  // Pooler + SQuAD span head + prediction-head transform (fine-tuning configuration).
  b.Add("pooler.dense.weight", h * h, 0.05);
  b.Add("pooler.dense.bias", h, 0.001);
  b.Add("qa.transform.weight", h * h, 0.05);
  b.Add("qa.transform.bias", h, 0.001);
  b.Add("qa.transform.ln.weight", h, 0.001);
  b.Add("qa.transform.ln.bias", h, 0.001);
  b.Add("qa.outputs.weight", h * 2, 0.001);
  b.Add("qa.outputs.bias", 2, 0.001);
  b.Add("cls.seq_relationship.weight", h * 2, 0.001);
  b.Add("cls.seq_relationship.bias", 2, 0.001);
  return b.Finalize("bert-base", /*backward_s=*/0.066, /*forward_s=*/0.033,
                    /*optimizer_s=*/0.004, /*batch_size=*/1024, "tokens/s");
}

ModelProfile Gpt2() {
  ModelBuilder b;
  const size_t h = 768;
  b.Add("wte.weight", 50257 * h, 0.5);
  b.Add("wpe.weight", 1024 * h, 0.02);
  for (int l = 0; l < 12; ++l) {
    const std::string p = "h" + std::to_string(l);
    b.Add(p + ".ln1.weight", h, 0.001);
    b.Add(p + ".ln1.bias", h, 0.001);
    b.Add(p + ".attn.qkv.weight", h * 3 * h, 1.5);
    b.Add(p + ".attn.qkv.bias", 3 * h, 0.001);
    b.Add(p + ".attn.proj.weight", h * h, 0.5);
    b.Add(p + ".attn.proj.bias", h, 0.001);
    b.Add(p + ".ln2.weight", h, 0.001);
    b.Add(p + ".ln2.bias", h, 0.001);
    b.Add(p + ".mlp.fc.weight", h * 4 * h, 2.0);
    b.Add(p + ".mlp.fc.bias", 4 * h, 0.001);
    b.Add(p + ".mlp.proj.weight", 4 * h * h, 2.0);
    b.Add(p + ".mlp.proj.bias", h, 0.001);
  }
  b.Add("ln_f.weight", h, 0.001);
  b.Add("ln_f.bias", h, 0.001);
  return b.Finalize("gpt2", /*backward_s=*/0.078, /*forward_s=*/0.040,
                    /*optimizer_s=*/0.005, /*batch_size=*/80, "tokens/s");
}

ModelProfile Lstm() {
  ModelBuilder b;
  // Merity et al. [41] word-level LSTM scaled to Table 4's 328 MB: a wide embedding and
  // three LSTM layers — ten tensors total, each tens of megabytes, the paper's example
  // of a "few huge tensors" model (Property 1's bubble discussion, §4.4.2).
  const size_t vocab = 33278;
  const size_t emb = 1250;
  const size_t hidden = 1450;
  b.Add("embedding.weight", vocab * emb, 0.5);                       // ~166 MB
  b.Add("lstm0.weight_ih", 4 * hidden * emb, 1.0);
  b.Add("lstm0.weight_hh", 4 * hidden * hidden, 1.2);
  b.Add("lstm0.bias", 8 * hidden, 0.001);
  b.Add("lstm1.weight_ih", 4 * hidden * hidden, 1.2);
  b.Add("lstm1.weight_hh", 4 * hidden * hidden, 1.2);
  b.Add("lstm1.bias", 8 * hidden, 0.001);
  b.Add("lstm2.weight_ih", 4 * emb * hidden, 1.0);
  b.Add("lstm2.weight_hh", 4 * emb * emb, 0.8);
  b.Add("decoder.bias", vocab, 0.01);  // decoder weight tied to the embedding
  return b.Finalize("lstm", /*backward_s=*/0.100, /*forward_s=*/0.050,
                    /*optimizer_s=*/0.004, /*batch_size=*/80, "tokens/s");
}

std::vector<ModelProfile> AllModels() {
  return {Vgg16(), ResNet101(), Ugatit(), BertBase(), Gpt2(), Lstm()};
}

ModelProfile GetModel(std::string_view name) {
  if (name == "vgg16") {
    return Vgg16();
  }
  if (name == "resnet101") {
    return ResNet101();
  }
  if (name == "ugatit") {
    return Ugatit();
  }
  if (name == "bert-base" || name == "bert") {
    return BertBase();
  }
  if (name == "gpt2") {
    return Gpt2();
  }
  if (name == "lstm") {
    return Lstm();
  }
  ESP_CHECK(false) << "unknown model: " << name;
  return {};
}

}  // namespace espresso

#include "src/models/model_profile.h"

namespace espresso {

size_t ModelProfile::TotalElements() const {
  size_t total = 0;
  for (const auto& t : tensors) {
    total += t.elements;
  }
  return total;
}

size_t ModelProfile::TotalBytes() const { return TotalElements() * sizeof(float); }

double ModelProfile::BackwardTime() const {
  double total = 0.0;
  for (const auto& t : tensors) {
    total += t.backward_time_s;
  }
  return total;
}

}  // namespace espresso

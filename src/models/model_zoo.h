// Profiles of the six benchmark models of Table 4, synthesized from the published
// architectures: tensor counts match Table 5 (VGG16 32, ResNet101 314, UGATIT 148,
// BERT-base 207, GPT2 148, LSTM 10) and total sizes match Table 4. Backward-computation
// times are distributed FLOPs-proportionally and scaled to V100-class single-GPU
// iteration times (DESIGN.md §2: substitution for the paper's profiling runs).
#ifndef SRC_MODELS_MODEL_ZOO_H_
#define SRC_MODELS_MODEL_ZOO_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/models/model_profile.h"

namespace espresso {

ModelProfile Vgg16();
ModelProfile ResNet101();
ModelProfile Ugatit();
ModelProfile BertBase();
ModelProfile Gpt2();
ModelProfile Lstm();

// All six models, in the paper's Table 4 order.
std::vector<ModelProfile> AllModels();

// Lookup by name ("vgg16", "resnet101", "ugatit", "bert-base", "gpt2", "lstm").
ModelProfile GetModel(std::string_view name);

}  // namespace espresso

#endif  // SRC_MODELS_MODEL_ZOO_H_

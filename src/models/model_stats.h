// Model statistics used by the decision algorithm and Figure 11: how many tensors share
// each size. Algorithm 1 groups same-size tensors (Property 2), and Algorithm 2's search
// space is the product over these groups (Theorem 1) — Figure 11 is the paper's evidence
// that the product stays small.
#ifndef SRC_MODELS_MODEL_STATS_H_
#define SRC_MODELS_MODEL_STATS_H_

#include <cstddef>
#include <map>
#include <vector>

#include "src/models/model_profile.h"

namespace espresso {

// Tensor-size histogram: size in elements -> number of tensors with that size.
std::map<size_t, size_t> SizeHistogram(const ModelProfile& model);

// Number of distinct tensor sizes.
size_t DistinctSizes(const ModelProfile& model);

// Tensor indices grouped by size, groups ordered by descending size, members ordered by
// ascending distance-to-output (i.e. descending backward index) — the exact ordering of
// Algorithm 1 lines 2-3.
std::vector<std::vector<size_t>> GroupBySizeDescending(const ModelProfile& model);

}  // namespace espresso

#endif  // SRC_MODELS_MODEL_STATS_H_

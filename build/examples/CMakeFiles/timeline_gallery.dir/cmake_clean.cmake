file(REMOVE_RECURSE
  "CMakeFiles/timeline_gallery.dir/timeline_gallery.cpp.o"
  "CMakeFiles/timeline_gallery.dir/timeline_gallery.cpp.o.d"
  "timeline_gallery"
  "timeline_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

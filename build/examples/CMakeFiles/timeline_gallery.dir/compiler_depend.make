# Empty compiler generated dependencies file for timeline_gallery.
# This may be replaced when dependencies are built.

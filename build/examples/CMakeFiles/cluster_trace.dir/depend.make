# Empty dependencies file for cluster_trace.
# This may be replaced when dependencies are built.

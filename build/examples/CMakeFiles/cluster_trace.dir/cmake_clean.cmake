file(REMOVE_RECURSE
  "CMakeFiles/cluster_trace.dir/cluster_trace.cpp.o"
  "CMakeFiles/cluster_trace.dir/cluster_trace.cpp.o.d"
  "cluster_trace"
  "cluster_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/espresso_cli.dir/espresso_cli.cpp.o"
  "CMakeFiles/espresso_cli.dir/espresso_cli.cpp.o.d"
  "espresso_cli"
  "espresso_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for espresso_cli.
# This may be replaced when dependencies are built.

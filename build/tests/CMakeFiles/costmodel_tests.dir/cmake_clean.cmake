file(REMOVE_RECURSE
  "CMakeFiles/costmodel_tests.dir/costmodel/calibration_test.cc.o"
  "CMakeFiles/costmodel_tests.dir/costmodel/calibration_test.cc.o.d"
  "CMakeFiles/costmodel_tests.dir/costmodel/collective_cost_test.cc.o"
  "CMakeFiles/costmodel_tests.dir/costmodel/collective_cost_test.cc.o.d"
  "CMakeFiles/costmodel_tests.dir/costmodel/compression_cost_test.cc.o"
  "CMakeFiles/costmodel_tests.dir/costmodel/compression_cost_test.cc.o.d"
  "costmodel_tests"
  "costmodel_tests.pdb"
  "costmodel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costmodel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

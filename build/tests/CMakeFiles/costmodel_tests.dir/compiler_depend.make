# Empty compiler generated dependencies file for costmodel_tests.
# This may be replaced when dependencies are built.

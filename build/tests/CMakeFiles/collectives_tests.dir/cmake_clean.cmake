file(REMOVE_RECURSE
  "CMakeFiles/collectives_tests.dir/collectives/hierarchical_test.cc.o"
  "CMakeFiles/collectives_tests.dir/collectives/hierarchical_test.cc.o.d"
  "CMakeFiles/collectives_tests.dir/collectives/primitives_test.cc.o"
  "CMakeFiles/collectives_tests.dir/collectives/primitives_test.cc.o.d"
  "CMakeFiles/collectives_tests.dir/collectives/schemes_test.cc.o"
  "CMakeFiles/collectives_tests.dir/collectives/schemes_test.cc.o.d"
  "collectives_tests"
  "collectives_tests.pdb"
  "collectives_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for collectives_tests.
# This may be replaced when dependencies are built.

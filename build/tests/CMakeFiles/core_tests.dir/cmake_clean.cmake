file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/baselines_test.cc.o"
  "CMakeFiles/core_tests.dir/core/baselines_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/brute_force_test.cc.o"
  "CMakeFiles/core_tests.dir/core/brute_force_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/decision_tree_test.cc.o"
  "CMakeFiles/core_tests.dir/core/decision_tree_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/espresso_test.cc.o"
  "CMakeFiles/core_tests.dir/core/espresso_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/option_test.cc.o"
  "CMakeFiles/core_tests.dir/core/option_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/strategy_io_test.cc.o"
  "CMakeFiles/core_tests.dir/core/strategy_io_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/strategy_test.cc.o"
  "CMakeFiles/core_tests.dir/core/strategy_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/timeline_test.cc.o"
  "CMakeFiles/core_tests.dir/core/timeline_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/upper_bound_test.cc.o"
  "CMakeFiles/core_tests.dir/core/upper_bound_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

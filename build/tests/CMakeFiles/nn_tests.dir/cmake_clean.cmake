file(REMOVE_RECURSE
  "CMakeFiles/nn_tests.dir/nn/convergence_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/convergence_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/dataset_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/dataset_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/matrix_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/matrix_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/mlp_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/mlp_test.cc.o.d"
  "nn_tests"
  "nn_tests.pdb"
  "nn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for compress_tests.
# This may be replaced when dependencies are built.

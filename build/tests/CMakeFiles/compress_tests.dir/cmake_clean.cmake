file(REMOVE_RECURSE
  "CMakeFiles/compress_tests.dir/compress/compressor_property_test.cc.o"
  "CMakeFiles/compress_tests.dir/compress/compressor_property_test.cc.o.d"
  "CMakeFiles/compress_tests.dir/compress/efsignsgd_test.cc.o"
  "CMakeFiles/compress_tests.dir/compress/efsignsgd_test.cc.o.d"
  "CMakeFiles/compress_tests.dir/compress/error_feedback_test.cc.o"
  "CMakeFiles/compress_tests.dir/compress/error_feedback_test.cc.o.d"
  "CMakeFiles/compress_tests.dir/compress/fp16_test.cc.o"
  "CMakeFiles/compress_tests.dir/compress/fp16_test.cc.o.d"
  "CMakeFiles/compress_tests.dir/compress/qsgd_test.cc.o"
  "CMakeFiles/compress_tests.dir/compress/qsgd_test.cc.o.d"
  "CMakeFiles/compress_tests.dir/compress/randomk_test.cc.o"
  "CMakeFiles/compress_tests.dir/compress/randomk_test.cc.o.d"
  "CMakeFiles/compress_tests.dir/compress/terngrad_test.cc.o"
  "CMakeFiles/compress_tests.dir/compress/terngrad_test.cc.o.d"
  "CMakeFiles/compress_tests.dir/compress/threshold_test.cc.o"
  "CMakeFiles/compress_tests.dir/compress/threshold_test.cc.o.d"
  "CMakeFiles/compress_tests.dir/compress/topk_test.cc.o"
  "CMakeFiles/compress_tests.dir/compress/topk_test.cc.o.d"
  "compress_tests"
  "compress_tests.pdb"
  "compress_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

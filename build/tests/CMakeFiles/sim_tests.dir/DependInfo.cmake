
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/engine_fuzz_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/engine_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/engine_fuzz_test.cc.o.d"
  "/root/repo/tests/sim/engine_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/engine_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/engine_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ddl/CMakeFiles/espresso_ddl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/espresso_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/espresso_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/espresso_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/espresso_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/espresso_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/espresso_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/espresso_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/espresso_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/espresso_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

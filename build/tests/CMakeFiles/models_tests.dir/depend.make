# Empty dependencies file for models_tests.
# This may be replaced when dependencies are built.

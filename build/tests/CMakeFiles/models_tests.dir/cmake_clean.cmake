file(REMOVE_RECURSE
  "CMakeFiles/models_tests.dir/models/model_stats_test.cc.o"
  "CMakeFiles/models_tests.dir/models/model_stats_test.cc.o.d"
  "CMakeFiles/models_tests.dir/models/model_zoo_test.cc.o"
  "CMakeFiles/models_tests.dir/models/model_zoo_test.cc.o.d"
  "CMakeFiles/models_tests.dir/models/tensor_fusion_test.cc.o"
  "CMakeFiles/models_tests.dir/models/tensor_fusion_test.cc.o.d"
  "models_tests"
  "models_tests.pdb"
  "models_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ddl_tests.dir/ddl/executor_topology_test.cc.o"
  "CMakeFiles/ddl_tests.dir/ddl/executor_topology_test.cc.o.d"
  "CMakeFiles/ddl_tests.dir/ddl/experiment_test.cc.o"
  "CMakeFiles/ddl_tests.dir/ddl/experiment_test.cc.o.d"
  "CMakeFiles/ddl_tests.dir/ddl/job_config_test.cc.o"
  "CMakeFiles/ddl_tests.dir/ddl/job_config_test.cc.o.d"
  "CMakeFiles/ddl_tests.dir/ddl/profiler_test.cc.o"
  "CMakeFiles/ddl_tests.dir/ddl/profiler_test.cc.o.d"
  "CMakeFiles/ddl_tests.dir/ddl/strategy_executor_test.cc.o"
  "CMakeFiles/ddl_tests.dir/ddl/strategy_executor_test.cc.o.d"
  "ddl_tests"
  "ddl_tests.pdb"
  "ddl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ddl_tests.
# This may be replaced when dependencies are built.

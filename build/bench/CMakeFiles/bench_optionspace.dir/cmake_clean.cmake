file(REMOVE_RECURSE
  "CMakeFiles/bench_optionspace.dir/bench_optionspace.cpp.o"
  "CMakeFiles/bench_optionspace.dir/bench_optionspace.cpp.o.d"
  "bench_optionspace"
  "bench_optionspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optionspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

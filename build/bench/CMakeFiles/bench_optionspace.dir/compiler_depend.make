# Empty compiler generated dependencies file for bench_optionspace.
# This may be replaced when dependencies are built.

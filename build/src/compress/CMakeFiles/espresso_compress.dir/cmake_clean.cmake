file(REMOVE_RECURSE
  "CMakeFiles/espresso_compress.dir/compressor.cc.o"
  "CMakeFiles/espresso_compress.dir/compressor.cc.o.d"
  "CMakeFiles/espresso_compress.dir/efsignsgd.cc.o"
  "CMakeFiles/espresso_compress.dir/efsignsgd.cc.o.d"
  "CMakeFiles/espresso_compress.dir/error_feedback.cc.o"
  "CMakeFiles/espresso_compress.dir/error_feedback.cc.o.d"
  "CMakeFiles/espresso_compress.dir/fp16.cc.o"
  "CMakeFiles/espresso_compress.dir/fp16.cc.o.d"
  "CMakeFiles/espresso_compress.dir/qsgd.cc.o"
  "CMakeFiles/espresso_compress.dir/qsgd.cc.o.d"
  "CMakeFiles/espresso_compress.dir/randomk.cc.o"
  "CMakeFiles/espresso_compress.dir/randomk.cc.o.d"
  "CMakeFiles/espresso_compress.dir/terngrad.cc.o"
  "CMakeFiles/espresso_compress.dir/terngrad.cc.o.d"
  "CMakeFiles/espresso_compress.dir/threshold.cc.o"
  "CMakeFiles/espresso_compress.dir/threshold.cc.o.d"
  "CMakeFiles/espresso_compress.dir/topk.cc.o"
  "CMakeFiles/espresso_compress.dir/topk.cc.o.d"
  "libespresso_compress.a"
  "libespresso_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for espresso_compress.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/compressor.cc" "src/compress/CMakeFiles/espresso_compress.dir/compressor.cc.o" "gcc" "src/compress/CMakeFiles/espresso_compress.dir/compressor.cc.o.d"
  "/root/repo/src/compress/efsignsgd.cc" "src/compress/CMakeFiles/espresso_compress.dir/efsignsgd.cc.o" "gcc" "src/compress/CMakeFiles/espresso_compress.dir/efsignsgd.cc.o.d"
  "/root/repo/src/compress/error_feedback.cc" "src/compress/CMakeFiles/espresso_compress.dir/error_feedback.cc.o" "gcc" "src/compress/CMakeFiles/espresso_compress.dir/error_feedback.cc.o.d"
  "/root/repo/src/compress/fp16.cc" "src/compress/CMakeFiles/espresso_compress.dir/fp16.cc.o" "gcc" "src/compress/CMakeFiles/espresso_compress.dir/fp16.cc.o.d"
  "/root/repo/src/compress/qsgd.cc" "src/compress/CMakeFiles/espresso_compress.dir/qsgd.cc.o" "gcc" "src/compress/CMakeFiles/espresso_compress.dir/qsgd.cc.o.d"
  "/root/repo/src/compress/randomk.cc" "src/compress/CMakeFiles/espresso_compress.dir/randomk.cc.o" "gcc" "src/compress/CMakeFiles/espresso_compress.dir/randomk.cc.o.d"
  "/root/repo/src/compress/terngrad.cc" "src/compress/CMakeFiles/espresso_compress.dir/terngrad.cc.o" "gcc" "src/compress/CMakeFiles/espresso_compress.dir/terngrad.cc.o.d"
  "/root/repo/src/compress/threshold.cc" "src/compress/CMakeFiles/espresso_compress.dir/threshold.cc.o" "gcc" "src/compress/CMakeFiles/espresso_compress.dir/threshold.cc.o.d"
  "/root/repo/src/compress/topk.cc" "src/compress/CMakeFiles/espresso_compress.dir/topk.cc.o" "gcc" "src/compress/CMakeFiles/espresso_compress.dir/topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/espresso_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libespresso_compress.a"
)

file(REMOVE_RECURSE
  "libespresso_costmodel.a"
)

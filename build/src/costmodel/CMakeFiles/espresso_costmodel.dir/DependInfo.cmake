
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costmodel/calibration.cc" "src/costmodel/CMakeFiles/espresso_costmodel.dir/calibration.cc.o" "gcc" "src/costmodel/CMakeFiles/espresso_costmodel.dir/calibration.cc.o.d"
  "/root/repo/src/costmodel/collective_cost.cc" "src/costmodel/CMakeFiles/espresso_costmodel.dir/collective_cost.cc.o" "gcc" "src/costmodel/CMakeFiles/espresso_costmodel.dir/collective_cost.cc.o.d"
  "/root/repo/src/costmodel/compression_cost.cc" "src/costmodel/CMakeFiles/espresso_costmodel.dir/compression_cost.cc.o" "gcc" "src/costmodel/CMakeFiles/espresso_costmodel.dir/compression_cost.cc.o.d"
  "/root/repo/src/costmodel/link.cc" "src/costmodel/CMakeFiles/espresso_costmodel.dir/link.cc.o" "gcc" "src/costmodel/CMakeFiles/espresso_costmodel.dir/link.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/espresso_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

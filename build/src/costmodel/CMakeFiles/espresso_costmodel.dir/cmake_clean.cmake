file(REMOVE_RECURSE
  "CMakeFiles/espresso_costmodel.dir/calibration.cc.o"
  "CMakeFiles/espresso_costmodel.dir/calibration.cc.o.d"
  "CMakeFiles/espresso_costmodel.dir/collective_cost.cc.o"
  "CMakeFiles/espresso_costmodel.dir/collective_cost.cc.o.d"
  "CMakeFiles/espresso_costmodel.dir/compression_cost.cc.o"
  "CMakeFiles/espresso_costmodel.dir/compression_cost.cc.o.d"
  "CMakeFiles/espresso_costmodel.dir/link.cc.o"
  "CMakeFiles/espresso_costmodel.dir/link.cc.o.d"
  "libespresso_costmodel.a"
  "libespresso_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

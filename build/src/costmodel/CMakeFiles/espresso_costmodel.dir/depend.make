# Empty dependencies file for espresso_costmodel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/espresso_util.dir/config.cc.o"
  "CMakeFiles/espresso_util.dir/config.cc.o.d"
  "CMakeFiles/espresso_util.dir/json_writer.cc.o"
  "CMakeFiles/espresso_util.dir/json_writer.cc.o.d"
  "CMakeFiles/espresso_util.dir/logging.cc.o"
  "CMakeFiles/espresso_util.dir/logging.cc.o.d"
  "CMakeFiles/espresso_util.dir/rng.cc.o"
  "CMakeFiles/espresso_util.dir/rng.cc.o.d"
  "CMakeFiles/espresso_util.dir/stats.cc.o"
  "CMakeFiles/espresso_util.dir/stats.cc.o.d"
  "CMakeFiles/espresso_util.dir/table.cc.o"
  "CMakeFiles/espresso_util.dir/table.cc.o.d"
  "CMakeFiles/espresso_util.dir/thread_pool.cc.o"
  "CMakeFiles/espresso_util.dir/thread_pool.cc.o.d"
  "libespresso_util.a"
  "libespresso_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

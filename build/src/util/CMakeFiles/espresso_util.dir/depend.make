# Empty dependencies file for espresso_util.
# This may be replaced when dependencies are built.

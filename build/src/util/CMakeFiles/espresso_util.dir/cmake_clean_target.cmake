file(REMOVE_RECURSE
  "libespresso_util.a"
)

file(REMOVE_RECURSE
  "libespresso_models.a"
)

# Empty compiler generated dependencies file for espresso_models.
# This may be replaced when dependencies are built.

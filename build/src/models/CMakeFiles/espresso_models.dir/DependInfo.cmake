
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/model_profile.cc" "src/models/CMakeFiles/espresso_models.dir/model_profile.cc.o" "gcc" "src/models/CMakeFiles/espresso_models.dir/model_profile.cc.o.d"
  "/root/repo/src/models/model_stats.cc" "src/models/CMakeFiles/espresso_models.dir/model_stats.cc.o" "gcc" "src/models/CMakeFiles/espresso_models.dir/model_stats.cc.o.d"
  "/root/repo/src/models/model_zoo.cc" "src/models/CMakeFiles/espresso_models.dir/model_zoo.cc.o" "gcc" "src/models/CMakeFiles/espresso_models.dir/model_zoo.cc.o.d"
  "/root/repo/src/models/tensor_fusion.cc" "src/models/CMakeFiles/espresso_models.dir/tensor_fusion.cc.o" "gcc" "src/models/CMakeFiles/espresso_models.dir/tensor_fusion.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/espresso_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/espresso_models.dir/model_profile.cc.o"
  "CMakeFiles/espresso_models.dir/model_profile.cc.o.d"
  "CMakeFiles/espresso_models.dir/model_stats.cc.o"
  "CMakeFiles/espresso_models.dir/model_stats.cc.o.d"
  "CMakeFiles/espresso_models.dir/model_zoo.cc.o"
  "CMakeFiles/espresso_models.dir/model_zoo.cc.o.d"
  "CMakeFiles/espresso_models.dir/tensor_fusion.cc.o"
  "CMakeFiles/espresso_models.dir/tensor_fusion.cc.o.d"
  "libespresso_models.a"
  "libespresso_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

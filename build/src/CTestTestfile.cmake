# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("compress")
subdirs("collectives")
subdirs("costmodel")
subdirs("sim")
subdirs("models")
subdirs("core")
subdirs("ddl")
subdirs("nn")
subdirs("trace")

# Empty dependencies file for espresso_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/espresso_trace.dir/chrome_trace.cc.o"
  "CMakeFiles/espresso_trace.dir/chrome_trace.cc.o.d"
  "libespresso_trace.a"
  "libespresso_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

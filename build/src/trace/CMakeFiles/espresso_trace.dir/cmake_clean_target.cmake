file(REMOVE_RECURSE
  "libespresso_trace.a"
)

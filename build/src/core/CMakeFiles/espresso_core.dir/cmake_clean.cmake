file(REMOVE_RECURSE
  "CMakeFiles/espresso_core.dir/baselines.cc.o"
  "CMakeFiles/espresso_core.dir/baselines.cc.o.d"
  "CMakeFiles/espresso_core.dir/brute_force.cc.o"
  "CMakeFiles/espresso_core.dir/brute_force.cc.o.d"
  "CMakeFiles/espresso_core.dir/decision_tree.cc.o"
  "CMakeFiles/espresso_core.dir/decision_tree.cc.o.d"
  "CMakeFiles/espresso_core.dir/espresso.cc.o"
  "CMakeFiles/espresso_core.dir/espresso.cc.o.d"
  "CMakeFiles/espresso_core.dir/option.cc.o"
  "CMakeFiles/espresso_core.dir/option.cc.o.d"
  "CMakeFiles/espresso_core.dir/strategy.cc.o"
  "CMakeFiles/espresso_core.dir/strategy.cc.o.d"
  "CMakeFiles/espresso_core.dir/strategy_io.cc.o"
  "CMakeFiles/espresso_core.dir/strategy_io.cc.o.d"
  "CMakeFiles/espresso_core.dir/timeline.cc.o"
  "CMakeFiles/espresso_core.dir/timeline.cc.o.d"
  "CMakeFiles/espresso_core.dir/upper_bound.cc.o"
  "CMakeFiles/espresso_core.dir/upper_bound.cc.o.d"
  "libespresso_core.a"
  "libespresso_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

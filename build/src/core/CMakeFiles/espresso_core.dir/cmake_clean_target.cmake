file(REMOVE_RECURSE
  "libespresso_core.a"
)

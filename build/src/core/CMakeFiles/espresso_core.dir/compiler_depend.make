# Empty compiler generated dependencies file for espresso_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/espresso_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/espresso_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/brute_force.cc" "src/core/CMakeFiles/espresso_core.dir/brute_force.cc.o" "gcc" "src/core/CMakeFiles/espresso_core.dir/brute_force.cc.o.d"
  "/root/repo/src/core/decision_tree.cc" "src/core/CMakeFiles/espresso_core.dir/decision_tree.cc.o" "gcc" "src/core/CMakeFiles/espresso_core.dir/decision_tree.cc.o.d"
  "/root/repo/src/core/espresso.cc" "src/core/CMakeFiles/espresso_core.dir/espresso.cc.o" "gcc" "src/core/CMakeFiles/espresso_core.dir/espresso.cc.o.d"
  "/root/repo/src/core/option.cc" "src/core/CMakeFiles/espresso_core.dir/option.cc.o" "gcc" "src/core/CMakeFiles/espresso_core.dir/option.cc.o.d"
  "/root/repo/src/core/strategy.cc" "src/core/CMakeFiles/espresso_core.dir/strategy.cc.o" "gcc" "src/core/CMakeFiles/espresso_core.dir/strategy.cc.o.d"
  "/root/repo/src/core/strategy_io.cc" "src/core/CMakeFiles/espresso_core.dir/strategy_io.cc.o" "gcc" "src/core/CMakeFiles/espresso_core.dir/strategy_io.cc.o.d"
  "/root/repo/src/core/timeline.cc" "src/core/CMakeFiles/espresso_core.dir/timeline.cc.o" "gcc" "src/core/CMakeFiles/espresso_core.dir/timeline.cc.o.d"
  "/root/repo/src/core/upper_bound.cc" "src/core/CMakeFiles/espresso_core.dir/upper_bound.cc.o" "gcc" "src/core/CMakeFiles/espresso_core.dir/upper_bound.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/espresso_util.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/espresso_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/espresso_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/espresso_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/espresso_models.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/espresso_collectives.dir/hierarchical.cc.o"
  "CMakeFiles/espresso_collectives.dir/hierarchical.cc.o.d"
  "CMakeFiles/espresso_collectives.dir/primitives.cc.o"
  "CMakeFiles/espresso_collectives.dir/primitives.cc.o.d"
  "CMakeFiles/espresso_collectives.dir/rank_group.cc.o"
  "CMakeFiles/espresso_collectives.dir/rank_group.cc.o.d"
  "CMakeFiles/espresso_collectives.dir/schemes.cc.o"
  "CMakeFiles/espresso_collectives.dir/schemes.cc.o.d"
  "libespresso_collectives.a"
  "libespresso_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

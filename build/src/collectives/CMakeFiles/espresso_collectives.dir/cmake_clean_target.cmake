file(REMOVE_RECURSE
  "libespresso_collectives.a"
)

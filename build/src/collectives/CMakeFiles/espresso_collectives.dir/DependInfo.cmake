
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collectives/hierarchical.cc" "src/collectives/CMakeFiles/espresso_collectives.dir/hierarchical.cc.o" "gcc" "src/collectives/CMakeFiles/espresso_collectives.dir/hierarchical.cc.o.d"
  "/root/repo/src/collectives/primitives.cc" "src/collectives/CMakeFiles/espresso_collectives.dir/primitives.cc.o" "gcc" "src/collectives/CMakeFiles/espresso_collectives.dir/primitives.cc.o.d"
  "/root/repo/src/collectives/rank_group.cc" "src/collectives/CMakeFiles/espresso_collectives.dir/rank_group.cc.o" "gcc" "src/collectives/CMakeFiles/espresso_collectives.dir/rank_group.cc.o.d"
  "/root/repo/src/collectives/schemes.cc" "src/collectives/CMakeFiles/espresso_collectives.dir/schemes.cc.o" "gcc" "src/collectives/CMakeFiles/espresso_collectives.dir/schemes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/espresso_util.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/espresso_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

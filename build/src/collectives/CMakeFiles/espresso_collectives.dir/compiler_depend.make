# Empty compiler generated dependencies file for espresso_collectives.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/dataset.cc" "src/nn/CMakeFiles/espresso_nn.dir/dataset.cc.o" "gcc" "src/nn/CMakeFiles/espresso_nn.dir/dataset.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/nn/CMakeFiles/espresso_nn.dir/matrix.cc.o" "gcc" "src/nn/CMakeFiles/espresso_nn.dir/matrix.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/espresso_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/espresso_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/parallel_trainer.cc" "src/nn/CMakeFiles/espresso_nn.dir/parallel_trainer.cc.o" "gcc" "src/nn/CMakeFiles/espresso_nn.dir/parallel_trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/espresso_util.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/espresso_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/espresso_collectives.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/espresso_nn.dir/dataset.cc.o"
  "CMakeFiles/espresso_nn.dir/dataset.cc.o.d"
  "CMakeFiles/espresso_nn.dir/matrix.cc.o"
  "CMakeFiles/espresso_nn.dir/matrix.cc.o.d"
  "CMakeFiles/espresso_nn.dir/mlp.cc.o"
  "CMakeFiles/espresso_nn.dir/mlp.cc.o.d"
  "CMakeFiles/espresso_nn.dir/parallel_trainer.cc.o"
  "CMakeFiles/espresso_nn.dir/parallel_trainer.cc.o.d"
  "libespresso_nn.a"
  "libespresso_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

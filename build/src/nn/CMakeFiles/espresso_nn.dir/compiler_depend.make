# Empty compiler generated dependencies file for espresso_nn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libespresso_nn.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/espresso_sim.dir/engine.cc.o"
  "CMakeFiles/espresso_sim.dir/engine.cc.o.d"
  "libespresso_sim.a"
  "libespresso_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

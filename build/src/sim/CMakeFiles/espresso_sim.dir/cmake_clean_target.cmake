file(REMOVE_RECURSE
  "libespresso_sim.a"
)

# Empty compiler generated dependencies file for espresso_sim.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for espresso_ddl.
# This may be replaced when dependencies are built.

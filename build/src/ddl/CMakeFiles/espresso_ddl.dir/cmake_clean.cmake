file(REMOVE_RECURSE
  "CMakeFiles/espresso_ddl.dir/experiment.cc.o"
  "CMakeFiles/espresso_ddl.dir/experiment.cc.o.d"
  "CMakeFiles/espresso_ddl.dir/job_config.cc.o"
  "CMakeFiles/espresso_ddl.dir/job_config.cc.o.d"
  "CMakeFiles/espresso_ddl.dir/profiler.cc.o"
  "CMakeFiles/espresso_ddl.dir/profiler.cc.o.d"
  "CMakeFiles/espresso_ddl.dir/strategy_executor.cc.o"
  "CMakeFiles/espresso_ddl.dir/strategy_executor.cc.o.d"
  "libespresso_ddl.a"
  "libespresso_ddl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_ddl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libespresso_ddl.a"
)

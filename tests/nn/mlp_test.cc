#include "src/nn/mlp.h"

#include <gtest/gtest.h>

#include "src/nn/dataset.h"

namespace espresso {
namespace {

TEST(Mlp, ParameterLayout) {
  Mlp model(10, 8, 3, 1);
  const auto sizes = model.ParameterSizes();
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 80u);  // W1
  EXPECT_EQ(sizes[1], 8u);   // b1
  EXPECT_EQ(sizes[2], 24u);  // W2
  EXPECT_EQ(sizes[3], 3u);   // b2
  const auto params = model.Parameters();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(params[i].size(), sizes[i]);
  }
}

TEST(Mlp, GradientsMatchNumericalDifferences) {
  // Central-difference check on a handful of coordinates of every tensor.
  Mlp model(4, 5, 3, 7);
  const Dataset data = MakeGaussianBlobs(8, 4, 3, 2.0, 11);

  std::vector<std::vector<float>> grads;
  model.ComputeGradients(data.x, data.labels, &grads);

  auto loss_at = [&](Mlp& m) {
    std::vector<std::vector<float>> g;
    return m.ComputeGradients(data.x, data.labels, &g);
  };

  const float eps = 1e-3f;
  auto params = model.Parameters();
  for (size_t t = 0; t < params.size(); ++t) {
    for (size_t i = 0; i < params[t].size(); i += std::max<size_t>(1, params[t].size() / 3)) {
      const float saved = params[t][i];
      params[t][i] = saved + eps;
      const double up = loss_at(model);
      params[t][i] = saved - eps;
      const double down = loss_at(model);
      params[t][i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(grads[t][i], numeric, 5e-3)
          << "tensor " << t << " coord " << i;
    }
  }
}

TEST(Mlp, LossDecreasesUnderSgd) {
  Mlp model(6, 16, 3, 3);
  const Dataset data = MakeGaussianBlobs(128, 6, 3, 3.0, 5);
  std::vector<std::vector<float>> grads;
  const double initial = model.ComputeGradients(data.x, data.labels, &grads);
  for (int step = 0; step < 50; ++step) {
    model.ComputeGradients(data.x, data.labels, &grads);
    model.ApplyGradients(grads, 0.2);
  }
  const double final_loss = model.ComputeGradients(data.x, data.labels, &grads);
  EXPECT_LT(final_loss, initial * 0.5);
  EXPECT_GT(model.Accuracy(data.x, data.labels), 0.9);
}

TEST(Mlp, AccuracyOnRandomInitIsChanceLevel) {
  Mlp model(6, 16, 4, 3);
  const Dataset data = MakeGaussianBlobs(1000, 6, 4, 3.0, 5);
  const double acc = model.Accuracy(data.x, data.labels);
  EXPECT_GT(acc, 0.05);
  EXPECT_LT(acc, 0.6);
}

TEST(Mlp, DeterministicForFixedSeed) {
  Mlp a(5, 8, 2, 42);
  Mlp b(5, 8, 2, 42);
  const Dataset data = MakeGaussianBlobs(16, 5, 2, 2.0, 9);
  std::vector<std::vector<float>> ga, gb;
  EXPECT_EQ(a.ComputeGradients(data.x, data.labels, &ga),
            b.ComputeGradients(data.x, data.labels, &gb));
  EXPECT_EQ(ga, gb);
}

}  // namespace
}  // namespace espresso
